//! Criterion benchmarks of the compile-time CFG analyses: Tarjan SCC,
//! the hierarchical probability/distance solve, and full forecast-point
//! insertion on the AES graph.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rispp::cfg::aes::{build_aes, AesSis};
use rispp::cfg::analysis::SiUsageAnalysis;
use rispp::cfg::forecast_points::insert_forecast_points;
use rispp::cfg::graph::{BasicBlock, Cfg};
use rispp::cfg::profile::Profile;
use rispp::cfg::scc::SccDecomposition;
use rispp::prelude::*;

/// A synthetic deep nested-loop CFG with `n` layers.
fn nested_loops(n: usize) -> (Cfg, Profile) {
    let mut cfg = Cfg::new();
    let entry = cfg.add_block(BasicBlock::plain("entry", 10));
    let mut heads = Vec::new();
    let mut prev = entry;
    for i in 0..n {
        let head = cfg.add_block(BasicBlock::plain(format!("head{i}"), 5));
        cfg.add_edge(prev, head);
        heads.push(head);
        prev = head;
    }
    let body = cfg.add_block(BasicBlock::with_si("body", 20, vec![(SiId(0), 1)]));
    cfg.add_edge(prev, body);
    let exit = cfg.add_block(BasicBlock::plain("exit", 1));
    // Back edges from body to every loop head, plus the exit.
    let mut edge_counts: Vec<Vec<u64>> = vec![vec![100]; 1 + n];
    let mut body_row = Vec::new();
    for &h in &heads {
        cfg.add_edge(body, h);
        body_row.push(10);
    }
    cfg.add_edge(body, exit);
    body_row.push(5);
    edge_counts.push(body_row);
    edge_counts.push(vec![]);
    let profile = Profile::from_edge_counts(&cfg, edge_counts);
    (cfg, profile)
}

fn aes_library() -> SiLibrary {
    let mut lib = SiLibrary::new(2);
    for (name, sw, counts, cycles) in [
        ("SubShift", 420u64, [2u32, 1u32], 18u64),
        ("MixColumns", 380, [1, 2], 16),
        ("AddKey", 120, [0, 1], 6),
    ] {
        lib.insert(
            SpecialInstruction::new(
                name,
                sw,
                vec![MoleculeImpl::new(Molecule::from_counts(counts), cycles)],
            )
            .unwrap(),
        )
        .unwrap();
    }
    lib
}

fn bench_cfg(c: &mut Criterion) {
    let mut group = c.benchmark_group("cfg");
    let (aes_cfg, aes_profile, _) = build_aes(AesSis::default(), 64);

    group.bench_function("scc/aes", |b| {
        b.iter(|| SccDecomposition::compute(black_box(&aes_cfg)))
    });
    group.bench_function("analysis/aes", |b| {
        b.iter(|| {
            SiUsageAnalysis::compute(&aes_cfg, &aes_profile, SiId(0), |blk| {
                aes_cfg.block(blk).plain_cycles as f64
            })
        })
    });
    let lib = aes_library();
    group.bench_function("insert_forecast_points/aes", |b| {
        b.iter(|| {
            insert_forecast_points(
                black_box(&aes_cfg),
                &aes_profile,
                &lib,
                |_| FdfParams::new(4_000.0, 400.0, 15.0, 2_000.0, 1.0),
                4,
            )
        })
    });

    for depth in [8usize, 32] {
        let (cfg, profile) = nested_loops(depth);
        group.bench_function(format!("analysis/nested{depth}"), |b| {
            b.iter(|| {
                SiUsageAnalysis::compute(&cfg, &profile, SiId(0), |blk| {
                    cfg.block(blk).plain_cycles as f64
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cfg);
criterion_main!(benches);
