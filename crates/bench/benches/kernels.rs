//! Criterion benchmarks of the H.264 pixel kernels — the software
//! Molecules whose latency the SIs are measured against.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rispp::h264::block::{Block4x4, Plane};
use rispp::h264::me::full_search_4x4;
use rispp::h264::quant::{dequantize4x4, quantize4x4};
use rispp::h264::satd::{sad4x4, satd4x4};
use rispp::h264::transform::{forward_dct4x4, hadamard4x4, inverse_dct4x4};
use rispp::h264::video::SyntheticVideo;

fn test_block(seed: i32) -> Block4x4 {
    let mut b = [[0i32; 4]; 4];
    for (r, row) in b.iter_mut().enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            *v = ((seed + r as i32 * 31 + c as i32 * 17) % 255) - 128;
        }
    }
    b
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    let a = test_block(3);
    let b2 = test_block(91);

    group.bench_function("forward_dct4x4", |b| {
        b.iter(|| forward_dct4x4(black_box(&a)))
    });
    group.bench_function("inverse_dct4x4", |b| {
        b.iter(|| inverse_dct4x4(black_box(&a)))
    });
    group.bench_function("hadamard4x4", |b| {
        b.iter(|| hadamard4x4(black_box(&a), true))
    });
    group.bench_function("satd4x4", |b| {
        b.iter(|| satd4x4(black_box(&a), black_box(&b2)))
    });
    group.bench_function("sad4x4", |b| {
        b.iter(|| sad4x4(black_box(&a), black_box(&b2)))
    });
    group.bench_function("quant_roundtrip", |b| {
        b.iter(|| {
            let q = quantize4x4(black_box(&a), 28);
            dequantize4x4(&q, 28)
        })
    });

    let mut video = SyntheticVideo::new(64, 64, 5);
    let f0 = video.next_frame();
    let f1 = video.next_frame();
    let cur: &Plane = &f1.y;
    let refp: &Plane = &f0.y;
    group.bench_function("full_search_4x4/range4", |b| {
        b.iter(|| full_search_4x4(black_box(cur), black_box(refp), 24, 24, 4))
    });

    group.bench_function("half_sample_hv", |b| {
        use rispp::h264::interp::half_sample_hv;
        b.iter(|| half_sample_hv(black_box(refp), 24, 24))
    });

    group.bench_function("entropy_encode_block", |b| {
        use rispp::h264::entropy::{encode_block, BitWriter};
        use rispp::h264::quant::quantize4x4;
        let levels = quantize4x4(&forward_dct4x4(&a), 28);
        b.iter(|| {
            let mut w = BitWriter::new();
            encode_block(&mut w, black_box(&levels))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
