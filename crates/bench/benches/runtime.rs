//! Criterion benchmarks of the runtime-adjacent tooling: the DLX core
//! interpreter, the LCS Atom synthesis, and the waveform reconstruction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rispp::core::synthesis::{h264_data_paths, propose_atoms};
use rispp::h264::si_library::{atom_set, build_library};
use rispp::prelude::*;
use rispp::sim::cpu::{Cpu, Instr};
use rispp::sim::scenario::{fig6_engine, h264_fabric};
use rispp::sim::waveform::render_waveform;

fn fib_program(n: i64) -> Vec<Instr> {
    vec![
        Instr::Addi {
            rd: 2,
            rs: 0,
            imm: 0,
        },
        Instr::Addi {
            rd: 3,
            rs: 0,
            imm: 1,
        },
        Instr::Addi {
            rd: 4,
            rs: 0,
            imm: n,
        },
        Instr::Beq {
            rs: 4,
            rt: 0,
            target: 9,
        },
        Instr::Add {
            rd: 5,
            rs: 2,
            rt: 3,
        },
        Instr::Add {
            rd: 2,
            rs: 3,
            rt: 0,
        },
        Instr::Add {
            rd: 3,
            rs: 5,
            rt: 0,
        },
        Instr::Addi {
            rd: 4,
            rs: 4,
            imm: -1,
        },
        Instr::Jmp { target: 3 },
        Instr::Halt,
    ]
}

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");

    group.bench_function("cpu/fib_1000", |b| {
        let program = fib_program(1_000);
        b.iter(|| {
            let (lib, _) = build_library();
            let mut mgr = RisppManager::builder(lib, h264_fabric(0)).build();
            let mut cpu = Cpu::new(0);
            cpu.run(black_box(&program), &mut mgr, 0, 100_000)
        })
    });

    group.bench_function("synthesis/h264_paths", |b| {
        let paths = h264_data_paths();
        b.iter(|| propose_atoms(black_box(&paths), 3))
    });

    group.bench_function("waveform/fig6", |b| {
        let (mut engine, _) = fig6_engine();
        let end = engine.run(100_000);
        let trace = engine.timeline().clone();
        let atoms = atom_set();
        b.iter(|| render_waveform(black_box(&trace), &atoms, 6, end, 96))
    });

    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
