//! Criterion benchmarks of the end-to-end paths: the Fig. 7 macroblock
//! encoder, the run-time manager's forecast → rotate → execute loop, and
//! the full Fig. 6 scenario.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rispp::h264::block::Plane;
use rispp::h264::encoder::{encode_frame, encode_macroblock, EncoderConfig};
use rispp::h264::si_library::build_library;
use rispp::h264::video::SyntheticVideo;
use rispp::prelude::*;
use rispp::sim::scenario::{h264_fabric, run_fig6};

fn bench_encoder(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoder");
    group.sample_size(20);

    let mut video = SyntheticVideo::new(64, 48, 7);
    let f0 = video.next_frame();
    let f1 = video.next_frame();
    let config = EncoderConfig::default();

    group.bench_function("encode_macroblock", |b| {
        let mut recon = Plane::filled(64, 48, 128);
        b.iter(|| encode_macroblock(black_box(&f1), black_box(&f0), &mut recon, 1, 1, &config))
    });
    group.bench_function("encode_frame/64x48", |b| {
        b.iter(|| encode_frame(black_box(&f1), black_box(&f0), &config))
    });

    group.bench_function("manager/forecast_rotate_execute", |b| {
        b.iter(|| {
            let (lib, sis) = build_library();
            let mut mgr = RisppManager::builder(lib, h264_fabric(6)).build();
            mgr.forecast(0, ForecastValue::new(sis.satd_4x4, 1.0, 400_000.0, 300.0));
            if let Some(done) = mgr.all_rotations_done_at() {
                mgr.advance_to(done).unwrap();
            }
            let mut total = 0u64;
            for _ in 0..256 {
                total += mgr.execute_si(0, sis.satd_4x4).cycles;
            }
            total
        })
    });

    group.bench_function("decode_frame/64x48", |b| {
        use rispp::h264::decoder::decode_frame;
        let enc = encode_frame(&f1, &f0, &config);
        b.iter(|| decode_frame(black_box(&enc.stream), black_box(&f0), &config).unwrap())
    });

    group.bench_function("scenario/fig6", |b| b.iter(run_fig6));
    group.finish();
}

criterion_group!(benches, bench_encoder);
criterion_main!(benches);
