//! Criterion benchmarks of the Molecule lattice operations — the inner
//! loop of every run-time selection decision.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rispp::prelude::Molecule;

fn molecules(n: usize, width: usize) -> Vec<Molecule> {
    (0..n)
        .map(|i| Molecule::from_counts((0..width).map(|j| ((i * 7 + j * 13) % 5) as u32)))
        .collect()
}

fn bench_molecule_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("molecule");
    for width in [4usize, 16, 64] {
        let ms = molecules(64, width);
        group.bench_function(format!("union/w{width}"), |b| {
            b.iter(|| {
                let mut acc = Molecule::zero(width);
                for m in &ms {
                    acc = acc.try_union(black_box(m)).unwrap();
                }
                acc
            })
        });
        group.bench_function(format!("supremum/w{width}"), |b| {
            b.iter(|| Molecule::supremum(width, black_box(&ms)).unwrap())
        });
        group.bench_function(format!("additional_atoms/w{width}"), |b| {
            let have = &ms[0];
            b.iter(|| {
                ms.iter()
                    .map(|g| have.additional_atoms(black_box(g)).unwrap().determinant())
                    .sum::<u32>()
            })
        });
        group.bench_function(format!("le/w{width}"), |b| {
            b.iter(|| {
                ms.iter()
                    .zip(ms.iter().rev())
                    .filter(|(a, z)| a.le(black_box(z)))
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_molecule_ops);
criterion_main!(benches);
