//! Criterion benchmarks of the selection algorithms: the run-time
//! Molecule selection (runs on every forecast event) and the Fig. 5
//! trimming loop (compile-time, but also invoked online).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rispp::core::selection::{select_molecules, trim_forecast_candidates};
use rispp::h264::si_library::build_library;
use rispp::prelude::Molecule;

fn bench_selection(c: &mut Criterion) {
    let (lib, sis) = build_library();
    let demands = [
        (sis.satd_4x4, 256.0),
        (sis.dct_4x4, 24.0),
        (sis.ht_4x4, 1.0),
        (sis.ht_2x2, 2.0),
        (sis.sad_4x4, 48.0),
    ];
    let mut group = c.benchmark_group("selection");
    for capacity in [4u32, 6, 12, 18] {
        group.bench_function(format!("select_molecules/cap{capacity}"), |b| {
            b.iter(|| select_molecules(black_box(&lib), black_box(&demands), capacity))
        });
    }

    // Trimming over the SI representatives (the per-BB compile-time pass).
    let reps: Vec<Molecule> = lib.iter().map(|(_, si)| si.representative()).collect();
    let speedups: Vec<f64> = lib
        .iter()
        .map(|(_, si)| si.sw_cycles() as f64 / si.fastest().cycles as f64)
        .collect();
    for budget in [2u32, 4, 8] {
        group.bench_function(format!("trim_candidates/budget{budget}"), |b| {
            b.iter(|| {
                trim_forecast_candidates(black_box(&reps), black_box(&speedups), budget).unwrap()
            })
        });
    }

    group.bench_function("fdf_eval", |b| {
        use rispp::prelude::FdfParams;
        let fdf = FdfParams::new(85_000.0, 544.0, 24.0, 50_000.0, 1.0);
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=64 {
                acc += fdf.eval(black_box(0.7), black_box(1_000.0 * i as f64));
            }
            acc
        })
    });

    group.bench_function("compatibility_matrix", |b| {
        use rispp::core::compat::compatibility_matrix;
        b.iter(|| compatibility_matrix(black_box(&lib)))
    });
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
