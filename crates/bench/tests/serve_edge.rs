//! Edge-case and acceptance tests for the fleet serve layer: HTTP
//! robustness (partial and garbage request lines, concurrent scrapes
//! while the tail thread is folding), per-shard gauge fidelity against
//! offline replays, live-vs-replay window determinism, and the
//! `--check` alert gate.

use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rispp::obs::window::{WindowConfig, WindowSink};
use rispp::obs::{bin, MetricsSink};
use rispp::prelude::{Scenario, ScenarioFactory, SinkSpec};
use rispp_bench::serve::{
    poll_fleet, run_check, serve, FleetState, Follower, LiveState, ServeOptions,
};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("rispp_serve_edge_{}_{tag}_{n}", std::process::id()))
}

/// Deterministic per-shard binary logs from the stress scenario — the
/// same construction `fleet_bench --bin-out 'shard-{shard}.bin'` uses.
fn stress_logs(shards: u32, seed: u64) -> Vec<Vec<u8>> {
    let scenario = Scenario::parse("stress", true).expect("stress parses");
    let factory = ScenarioFactory::new(scenario, seed).with_sink(SinkSpec::Binary);
    (0..shards)
        .map(|k| {
            factory
                .spec_for(k)
                .run()
                .binary
                .expect("binary capture was requested")
        })
        .collect()
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    BufReader::new(conn).read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("has header block");
    (head.to_string(), body.to_string())
}

#[test]
fn partial_request_lines_assemble_across_tcp_segments() {
    let state = Arc::new(Mutex::new(FleetState::new(
        vec![scratch("partial")],
        0,
        WindowConfig::default(),
        None,
    )));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || serve(&listener, &state, Some(1)))
    };

    // The request line arrives in three separate writes with pauses —
    // three TCP segments the byte-wise reader must reassemble.
    let mut conn = TcpStream::connect(addr).unwrap();
    for chunk in ["GET /sta", "tus HTT", "P/1.1\r\nHost: x\r\n\r\n"] {
        conn.write_all(chunk.as_bytes()).unwrap();
        conn.flush().unwrap();
        std::thread::sleep(Duration::from_millis(30));
    }
    let mut response = String::new();
    BufReader::new(conn).read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("\"records\":0"));
    server.join().unwrap().unwrap();
}

#[test]
fn garbage_request_lines_get_400_not_a_hang() {
    let state = Arc::new(Mutex::new(FleetState::new(
        vec![scratch("garbage")],
        0,
        WindowConfig::default(),
        None,
    )));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || serve(&listener, &state, Some(2)))
    };
    let send_raw = |raw: &[u8]| {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(raw).unwrap();
        // Half-close so the server sees EOF even when the request has
        // no terminating newline.
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        let _ = BufReader::new(conn).read_to_string(&mut response);
        response
    };
    // Not UTF-8.
    assert!(send_raw(b"GET /\xff\xfe HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 400"));
    // A request line with no newline at all: the peer closes, the
    // server answers with what arrived instead of hanging.
    assert!(send_raw(b"GET / HTTP/1.1").starts_with("HTTP/1.1 200"));
    server.join().unwrap().unwrap();
}

#[test]
fn per_shard_gauges_equal_an_offline_replay_of_each_shards_log() {
    let logs = stress_logs(3, 41);
    let paths: Vec<PathBuf> = logs
        .iter()
        .enumerate()
        .map(|(k, bytes)| {
            let path = scratch(&format!("gauge{k}"));
            std::fs::write(&path, bytes).unwrap();
            path
        })
        .collect();
    let state = Mutex::new(FleetState::new(
        paths.clone(),
        0,
        WindowConfig::default(),
        None,
    ));
    let mut followers: Vec<Follower> = paths.iter().map(Follower::new).collect();
    poll_fleet(&mut followers, &state);
    let exposition = state.lock().unwrap().render_metrics();

    let mut aggregate_executions = 0.0;
    for (k, bytes) in logs.iter().enumerate() {
        // Offline truth for this shard: a fresh replay of its log.
        let mut offline = MetricsSink::new();
        bin::replay(bytes, &mut offline).unwrap();
        offline.finish();
        for (name, _, _, value) in offline.summary().prometheus_series() {
            let line = format!("{name}{{shard=\"{k}\"}} {value}");
            assert!(exposition.contains(&line), "missing per-shard line: {line}");
            if name == "rispp_executions_total" {
                aggregate_executions += value;
            }
        }
    }
    // The unlabeled aggregate counter is the sum over shards.
    assert!(exposition.contains(&format!("rispp_executions_total {aggregate_executions}")));
    // Family contiguity: HELP appears exactly once per family even with
    // one aggregate + three labeled samples.
    assert_eq!(
        exposition.matches("# HELP rispp_executions_total ").count(),
        1
    );
    assert!(exposition.contains("rispp_shards 3"));
    for path in &paths {
        std::fs::remove_file(path).unwrap();
    }
}

#[test]
fn windowed_metrics_are_identical_between_live_follow_and_replay() {
    let bytes = stress_logs(1, 42).remove(0);
    let path = scratch("window");
    let config = WindowConfig::new(5_000, 8);

    // Live: the log grows in uneven chunks, a follower tails it.
    let mut live = LiveState::new(0, config);
    let mut follower = Follower::new(&path);
    let cuts = [13, bytes.len() / 4, bytes.len() / 2, bytes.len()];
    for cut in cuts {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        rispp_bench::serve::poll_shard(&mut follower, &mut live).unwrap();
    }

    // Replay: the finished log in one pass.
    let mut replayed = WindowSink::new(config);
    bin::replay(&bytes, &mut replayed).unwrap();

    assert_eq!(live.window.snapshot(), replayed.snapshot());
    assert_eq!(
        live.window.snapshot().render_prometheus("", true),
        replayed.snapshot().render_prometheus("", true),
        "window exposition must be byte-identical live vs replay"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn concurrent_scrapes_during_polling_stay_well_formed() {
    let logs = stress_logs(2, 43);
    let paths: Vec<PathBuf> = logs
        .iter()
        .enumerate()
        .map(|(k, bytes)| {
            let path = scratch(&format!("conc{k}"));
            std::fs::write(&path, bytes).unwrap();
            path
        })
        .collect();
    let state = Arc::new(Mutex::new(FleetState::new(
        paths.clone(),
        0,
        WindowConfig::default(),
        None,
    )));
    let stop = Arc::new(AtomicBool::new(false));
    let tail = {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        let followers: Vec<Follower> = paths.iter().map(Follower::new).collect();
        std::thread::spawn(move || {
            rispp_bench::serve::tail_loop(followers, &state, Duration::from_millis(1), &stop)
        })
    };
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    const SCRAPES: usize = 12;
    let server = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || serve(&listener, &state, Some(SCRAPES as u64)))
    };

    // Several clients scrape every endpoint while the tail thread is
    // polling; every response must be complete and self-consistent.
    let clients: Vec<_> = (0..SCRAPES)
        .map(|i| {
            std::thread::spawn(move || {
                let path = ["/metrics", "/status", "/shards", "/alerts"][i % 4];
                http_get(addr, path)
            })
        })
        .collect();
    for (i, client) in clients.into_iter().enumerate() {
        let (head, body) = client.join().unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK"), "scrape {i}: {head}");
        // Content-Length framing means a complete body; spot-check the
        // shape each endpoint promises.
        match i % 4 {
            0 => {
                assert_eq!(body.matches("# HELP rispp_shards ").count(), 1);
                assert!(body.contains("rispp_shards 2"));
            }
            1 => assert!(body.contains("\"shards\":2")),
            2 => assert!(body.starts_with("[{\"shard\":0,")),
            _ => assert!(body.contains("\"any_firing\":false")),
        }
    }
    server.join().unwrap().unwrap();
    stop.store(true, Ordering::Relaxed);
    tail.join().unwrap();
    for path in &paths {
        std::fs::remove_file(path).unwrap();
    }
}

#[test]
fn alert_check_gate_fires_on_a_violation_and_passes_clean() {
    let bytes = stress_logs(1, 44).remove(0);
    let log = scratch("gate");
    std::fs::write(&log, &bytes).unwrap();

    let firing_rules = scratch("rules_firing");
    std::fs::write(
        &firing_rules,
        "[[rule]]\nname = \"too-much-sw\"\nmetric = \"sw_fallback_rate\"\n\
         op = \">\"\nthreshold = 0.0\n",
    )
    .unwrap();
    let clean_rules = scratch("rules_clean");
    std::fs::write(
        &clean_rules,
        "[[rule]]\nname = \"impossible\"\nmetric = \"hw_fraction\"\n\
         op = \">\"\nthreshold = 2.0\n",
    )
    .unwrap();

    let mut opts = ServeOptions {
        inputs: vec![log.clone()],
        rules: Some(firing_rules.clone()),
        ..ServeOptions::default()
    };
    assert!(run_check(&opts).unwrap(), "seeded violation must fire");
    opts.rules = Some(clean_rules.clone());
    assert!(!run_check(&opts).unwrap(), "clean rules must pass");
    opts.rules = None;
    assert!(
        run_check(&opts).is_err(),
        "--check without rules is an error"
    );

    // A gate must refuse a log it cannot decode rather than pass it.
    std::fs::write(&log, b"garbage that decodes as neither format\n").unwrap();
    opts.rules = Some(clean_rules.clone());
    assert!(run_check(&opts).is_err());

    for path in [&log, &firing_rules, &clean_rules] {
        std::fs::remove_file(path).unwrap();
    }
}
