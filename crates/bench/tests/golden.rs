//! Golden-file regression test for the offline report renderer: the
//! committed JSONL fixture (a faulted Fig. 6 run, seed 0 of the chaos
//! soak) must render to byte-identical markdown.
//!
//! The JSONL fixture is committed once and must **never be regenerated**:
//! live runs embed host-measured `reselect` durations (wall-clock
//! nanoseconds), so re-exporting would churn the fixture on every machine
//! without changing its meaning. Only the *markdown* is re-blessed, after
//! a deliberate renderer or analyzer change:
//!
//! ```text
//! RISPP_BLESS=1 cargo test -p rispp-bench --test golden
//! ```

use rispp_bench::report::{analyze, render_markdown, ReportConfig};

const FIXTURE: &str = include_str!("golden/fig6_faulted.jsonl");
const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fig6_faulted.md");

#[test]
fn report_markdown_matches_golden() {
    let probe = analyze(FIXTURE, &ReportConfig::h264(0)).expect("fixture analyzes");
    let config = ReportConfig::infer(&probe.timeline);
    let analysis = analyze(FIXTURE, &config).expect("fixture analyzes");
    let rendered = render_markdown(&analysis, &config);

    if std::env::var_os("RISPP_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("bless golden markdown");
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden markdown missing — create it with RISPP_BLESS=1");
    assert_eq!(
        rendered, golden,
        "rendered report drifted from {GOLDEN_PATH}; if the change is \
         intentional, re-bless with RISPP_BLESS=1"
    );
}

#[test]
fn fixture_exercises_the_fault_path() {
    // The fixture must keep covering the fault-event vocabulary; a
    // "clean" fixture would silently stop regression-testing how the
    // report presents failures and stalls.
    assert!(FIXTURE.contains("\"ev\":\"rotation_failed\""));
    assert!(FIXTURE.contains("\"ev\":\"port_stalled\""));
}
