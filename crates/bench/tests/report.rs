//! Acceptance tests for the offline report analyzer: the derived views
//! reconstructed from a JSONL export must agree with the live run, and
//! the metrics gauges must agree with the fabric's own catalog.

use std::cell::RefCell;
use std::rc::Rc;

use rispp::core::atom::AtomKind;
use rispp::fabric::catalog::{table1_profiles, AtomCatalog};
use rispp::fabric::ContainerId;
use rispp::obs::{Event, EventSink, MetricsSink, SinkHandle, Timeline};
use rispp::prelude::*;
use rispp::sim::scenario::fig6_engine;
use rispp_bench::report::{analyze, render_markdown, ReportConfig};

/// Runs the Fig. 6 scenario with a JSONL export attached and returns the
/// export text plus the live timeline.
fn fig6_with_export() -> (String, Timeline) {
    let (mut engine, _) = fig6_engine();
    let export = Rc::new(RefCell::new(JsonlSink::new(Vec::new())));
    engine.attach_sink(SinkHandle::shared(export.clone()));
    engine.run(100_000);
    let text = String::from_utf8(export.borrow().writer().clone()).expect("JSONL is UTF-8");
    let timeline = engine.timeline().clone();
    (text, timeline)
}

#[test]
fn replayed_spans_match_the_live_timeline() {
    let (text, live) = fig6_with_export();
    let config = ReportConfig::h264(6);
    let analysis = analyze(&text, &config).expect("export replays");

    let spans = analysis.spans.spans();
    assert!(!spans.is_empty(), "fig6 must produce forecast spans");
    let mut hw_spans = 0;
    for span in spans {
        // The span's anchor must be a real forecast of the live run …
        assert!(
            live.entries().iter().any(|r| r.at == span.forecast_at
                && matches!(
                    r.event,
                    Event::ForecastUpdated { task, si, .. }
                        if task == span.task && si == span.si
                )),
            "span anchor {}@{} not in the live timeline",
            span.si,
            span.forecast_at,
        );
        // … and its time-to-hardware must be exactly what the live
        // timeline computes for the same (task, si, forecast) triple.
        if let Some(first_hw) = span.first_hw_execution {
            hw_spans += 1;
            let live_first_hw = live
                .first_hw_execution_after(span.task, span.si, span.forecast_at)
                .expect("live timeline has the same HW execution");
            assert_eq!(
                first_hw, live_first_hw,
                "span {} of task {} disagrees with the live timeline",
                span.si, span.task,
            );
            assert_eq!(
                span.time_to_hardware(),
                Some(live_first_hw - span.forecast_at)
            );
        }
    }
    assert!(hw_spans > 0, "fig6 reaches hardware in at least one span");
}

#[test]
fn report_rotations_match_the_live_timeline() {
    let (text, live) = fig6_with_export();
    let config = ReportConfig::h264(6);
    let analysis = analyze(&text, &config).expect("export replays");
    let (_, completed) = analysis.metrics.rotations();
    assert_eq!(completed as usize, live.rotations_completed());
    let md = render_markdown(&analysis, &config);
    assert!(md.contains(&format!("| rotations completed | {completed} |")));
}

#[test]
fn metrics_occupancy_matches_catalog_utilization() {
    // Load each Table 1 Atom into its own container on a real fabric with
    // the MetricsSink attached as the fabric's event sink.
    let atoms = AtomSet::from_names(["Transform", "SATD", "Pack", "QuadSub"]);
    let catalog = AtomCatalog::new(table1_profiles().to_vec());
    let weights: Vec<f64> = catalog.iter().map(|(_, p)| p.utilization()).collect();
    let mut fabric = Fabric::new(atoms, catalog.clone(), 4);
    let metrics = Rc::new(RefCell::new(
        MetricsSink::new()
            .with_containers(4)
            .with_utilization_weights(weights),
    ));
    fabric.set_sink(SinkHandle::shared(metrics.clone()));
    for i in 0..4 {
        fabric
            .request_rotation(ContainerId(i), AtomKind(i))
            .unwrap();
    }
    let done = fabric.all_rotations_done_at().unwrap();
    fabric.advance_to(done).unwrap();

    // The instantaneous gauge equals the catalog's mean utilization for
    // the Table 1 configuration exactly (~42.2 % across the four Atoms).
    let expected: f64 = (0..4)
        .map(|i| catalog.profile(AtomKind(i)).utilization())
        .sum::<f64>()
        / 4.0;
    let m = metrics.borrow();
    assert!(
        (m.loaded_logic_utilization() - expected).abs() < 1e-12,
        "instantaneous: {} vs catalog {expected}",
        m.loaded_logic_utilization(),
    );
    drop(m);

    // Once the load phase is a vanishing fraction of the run, the
    // time-integrated gauge converges to the same value.
    let long = done * 10_000;
    fabric.advance_to(long).unwrap();
    let mut m = metrics.borrow_mut();
    m.advance_to(long);
    assert!(
        (m.logic_utilization() - expected).abs() < 1e-3,
        "integrated: {} vs catalog {expected}",
        m.logic_utilization(),
    );
    // Unweighted occupancy likewise converges to fully-loaded.
    assert!((m.fabric_occupancy() - 1.0).abs() < 1e-3);
}

#[test]
fn metrics_integral_is_exact_over_closed_intervals() {
    // Pure event arithmetic, no fabric: a container loaded with SATD for
    // exactly half the observed window integrates to utilization/2.
    let catalog = AtomCatalog::new(table1_profiles().to_vec());
    let weights: Vec<f64> = catalog.iter().map(|(_, p)| p.utilization()).collect();
    let satd = AtomKind(1);
    let mut m = MetricsSink::new()
        .with_containers(1)
        .with_utilization_weights(weights);
    m.emit(
        0,
        &Event::ContainerLoaded {
            container: 0,
            kind: satd,
        },
    );
    m.emit(
        5_000,
        &Event::ContainerEvicted {
            container: 0,
            kind: satd,
        },
    );
    m.advance_to(10_000);
    let expected = catalog.profile(satd).utilization() / 2.0;
    assert!((m.logic_utilization() - expected).abs() < 1e-12);
    assert!((m.fabric_occupancy() - 0.5).abs() < 1e-12);
}
