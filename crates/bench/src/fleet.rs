//! The fleet BENCH layer behind the `fleet_bench` binary: turns a
//! [`FleetOutcome`] into the versioned `BENCH_fleet_<scenario>.json`
//! document (same hand-rolled JSON family as the per-workload BENCH
//! files) and parses it back for comparisons.

use rispp::obs::MetricsSummary;
use rispp::prelude::FleetOutcome;

use crate::harness::{json_escape, json_f64, JsonValue, BENCH_SCHEMA_VERSION};

/// File name a fleet result is written to (`BENCH_fleet_stress.json` …).
#[must_use]
pub fn fleet_file_name(scenario: &str) -> String {
    format!("BENCH_fleet_{scenario}.json")
}

/// One shard's row in the fleet BENCH document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRow {
    /// Shard index within the fleet.
    pub shard: u32,
    /// The shard's derived seed (for standalone replay).
    pub seed: u64,
    /// Events the shard emitted.
    pub events: u64,
    /// Simulated cycles the shard covered.
    pub sim_cycles: u64,
}

/// A fleet run's measured result — the content of a
/// `BENCH_fleet_<scenario>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetBenchResult {
    /// Scenario id (`fig6`, `stress`, `live_codec`).
    pub scenario: String,
    /// `quick` or `full` workload sizing.
    pub mode: String,
    /// Shards run.
    pub shards: u32,
    /// OS worker threads actually used.
    pub threads: usize,
    /// The fleet seed shard seeds derive from.
    pub fleet_seed: u64,
    /// Host wall time of the whole fan-out + join, in nanoseconds.
    pub wall_ns: u64,
    /// Total events across the fleet.
    pub events: u64,
    /// Total simulated cycles across the fleet.
    pub sim_cycles: u64,
    /// Host throughput: events per wall second, whole fleet.
    pub events_per_sec: f64,
    /// Host throughput per worker thread ("per core").
    pub events_per_sec_per_core: f64,
    /// Rotations completed across the fleet.
    pub rotations_completed: u64,
    /// Fleet-wide SI latency median, in simulated cycles (0 when no SI
    /// executed).
    pub latency_p50: u64,
    /// Fleet-wide SI latency 99th percentile, in simulated cycles.
    pub latency_p99: u64,
    /// Merged simulated-time gauges.
    pub metrics: MetricsSummary,
    /// Per-shard totals, in shard order.
    pub per_shard: Vec<ShardRow>,
}

impl FleetBenchResult {
    /// Distils a [`FleetOutcome`] into the BENCH document content.
    #[must_use]
    pub fn from_outcome(scenario: &str, mode: &str, fleet_seed: u64, out: &FleetOutcome) -> Self {
        let agg = &out.aggregate;
        let secs = out.wall_ns as f64 / 1e9;
        let events_per_sec = if secs > 0.0 {
            agg.events as f64 / secs
        } else {
            0.0
        };
        FleetBenchResult {
            scenario: scenario.to_string(),
            mode: mode.to_string(),
            shards: agg.shards,
            threads: out.threads,
            fleet_seed,
            wall_ns: out.wall_ns,
            events: agg.events,
            sim_cycles: agg.sim_cycles,
            events_per_sec,
            events_per_sec_per_core: events_per_sec / out.threads.max(1) as f64,
            rotations_completed: agg.rotations_completed(),
            latency_p50: agg.latency.p50().unwrap_or(0),
            latency_p99: agg.latency.p99().unwrap_or(0),
            metrics: agg.summary,
            per_shard: out
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| ShardRow {
                    shard: i as u32,
                    seed: s.seed,
                    events: s.events,
                    sim_cycles: s.sim_cycles,
                })
                .collect(),
        }
    }

    /// Renders the versioned fleet BENCH JSON document (pretty-printed,
    /// stable field order, trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"kind\": \"fleet\",\n  \"scenario\": \"{}\",\n  \"mode\": \"{}\",\n",
            json_escape(&self.scenario),
            json_escape(&self.mode),
        ));
        // Seeds are full-range 64-bit values; the JSON reader stores
        // numbers as f64 (53-bit mantissa), so seeds travel as strings.
        out.push_str(&format!(
            "  \"shards\": {},\n  \"threads\": {},\n  \"fleet_seed\": \"{}\",\n  \"wall_ns\": {},\n",
            self.shards, self.threads, self.fleet_seed, self.wall_ns
        ));
        out.push_str(&format!(
            "  \"events\": {},\n  \"sim_cycles\": {},\n  \"events_per_sec\": {},\n  \"events_per_sec_per_core\": {},\n",
            self.events,
            self.sim_cycles,
            json_f64(self.events_per_sec),
            json_f64(self.events_per_sec_per_core)
        ));
        out.push_str(&format!(
            "  \"rotations_completed\": {},\n  \"latency_p50\": {},\n  \"latency_p99\": {},\n",
            self.rotations_completed, self.latency_p50, self.latency_p99
        ));
        let m = &self.metrics;
        out.push_str("  \"metrics\": {\n");
        out.push_str(&format!(
            "    \"elapsed_cycles\": {},\n    \"fabric_occupancy\": {},\n    \"logic_utilization\": {},\n    \"bus_busy_fraction\": {},\n",
            m.elapsed_cycles,
            json_f64(m.fabric_occupancy),
            json_f64(m.logic_utilization),
            json_f64(m.bus_busy_fraction)
        ));
        out.push_str(&format!(
            "    \"rotations_completed\": {},\n    \"forecast_windows\": {},\n    \"forecast_precision\": {},\n    \"forecast_recall\": {},\n",
            m.rotations_completed,
            m.forecast_windows,
            json_f64(m.forecast_precision),
            json_f64(m.forecast_recall)
        ));
        // Omitted (not zero) when no shard monitored any FC outcome.
        if let Some(rate) = m.fc_hit_rate {
            out.push_str(&format!("    \"fc_hit_rate\": {},\n", json_f64(rate)));
        }
        out.push_str(&format!(
            "    \"executions_total\": {},\n    \"hw_fraction\": {},\n    \"cycles_saved_vs_sw\": {},\n    \"dropped_events\": {},\n",
            m.executions_total,
            json_f64(m.hw_fraction),
            m.cycles_saved_vs_sw,
            m.dropped_events
        ));
        out.push_str(&format!(
            "    \"selection_cache_hits\": {},\n    \"selection_cache_misses\": {},\n    \"selection_cache_invalidations\": {}\n",
            m.selection_cache_hits, m.selection_cache_misses, m.selection_cache_invalidations
        ));
        out.push_str("  },\n");
        out.push_str("  \"per_shard\": [\n");
        for (i, s) in self.per_shard.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"shard\": {}, \"seed\": \"{}\", \"events\": {}, \"sim_cycles\": {}}}{}\n",
                s.shard,
                s.seed,
                s.events,
                s.sim_cycles,
                if i + 1 < self.per_shard.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Parses a fleet BENCH JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem: malformed JSON, a
    /// `schema_version` newer than this build, or a missing field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = JsonValue::parse(text)?;
        let version = v
            .get("schema_version")
            .and_then(JsonValue::as_u64)
            .ok_or("missing schema_version")?;
        if version > BENCH_SCHEMA_VERSION {
            return Err(format!(
                "BENCH schema {version} is newer than this build ({BENCH_SCHEMA_VERSION})"
            ));
        }
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing {key}"))
        };
        let u64_field = |obj: &JsonValue, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing {key}"))
        };
        let f64_field = |obj: &JsonValue, key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing {key}"))
        };
        // Seeds are written as strings (see `to_json`).
        let seed_field = |obj: &JsonValue, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(JsonValue::as_str)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("missing {key}"))
        };
        let m = v.get("metrics").ok_or("missing metrics")?;
        let metrics = MetricsSummary {
            elapsed_cycles: u64_field(m, "elapsed_cycles")?,
            fabric_occupancy: f64_field(m, "fabric_occupancy")?,
            logic_utilization: f64_field(m, "logic_utilization")?,
            bus_busy_fraction: f64_field(m, "bus_busy_fraction")?,
            rotations_completed: u64_field(m, "rotations_completed")?,
            forecast_windows: u64_field(m, "forecast_windows")?,
            forecast_precision: f64_field(m, "forecast_precision")?,
            forecast_recall: f64_field(m, "forecast_recall")?,
            // Absent in FC-less runs and pre-cache documents alike.
            fc_hit_rate: m.get("fc_hit_rate").and_then(JsonValue::as_f64),
            executions_total: u64_field(m, "executions_total")?,
            hw_fraction: f64_field(m, "hw_fraction")?,
            cycles_saved_vs_sw: u64_field(m, "cycles_saved_vs_sw")?,
            // Absent in pre-PR-7 documents; read tolerantly.
            dropped_events: m
                .get("dropped_events")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            selection_cache_hits: m
                .get("selection_cache_hits")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            selection_cache_misses: m
                .get("selection_cache_misses")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            selection_cache_invalidations: m
                .get("selection_cache_invalidations")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
        };
        let per_shard = v
            .get("per_shard")
            .and_then(JsonValue::as_arr)
            .ok_or("missing per_shard")?
            .iter()
            .map(|row| {
                Ok(ShardRow {
                    shard: u64_field(row, "shard")? as u32,
                    seed: seed_field(row, "seed")?,
                    events: u64_field(row, "events")?,
                    sim_cycles: u64_field(row, "sim_cycles")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(FleetBenchResult {
            scenario: str_field("scenario")?,
            mode: str_field("mode")?,
            shards: u64_field(&v, "shards")? as u32,
            threads: u64_field(&v, "threads")? as usize,
            fleet_seed: seed_field(&v, "fleet_seed")?,
            wall_ns: u64_field(&v, "wall_ns")?,
            events: u64_field(&v, "events")?,
            sim_cycles: u64_field(&v, "sim_cycles")?,
            events_per_sec: f64_field(&v, "events_per_sec")?,
            events_per_sec_per_core: f64_field(&v, "events_per_sec_per_core")?,
            rotations_completed: u64_field(&v, "rotations_completed")?,
            latency_p50: u64_field(&v, "latency_p50")?,
            latency_p99: u64_field(&v, "latency_p99")?,
            metrics,
            per_shard,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rispp::prelude::{FleetConfig, Scenario, ScenarioFactory};
    use rispp::sim::run_fleet;

    #[test]
    fn fleet_bench_json_round_trips() {
        let factory = ScenarioFactory::new(
            Scenario::Stress {
                platforms: 1,
                steps: 50,
            },
            11,
        );
        let out = run_fleet(&factory, &FleetConfig::new(3));
        let result = FleetBenchResult::from_outcome("stress", "quick", 11, &out);
        assert_eq!(result.shards, 3);
        assert_eq!(result.per_shard.len(), 3);
        assert!(result.events > 0);
        let parsed = FleetBenchResult::from_json(&result.to_json()).expect("round trip");
        assert_eq!(parsed, result);
    }

    #[test]
    fn fleet_bench_json_rejects_future_schema() {
        let text = "{\"schema_version\": 999}";
        assert!(FleetBenchResult::from_json(text)
            .unwrap_err()
            .contains("newer"));
    }
}
