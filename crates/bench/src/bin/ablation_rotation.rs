//! Ablation — "Rotation in Advance" scheduling order: staging the
//! upgrade path (smallest Molecule first) versus loading the final target
//! Molecule's Atoms in plain kind order. Measures time-to-first-hardware
//! execution and total cycles for the SATD_4x4 hot spot.

use rispp::h264::si_library::build_library;
use rispp::prelude::*;
use rispp::rt::RotationStrategy;
use rispp::sim::h264_fabric;
use rispp_bench::print_table;

struct Run {
    first_hw_at: u64,
    first_hw_cycles: u64,
    total_cycles: u64,
    sw_executions: u64,
}

fn run(strategy: RotationStrategy, containers: usize) -> Run {
    let (lib, sis) = build_library();
    let mut mgr = RisppManager::builder(lib, h264_fabric(containers))
        .rotation_strategy(strategy)
        .build();
    mgr.forecast(0, ForecastValue::new(sis.satd_4x4, 1.0, 400_000.0, 400.0));
    let mut first_hw_at = 0;
    let mut first_hw_cycles = 0;
    let mut total = 0u64;
    let step = 2_000u64;
    for i in 0..400u64 {
        mgr.advance_to(i * step).expect("monotone");
        let rec = mgr.execute_si(0, sis.satd_4x4);
        total += rec.cycles;
        if rec.hardware && first_hw_at == 0 {
            first_hw_at = i * step;
            first_hw_cycles = rec.cycles;
        }
    }
    Run {
        first_hw_at,
        first_hw_cycles,
        total_cycles: total,
        sw_executions: mgr.stats(sis.satd_4x4).sw_executions,
    }
}

fn main() {
    println!("== Ablation: rotation scheduling order (SATD_4x4, 400 executions) ==\n");
    let mut rows = Vec::new();
    for containers in [4usize, 6, 8] {
        for (name, strategy) in [
            ("upgrade-path", RotationStrategy::UpgradePath),
            ("target-only", RotationStrategy::TargetOnly),
        ] {
            let r = run(strategy, containers);
            rows.push(vec![
                format!("{containers}"),
                name.to_string(),
                format!("{}", r.first_hw_at),
                format!("{}", r.first_hw_cycles),
                format!("{}", r.sw_executions),
                format!("{}", r.total_cycles),
            ]);
        }
    }
    print_table(
        &[
            "ACs",
            "strategy",
            "first HW exec at [cycle]",
            "its latency",
            "SW executions",
            "total SI cycles",
        ],
        &rows,
    );
    println!(
        "\nupgrade-path staging (the paper's \"Rotation in Advance\") reaches the\n\
         first hardware execution as soon as the minimal Molecule is loaded; the\n\
         target-only order waits for whichever Atom kind happens to come last,\n\
         burning more 544-cycle software executions in the meantime."
    );
}
