//! Sweep — rate/distortion behaviour of the H.264 substrate: PSNR and
//! bitstream size over the quantisation parameter, with every stream
//! verified through the decoder (bit-exact reconstruction match).

use rispp::h264::decoder::decode_frame;
use rispp::h264::encoder::{encode_frame, EncoderConfig};
use rispp::h264::video::SyntheticVideo;
use rispp_bench::print_table;

fn main() {
    println!("== Sweep: PSNR / bitrate vs QP (decoder-verified) ==\n");
    let mut video = SyntheticVideo::new(64, 48, 31);
    let reference = video.next_frame();
    let current = video.next_frame();

    let mut rows = Vec::new();
    let mut prev_bits = usize::MAX;
    for qp in [4u8, 12, 20, 28, 36, 44, 51] {
        let config = EncoderConfig {
            qp,
            ..Default::default()
        };
        let enc = encode_frame(&current, &reference, &config);
        let dec = decode_frame(&enc.stream, &reference, &config).expect("stream decodes");
        let exact = dec.luma == enc.recon;
        assert!(exact, "decoder mismatch at qp {qp}");
        assert!(enc.bits <= prev_bits, "bitrate not monotone at qp {qp}");
        prev_bits = enc.bits;
        rows.push(vec![
            format!("{qp}"),
            format!("{:.2}", enc.luma_psnr),
            format!("{}", enc.bits),
            format!("{:.3}", enc.bits as f64 / (64.0 * 48.0)),
            if exact {
                "exact".into()
            } else {
                "MISMATCH".into()
            },
        ]);
    }
    print_table(
        &[
            "QP",
            "luma PSNR [dB]",
            "frame bits",
            "bits/pixel",
            "decoder",
        ],
        &rows,
    );
    println!(
        "\nevery stream is decoded back and the decoder's reconstruction is\n\
         bit-exact with the encoder's — the functional proof that all\n\
         Molecule levels of the transform SIs compute the same results."
    );
}
