//! Stress harness: random platforms (Atom sets, SI libraries, forecast
//! streams) hammered through the full manager/fabric stack, asserting the
//! RISPP invariants on every step. A seeded fuzzing pass that complements
//! the property tests with much longer runs. Each seed runs as one
//! [`ShardSpec`] with per-step checks enabled, so the event stream is
//! cross-checked against the harness tallies inside the spec runner.

use rispp::prelude::*;

fn main() {
    let mut jsonl_out: Option<String> = None;
    let mut bin_out: Option<String> = None;
    let mut report_out: Option<String> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--jsonl-out" => jsonl_out = iter.next(),
            "--bin-out" => bin_out = iter.next(),
            "--report-out" => report_out = iter.next(),
            _ => {
                eprintln!("stress_random: unknown option {arg}");
                eprintln!(
                    "usage: stress_random [--jsonl-out PATH] [--bin-out PATH] \
                     [--report-out PATH]"
                );
                std::process::exit(1);
            }
        }
    }

    println!("== Stress: random platforms through the manager/fabric stack ==\n");
    // When a dump is requested, seed 0's event stream is exported — the
    // report then demonstrates the analyzer on a non-H.264 platform.
    let export_wanted = jsonl_out.is_some() || report_out.is_some();
    let mut totals = StressTotals::default();
    let mut export: Option<String> = None;
    let runs = 200u64;
    for seed in 0..runs {
        let sink = if seed == 0 && export_wanted {
            SinkSpec::Jsonl
        } else {
            SinkSpec::Metrics
        };
        let out = ShardSpec::new(
            Scenario::Stress {
                platforms: 1,
                steps: 400,
            },
            seed,
        )
        .with_sink(sink)
        .with_checks(true)
        .run();
        totals.merge(&out.stress.expect("stress outcome carries tallies"));
        if seed == 0 && export_wanted {
            export = out.jsonl;
        }
    }
    if let Some(path) = &bin_out {
        // Shard replay is deterministic: re-running seed 0 with binary
        // capture exports the same event stream the loop above ran.
        let out = ShardSpec::new(
            Scenario::Stress {
                platforms: 1,
                steps: 400,
            },
            0,
        )
        .with_sink(SinkSpec::Binary)
        .with_checks(true)
        .run();
        let bytes = out.binary.expect("binary capture was requested");
        std::fs::write(path, &bytes).expect("write binary export");
        println!(
            "seed 0 binary export written to {path} ({} bytes)",
            bytes.len()
        );
    }
    if let Some(text) = export {
        if let Some(path) = &jsonl_out {
            std::fs::write(path, &text).expect("write JSONL export");
            println!("seed 0 JSONL export written to {path}");
        }
        if let Some(path) = &report_out {
            use rispp_bench::report::{analyze, render_markdown, ReportConfig};
            let probe = analyze(&text, &ReportConfig::h264(0)).expect("export analyzes");
            let config = ReportConfig::infer(&probe.timeline);
            let analysis = analyze(&text, &config).expect("export analyzes");
            std::fs::write(path, render_markdown(&analysis, &config)).expect("write report");
            println!("seed 0 markdown report written to {path}");
        }
    }
    println!("{runs} random platforms x 400 actions, all invariants held:");
    println!("  forecasts issued   : {}", totals.forecasts);
    println!("  retractions        : {}", totals.retractions);
    println!("  SI executions      : {}", totals.executions);
    println!(
        "  in hardware        : {} ({:.1}%)",
        totals.hw_executions,
        100.0 * totals.hw_executions as f64 / totals.executions.max(1) as f64
    );
    println!("  rotations requested: {}", totals.rotations_requested);
}
