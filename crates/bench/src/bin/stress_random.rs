//! Stress harness: random platforms (Atom sets, SI libraries, forecast
//! streams) hammered through the full manager/fabric stack, asserting the
//! RISPP invariants on every step. A seeded fuzzing pass that complements
//! the property tests with much longer runs. Every run also carries a
//! [`CountersSink`], cross-checked against the harness's own tallies so
//! the event stream itself is part of the fuzzed surface.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rispp::core::atom::AtomSet;
use rispp::fabric::catalog::{AtomCatalog, AtomHwProfile};
use rispp::prelude::*;

struct StressStats {
    forecasts: u64,
    retractions: u64,
    executions: u64,
    hw_executions: u64,
    rotations: u64,
}

fn random_platform(rng: &mut StdRng) -> (SiLibrary, Fabric) {
    let kinds = rng.gen_range(1..=6usize);
    let names: Vec<String> = (0..kinds).map(|i| format!("K{i}")).collect();
    let atoms = AtomSet::from_names(names.iter().map(String::as_str));
    let catalog = AtomCatalog::new(
        names
            .iter()
            .map(|n| {
                AtomHwProfile::new(
                    n.as_str(),
                    rng.gen_range(100..800),
                    rng.gen_range(200..1600),
                    rng.gen_range(2_000..80_000),
                )
            })
            .collect(),
    );
    let containers = rng.gen_range(0..=8usize);
    let fabric = Fabric::new(atoms, catalog, containers);

    let mut lib = SiLibrary::new(kinds);
    for s in 0..rng.gen_range(1..=6usize) {
        let n_mols = rng.gen_range(1..=4usize);
        let mut mols = Vec::new();
        let mut fastest = u64::MAX;
        for _ in 0..n_mols {
            let counts: Vec<u32> = (0..kinds).map(|_| rng.gen_range(0..4)).collect();
            if counts.iter().all(|&c| c == 0) {
                continue;
            }
            let cycles = rng.gen_range(5..80u64);
            fastest = fastest.min(cycles);
            mols.push(MoleculeImpl::new(Molecule::from_counts(counts), cycles));
        }
        if mols.is_empty() {
            mols.push(MoleculeImpl::new(
                Molecule::from_pairs(kinds, [(AtomKind(0), 1)]),
                20,
            ));
            fastest = 20;
        }
        let sw = fastest + rng.gen_range(50..2_000u64);
        lib.insert(SpecialInstruction::new(format!("si{s}"), sw, mols).expect("valid"))
            .expect("width");
    }
    (lib, fabric)
}

fn stress_one(seed: u64, steps: u32, export: Option<SinkHandle>) -> StressStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let (lib, fabric) = random_platform(&mut rng);
    let containers = fabric.num_containers();
    let counters = Rc::new(RefCell::new(CountersSink::new()));
    let mut sink = SinkHandle::shared(counters.clone());
    if let Some(extra) = export {
        sink = SinkHandle::tee(sink, extra);
    }
    let mut mgr = RisppManager::builder(lib.clone(), fabric)
        .sink(sink)
        .build();
    let mut stats = StressStats {
        forecasts: 0,
        retractions: 0,
        executions: 0,
        hw_executions: 0,
        rotations: 0,
    };
    for _ in 0..steps {
        let si = SiId(rng.gen_range(0..lib.len()));
        match rng.gen_range(0..10) {
            0..=2 => {
                mgr.forecast(
                    rng.gen_range(0..3),
                    ForecastValue::new(
                        si,
                        rng.gen_range(0.05..1.0),
                        rng.gen_range(1_000.0..1_000_000.0),
                        rng.gen_range(1.0..500.0),
                    ),
                );
                stats.forecasts += 1;
            }
            3 => {
                mgr.retract_forecast(rng.gen_range(0..3), si);
                stats.retractions += 1;
            }
            4..=7 => {
                let rec = mgr.execute_si(rng.gen_range(0..3), si);
                assert!(
                    rec.cycles <= lib.get(si).sw_cycles(),
                    "seed {seed}: slower than software"
                );
                stats.executions += 1;
                if rec.hardware {
                    stats.hw_executions += 1;
                }
            }
            _ => {
                let t = mgr.now() + rng.gen_range(1..200_000u64);
                mgr.advance_to(t).expect("monotone time");
            }
        }
        // Global invariant: never more loaded Atoms than containers.
        assert!(
            mgr.loaded().determinant() as usize <= containers,
            "seed {seed}: capacity violated"
        );
        assert!(mgr.target().determinant() as usize <= containers);
    }
    stats.rotations = mgr.rotations_requested();

    // The exported event stream must agree with the harness's tallies.
    let c = counters.borrow();
    let (mut issued, mut retracted, mut execs, mut hw_execs) = (0u64, 0u64, 0u64, 0u64);
    for i in 0..lib.len() {
        let fc = c.fc(SiId(i));
        issued += fc.issued;
        retracted += fc.retracted;
        let si = c.si(SiId(i));
        execs += si.hw_executions + si.sw_executions;
        hw_execs += si.hw_executions;
    }
    assert_eq!(
        issued, stats.forecasts,
        "seed {seed}: forecast events diverge"
    );
    assert_eq!(
        retracted, stats.retractions,
        "seed {seed}: retract events diverge"
    );
    assert_eq!(
        execs, stats.executions,
        "seed {seed}: execution events diverge"
    );
    assert_eq!(
        hw_execs, stats.hw_executions,
        "seed {seed}: HW split diverges"
    );
    assert!(
        c.rotations_started() <= stats.rotations,
        "seed {seed}: more rotations started than requested"
    );
    drop(c);
    stats
}

fn main() {
    let mut jsonl_out: Option<String> = None;
    let mut report_out: Option<String> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--jsonl-out" => jsonl_out = iter.next(),
            "--report-out" => report_out = iter.next(),
            _ => {
                eprintln!("stress_random: unknown option {arg}");
                eprintln!("usage: stress_random [--jsonl-out PATH] [--report-out PATH]");
                std::process::exit(1);
            }
        }
    }

    println!("== Stress: random platforms through the manager/fabric stack ==\n");
    // When a dump is requested, seed 0's event stream is exported — the
    // report then demonstrates the analyzer on a non-H.264 platform.
    let export = if jsonl_out.is_some() || report_out.is_some() {
        Some(Rc::new(RefCell::new(JsonlSink::new(Vec::new()))))
    } else {
        None
    };
    let mut totals = (0u64, 0u64, 0u64, 0u64, 0u64);
    let runs = 200;
    for seed in 0..runs {
        let extra = if seed == 0 {
            export.as_ref().map(|e| SinkHandle::shared(e.clone()))
        } else {
            None
        };
        let s = stress_one(seed, 400, extra);
        totals.0 += s.forecasts;
        totals.1 += s.retractions;
        totals.2 += s.executions;
        totals.3 += s.hw_executions;
        totals.4 += s.rotations;
    }
    if let Some(export) = export {
        let text = String::from_utf8(export.borrow().writer().clone()).expect("JSONL is UTF-8");
        if let Some(path) = &jsonl_out {
            std::fs::write(path, &text).expect("write JSONL export");
            println!("seed 0 JSONL export written to {path}");
        }
        if let Some(path) = &report_out {
            use rispp_bench::report::{analyze, render_markdown, ReportConfig};
            let probe = analyze(&text, &ReportConfig::h264(0)).expect("export analyzes");
            let config = ReportConfig::infer(&probe.timeline);
            let analysis = analyze(&text, &config).expect("export analyzes");
            std::fs::write(path, render_markdown(&analysis, &config)).expect("write report");
            println!("seed 0 markdown report written to {path}");
        }
    }
    println!("{runs} random platforms x 400 actions, all invariants held:");
    println!("  forecasts issued   : {}", totals.0);
    println!("  retractions        : {}", totals.1);
    println!("  SI executions      : {}", totals.2);
    println!(
        "  in hardware        : {} ({:.1}%)",
        totals.3,
        100.0 * totals.3 as f64 / totals.2.max(1) as f64
    );
    println!("  rotations requested: {}", totals.4);
}
