//! The live pipeline: the real H.264 encoder (pixels, transforms, entropy
//! coding) running end-to-end on the RISPP platform — every SI dispatched
//! through the run-time manager, every rotation stall paid on the clock.
//! The integrated view behind Figs. 11/12, with each container count run
//! as one [`ShardSpec`].

use rispp::prelude::*;
use rispp_bench::print_table;

fn main() {
    println!("== Live codec: real encoder on the RISPP platform ==\n");
    let frames = 6;
    let mut rows = Vec::new();
    let mut sw_cycles = 0u64;
    for containers in [0usize, 4, 5, 6, 8] {
        let spec = ShardSpec::new(
            Scenario::LiveCodec {
                width: 64,
                height: 48,
                frames,
                containers,
            },
            2_026,
        )
        .with_sink(SinkSpec::Null);
        let out = spec.run().codec.expect("live codec outcome");
        if containers == 0 {
            sw_cycles = out.total_cycles;
        }
        rows.push(vec![
            format!("{containers}"),
            format!("{}", out.total_cycles),
            format!("{:.2}x", sw_cycles as f64 / out.total_cycles as f64),
            format!("{:.1}%", out.hw_fraction * 100.0),
            format!("{:.2}", out.mean_psnr),
            format!("{}", out.total_bits),
            format!("{}", out.rotations),
        ]);
    }
    print_table(
        &[
            "ACs",
            "total cycles",
            "speed-up",
            "HW fraction",
            "PSNR [dB]",
            "bits",
            "rotations",
        ],
        &[rows, vec![]].concat(),
    );
    println!(
        "\n{frames} frames of 64x48 synthetic video. Quality and bitrate are\n\
         identical in every row (hardware changes latency, never results);\n\
         the cycle column is the Fig. 12 behaviour measured on the real\n\
         pixel pipeline instead of the closed-form model."
    );
}
