//! Host-performance trajectory suite: runs the three reference workloads
//! (fig06, stress, live_codec) under a standardized warmup + repetition
//! plan and writes one versioned `BENCH_<workload>.json` per workload.
//!
//! The committed files at the repo root are the blessed baseline; CI's
//! perf-smoke job re-runs this binary with `--quick` and diffs against
//! them with `bench_compare`.
//!
//! ```text
//! bench_suite [--quick] [--reps N] [--warmup N] [--out-dir DIR]
//! ```
//!
//! `--quick` shrinks both the workloads (fewer stress seeds/steps, fewer
//! encoder frames) and the repetition counts. The committed baseline is
//! blessed with `--quick` — the same setting the CI job runs — so the
//! gate always compares commensurate modes; full mode is for deeper
//! local measurement.

use rispp_bench::harness::{bench_file_name, run_workload, HarnessConfig, WORKLOADS};

fn main() {
    let mut config = HarnessConfig::full();
    let mut explicit_reps: Option<usize> = None;
    let mut explicit_warmup: Option<usize> = None;
    let mut out_dir = ".".to_string();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => config = HarnessConfig::quick(),
            "--reps" => {
                explicit_reps = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--reps needs a positive integer")),
                );
            }
            "--warmup" => {
                explicit_warmup = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--warmup needs a non-negative integer")),
                );
            }
            "--out-dir" => {
                out_dir = iter
                    .next()
                    .unwrap_or_else(|| usage("--out-dir needs a path"));
            }
            _ => usage(&format!("unknown option {arg}")),
        }
    }
    if let Some(reps) = explicit_reps {
        config.reps = reps.max(1);
    }
    if let Some(warmup) = explicit_warmup {
        config.warmup = warmup;
    }

    println!(
        "== bench_suite: mode={} reps={} warmup={} ==\n",
        if config.quick { "quick" } else { "full" },
        config.reps,
        config.warmup
    );
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    for workload in WORKLOADS {
        print!("{workload:<11} ");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        let result = run_workload(workload, &config);
        let path = format!("{out_dir}/{}", bench_file_name(workload));
        std::fs::write(&path, result.to_json()).expect("write BENCH file");
        println!(
            "median {:>12} ns  {:>12.0} events/s  {:>14.0} sim-cycles/s  -> {path}",
            result.wall_ns_median, result.events_per_sec, result.sim_cycles_per_sec
        );
    }
    println!("\ndone; compare against a baseline with bench_compare.");
}

fn usage(problem: &str) -> ! {
    eprintln!("bench_suite: {problem}");
    eprintln!("usage: bench_suite [--quick] [--reps N] [--warmup N] [--out-dir DIR]");
    std::process::exit(2);
}
