//! `rispp_serve` — live fleet metrics endpoint over event exports.
//!
//! Tails one or more growing event logs (the binary transport or JSONL
//! — the format is auto-detected per file from the first bytes), folds
//! every record incrementally through a per-shard `MetricsSink` plus a
//! sliding window, evaluates optional SLO alert rules, and serves the
//! result over plain HTTP with no dependencies:
//!
//! * `GET /metrics` — Prometheus exposition. One input keeps the full
//!   legacy exposition (values equal an offline replay of the consumed
//!   log prefix); several inputs add `{shard="k"}`-labeled series next
//!   to the fleet aggregate. Sliding-window rates, follower counters
//!   and `rispp_alert_firing` gauges follow in every mode.
//! * `GET /status`  — JSON: records folded, newest timestamp, detected
//!   format, decode error if any, reopen count, headline numbers
//! * `GET /shards`  — JSON array, one entry per followed log
//! * `GET /alerts`  — JSON: each alert rule's value and firing state
//!
//! ```text
//! rispp_serve <log> [<log>...] [options]
//!       --glob <PATTERN>      follow every file matching PATTERN
//!                             (final-component `*`, e.g. 'out/shard-*.bin')
//!       --rules <FILE>        TOML alert rules ([[rule]] tables with
//!                             name/metric/op/threshold/for_cycles)
//!       --check               don't serve: drain the logs, evaluate the
//!                             rules once at end-of-log, exit nonzero if
//!                             any rule fires (CI gate)
//!       --addr <HOST:PORT>    listen address (default: 127.0.0.1:9464)
//!       --poll-ms <N>         tail-poll interval (default: 200)
//!       --max-requests <N>    exit after N requests (smoke tests);
//!                             malformed requests count too
//!       --containers <N>      occupancy denominator (default: grow on
//!                             demand as containers appear in the log)
//!       --window-cycles <N>   sliding-window bucket width in simulated
//!                             cycles (default: 10000)
//!       --window-buckets <N>  buckets per sliding window (default: 16)
//! ```
//!
//! Input files may not exist yet — tailing starts when each appears. A
//! shrinking file (truncation / log rotation) makes its follower reopen
//! from offset 0 and re-probe the format; `/status` counts these as
//! `reopens`. Both codecs refuse logs with a `schema_version` newer
//! than this build; the refusal shows up in `/status` as `error`.

use std::process::ExitCode;

use rispp::obs::window::WindowConfig;
use rispp_bench::serve::{run_check, run_serve, ServeOptions};

struct Cli {
    opts: ServeOptions,
    check: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut opts = ServeOptions::default();
    let mut check = false;
    let mut window_cycles = None;
    let mut window_buckets = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--glob" => opts.glob = Some(value("--glob")?),
            "--rules" => opts.rules = Some(value("--rules")?.into()),
            "--check" => check = true,
            "--poll-ms" => {
                opts.poll_ms = value("--poll-ms")?
                    .parse()
                    .map_err(|e| format!("--poll-ms: {e}"))?;
            }
            "--max-requests" => {
                opts.max_requests = Some(
                    value("--max-requests")?
                        .parse()
                        .map_err(|e| format!("--max-requests: {e}"))?,
                );
            }
            "--containers" => {
                opts.containers = value("--containers")?
                    .parse()
                    .map_err(|e| format!("--containers: {e}"))?;
            }
            "--window-cycles" => {
                window_cycles = Some(
                    value("--window-cycles")?
                        .parse()
                        .map_err(|e| format!("--window-cycles: {e}"))?,
                );
            }
            "--window-buckets" => {
                window_buckets = Some(
                    value("--window-buckets")?
                        .parse()
                        .map_err(|e| format!("--window-buckets: {e}"))?,
                );
            }
            "-h" | "--help" => return Err(String::new()),
            _ if arg.starts_with('-') => return Err(format!("unknown option {arg}")),
            _ => opts.inputs.push(arg.into()),
        }
    }
    let defaults = WindowConfig::default();
    opts.window = WindowConfig::new(
        window_cycles.unwrap_or(defaults.bucket_cycles),
        window_buckets.unwrap_or(defaults.buckets),
    );
    if opts.inputs.is_empty() && opts.glob.is_none() {
        return Err("missing input files (pass paths or --glob)".to_string());
    }
    Ok(Cli { opts, check })
}

fn usage() {
    eprintln!(
        "usage: rispp_serve <log> [<log>...] [--glob PATTERN] [--rules FILE] \
         [--check] [--addr HOST:PORT] [--poll-ms N] [--max-requests N] \
         [--containers N] [--window-cycles N] [--window-buckets N]"
    );
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("rispp_serve: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };
    if cli.check {
        return match run_check(&cli.opts) {
            Ok(false) => ExitCode::SUCCESS,
            Ok(true) => {
                eprintln!("rispp_serve: alert rules are firing");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("rispp_serve: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match run_serve(&cli.opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rispp_serve: {e}");
            ExitCode::FAILURE
        }
    }
}
