//! `rispp_serve` — live metrics endpoint over a run's event export.
//!
//! Tails a growing event log (the binary transport or JSONL — the
//! format is auto-detected from the first bytes), folds every record
//! incrementally through `MetricsSink`, and serves the result over
//! plain HTTP with no dependencies:
//!
//! * `GET /metrics` — Prometheus exposition; values equal what an
//!   offline replay of the consumed log prefix reports
//! * `GET /status`  — JSON: records folded, newest timestamp, detected
//!   format, decode error if any, headline summary numbers
//!
//! ```text
//! rispp_serve <input.bin|input.jsonl> [options]
//!       --addr <HOST:PORT>    listen address (default: 127.0.0.1:9464)
//!       --poll-ms <N>         tail-poll interval (default: 200)
//!       --max-requests <N>    exit after N requests (smoke tests)
//!       --containers <N>      occupancy denominator (default: grow on
//!                             demand as containers appear in the log)
//! ```
//!
//! The input file may not exist yet — tailing starts when it appears.
//! Both codecs refuse logs with a `schema_version` newer than this
//! build; the refusal shows up in `/status` as `error`.

use std::process::ExitCode;

use rispp_bench::serve::{run_serve, ServeOptions};

fn parse_args() -> Result<ServeOptions, String> {
    let mut opts = ServeOptions::default();
    let mut iter = std::env::args().skip(1);
    let mut have_input = false;
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--poll-ms" => {
                opts.poll_ms = value("--poll-ms")?
                    .parse()
                    .map_err(|e| format!("--poll-ms: {e}"))?;
            }
            "--max-requests" => {
                opts.max_requests = Some(
                    value("--max-requests")?
                        .parse()
                        .map_err(|e| format!("--max-requests: {e}"))?,
                );
            }
            "--containers" => {
                opts.containers = value("--containers")?
                    .parse()
                    .map_err(|e| format!("--containers: {e}"))?;
            }
            "-h" | "--help" => return Err(String::new()),
            _ if arg.starts_with('-') => return Err(format!("unknown option {arg}")),
            _ if !have_input => {
                opts.input = arg.into();
                have_input = true;
            }
            _ => return Err(format!("unexpected argument {arg}")),
        }
    }
    if !have_input {
        return Err("missing input file".to_string());
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: rispp_serve <input.bin|input.jsonl> [--addr HOST:PORT] \
         [--poll-ms N] [--max-requests N] [--containers N]"
    );
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("rispp_serve: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };
    match run_serve(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rispp_serve: {e}");
            ExitCode::FAILURE
        }
    }
}
