//! Sweep — reconfiguration bandwidth: the paper notes RISPP "would
//! directly profit from faster rotation time, due to e.g. faster memory
//! bandwidth". This harness scales the SelectMap transfer rate and
//! measures how fast a cold fabric reaches the first and the fastest
//! hardware Molecule for SATD_4x4, and the resulting hot-spot cycles.

use rispp::fabric::catalog::{table1_profiles, AtomCatalog, SELECTMAP_RATE_BYTES_PER_SEC};
use rispp::h264::si_library::{atom_set, build_library};
use rispp::prelude::*;
use rispp_bench::print_table;

fn fabric_at_rate(multiplier: f64, containers: usize) -> Fabric {
    let atoms = atom_set();
    let all = table1_profiles();
    let profiles = atoms
        .names()
        .map(|name| {
            all.iter()
                .find(|p| p.name == name)
                .expect("profile exists")
                .clone()
        })
        .collect();
    let catalog = AtomCatalog::new(profiles).with_rate(multiplier * SELECTMAP_RATE_BYTES_PER_SEC);
    Fabric::new(atoms, catalog, containers)
}

fn main() {
    println!("== Sweep: reconfiguration bandwidth vs time-to-hardware ==\n");
    let mut rows = Vec::new();
    for multiplier in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let (lib, sis) = build_library();
        let mut mgr = RisppManager::builder(lib, fabric_at_rate(multiplier, 6)).build();
        mgr.forecast(0, ForecastValue::new(sis.satd_4x4, 1.0, 400_000.0, 400.0));
        let mut first_hw = None;
        let mut fastest = None;
        let step = 1_000u64;
        let mut total = 0u64;
        for i in 0..1_000u64 {
            mgr.advance_to(i * step).expect("monotone");
            let rec = mgr.execute_si(0, sis.satd_4x4);
            total += rec.cycles;
            if rec.hardware && first_hw.is_none() {
                first_hw = Some(i * step);
            }
            if rec.cycles <= 20 && fastest.is_none() {
                fastest = Some(i * step);
            }
        }
        rows.push(vec![
            format!(
                "{:.0} MB/s",
                multiplier * SELECTMAP_RATE_BYTES_PER_SEC / 1e6
            ),
            format!("{}", first_hw.map_or(-1, |t| t as i64)),
            format!("{}", fastest.map_or(-1, |t| t as i64)),
            format!("{total}"),
        ]);
    }
    print_table(
        &[
            "transfer rate",
            "first HW exec [cycle]",
            "20-cycle molecule [cycle]",
            "1000-exec total cycles",
        ],
        &rows,
    );
    println!(
        "\ndoubling the configuration bandwidth halves the software-fallback\n\
         window — rotation time tracks bitstream/rate exactly, so RISPP\n\
         \"directly profits\" from faster configuration memories (paper §6)."
    );
}
