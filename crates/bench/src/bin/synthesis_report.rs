//! Future-work feature (paper §6): automatic generation of reusable
//! Atoms by longest-common-subsequence analysis of SI data paths. The
//! report shows how the hand-designed Transform Atom of Fig. 9 emerges
//! automatically from the case-study SIs.

use rispp::core::synthesis::{h264_data_paths, propose_atoms};
use rispp_bench::print_table;

fn main() {
    println!("== Automatic Atom synthesis (LCS over SI data paths) ==\n");
    let paths = h264_data_paths();
    println!("input data paths:");
    for p in &paths {
        println!("  {:<10} {:?}", p.name, p.ops);
    }

    let candidates = propose_atoms(&paths, 3);
    println!("\nproposed reusable Atoms (min length 3, best score first):\n");
    let rows: Vec<Vec<String>> = candidates
        .iter()
        .take(10)
        .map(|c| {
            vec![
                format!("{:?}", c.ops),
                c.shared_by.join(", "),
                format!("{}", c.score),
            ]
        })
        .collect();
    print_table(&["operation subsequence", "shared by", "score"], &rows);

    println!(
        "\nthe top candidate is the add/sub butterfly with the load/store\n\
         scaffold — the Transform Atom the paper designed by hand (Fig. 9:\n\
         \"by just adding the shift elements multiplexed with two control\n\
         signals DCT and HT we can make this Atom reusable\")."
    );
}
