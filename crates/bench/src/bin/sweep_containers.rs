//! Sweep — whole-encoder cycles per macroblock as the Atom-Container
//! budget grows from 0 to 18: the Fig. 12 bars extended into the full
//! curve, showing the Pareto staircase and the Amdahl ceiling.

use rispp::core::selection::select_molecules;
use rispp::h264::encoder::{macroblock_cycles, SiInvocationCounts};
use rispp::h264::si_library::build_library;
use rispp::prelude::*;
use rispp_bench::print_table;

fn main() {
    println!("== Sweep: encoder cycles/MB vs Atom-Container budget ==\n");
    let (lib, sis) = build_library();
    let counts = SiInvocationCounts::per_macroblock();
    let demands = [
        (sis.satd_4x4, 256.0),
        (sis.dct_4x4, 24.0),
        (sis.ht_4x4, 1.0),
        (sis.ht_2x2, 2.0),
    ];
    let sw = macroblock_cycles(&counts, &lib, &sis, &Molecule::zero(4));

    let mut rows = Vec::new();
    let mut prev = u64::MAX;
    for budget in 0..=18u32 {
        let sel = select_molecules(&lib, &demands, budget);
        let cycles = macroblock_cycles(&counts, &lib, &sis, &sel.target);
        assert!(cycles <= prev, "budget {budget} regressed");
        prev = cycles;
        rows.push(vec![
            format!("{budget}"),
            format!("{}", sel.target),
            format!("{cycles}"),
            format!("{:.2}x", sw as f64 / cycles as f64),
            format!("{}", lib.get(sis.satd_4x4).exec_cycles(&sel.target)),
        ]);
    }
    print_table(
        &[
            "#ACs",
            "target meta-molecule",
            "cycles/MB",
            "speed-up",
            "SATD cycles",
        ],
        &rows,
    );
    println!(
        "\nthe curve saturates quickly (Amdahl: the 49,671 plain cycles/MB\n\
         dominate once all SIs run in hardware) — the paper's Fig. 12 point\n\
         that 4 Atom Containers already capture most of the benefit."
    );
}
