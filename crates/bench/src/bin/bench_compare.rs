//! The perf-regression gate: diffs two BENCH sets written by
//! `bench_suite` and exits non-zero when any workload's median wall time
//! regressed past the threshold (or disappeared from the candidate set).
//!
//! ```text
//! bench_compare [--threshold F] [--soft] OLD NEW
//! ```
//!
//! `OLD` and `NEW` are each either a single `BENCH_*.json` file or a
//! directory scanned for `BENCH_*.json` files (the repo root holds the
//! committed baseline). `--threshold` is the relative slowdown that
//! fails the gate (default 0.20 = 20%). `--soft` still prints the
//! comparison but always exits zero — the CI smoke setting, where shared
//! runners make wall time advisory rather than binding.

use rispp_bench::harness::{compare, WorkloadResult};

fn load_set(path: &str) -> Vec<WorkloadResult> {
    let meta =
        std::fs::metadata(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let files: Vec<String> = if meta.is_dir() {
        let mut names: Vec<String> = std::fs::read_dir(path)
            .unwrap_or_else(|e| fail(&format!("cannot list {path}: {e}")))
            .filter_map(Result::ok)
            .filter_map(|entry| entry.file_name().into_string().ok())
            .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
            .map(|name| format!("{path}/{name}"))
            .collect();
        names.sort();
        names
    } else {
        vec![path.to_string()]
    };
    if files.is_empty() {
        fail(&format!("no BENCH_*.json files in {path}"));
    }
    files
        .iter()
        .map(|file| {
            let text = std::fs::read_to_string(file)
                .unwrap_or_else(|e| fail(&format!("cannot read {file}: {e}")));
            WorkloadResult::from_json(&text).unwrap_or_else(|e| fail(&format!("{file}: {e}")))
        })
        .collect()
}

fn main() {
    let mut threshold = 0.20f64;
    let mut soft = false;
    let mut positional: Vec<String> = Vec::new();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--threshold needs a number"));
            }
            "--soft" => soft = true,
            _ => positional.push(arg),
        }
    }
    let [old_path, new_path] = positional.as_slice() else {
        fail("expected exactly two paths: OLD NEW");
    };

    let old = load_set(old_path);
    let new = load_set(new_path);
    let report = compare(&old, &new, threshold);
    println!(
        "baseline: {old_path} ({} workloads)  candidate: {new_path} ({} workloads)  threshold: {:.0}%\n",
        old.len(),
        new.len(),
        threshold * 100.0
    );
    print!("{}", report.render(threshold));
    if report.lines.iter().any(|l| l.mode_mismatch) {
        println!("\nwarning: quick-vs-full comparison — wall times are not commensurate.");
    }
    if report.has_regressions() {
        if soft {
            println!("\nregressions past the threshold (soft mode: exit 0).");
        } else {
            println!("\nregressions past the threshold.");
            std::process::exit(1);
        }
    } else {
        println!("\nno regressions past the threshold.");
    }
}

fn fail(problem: &str) -> ! {
    eprintln!("bench_compare: {problem}");
    eprintln!("usage: bench_compare [--threshold F] [--soft] OLD NEW");
    std::process::exit(2);
}
