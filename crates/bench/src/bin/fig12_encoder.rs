//! Fig. 12 — All-over performance of the H.264 encoding engine for
//! different amounts of RISPP resources (cycles per macroblock), measured
//! two ways: the closed-form model and a live run through the run-time
//! manager.

use rispp::core::selection::select_molecules;
use rispp::h264::encoder::{macroblock_cycles, SiInvocationCounts, HW_DISPATCH_OVERHEAD};
use rispp::h264::si_library::build_library;
use rispp::prelude::*;
use rispp_bench::print_table;

/// Runs one macroblock's SI stream through a settled manager and sums the
/// cycles (live cross-check of the closed-form model).
fn live_macroblock_cycles(containers: usize) -> u64 {
    let (lib, sis) = build_library();
    let fabric = rispp::sim::h264_fabric(containers);
    let mut mgr = RisppManager::builder(lib, fabric).build();
    let demands = [
        (sis.satd_4x4, 256.0),
        (sis.dct_4x4, 24.0),
        (sis.ht_4x4, 1.0),
        (sis.ht_2x2, 2.0),
    ];
    for &(si, n) in &demands {
        mgr.forecast(0, ForecastValue::new(si, 1.0, 500_000.0, n));
    }
    if let Some(done) = mgr.all_rotations_done_at() {
        mgr.advance_to(done).expect("monotone");
    }
    let counts = SiInvocationCounts::per_macroblock();
    let mut total = rispp::h264::encoder::PLAIN_CYCLES_PER_MB;
    for (si, n) in [
        (sis.satd_4x4, counts.satd_4x4),
        (sis.dct_4x4, counts.dct_4x4),
        (sis.ht_4x4, counts.ht_4x4),
        (sis.ht_2x2, counts.ht_2x2),
    ] {
        for _ in 0..n {
            let rec = mgr.execute_si(0, si);
            total += rec.cycles
                + if rec.hardware {
                    HW_DISPATCH_OVERHEAD
                } else {
                    0
                };
        }
    }
    total
}

fn main() {
    println!("== Fig. 12: all-over performance of the H.264 encoding engine ==\n");
    let (lib, sis) = build_library();
    let counts = SiInvocationCounts::per_macroblock();
    let demands = [
        (sis.satd_4x4, 256.0),
        (sis.dct_4x4, 24.0),
        (sis.ht_4x4, 1.0),
        (sis.ht_2x2, 2.0),
    ];

    let paper = [201_065u64, 60_244, 59_135, 58_287];
    let mut rows = Vec::new();
    for (i, label) in ["Opt. SW", "4 Atoms", "5 Atoms", "6 Atoms"]
        .iter()
        .enumerate()
    {
        let loaded = if i == 0 {
            Molecule::zero(4)
        } else {
            select_molecules(&lib, &demands, (i + 3) as u32).target
        };
        let model = macroblock_cycles(&counts, &lib, &sis, &loaded);
        let live = if i == 0 {
            live_macroblock_cycles(0)
        } else {
            live_macroblock_cycles(i + 3)
        };
        rows.push(vec![
            (*label).to_string(),
            format!("{model}"),
            format!("{live}"),
            format!("{}", paper[i]),
            format!(
                "{:+.2}%",
                100.0 * (model as f64 - paper[i] as f64) / paper[i] as f64
            ),
        ]);
    }
    print_table(
        &[
            "config",
            "model cycles/MB",
            "live cycles/MB",
            "paper",
            "model vs paper",
        ],
        &rows,
    );

    let sw = macroblock_cycles(&counts, &lib, &sis, &Molecule::zero(4));
    let hw4 = macroblock_cycles(
        &counts,
        &lib,
        &sis,
        &select_molecules(&lib, &demands, 4).target,
    );
    println!(
        "\nspeed-up with minimum Atoms: {:.0}% (paper: > 300%); Amdahl's law",
        100.0 * sw as f64 / hw4 as f64
    );
    println!("prevents significant further speed-up with more Atoms.");
}
