//! Ablation — greedy run-time Molecule selection vs exhaustive optimum:
//! how much weighted cycle saving the fast greedy heuristic (which must
//! run on every forecast event) leaves on the table.

use rispp::core::selection::{select_molecules, select_molecules_exhaustive, selection_benefit};
use rispp::h264::si_library::build_library;
use rispp_bench::print_table;

fn main() {
    println!("== Ablation: greedy vs exhaustive Molecule selection ==\n");
    let (lib, sis) = build_library();
    let demands = [
        (sis.satd_4x4, 256.0),
        (sis.dct_4x4, 24.0),
        (sis.ht_4x4, 1.0),
        (sis.ht_2x2, 2.0),
        (sis.sad_4x4, 48.0),
    ];

    let mut rows = Vec::new();
    for capacity in 0..=20u32 {
        let greedy = select_molecules(&lib, &demands, capacity);
        let optimal = select_molecules_exhaustive(&lib, &demands, capacity);
        let gb = selection_benefit(&lib, &demands, &greedy);
        let ob = selection_benefit(&lib, &demands, &optimal);
        let quality = if ob > 0.0 { gb / ob } else { 1.0 };
        rows.push(vec![
            format!("{capacity}"),
            format!("{}", greedy.target.determinant()),
            format!("{gb:.0}"),
            format!("{ob:.0}"),
            format!("{:.1}%", quality * 100.0),
        ]);
    }
    print_table(
        &[
            "capacity",
            "greedy atoms",
            "greedy benefit",
            "optimal benefit",
            "greedy quality",
        ],
        &rows,
    );
    println!(
        "\nbenefit = Σ weight × (SW cycles − selected cycles). The greedy\n\
         heuristic is what the run-time system executes on every forecast\n\
         event; the exhaustive search is the design-time upper bound."
    );
}
