//! Fig. 4 — The Forecast Decision Function: minimum number of SI usages
//! required to issue a forecast candidate, over temporal distance
//! (relative to the rotation time, log scale) and reach probability.

use rispp::prelude::FdfParams;
use rispp_bench::print_table;

fn main() {
    println!("== Fig. 4: Forecast Decision Function FDF(p, t) ==\n");
    // Paper parameters: the surface spans t/T_Rot in 0.1 … 100 (log) and
    // probability 40 … 100 %, peaking in the 450..500 band.
    let fdf = FdfParams::new(1_000.0, 50.0, 5.0, 900.0, 1.0);
    println!(
        "T_Rot = {} | T_SW = {} | T_HW = {} | offset = {:.1}\n",
        fdf.t_rot,
        fdf.t_sw,
        fdf.t_hw,
        fdf.offset()
    );

    // The paper's log-scale x axis: 0.1 → 100 in 16 steps.
    let rel: Vec<f64> = (0..16).map(|i| 0.1 * 10f64.powf(i as f64 / 5.0)).collect();
    let probabilities = [1.0, 0.7, 0.4];

    let mut headers: Vec<String> = vec!["t/T_Rot".to_string()];
    headers.extend(probabilities.iter().map(|p| format!("p={:.0}%", p * 100.0)));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let rows: Vec<Vec<String>> = rel
        .iter()
        .map(|&r| {
            let mut row = vec![format!("{r:.1}")];
            for &p in &probabilities {
                row.push(format!("{:.0}", fdf.eval(p, r * fdf.t_rot)));
            }
            row
        })
        .collect();
    print_table(&header_refs, &rows);

    println!("\nshape: U over log-distance (near: rotation cannot finish;");
    println!("far: Atom Containers blocked too long); lower for higher p.");
    let peak = fdf.eval(0.4, 0.1 * fdf.t_rot) - fdf.offset();
    println!("peak above offset at (p=40%, t=0.1 T_Rot): {peak:.0}  (paper band: 450-500)");
}
