//! Fig. 3 — BB graph for AES with profiling information, SI usages and
//! computed forecast candidates (emitted as Graphviz DOT plus a summary
//! table).

use rispp::cfg::aes::{build_aes, AesSis};
use rispp::cfg::analysis::SiUsageAnalysis;
use rispp::cfg::dot::to_dot;
use rispp::cfg::forecast_points::{determine_candidates, insert_forecast_points};
use rispp::prelude::*;
use rispp_bench::print_table;

fn aes_library() -> SiLibrary {
    let mut lib = SiLibrary::new(2);
    for (name, sw, counts, cycles) in [
        ("SubShift", 420u64, [2u32, 1u32], 18u64),
        ("MixColumns", 380, [1, 2], 16),
        ("AddKey", 120, [0, 1], 6),
    ] {
        lib.insert(
            SpecialInstruction::new(
                name,
                sw,
                vec![MoleculeImpl::new(Molecule::from_counts(counts), cycles)],
            )
            .expect("valid SI"),
        )
        .expect("width matches");
    }
    lib
}

fn main() {
    println!("== Fig. 3: AES BB graph with profile, SI usages, FC candidates ==\n");
    let sis = AesSis::default();
    let (cfg, profile, _) = build_aes(sis, 64);
    let lib = aes_library();
    let fdf = |_si: SiId| FdfParams::new(4_000.0, 400.0, 15.0, 2_000.0, 1.0);

    // Per-block profile + candidate table for the SubShift SI.
    let analysis = SiUsageAnalysis::compute(&cfg, &profile, sis.sub_shift, |b| {
        cfg.block(b).plain_cycles as f64
    });
    let candidates = determine_candidates(&cfg, &analysis, sis.sub_shift, &fdf(sis.sub_shift));
    let rows: Vec<Vec<String>> = cfg
        .iter()
        .map(|(id, blk)| {
            let i = id.index();
            vec![
                blk.name.clone(),
                format!("{}", profile.block_count(id)),
                format!("{:.2}", analysis.probability[i]),
                if analysis.distance[i].is_finite() {
                    format!("{:.0}", analysis.distance[i])
                } else {
                    "inf".to_string()
                },
                format!("{:.1}", analysis.expected_executions[i]),
                if candidates.iter().any(|c| c.block == id) {
                    "yes".into()
                } else {
                    "".into()
                },
            ]
        })
        .collect();
    print_table(
        &[
            "block",
            "visits",
            "p(SubShift)",
            "distance",
            "E[execs]",
            "FC candidate",
        ],
        &rows,
    );

    let fcs = insert_forecast_points(&cfg, &profile, &lib, fdf, 4);
    println!(
        "\nfinal forecast points after trimming + placement: {}",
        fcs.len()
    );
    for fc in &fcs {
        println!(
            "  {} -> {}  (p={:.2}, d={:.0}, E={:.0})",
            cfg.block(fc.block).name,
            lib.get(fc.si).name(),
            fc.probability,
            fc.distance,
            fc.expected_executions
        );
    }

    println!("\n--- Graphviz DOT (profiling heat, double border = SI usage, blue = FC) ---\n");
    println!("{}", to_dot(&cfg, &profile, &fcs));
}
