//! Fig. 6 — The run-time architecture scenario: two tasks sharing six
//! Atom Containers, with forecasts, container re-allocation, rotations,
//! cross-task Atom sharing and the gradual SW→HW upgrade.
//!
//! The waveform and event log below are rendered from a *replayed* JSONL
//! export, not from the live run: every event is streamed through a
//! [`JsonlSink`], parsed back, and accumulated into a fresh timeline —
//! proving the figure is reproducible from the export alone.
//!
//! Optional flags: `--jsonl-out PATH` dumps the raw export,
//! `--bin-out PATH` dumps the same stream in the binary transport
//! (teed from the same live run), `--report-out PATH` renders the
//! `rispp_report` markdown analysis of this run, and `--trace-out PATH`
//! writes a Chrome-trace-event JSON file of the same run — one track
//! per Atom Container plus per-task SI slices and counter tracks —
//! loadable in Perfetto or `chrome://tracing`.

use std::cell::RefCell;
use std::rc::Rc;

use rispp::h264::si_library::atom_set;
use rispp::obs::jsonl;
use rispp::prelude::*;
use rispp::sim::scenario::run_fig6;
use rispp::sim::waveform::render_waveform;
use rispp_bench::report::{analyze, render_markdown, render_trace, ReportConfig};

fn main() {
    let mut jsonl_out: Option<String> = None;
    let mut bin_out: Option<String> = None;
    let mut report_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--jsonl-out" => jsonl_out = iter.next(),
            "--bin-out" => bin_out = iter.next(),
            "--report-out" => report_out = iter.next(),
            "--trace-out" => trace_out = iter.next(),
            _ => {
                eprintln!("fig06_scenario: unknown option {arg}");
                eprintln!(
                    "usage: fig06_scenario [--jsonl-out PATH] [--bin-out PATH] \
                     [--report-out PATH] [--trace-out PATH]"
                );
                std::process::exit(1);
            }
        }
    }

    println!("== Fig. 6: run-time scenario (Task A = video codec, Task B = SI0/SI1) ==\n");

    let report = run_fig6();
    println!("characteristic points of the timeline:");
    println!(
        "  T1 (more important SI1 forecasted)   cycle {:>9}",
        report.t1
    );
    println!(
        "  T2 (SI1 no longer needed)            cycle {:>9}",
        report.t2
    );
    println!(
        "  T4 (SATD switches SW -> HW)          cycle {:>9}",
        report.t4.map_or(-1, |t| t as i64)
    );
    println!(
        "  T5 (SATD upgrades to faster Molecule) cycle {:>8}",
        report.t5.map_or(-1, |t| t as i64)
    );
    println!(
        "  rotations completed                  {:>9}",
        report.rotations
    );

    // Re-run with a JSONL export attached and the host profiler enabled,
    // then rebuild the timeline purely from the exported text. Measured
    // re-selection durations stay in the stream — this figure reports on
    // one live run, not a replayable shard.
    let spec = ShardSpec::new(Scenario::Fig6, 0)
        .with_profile(true)
        .with_deterministic(false);
    let (mut engine, _) = spec.build_fig6();
    let prof = engine.profiler().clone();
    let export = Rc::new(RefCell::new(JsonlSink::new(Vec::new())));
    engine.attach_sink(SinkHandle::shared(export.clone()));
    // Tee the binary transport off the same live run when asked, so
    // both exports describe the identical event sequence.
    let bin_export = bin_out
        .as_ref()
        .map(|_| Rc::new(RefCell::new(BinarySink::new(Vec::new()))));
    if let Some(sink) = &bin_export {
        engine.attach_sink(SinkHandle::shared(sink.clone()));
    }
    let end = engine.run(100_000);

    let text = String::from_utf8(export.borrow().writer().clone()).expect("JSONL is UTF-8");
    let mut replayed = TimelineSink::new();
    jsonl::replay(&text, &mut replayed).expect("export replays cleanly");
    assert_eq!(
        replayed.timeline(),
        &*engine.timeline(),
        "replayed timeline must match the live one"
    );
    let timeline = replayed.into_timeline();
    println!(
        "\nJSONL export: {} events, {} bytes; replay matches the live timeline.",
        timeline.len(),
        text.len()
    );

    if let Some(path) = &jsonl_out {
        std::fs::write(path, &text).expect("write JSONL export");
        println!("JSONL export written to {path}");
    }
    if let (Some(path), Some(sink)) = (&bin_out, bin_export) {
        drop(engine); // release the engine's handle so the Rc unwraps
        let bytes = Rc::try_unwrap(sink)
            .expect("engine released its sink handle")
            .into_inner()
            .into_inner();
        std::fs::write(path, &bytes).expect("write binary export");
        println!("binary export written to {path} ({} bytes)", bytes.len());
    }
    if report_out.is_some() || trace_out.is_some() {
        let config = ReportConfig::h264(6);
        let mut analysis = analyze(&text, &config).expect("own export analyzes cleanly");
        // This binary drove the live run, so it can attach what the
        // export cannot carry: the run's host-time phase profile.
        analysis.host_profile = prof.snapshot();
        if let Some(path) = &report_out {
            std::fs::write(path, render_markdown(&analysis, &config)).expect("write report");
            println!("markdown report written to {path}");
        }
        if let Some(path) = &trace_out {
            std::fs::write(path, render_trace(&analysis, &config)).expect("write trace");
            println!("Chrome trace written to {path} (open in Perfetto or chrome://tracing)");
        }
    }

    // Container-occupancy waveform: the figure's own rendering. Upper
    // case = loaded Atom (Q/P/T/S), lower case = rotation in flight,
    // '.' = empty.
    println!("\ncontainer occupancy over time (Fig. 6 rows; {end} cycles across):");
    print!("{}", render_waveform(&timeline, &atom_set(), 6, end, 96));

    println!("\nevent log (truncated, from the replayed export):");
    for line in timeline.to_string().lines().take(40) {
        println!("  {line}");
    }
    println!("  ...");

    println!("\nTask A SATD latency over time (SW=544, molecules 24/22/20):");
    let mut prev = None;
    for &(at, cycles, hw) in &report.satd_execs {
        if prev != Some((cycles, hw)) {
            println!(
                "  cycle {at:>9}: {cycles:>4} cycles [{}]",
                if hw { "HW" } else { "SW" }
            );
            prev = Some((cycles, hw));
        }
    }
}
