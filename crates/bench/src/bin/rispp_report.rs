//! `rispp_report` — offline analyzer for event exports.
//!
//! Reads a stream exported by any run — JSONL
//! (`--jsonl-out run.jsonl`) or the binary transport
//! (`--bin-out run.bin`), auto-detected from the leading magic bytes —
//! and renders a markdown report: time-to-hardware spans, time-weighted
//! gauges, the Fig. 6-style occupancy waveform and the forecast-accuracy
//! table — all derived purely from the export, never from live objects.
//!
//! Both codecs carry a `schema_version` header (the first JSONL line,
//! or the binary file header). Streams written by a *newer* schema than
//! this build understands are refused with an error rather than
//! misread; headerless JSONL replays as version 0.
//!
//! ```text
//! rispp_report <input.jsonl|input.bin> [options]
//!   -o, --out <PATH>      write the report to PATH (default: stdout)
//!       --trace-out <PATH> also write a Chrome-trace-event JSON file
//!                         (open in Perfetto or chrome://tracing): one
//!                         track per Atom Container, per-task SI slices,
//!                         occupancy and bus counters
//!       --h264            use the H.264 platform (Table 1 Atom names and
//!                         utilisation weights) instead of inferring a
//!                         generic platform from the stream
//!       --containers <N>  container count (default: inferred; 6 with --h264)
//!       --columns <N>     waveform width in characters (default: 96)
//! ```

use std::process::ExitCode;

use rispp_bench::report::{analyze_bytes, render_markdown, render_trace, ReportConfig};

struct Args {
    input: String,
    out: Option<String>,
    trace_out: Option<String>,
    h264: bool,
    containers: Option<usize>,
    columns: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: String::new(),
        out: None,
        trace_out: None,
        h264: false,
        containers: None,
        columns: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "-o" | "--out" => args.out = Some(value("--out")?),
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--h264" => args.h264 = true,
            "--containers" => {
                args.containers = Some(
                    value("--containers")?
                        .parse()
                        .map_err(|e| format!("--containers: {e}"))?,
                );
            }
            "--columns" => {
                args.columns = Some(
                    value("--columns")?
                        .parse()
                        .map_err(|e| format!("--columns: {e}"))?,
                );
            }
            "-h" | "--help" => return Err(String::new()),
            _ if arg.starts_with('-') => return Err(format!("unknown option {arg}")),
            _ if args.input.is_empty() => args.input = arg,
            _ => return Err(format!("unexpected argument {arg}")),
        }
    }
    if args.input.is_empty() {
        return Err("missing input file".to_string());
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: rispp_report <input.jsonl|input.bin> [-o PATH] [--trace-out PATH] \
         [--h264] [--containers N] [--columns N]\n\
         the input format (JSONL or binary transport) is auto-detected; \
         exports with a newer schema_version than this build are refused"
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("rispp_report: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };
    let bytes = match std::fs::read(&args.input) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("rispp_report: cannot read {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };

    // Platform knowledge: Table 1 when asked, otherwise inferred from the
    // stream (a cheap pre-pass; the offline analyzer is not latency-bound).
    let mut config = if args.h264 {
        ReportConfig::h264(args.containers.unwrap_or(6))
    } else {
        match analyze_bytes(&bytes, &ReportConfig::h264(0)) {
            Ok(probe) => ReportConfig::infer(&probe.timeline),
            Err(e) => {
                eprintln!("rispp_report: {}: {e}", args.input);
                return ExitCode::FAILURE;
            }
        }
    };
    if let Some(n) = args.containers {
        config.containers = n;
    }
    if let Some(n) = args.columns {
        config.waveform_columns = n.max(1);
    }

    let analysis = match analyze_bytes(&bytes, &config) {
        Ok(analysis) => analysis,
        Err(e) => {
            eprintln!("rispp_report: {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.trace_out {
        let trace = render_trace(&analysis, &config);
        if let Err(e) = std::fs::write(path, &trace) {
            eprintln!("rispp_report: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("rispp_report: trace -> {path} (open in Perfetto or chrome://tracing)");
    }
    let report = render_markdown(&analysis, &config);
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("rispp_report: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("rispp_report: {} events -> {path}", analysis.timeline.len());
        }
        None => print!("{report}"),
    }
    ExitCode::SUCCESS
}
