//! Table 1 — Results for hardware implementation of individual Atoms:
//! slices, LUTs, container utilisation, bitstream size and rotation time.

use rispp::fabric::catalog::{
    table1_profiles, AtomCatalog, CONTAINER_LUTS, CONTAINER_SLICES, SELECTMAP_RATE_BYTES_PER_SEC,
};
use rispp::fabric::Clock;
use rispp_bench::print_table;

fn main() {
    println!("== Table 1: hardware implementation of individual Atoms ==\n");
    let profiles = table1_profiles();
    let paper_rotation = [857.63, 840.11, 949.53, 848.84];

    let rows: Vec<Vec<String>> = profiles
        .iter()
        .zip(paper_rotation)
        .map(|(p, paper)| {
            let rot = p.rotation_time_us(SELECTMAP_RATE_BYTES_PER_SEC);
            vec![
                p.name.clone(),
                format!("{}", p.slices),
                format!("{}", p.luts),
                format!("{:.1}%", p.utilization() * 100.0),
                format!("{}", p.bitstream_bytes),
                format!("{rot:.2}"),
                format!("{paper:.2}"),
            ]
        })
        .collect();
    print_table(
        &[
            "Atom",
            "# Slices",
            "# LUTs",
            "Utilization",
            "Bitstream [Byte]",
            "Rotation [us]",
            "paper [us]",
        ],
        &rows,
    );

    println!(
        "\nAtom Container: {CONTAINER_SLICES} slices / {CONTAINER_LUTS} LUTs \
         (full FPGA height, 4 CLB columns on the XC2V3000)"
    );
    println!(
        "effective SelectMap rate: {:.1} MB/s (derived from all four \
         bitstream/rotation-time pairs)",
        SELECTMAP_RATE_BYTES_PER_SEC / 1e6
    );
    let clock = Clock::default();
    let catalog = AtomCatalog::new(profiles.to_vec());
    println!(
        "\nrotation time in core cycles at {} MHz:",
        clock.hz() / 1_000_000
    );
    for (kind, p) in catalog.iter() {
        println!(
            "  {:<10} {:>7} cycles",
            p.name,
            catalog.rotation_cycles(kind, &clock)
        );
    }
    println!(
        "\nnote (paper §6): the Pack AC covers an embedded BlockRAM row, so its \
         bitstream\nand rotation time are significantly bigger despite moderate \
         logic utilisation."
    );
}
