//! Fig. 1 — Comparison of Extensible Processors and RISPP: hardware
//! requirements (gate equivalents) across the H.264 encoder phases, the
//! GE saving formula, and the α sweep.

use rispp::baseline::{h264_phases, AreaModel};
use rispp_bench::print_table;

fn main() {
    println!("== Fig. 1: Extensible Processor vs RISPP hardware requirements ==\n");

    let phases = h264_phases();
    let rows: Vec<Vec<String>> = phases
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                format!("{:.0}%", p.time_share * 100.0),
                format!("{}", p.gate_equivalents),
            ]
        })
        .collect();
    print_table(
        &["phase", "time share", "GE (dedicated SI hardware)"],
        &rows,
    );

    let model = AreaModel::new(phases, 1.2);
    println!();
    println!(
        "extensible processor GE_total : {:>8}",
        model.extensible_ge()
    );
    println!(
        "largest hot spot GE_max (MC)  : {:>8}",
        model.max_phase_ge()
    );
    println!(
        "RISPP HW = alpha * GE_max      : {:>8}  (alpha = {})",
        model.rispp_ge(),
        model.alpha()
    );
    println!(
        "GE saving (GEtotal - a*GEmax)*100/GEtotal : {:.1}%",
        model.ge_saving_percent()
    );
    println!(
        "area utilisation: extensible {:.1}% vs RISPP {:.1}%",
        model.extensible_utilization() * 100.0,
        model.rispp_utilization() * 100.0
    );
    println!(
        "performance maintained: every phase fits into alpha*GEmax = {}",
        model.rispp_ge()
    );

    println!("\nalpha sweep (rotation headroom vs area saving):");
    let rows: Vec<Vec<String>> = [1.0, 1.1, 1.2, 1.35, 1.5, 2.0]
        .iter()
        .map(|&alpha| {
            let m = AreaModel::new(h264_phases(), alpha);
            vec![
                format!("{alpha:.2}"),
                format!("{}", m.rispp_ge()),
                format!("{:.1}%", m.ge_saving_percent()),
                format!("{}", m.fits_constraint(160_000)),
            ]
        })
        .collect();
    print_table(
        &["alpha", "RISPP GE", "GE saving", "fits GE_constraint=160k"],
        &rows,
    );
}
