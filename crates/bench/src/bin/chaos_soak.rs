//! Chaos soak: the paper's scenarios under seeded fault plans.
//!
//! For each seed, a [`FaultPlan`] is derived deterministically and both
//! scenarios run under it: the Fig. 6 two-task story and the live H.264
//! encoder. Every run is audited against the chaos invariants (monotone
//! time, paired container occupancy, upgrade ladder within the loaded
//! Atoms, resolved forecast spans, recovery after every rotation
//! failure) and against the fault-free twin's functional output — the
//! executed SI stream and the encoded bits must be identical: faults
//! cost cycles, never correctness.
//!
//! Exits non-zero when any invariant is violated, or when no seeded plan
//! ever produced a rotation failure (the soak would be vacuous).
//!
//! ```text
//! chaos_soak [--seeds N] [--jsonl-out PATH] [--report-out PATH]
//! ```
//!
//! The exports capture seed 0's Fig. 6 run (or the first failing seed's)
//! as JSONL plus the analyzer's markdown report.

use std::cell::RefCell;
use std::rc::Rc;

use rispp::fabric::FaultPlan;
use rispp::obs::{JsonlSink, SinkHandle, TimelineSink};
use rispp::sim::chaos::{run_codec_chaos, run_fig6_chaos};

/// The Fig. 6 engine runs for at most 100k steps; every seeded fault
/// lands inside a 2M-cycle horizon so the plans actually bite.
const HORIZON_CYCLES: u64 = 2_000_000;
const CONTAINERS: usize = 6;
const CODEC_FRAMES: usize = 2;
const CODEC_SEED: u64 = 42;

/// Every fig6 run carries a bounded tail of its most recent events — a
/// soak can afford that where a full timeline per seed would not — so a
/// violation comes with the context that led up to it.
const TAIL_CAPACITY: usize = 512;
const TAIL_PRINTED: usize = 12;

fn main() {
    let mut seeds = 4u64;
    let mut jsonl_out: Option<String> = None;
    let mut report_out: Option<String> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seeds" => {
                seeds = iter.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("chaos_soak: --seeds needs a number");
                    std::process::exit(1);
                });
            }
            "--jsonl-out" => jsonl_out = iter.next(),
            "--report-out" => report_out = iter.next(),
            _ => {
                eprintln!("chaos_soak: unknown option {arg}");
                eprintln!("usage: chaos_soak [--seeds N] [--jsonl-out PATH] [--report-out PATH]");
                std::process::exit(1);
            }
        }
    }

    println!("== Chaos soak: seeded fault plans over fig6 + live codec ==\n");
    let baseline = run_fig6_chaos(&FaultPlan::none(), None);
    let export_wanted = jsonl_out.is_some() || report_out.is_some();

    let mut violations = 0usize;
    let mut fig6_failures = 0usize;
    let mut codec_failures = 0usize;
    let mut exported: Option<String> = None;
    let mut tail_shown = false;
    let mut tail_dropped = 0u64;

    for seed in 0..seeds {
        let plan = FaultPlan::seeded(seed, CONTAINERS, HORIZON_CYCLES);

        // Fig. 6 under the plan: a bounded tail of recent events rides
        // along on every seed, and seed 0 additionally exports JSONL.
        let tail = Rc::new(RefCell::new(TimelineSink::with_capacity(TAIL_CAPACITY)));
        let export = if export_wanted && (seed == 0 || violations > 0) && exported.is_none() {
            Some(Rc::new(RefCell::new(JsonlSink::new(Vec::new()))))
        } else {
            None
        };
        let mut sink = SinkHandle::shared(tail.clone());
        if let Some(e) = &export {
            sink = SinkHandle::tee(sink, SinkHandle::shared(e.clone()));
        }
        let fig6 = run_fig6_chaos(&plan, Some(sink));
        println!("seed {seed} {}", fig6.report);
        let violations_before = violations;
        violations += fig6.report.violations.len();
        fig6_failures += fig6.report.rotation_failures;
        if fig6.exec_counts != baseline.exec_counts {
            println!("  VIOLATION: fig6 SI stream diverged from the fault-free run");
            violations += 1;
        }
        tail_dropped += tail.borrow().dropped_events();
        if violations > violations_before && !tail_shown {
            tail_shown = true;
            let tail = tail.borrow();
            let entries = tail.timeline().entries();
            let shown = entries.len().min(TAIL_PRINTED);
            println!(
                "  last {shown} events before the violation (of {} kept, {} dropped \
                 beyond the ring's capacity):",
                entries.len(),
                tail.dropped_events()
            );
            for record in &entries[entries.len() - shown..] {
                println!("    {record}");
            }
        }
        if let Some(e) = export {
            if exported.is_none() && (seed == 0 || violations > 0) {
                exported =
                    Some(String::from_utf8(e.borrow().writer().clone()).expect("JSONL is UTF-8"));
            }
        }

        // The live encoder under the same plan, next to its twin.
        let codec = run_codec_chaos(&plan, CODEC_FRAMES, CODEC_SEED);
        println!("seed {seed} {}", codec.report);
        violations += codec.report.violations.len();
        codec_failures += codec.report.rotation_failures;
    }

    if let Some(text) = &exported {
        if let Some(path) = &jsonl_out {
            std::fs::write(path, text).expect("write JSONL export");
            println!("\nJSONL export written to {path}");
        }
        if let Some(path) = &report_out {
            use rispp_bench::report::{analyze, render_markdown, ReportConfig};
            let probe = analyze(text, &ReportConfig::h264(0)).expect("export analyzes");
            let config = ReportConfig::infer(&probe.timeline);
            let analysis = analyze(text, &config).expect("export analyzes");
            std::fs::write(path, render_markdown(&analysis, &config)).expect("write report");
            println!("markdown report written to {path}");
        }
    }

    println!("\n{seeds} seeds x 2 scenarios:");
    println!("  fig6 rotation failures : {fig6_failures}");
    println!("  codec rotation failures: {codec_failures}");
    println!("  invariant violations   : {violations}");
    println!("  tail events dropped    : {tail_dropped} (bounded rings, capacity {TAIL_CAPACITY})");
    if fig6_failures + codec_failures == 0 {
        eprintln!("chaos_soak: vacuous soak — no seeded plan failed a rotation");
        std::process::exit(1);
    }
    if violations > 0 {
        eprintln!("chaos_soak: {violations} invariant violation(s)");
        std::process::exit(1);
    }
    println!("  all invariants held, outputs bit-exact");
}
