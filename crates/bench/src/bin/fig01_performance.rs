//! Fig. 1 (performance half) — "RISPP upholds the performance of
//! Extensible Processors": the ME → MC → TQ → LF phase sequence executed
//! on RISPP (rotating, small area), the full extensible processor
//! (dedicated hardware for every phase), an equal-area extensible
//! processor, and pure software.

use rispp::core::atom::{AtomKind, AtomSet};
use rispp::core::si::{MoleculeImpl, SiLibrary, SpecialInstruction};
use rispp::fabric::catalog::{AtomCatalog, AtomHwProfile};
use rispp::prelude::*;
use rispp::sim::multimode::{run_multimode, PhaseSpec};
use rispp_bench::print_table;

fn platform() -> (SiLibrary, Vec<PhaseSpec>, AtomSet, AtomCatalog) {
    let names = ["MeAtom", "McAtom", "TqAtom", "LfAtom"];
    let atoms = AtomSet::from_names(names);
    let catalog = AtomCatalog::new(
        names
            .iter()
            .map(|n| AtomHwProfile::new(*n, 200, 400, 6_920))
            .collect(),
    );
    let mut lib = SiLibrary::new(4);
    let mk = |kind: usize, count: u32, hw: u64, sw: u64| {
        let mut counts = [0u32; 4];
        counts[kind] = count;
        SpecialInstruction::new(
            format!("si_{}", names[kind]),
            sw,
            vec![
                MoleculeImpl::new(Molecule::from_pairs(4, [(AtomKind(kind), 1)]), hw * 2),
                MoleculeImpl::new(Molecule::from_counts(counts), hw),
            ],
        )
        .expect("valid SI")
    };
    let me = lib.insert(mk(0, 2, 6, 80)).expect("width");
    let mc = lib.insert(mk(1, 3, 8, 120)).expect("width");
    let tq = lib.insert(mk(2, 2, 7, 100)).expect("width");
    let lf = lib.insert(mk(3, 2, 9, 90)).expect("width");
    let phases = vec![
        PhaseSpec::new("ME", me, 2_000, 8, 40),
        PhaseSpec::new("MC", mc, 700, 6, 60),
        PhaseSpec::new("TQ", tq, 1_000, 6, 50),
        PhaseSpec::new("LF", lf, 700, 4, 45),
    ];
    (lib, phases, atoms, catalog)
}

fn main() {
    println!("== Fig. 1 (performance): RISPP maintains extensible-processor speed ==\n");
    let (lib, phases, atoms, catalog) = platform();

    let mut rows = Vec::new();
    for containers in [2usize, 3, 4, 6, 9] {
        let fabric = Fabric::new(atoms.clone(), catalog.clone(), containers);
        let out = run_multimode(&lib, fabric, &phases, containers as u32);
        rows.push(vec![
            format!("{containers}"),
            format!("{}", out.rispp_cycles),
            format!("{:.3}", out.rispp_vs_full_asip()),
            format!("{:.2}x", out.rispp_vs_equal_area()),
            format!("{}", out.rotations),
        ]);
    }
    print_table(
        &[
            "RISPP ACs",
            "RISPP cycles",
            "vs full ASIP (1.0 = equal)",
            "vs equal-area ASIP",
            "rotations",
        ],
        &rows,
    );

    let fabric = Fabric::new(atoms, catalog, 3);
    let out = run_multimode(&lib, fabric, &phases, 3);
    println!("\nreference machines (3-AC RISPP row):");
    println!(
        "  full extensible processor : {:>9} cycles @ {} atoms",
        out.asip_full_cycles, out.asip_full_area_atoms
    );
    println!(
        "  equal-area extensible     : {:>9} cycles @ {} atoms",
        out.asip_equal_area_cycles, out.rispp_area_atoms
    );
    println!(
        "  pure software             : {:>9} cycles",
        out.software_cycles
    );
    println!(
        "\nRISPP runs within {:.1}% of the full ASIP using {}/{} of its area —",
        (out.rispp_vs_full_asip() - 1.0) * 100.0,
        out.rispp_area_atoms,
        out.asip_full_area_atoms
    );
    println!("the Fig. 1 claim: dedicated hot-spot hardware is not needed.");
}
