//! Fig. 2 — "Molecule implementations of HT_4x4, DCT_4x4 and SATD_4x4
//! using different numbers of available Atoms": three SIs implemented
//! while sharing the same set of Atoms. This harness quantifies that
//! sharing: pairwise compatibility of the SI representatives, the
//! containers saved by co-hosting, and the per-SI latency ladder over a
//! shared Atom pool.

use rispp::core::compat::{compatibility_matrix, shared_atoms};
use rispp::h264::si_library::build_library;
use rispp::prelude::*;
use rispp_bench::print_table;

fn main() {
    println!("== Fig. 2: SIs sharing the same set of Atoms ==\n");
    let (lib, sis) = build_library();

    // Pairwise compatibility of Rep(S) (lattice Jaccard).
    let matrix = compatibility_matrix(&lib);
    let names: Vec<&str> = lib.iter().map(|(_, s)| s.name()).collect();
    let mut rows = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let mut row = vec![(*name).to_string()];
        row.extend(matrix[i].iter().map(|v| format!("{v:.2}")));
        rows.push(row);
    }
    let mut headers: Vec<&str> = vec!["Rep compat"];
    headers.extend(names.iter().copied());
    print_table(&headers, &rows);

    println!("\ncontainers saved by co-hosting (|a| + |b| − |a ∪ b|):");
    let reps: Vec<Molecule> = lib.iter().map(|(_, s)| s.representative()).collect();
    for (i, a) in names.iter().enumerate() {
        for (j, b) in names.iter().enumerate().skip(i + 1) {
            let saved = shared_atoms(&reps[i], &reps[j]);
            if saved > 0 {
                println!("  {a:<10} + {b:<10} saves {saved} containers");
            }
        }
    }

    // The figure's point: one shared Atom pool serves all three transform
    // SIs at every pool size.
    println!("\nlatency ladder over one shared Atom pool (QuadSub,Pack,Transform,SATD):");
    let pools = [
        Molecule::from_counts([1, 1, 1, 1]),
        Molecule::from_counts([1, 2, 2, 1]),
        Molecule::from_counts([2, 2, 2, 2]),
        Molecule::from_counts([4, 4, 4, 4]),
    ];
    let mut rows = Vec::new();
    for pool in &pools {
        rows.push(vec![
            pool.to_string(),
            format!("{}", lib.get(sis.ht_4x4).exec_cycles(pool)),
            format!("{}", lib.get(sis.dct_4x4).exec_cycles(pool)),
            format!("{}", lib.get(sis.satd_4x4).exec_cycles(pool)),
        ]);
    }
    print_table(&["shared atoms", "HT_4x4", "DCT_4x4", "SATD_4x4"], &rows);
    println!(
        "\nall three SIs execute in hardware from the same pool at every size —\n\
         \"three different SIs can be implemented while sharing the same set of\n\
         Atoms\" (Fig. 2)."
    );
}
