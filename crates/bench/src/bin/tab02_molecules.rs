//! Table 2 — Molecule composition of the different SIs: per-Molecule Atom
//! instance counts (QuadSub, Pack, Transform, SATD) and cycles.

use rispp::h264::si_library::table2_groups;
use rispp_bench::print_table;

fn main() {
    println!("== Table 2: Molecule composition of different SIs ==\n");
    for (name, entries) in table2_groups() {
        println!("{name} ({} molecules):", entries.len());
        let rows: Vec<Vec<String>> = entries
            .iter()
            .map(|e| {
                vec![
                    format!("{}", e.quad_sub),
                    format!("{}", e.pack),
                    format!("{}", e.transform),
                    format!("{}", e.satd),
                    format!("{}", e.molecule().determinant()),
                    format!("{}", e.cycles),
                ]
            })
            .collect();
        print_table(
            &["QuadSub", "Pack", "Transform", "SATD", "|m|", "Cycles"],
            &rows,
        );
        println!();
    }
    let total: usize = table2_groups().iter().map(|(_, e)| e.len()).sum();
    println!("total hardware molecules: {total} (paper: 30)");
    println!(
        "cycle counts are the paper's Table 2 values verbatim; the Atom vectors\n\
         are reconstructed from the prose constraints (see DESIGN.md §2)."
    );
}
