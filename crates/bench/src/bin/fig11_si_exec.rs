//! Fig. 11 — SI execution time for different amounts of RISPP resources
//! (Opt. SW vs 4/5/6 Atom Containers, log scale in the paper).

use rispp::core::selection::select_molecules;
use rispp::h264::si_library::build_library;
use rispp_bench::print_table;

fn main() {
    println!("== Fig. 11: SI execution time vs RISPP resources ==\n");
    let (lib, sis) = build_library();
    // Demand mix of the Fig. 7 encoder flow (invocations per macroblock).
    let demands = [
        (sis.satd_4x4, 256.0),
        (sis.dct_4x4, 24.0),
        (sis.ht_4x4, 1.0),
        (sis.ht_2x2, 2.0),
    ];

    let budgets = [4u32, 5, 6];
    let si_list = [
        ("SATD_4x4", sis.satd_4x4),
        ("DCT_4x4", sis.dct_4x4),
        ("HT_4x4", sis.ht_4x4),
    ];

    let mut rows = Vec::new();
    for (name, si) in si_list {
        let mut row = vec![name.to_string(), format!("{}", lib.get(si).sw_cycles())];
        for &b in &budgets {
            let sel = select_molecules(&lib, &demands, b);
            row.push(format!("{}", lib.get(si).exec_cycles(&sel.target)));
        }
        rows.push(row);
    }
    print_table(
        &["SI", "Opt. SW", "4 Atoms", "5 Atoms", "6 Atoms"],
        &rows,
    );

    println!("\npaper Fig. 11: Opt. SW = 544 / 488 / 298 cycles; with the");
    println!("minimal Atom set, SIs run > 22x faster than optimised software.");
    let sel4 = select_molecules(&lib, &demands, 4);
    let satd4 = lib.get(sis.satd_4x4).exec_cycles(&sel4.target);
    println!(
        "measured: SATD_4x4 speed-up at 4 Atoms = {:.1}x",
        544.0 / satd4 as f64
    );
}
