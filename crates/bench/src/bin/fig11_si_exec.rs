//! Fig. 11 — SI execution time for different amounts of RISPP resources
//! (Opt. SW vs 4/5/6 Atom Containers, log scale in the paper).
//!
//! The latencies are *measured*, not predicted: each budget runs a live
//! manager with a [`CountersSink`] attached, forecasts the Fig. 7 demand
//! mix, lets the rotations finish and executes the SIs; the table cells
//! come from the exported event stream.

use std::cell::RefCell;
use std::rc::Rc;

use rispp::h264::si_library::build_library;
use rispp::prelude::*;
use rispp::sim::h264_fabric;
use rispp_bench::print_table;

fn main() {
    println!("== Fig. 11: SI execution time vs RISPP resources ==\n");
    let (lib, sis) = build_library();
    // Demand mix of the Fig. 7 encoder flow (invocations per macroblock).
    let demands = [
        (sis.satd_4x4, 256.0),
        (sis.dct_4x4, 24.0),
        (sis.ht_4x4, 1.0),
        (sis.ht_2x2, 2.0),
    ];

    let budgets = [4usize, 5, 6];
    let si_list = [
        ("SATD_4x4", sis.satd_4x4),
        ("DCT_4x4", sis.dct_4x4),
        ("HT_4x4", sis.ht_4x4),
    ];

    let mut measured = vec![Vec::new(); si_list.len()];
    for &b in &budgets {
        let counters = Rc::new(RefCell::new(CountersSink::new()));
        let mut mgr = RisppManager::builder(lib.clone(), h264_fabric(b))
            .sink(SinkHandle::shared(counters.clone()))
            .build();
        for &(si, n) in &demands {
            mgr.forecast(0, ForecastValue::new(si, 1.0, 400_000.0, n));
        }
        let done = mgr.all_rotations_done_at().expect("rotations queued");
        mgr.advance_to(done).expect("monotone time");
        for (row, &(_, si)) in si_list.iter().enumerate() {
            let before = counters.borrow().si(si).cycles;
            mgr.execute_si(0, si);
            let after = counters.borrow().si(si).cycles;
            measured[row].push(after - before);
        }
    }

    let rows: Vec<Vec<String>> = si_list
        .iter()
        .zip(&measured)
        .map(|(&(name, si), cells)| {
            let mut row = vec![name.to_string(), format!("{}", lib.get(si).sw_cycles())];
            row.extend(cells.iter().map(|c| format!("{c}")));
            row
        })
        .collect();
    print_table(&["SI", "Opt. SW", "4 Atoms", "5 Atoms", "6 Atoms"], &rows);

    println!("\npaper Fig. 11: Opt. SW = 544 / 488 / 298 cycles; with the");
    println!("minimal Atom set, SIs run > 22x faster than optimised software.");
    let satd4 = measured[0][0];
    println!(
        "measured: SATD_4x4 speed-up at 4 Atoms = {:.1}x",
        544.0 / satd4 as f64
    );
}
