//! Ablation — FC trimming and placement: "as every FC invokes the
//! run-time system to re-evaluate, we need to reduce the number of FC
//! Candidates in the first place" (§4.2). Runs the AES trace with (a)
//! every FC candidate turned into a forecast point versus (b) the full
//! trim + placement pipeline, and compares run-time-system invocations
//! against the achieved cycles.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rispp::cfg::aes::{build_aes, AesSis};
use rispp::cfg::analysis::SiUsageAnalysis;
use rispp::cfg::forecast_points::{determine_candidates, insert_forecast_points, ForecastPoint};
use rispp::prelude::*;
use rispp::sim::codegen::generate_trace_program;
use rispp::sim::Engine;
use rispp_bench::print_table;

fn aes_library() -> SiLibrary {
    let mut lib = SiLibrary::new(2);
    for (name, sw, counts, cycles) in [
        ("SubShift", 420u64, [2u32, 1u32], 18u64),
        ("MixColumns", 380, [1, 2], 16),
        ("AddKey", 120, [0, 1], 6),
    ] {
        lib.insert(
            SpecialInstruction::new(
                name,
                sw,
                vec![MoleculeImpl::new(Molecule::from_counts(counts), cycles)],
            )
            .expect("valid SI"),
        )
        .expect("width matches");
    }
    lib
}

fn aes_fabric() -> Fabric {
    let atoms = AtomSet::from_names(["SBox", "Mix"]);
    let catalog = AtomCatalog::new(vec![
        rispp::fabric::AtomHwProfile::new("SBox", 120, 240, 692),
        rispp::fabric::AtomHwProfile::new("Mix", 140, 280, 692),
    ]);
    Fabric::new(atoms, catalog, 4)
}

fn run_with(fcs: &[ForecastPoint]) -> (u64, u64, u64) {
    let lib = aes_library();
    let (cfg, profile, _) = build_aes(AesSis::default(), 48);
    let mut rng = StdRng::seed_from_u64(7);
    let program = generate_trace_program(&cfg, &profile, fcs, 100_000, &mut rng);
    let manager = RisppManager::builder(lib, aes_fabric()).build();
    let mut engine = Engine::new(manager);
    engine.add_task(Task::new(0, "aes", program));
    let cycles = engine.run(5_000_000);
    (
        cycles,
        engine.manager().reselects(),
        engine.manager().rotations_requested(),
    )
}

fn main() {
    println!("== Ablation: FC candidate trimming + placement (AES, 48 blocks) ==\n");
    let lib = aes_library();
    let (cfg, profile, _) = build_aes(AesSis::default(), 48);
    let fdf = |_si: SiId| FdfParams::new(1_000.0, 400.0, 15.0, 2_000.0, 1.0);

    // (a) naive: every candidate becomes a forecast point.
    let mut naive = Vec::new();
    for si in lib.ids() {
        let analysis =
            SiUsageAnalysis::compute(&cfg, &profile, si, |b| cfg.block(b).plain_cycles as f64);
        naive.extend(determine_candidates(&cfg, &analysis, si, &fdf(si)));
    }

    // (b) the paper's pipeline: trim per block + DFS placement.
    let placed = insert_forecast_points(&cfg, &profile, &lib, fdf, 4);

    let (nc, nr, nrot) = run_with(&naive);
    let (pc, pr, prot) = run_with(&placed);

    print_table(
        &[
            "variant",
            "forecast points",
            "run-time invocations",
            "rotations",
            "total cycles",
        ],
        &[
            vec![
                "all candidates".into(),
                format!("{}", naive.len()),
                format!("{nr}"),
                format!("{nrot}"),
                format!("{nc}"),
            ],
            vec![
                "trimmed + placed".into(),
                format!("{}", placed.len()),
                format!("{pr}"),
                format!("{prot}"),
                format!("{pc}"),
            ],
        ],
    );
    println!(
        "\nreduction: {:.1}x fewer forecast points and {:.1}x fewer run-time-\n\
         system invocations at {:.1}% of the cycle cost — the reason §4.2 trims\n\
         candidates before they ever reach the run-time system.",
        naive.len() as f64 / placed.len().max(1) as f64,
        nr as f64 / pr.max(1) as f64,
        100.0 * pc as f64 / nc as f64,
    );
}
