//! Fig. 13 — RISPP SI trade-off: performance vs resources. Every Molecule
//! is a point (#Atoms, cycles); the run-time system moves along the
//! Pareto-optimal staircase of each SI, while an ASIP must freeze one
//! point at design time.

use rispp::baseline::ExtensibleProcessor;
use rispp::core::pareto::{latency_staircase, pareto_front, TradeOffPoint};
use rispp::h264::si_library::build_library;
use rispp_bench::print_table;

fn main() {
    println!("== Fig. 13: RISPP SI trade-off — performance vs resources ==\n");
    let (lib, sis) = build_library();
    let si_list = [
        ("SATD_4x4", sis.satd_4x4),
        ("DCT_4x4", sis.dct_4x4),
        ("HT_4x4", sis.ht_4x4),
        ("HT_2x2", sis.ht_2x2),
    ];

    // All molecule points, with Pareto marking.
    for (name, si) in si_list {
        let def = lib.get(si);
        let points: Vec<TradeOffPoint> = def
            .molecules()
            .iter()
            .map(|m| TradeOffPoint::new(m.molecule.determinant(), m.cycles))
            .collect();
        let front = pareto_front(&points);
        println!(
            "{name}: {} molecules, Pareto-optimal: {}",
            points.len(),
            front.len()
        );
        let mut sorted: Vec<(usize, &TradeOffPoint)> = points.iter().enumerate().collect();
        sorted.sort_by_key(|(_, p)| (p.atoms, p.cycles));
        for (i, p) in sorted {
            let mark = if front.contains(&i) { "*" } else { " " };
            println!("  {mark} {:>2} atoms -> {:>2} cycles", p.atoms, p.cycles);
        }
        println!();
    }

    // The staircase (best latency per Atom budget) — the highlighted
    // Pareto lines of the figure.
    println!("best latency per Atom budget (the figure's highlighted lines):");
    let mut rows = Vec::new();
    for budget in 0..=18u32 {
        let mut row = vec![format!("{budget}")];
        for (_, si) in si_list {
            let points: Vec<TradeOffPoint> = lib
                .get(si)
                .molecules()
                .iter()
                .map(|m| TradeOffPoint::new(m.molecule.determinant(), m.cycles))
                .collect();
            let stairs = latency_staircase(&points, 18);
            row.push(stairs[budget as usize].map_or("-".to_string(), |c| c.to_string()));
        }
        rows.push(row);
    }
    print_table(
        &["#Atoms", "SATD_4x4", "DCT_4x4", "HT_4x4", "HT_2x2"],
        &rows,
    );

    // ASIP comparison: a fixed design point cannot follow the staircase.
    let asip = ExtensibleProcessor::design(lib.clone(), &[(sis.satd_4x4, 1.0)], 6);
    println!(
        "\nASIP designed at 6 atoms freezes SATD_4x4 at {} cycles forever;",
        asip.exec_cycles(sis.satd_4x4)
    );
    println!(
        "RISPP reaches {} cycles by rotating up to the 16-atom Molecule when",
        lib.get(sis.satd_4x4).fastest().cycles
    );
    println!("the hot spot demands it — the dynamic trade-off of the figure.");
}
