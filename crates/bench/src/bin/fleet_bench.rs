//! Sharded fleet benchmark: runs N independent shards of one scenario
//! across OS threads via the `ShardSpec`/`ScenarioFactory` construction
//! API, prints the aggregate numbers and writes the fleet BENCH JSON.
//!
//! ```text
//! fleet_bench --shards N [--scenario fig6|stress|live_codec]
//!             [--threads T] [--seed S] [--full] [--faults HORIZON]
//!             [--json-out PATH] [--bin-out PATH] [--trace-out PATH]
//!             [--verify-shard K]
//! ```
//!
//! `--verify-shard K` re-runs shard K standalone from its derived seed
//! and checks the JSONL event export is byte-identical to the one the
//! fleet run produced — the shard-replay determinism guarantee, exit
//! code 1 on divergence.
//!
//! `--bin-out PATH` writes binary event exports — the input format
//! `rispp_serve` and `rispp_report` auto-detect. With a `{shard}`
//! placeholder (e.g. `out/shard-{shard}.bin`) every shard streams its
//! own log *during* the fleet run, ready for
//! `rispp_serve --glob 'out/shard-*.bin'`; without one, shard 0 is
//! replayed standalone and exported (the shards-write-one-file case
//! makes no sense for N > 1).
//!
//! `--trace-out PATH` replays shard 0 with timeline capture and writes
//! a Chrome-trace-event JSON file (open in Perfetto or
//! `chrome://tracing`) with per-container, per-task and counter tracks.

use rispp::prelude::{FleetConfig, Scenario, ScenarioFactory, SinkSpec};
use rispp::sim::run_fleet;
use rispp_bench::fleet::{fleet_file_name, FleetBenchResult};
use rispp_bench::print_table;

fn usage(msg: &str) -> ! {
    eprintln!("fleet_bench: {msg}");
    eprintln!(
        "usage: fleet_bench --shards N [--scenario fig6|stress|live_codec] \
         [--threads T] [--seed S] [--full] [--faults HORIZON] \
         [--json-out PATH] [--bin-out PATH] [--trace-out PATH] \
         [--verify-shard K]\n\
         --bin-out with a {{shard}} placeholder captures every shard's \
         log live during the fleet run"
    );
    std::process::exit(2);
}

struct Args {
    shards: u32,
    scenario: String,
    threads: usize,
    seed: u64,
    quick: bool,
    fault_horizon: Option<u64>,
    json_out: Option<String>,
    bin_out: Option<String>,
    trace_out: Option<String>,
    verify_shard: Option<u32>,
}

fn parse_args() -> Args {
    let mut args = Args {
        shards: 0,
        scenario: "stress".to_string(),
        threads: 0,
        seed: 2_026,
        quick: true,
        fault_horizon: None,
        json_out: None,
        bin_out: None,
        trace_out: None,
        verify_shard: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut num = |name: &str| -> u64 {
            iter.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage(&format!("{name} needs a non-negative integer")))
        };
        match arg.as_str() {
            "--shards" => args.shards = num("--shards") as u32,
            "--threads" => args.threads = num("--threads") as usize,
            "--seed" => args.seed = num("--seed"),
            "--faults" => args.fault_horizon = Some(num("--faults")),
            "--verify-shard" => args.verify_shard = Some(num("--verify-shard") as u32),
            "--full" => args.quick = false,
            "--quick" => args.quick = true,
            "--scenario" => {
                args.scenario = iter
                    .next()
                    .unwrap_or_else(|| usage("--scenario needs an id"));
            }
            "--json-out" => {
                args.json_out = Some(
                    iter.next()
                        .unwrap_or_else(|| usage("--json-out needs a path")),
                );
            }
            "--bin-out" => {
                args.bin_out = Some(
                    iter.next()
                        .unwrap_or_else(|| usage("--bin-out needs a path")),
                );
            }
            "--trace-out" => {
                args.trace_out = Some(
                    iter.next()
                        .unwrap_or_else(|| usage("--trace-out needs a path")),
                );
            }
            _ => usage(&format!("unknown option {arg}")),
        }
    }
    if args.shards == 0 {
        usage("--shards N (N >= 1) is required");
    }
    args
}

fn main() {
    let args = parse_args();
    let scenario = Scenario::parse(&args.scenario, args.quick).unwrap_or_else(|e| usage(&e));
    // The determinism check compares JSONL exports, so the whole fleet
    // runs with JSONL capture when a verification shard was requested.
    let sink = if args.verify_shard.is_some() {
        SinkSpec::Jsonl
    } else {
        SinkSpec::Metrics
    };
    // A `{shard}` template streams every shard's binary log during the
    // fleet run itself; a plain path falls back to replaying shard 0
    // after the run (below).
    let bin_template = args
        .bin_out
        .as_ref()
        .filter(|path| path.contains("{shard}"))
        .cloned();
    let factory = ScenarioFactory::new(scenario, args.seed)
        .with_sink(sink)
        .with_profile(true)
        .with_fault_horizon(args.fault_horizon)
        .with_bin_template(bin_template.clone());
    let config = FleetConfig::new(args.shards).with_threads(args.threads);

    println!(
        "== fleet_bench: scenario={} shards={} threads={} seed={} mode={} ==\n",
        scenario.id(),
        args.shards,
        config.effective_threads(),
        args.seed,
        if args.quick { "quick" } else { "full" },
    );
    let outcome = run_fleet(&factory, &config);
    let mode = if args.quick { "quick" } else { "full" };
    let result = FleetBenchResult::from_outcome(scenario.id(), mode, args.seed, &outcome);

    let rows: Vec<Vec<String>> = result
        .per_shard
        .iter()
        .map(|s| {
            vec![
                s.shard.to_string(),
                format!("{:#018x}", s.seed),
                s.events.to_string(),
                s.sim_cycles.to_string(),
            ]
        })
        .collect();
    print_table(&["shard", "seed", "events", "sim_cycles"], &rows);

    println!(
        "\naggregate: {} events over {} sim-cycles in {:.3} ms on {} thread(s)",
        result.events,
        result.sim_cycles,
        result.wall_ns as f64 / 1e6,
        result.threads,
    );
    println!(
        "throughput: {:>12.0} events/s   {:>12.0} events/s/core",
        result.events_per_sec, result.events_per_sec_per_core,
    );
    println!(
        "rotations:  {:>12}             latency p50 {} / p99 {} cycles",
        result.rotations_completed, result.latency_p50, result.latency_p99,
    );

    if let Some(path) = &args.json_out {
        std::fs::write(path, result.to_json()).expect("write fleet BENCH file");
        println!("wrote {path}");
    } else {
        let path = fleet_file_name(scenario.id());
        std::fs::write(&path, result.to_json()).expect("write fleet BENCH file");
        println!("wrote {path}");
    }

    if let Some(template) = &bin_template {
        println!(
            "per-shard binary exports written to {} (shards 0..{})",
            template, args.shards
        );
    } else if let Some(path) = &args.bin_out {
        // Shard replay is deterministic, so replaying shard 0 with
        // binary capture exports the exact event stream the fleet ran.
        let out = factory.spec_for(0).with_sink(SinkSpec::Binary).run();
        let bytes = out.binary.expect("binary capture was requested");
        std::fs::write(path, &bytes).expect("write binary export");
        println!(
            "shard 0 binary export written to {path} ({} bytes, {} events)",
            bytes.len(),
            out.events
        );
    }

    if let Some(path) = &args.trace_out {
        // Replay shard 0 with timeline capture and render the Chrome
        // trace (per-container residency/rotation tracks, per-task SI
        // slices, occupancy and bus counters).
        let out = factory.spec_for(0).with_sink(SinkSpec::Timeline).run();
        let timeline = out.timeline.expect("timeline capture was requested");
        let config = rispp::obs::TraceConfig::infer(&timeline);
        let trace = rispp::obs::render_chrome_trace(&timeline, out.host.as_ref(), &config);
        std::fs::write(path, &trace).expect("write Chrome trace");
        println!(
            "shard 0 Chrome trace written to {path} ({} events; open in Perfetto)",
            timeline.len()
        );
    }

    if let Some(shard) = args.verify_shard {
        if shard >= args.shards {
            usage("--verify-shard must name a shard inside the fleet");
        }
        let fleet_jsonl = outcome.shards[shard as usize]
            .jsonl
            .as_deref()
            .expect("fleet ran with JSONL capture");
        let replay = factory.spec_for(shard).run();
        let replay_jsonl = replay.jsonl.as_deref().expect("replay captures JSONL");
        if fleet_jsonl == replay_jsonl {
            println!(
                "verify: shard {shard} replayed bit-exactly ({} JSONL bytes)",
                fleet_jsonl.len()
            );
        } else {
            eprintln!("verify: shard {shard} DIVERGED on standalone replay");
            std::process::exit(1);
        }
    }
}
