//! Live metrics serving: tail an event export, fold it through
//! [`MetricsSink`], expose Prometheus + a JSON status doc over HTTP.
//!
//! This is the layer behind the `rispp_serve` binary. A [`Follower`]
//! tails a growing log file — binary or JSONL, auto-detected from the
//! first bytes — and replays each newly appended record into a shared
//! [`LiveState`]. A hand-rolled HTTP/1.1 server (plain
//! [`std::net::TcpListener`], no dependencies) answers:
//!
//! * `GET /metrics` — the Prometheus exposition of a settled clone of
//!   the folding sink, so the values equal what an offline replay of
//!   the same log prefix would report;
//! * `GET /status` (or `/`) — a small JSON doc: records folded, newest
//!   timestamp, detected format, decode error if any, and headline
//!   summary numbers.
//!
//! The folding sink itself is never `finish`ed — responders clone it
//! and settle the clone, so serving stays incremental while each
//! response is self-consistent.

use std::io::{self, BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rispp::obs::bin::{self, StreamDecoder};
use rispp::obs::{jsonl, EventSink, MetricsSink, NullSink};

/// How the [`Follower`] is decoding its input.
enum FollowState {
    /// Fewer than four bytes seen — format not yet decided.
    Probing(Vec<u8>),
    /// Binary export: incremental record decoding.
    Binary(StreamDecoder),
    /// JSONL export: byte carry split on newlines.
    Jsonl {
        /// Bytes after the last complete line (may split UTF-8).
        carry: Vec<u8>,
        /// Non-empty lines consumed so far (header detection).
        lines: usize,
    },
}

/// Incrementally tails an event log and replays newly appended records
/// into any [`EventSink`]. The format — binary ([`bin`]) or JSONL —
/// is auto-detected from the first four bytes via [`bin::is_binary`].
///
/// A missing file is not an error: the run may not have created it
/// yet, so [`Follower::poll`] simply reports zero new records.
pub struct Follower {
    path: PathBuf,
    offset: u64,
    state: FollowState,
}

fn invalid_data(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl Follower {
    /// Tails `path` from the beginning.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Follower {
            path: path.into(),
            offset: 0,
            state: FollowState::Probing(Vec::new()),
        }
    }

    /// The detected input format, once enough bytes have arrived.
    #[must_use]
    pub fn format(&self) -> Option<&'static str> {
        match self.state {
            FollowState::Probing(_) => None,
            FollowState::Binary(_) => Some("binary"),
            FollowState::Jsonl { .. } => Some("jsonl"),
        }
    }

    /// Bytes consumed from the file so far.
    #[must_use]
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Reads everything appended since the last poll and replays the
    /// complete records among it into `sink`. Returns how many records
    /// were emitted.
    ///
    /// # Errors
    ///
    /// I/O errors reading the file (a missing file is treated as "no
    /// bytes yet"), a shrinking file (rotation is not supported), or a
    /// decode error from either codec — including a refused future
    /// `schema_version`. Decode errors are not recoverable: the caller
    /// should stop polling and surface the message.
    pub fn poll<S: EventSink>(&mut self, sink: &mut S) -> io::Result<u64> {
        let mut file = match std::fs::File::open(&self.path) {
            Ok(file) => file,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let len = file.metadata()?.len();
        if len < self.offset {
            return Err(invalid_data(format!(
                "{} shrank from {} to {len} bytes (log rotation is not supported)",
                self.path.display(),
                self.offset
            )));
        }
        if len == self.offset {
            return Ok(0);
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let mut fresh = Vec::with_capacity((len - self.offset) as usize);
        file.read_to_end(&mut fresh)?;
        self.offset += fresh.len() as u64;
        self.ingest(&fresh, sink)
    }

    fn ingest<S: EventSink>(&mut self, bytes: &[u8], sink: &mut S) -> io::Result<u64> {
        if let FollowState::Probing(probe) = &mut self.state {
            probe.extend_from_slice(bytes);
            if probe.len() < bin::MAGIC.len() {
                return Ok(0);
            }
            let buffered = std::mem::take(probe);
            self.state = if bin::is_binary(&buffered) {
                FollowState::Binary(StreamDecoder::new())
            } else {
                FollowState::Jsonl {
                    carry: Vec::new(),
                    lines: 0,
                }
            };
            return self.decode(&buffered, sink);
        }
        self.decode(bytes, sink)
    }

    fn decode<S: EventSink>(&mut self, bytes: &[u8], sink: &mut S) -> io::Result<u64> {
        let mut emitted = 0;
        match &mut self.state {
            FollowState::Probing(_) => unreachable!("decode is only called once decided"),
            FollowState::Binary(decoder) => {
                decoder.feed(bytes);
                while let Some(record) = decoder.next_record().map_err(invalid_data)? {
                    sink.emit(record.at, &record.event);
                    emitted += 1;
                }
            }
            FollowState::Jsonl { carry, lines } => {
                carry.extend_from_slice(bytes);
                // Replay every complete line; keep the partial tail.
                while let Some(nl) = carry.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = carry.drain(..=nl).collect();
                    let text = std::str::from_utf8(&line[..nl]).map_err(invalid_data)?;
                    if text.trim().is_empty() {
                        continue;
                    }
                    *lines += 1;
                    if *lines == 1 && text.contains("\"schema_version\"") {
                        // First line is the header: validate it (this
                        // refuses future versions), emit nothing.
                        jsonl::replay(text, &mut NullSink).map_err(invalid_data)?;
                        continue;
                    }
                    let record = jsonl::decode(text).map_err(invalid_data)?;
                    sink.emit(record.at, &record.event);
                    emitted += 1;
                }
            }
        }
        Ok(emitted)
    }
}

/// The state shared between the tailing thread and HTTP responders.
#[derive(Debug)]
pub struct LiveState {
    /// The folding sink. Never settled in place — responders clone it
    /// and call `finish` on the clone.
    pub metrics: MetricsSink,
    /// Records folded so far.
    pub records: u64,
    /// Timestamp of the newest folded record.
    pub last_at: u64,
    /// Detected input format, once known.
    pub format: Option<&'static str>,
    /// First decode error, if any. The tailer stops folding on it but
    /// the server keeps answering so the failure is observable.
    pub error: Option<String>,
}

impl LiveState {
    /// Fresh state around a configured (but empty) metrics sink.
    #[must_use]
    pub fn new(metrics: MetricsSink) -> Self {
        LiveState {
            metrics,
            records: 0,
            last_at: 0,
            format: None,
            error: None,
        }
    }

    /// A settled snapshot of the folding sink: the same values an
    /// offline replay of the consumed log prefix would report.
    #[must_use]
    pub fn settled_metrics(&self) -> MetricsSink {
        let mut snapshot = self.metrics.clone();
        snapshot.finish();
        snapshot
    }

    /// The `/status` JSON document.
    #[must_use]
    pub fn render_status(&self) -> String {
        let summary = self.settled_metrics().summary();
        let format = self
            .format
            .map_or_else(|| "null".to_string(), |f| format!("\"{f}\""));
        let error = self.error.as_ref().map_or_else(
            || "null".to_string(),
            |e| format!("\"{}\"", e.replace('\\', "\\\\").replace('"', "\\\"")),
        );
        format!(
            concat!(
                "{{\"records\":{},\"last_at\":{},\"format\":{},\"error\":{},",
                "\"executions_total\":{},\"rotations_completed\":{},",
                "\"hw_fraction\":{},\"fabric_occupancy\":{},\"dropped_events\":{}}}\n"
            ),
            self.records,
            self.last_at,
            format,
            error,
            summary.executions_total,
            summary.rotations_completed,
            summary.hw_fraction,
            summary.fabric_occupancy,
            summary.dropped_events,
        )
    }
}

/// Folds records into a [`LiveState`], keeping the counters in step
/// with the metrics sink.
struct FoldSink<'a> {
    state: &'a mut LiveState,
}

impl EventSink for FoldSink<'_> {
    fn emit(&mut self, at: u64, event: &rispp::obs::Event) {
        self.state.metrics.emit(at, event);
        self.state.records += 1;
        self.state.last_at = at;
    }
}

/// One polling pass: drains everything the file gained since last time
/// into the shared state. A decode error is recorded in
/// [`LiveState::error`] and reported as `Err`; callers should stop
/// polling then (the data will not get better).
///
/// # Errors
///
/// Propagates [`Follower::poll`] errors after recording them.
pub fn poll_into(follower: &mut Follower, state: &Mutex<LiveState>) -> io::Result<u64> {
    let mut guard = state.lock().expect("live state lock");
    let result = follower.poll(&mut FoldSink { state: &mut guard });
    guard.format = follower.format();
    if let Err(e) = &result {
        guard.error = Some(e.to_string());
    }
    result
}

/// Runs [`poll_into`] every `poll` until `stop` is set or a decode
/// error ends the tail. Serving continues either way; the error is
/// visible in `/status`.
pub fn tail_loop(
    mut follower: Follower,
    state: &Mutex<LiveState>,
    poll: Duration,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::Relaxed) {
        if poll_into(&mut follower, state).is_err() {
            return;
        }
        std::thread::sleep(poll);
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Answers one HTTP connection: `GET /metrics`, `GET /status` or
/// `GET /`; everything else is 404, non-GET methods are 405.
///
/// # Errors
///
/// I/O errors talking to the peer.
pub fn handle_connection(mut stream: TcpStream, state: &Mutex<LiveState>) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut request_line = String::new();
    BufReader::new(&stream).read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return write_response(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
    }
    match path {
        "/metrics" => {
            let body = {
                let guard = state.lock().expect("live state lock");
                guard.settled_metrics().render_prometheus()
            };
            write_response(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/status" | "/" => {
            let body = state.lock().expect("live state lock").render_status();
            write_response(
                &mut stream,
                "200 OK",
                "application/json; charset=utf-8",
                &body,
            )
        }
        _ => write_response(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "try /metrics or /status\n",
        ),
    }
}

/// Accept-loop over an already-bound listener. With
/// `max_requests = Some(n)` the loop returns after answering `n`
/// connections (smoke tests); `None` serves forever.
///
/// # Errors
///
/// Only fatal accept errors; per-connection errors are logged to
/// stderr and skipped.
pub fn serve(
    listener: &TcpListener,
    state: &Mutex<LiveState>,
    max_requests: Option<u64>,
) -> io::Result<()> {
    let mut answered = 0u64;
    while max_requests.is_none_or(|n| answered < n) {
        let (stream, _) = listener.accept()?;
        if let Err(e) = handle_connection(stream, state) {
            eprintln!("rispp_serve: connection error: {e}");
        }
        answered += 1;
    }
    Ok(())
}

/// Everything the `rispp_serve` binary needs to run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The event log to tail (binary or JSONL, auto-detected).
    pub input: PathBuf,
    /// Listen address, e.g. `127.0.0.1:9464`.
    pub addr: String,
    /// Tail-poll interval in milliseconds.
    pub poll_ms: u64,
    /// Exit after this many answered requests (`None` = serve forever).
    pub max_requests: Option<u64>,
    /// Container count for the occupancy denominator (0 = grow on
    /// demand, matching `ReportConfig::infer` on a complete log).
    pub containers: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            input: PathBuf::new(),
            addr: "127.0.0.1:9464".to_string(),
            poll_ms: 200,
            max_requests: None,
            containers: 0,
        }
    }
}

/// Binds, spawns the tailing thread and serves until `max_requests`
/// is exhausted (or forever). This is `rispp_serve`'s whole main.
///
/// # Errors
///
/// Binding or accepting on the listen address.
pub fn run_serve(opts: &ServeOptions) -> io::Result<()> {
    let metrics = if opts.containers > 0 {
        MetricsSink::new().with_containers(opts.containers)
    } else {
        MetricsSink::new()
    };
    let state = Arc::new(Mutex::new(LiveState::new(metrics)));
    let listener = TcpListener::bind(&opts.addr)?;
    eprintln!(
        "rispp_serve: tailing {} — metrics at http://{}/metrics",
        opts.input.display(),
        listener.local_addr()?
    );
    let stop = Arc::new(AtomicBool::new(false));
    let tail = {
        let follower = Follower::new(&opts.input);
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        let poll = Duration::from_millis(opts.poll_ms.max(1));
        std::thread::spawn(move || tail_loop(follower, &state, poll, &stop))
    };
    let result = serve(&listener, &state, opts.max_requests);
    stop.store(true, Ordering::Relaxed);
    let _ = tail.join();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rispp::obs::{BinarySink, JsonlSink, SinkHandle, TimelineSink};
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::sync::atomic::AtomicU64;

    static UNIQUE: AtomicU64 = AtomicU64::new(0);

    /// A scratch file path unique to this process and call site.
    fn scratch(tag: &str) -> PathBuf {
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("rispp_serve_test_{}_{tag}_{n}", std::process::id()))
    }

    fn fig6_export(binary: bool) -> Vec<u8> {
        let (mut engine, _) = rispp::sim::scenario::fig6_engine();
        if binary {
            let sink = Rc::new(RefCell::new(BinarySink::new(Vec::new())));
            engine.attach_sink(SinkHandle::shared(sink.clone()));
            engine.run(100_000);
            drop(engine);
            Rc::try_unwrap(sink).unwrap().into_inner().into_inner()
        } else {
            let sink = Rc::new(RefCell::new(JsonlSink::new(Vec::new())));
            engine.attach_sink(SinkHandle::shared(sink.clone()));
            engine.run(100_000);
            let bytes = sink.borrow().writer().clone();
            bytes
        }
    }

    fn offline_record_count(bytes: &[u8]) -> u64 {
        let mut t = TimelineSink::new();
        if rispp::obs::bin::is_binary(bytes) {
            rispp::obs::bin::replay(bytes, &mut t).unwrap();
        } else {
            jsonl::replay(std::str::from_utf8(bytes).unwrap(), &mut t).unwrap();
        }
        t.timeline().len() as u64
    }

    #[test]
    fn follower_tails_a_growing_binary_log() {
        let bytes = fig6_export(true);
        let path = scratch("bin");
        let mut follower = Follower::new(&path);
        let mut sink = TimelineSink::new();

        // Nothing there yet: not an error.
        assert_eq!(follower.poll(&mut sink).unwrap(), 0);
        assert_eq!(follower.format(), None);

        // Arrives in three chunks, cut mid-record.
        let cuts = [bytes.len() / 3, 2 * bytes.len() / 3, bytes.len()];
        let mut total = 0;
        for cut in cuts {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            total += follower.poll(&mut sink).unwrap();
        }
        assert_eq!(follower.format(), Some("binary"));
        assert_eq!(total, offline_record_count(&bytes));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn follower_tails_a_growing_jsonl_log() {
        let bytes = fig6_export(false);
        let path = scratch("jsonl");
        let mut follower = Follower::new(&path);
        let mut sink = TimelineSink::new();
        // Cut mid-line (and mid-UTF-8 is impossible here, but mid-line
        // carries exercise the carry buffer).
        let cuts = [7, bytes.len() / 2, bytes.len()];
        let mut total = 0;
        for cut in cuts {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            total += follower.poll(&mut sink).unwrap();
        }
        assert_eq!(follower.format(), Some("jsonl"));
        assert_eq!(total, offline_record_count(&bytes));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn follower_refuses_a_shrinking_file() {
        let path = scratch("shrink");
        std::fs::write(&path, fig6_export(true)).unwrap();
        let mut follower = Follower::new(&path);
        follower.poll(&mut NullSink).unwrap();
        std::fs::write(&path, b"").unwrap();
        assert!(follower.poll(&mut NullSink).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn served_metrics_match_an_offline_replay_of_the_same_log() {
        let bytes = fig6_export(true);
        let path = scratch("serve");
        std::fs::write(&path, &bytes).unwrap();

        // Offline truth: replay the log into an identically configured
        // sink and settle it.
        let mut offline = MetricsSink::new().with_containers(6);
        rispp::obs::bin::replay(&bytes, &mut offline).unwrap();
        offline.finish();

        // Live: one poll, then serve two requests on an OS-picked port.
        let state = Arc::new(Mutex::new(LiveState::new(
            MetricsSink::new().with_containers(6),
        )));
        let mut follower = Follower::new(&path);
        poll_into(&mut follower, &state).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || serve(&listener, &state, Some(2)))
        };

        let get = |p: &str| {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(format!("GET {p} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                .unwrap();
            let mut response = String::new();
            BufReader::new(conn).read_to_string(&mut response).unwrap();
            let (head, body) = response.split_once("\r\n\r\n").unwrap();
            assert!(head.starts_with("HTTP/1.1 200 OK"), "head: {head}");
            body.to_string()
        };

        let metrics_body = get("/metrics");
        assert_eq!(metrics_body, offline.render_prometheus());
        assert!(metrics_body.contains("rispp_fabric_occupancy"));

        let status_body = get("/status");
        assert!(status_body.contains("\"format\":\"binary\""));
        assert!(status_body.contains(&format!(
            "\"executions_total\":{}",
            offline.summary().executions_total
        )));

        server.join().unwrap().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_paths_and_methods_are_refused() {
        let state = Arc::new(Mutex::new(LiveState::new(MetricsSink::new())));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || serve(&listener, &state, Some(2)))
        };
        let request = |verb: &str, path: &str| {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(format!("{verb} {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                .unwrap();
            let mut response = String::new();
            BufReader::new(conn).read_to_string(&mut response).unwrap();
            response
        };
        assert!(request("GET", "/nope").starts_with("HTTP/1.1 404"));
        assert!(request("POST", "/metrics").starts_with("HTTP/1.1 405"));
        server.join().unwrap().unwrap();
    }

    #[test]
    fn status_reports_decode_errors_without_killing_the_server() {
        let path = scratch("corrupt");
        std::fs::write(&path, b"this is not an event log at all\n").unwrap();
        let state = Arc::new(Mutex::new(LiveState::new(MetricsSink::new())));
        let mut follower = Follower::new(&path);
        assert!(poll_into(&mut follower, &state).is_err());
        let status = state.lock().unwrap().render_status();
        assert!(status.contains("\"error\":\""), "status: {status}");
        std::fs::remove_file(&path).unwrap();
    }
}
