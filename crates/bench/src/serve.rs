//! Fleet-scale live observability: tail N event exports, fold each
//! through per-shard metrics + sliding windows, evaluate SLO alert
//! rules, and expose everything over HTTP.
//!
//! This is the layer behind the `rispp_serve` binary. One [`Follower`]
//! per shard tails a growing log file — binary or JSONL, auto-detected
//! from the first bytes — and replays each newly appended record into
//! that shard's [`LiveState`] inside a shared [`FleetState`]. A
//! hand-rolled HTTP/1.1 server (plain [`std::net::TcpListener`], no
//! dependencies) answers:
//!
//! * `GET /metrics` — the Prometheus exposition. With one shard this is
//!   the full per-container exposition of a settled clone of the
//!   folding sink (equal to an offline replay of the same log prefix);
//!   with N shards every summary series appears once unlabeled (the
//!   fleet aggregate) and once per shard as `{shard="k"}`. Sliding
//!   [`window`](rispp::obs::window) series, follower counters and
//!   `rispp_alert_firing` gauges follow in every mode.
//! * `GET /status` (or `/`) — a small JSON doc: records folded, newest
//!   timestamp, detected format, decode error if any, reopen count and
//!   headline summary numbers (fleet-level when following N logs).
//! * `GET /shards` — a JSON array with one entry per followed log.
//! * `GET /alerts` — the alert rules' current values and firing state.
//!
//! The folding sinks are never `finish`ed in place — responders clone
//! and settle them, so serving stays incremental while each response is
//! self-consistent. Everything timed is keyed by *simulated* cycles
//! from the event stream, so a replay of a finished log serves exactly
//! the numbers the live follow served.

use std::io::{self, Read, Seek, SeekFrom, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rispp::obs::alert::{AlertEngine, AlertRule};
use rispp::obs::bin::{self, StreamDecoder};
use rispp::obs::window::{WindowConfig, WindowSink, WindowSnapshot};
use rispp::obs::{jsonl, EventSink, MetricsSink, MetricsSummary, NullSink};

/// How the [`Follower`] is decoding its input.
enum FollowState {
    /// Fewer than four bytes seen — format not yet decided.
    Probing(Vec<u8>),
    /// Binary export: incremental record decoding.
    Binary(StreamDecoder),
    /// JSONL export: byte carry split on newlines.
    Jsonl {
        /// Bytes after the last complete line (may split UTF-8).
        carry: Vec<u8>,
        /// Non-empty lines consumed so far (header detection).
        lines: usize,
    },
}

/// Incrementally tails an event log and replays newly appended records
/// into any [`EventSink`]. The format — binary ([`bin`]) or JSONL —
/// is auto-detected from the first four bytes via [`bin::is_binary`].
///
/// A missing file is not an error: the run may not have created it
/// yet, so [`Follower::poll`] simply reports zero new records. A
/// *shrinking* file means truncation or log rotation: the follower
/// reopens from offset 0, re-probes the format, clears any decode
/// error, and counts the event in [`Follower::reopens`].
pub struct Follower {
    path: PathBuf,
    offset: u64,
    state: FollowState,
    reopens: u64,
    /// A decode error is sticky — the bytes will not get better — until
    /// the file shrinks and the follower starts over.
    poisoned: Option<String>,
}

fn invalid_data(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl Follower {
    /// Tails `path` from the beginning.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Follower {
            path: path.into(),
            offset: 0,
            state: FollowState::Probing(Vec::new()),
            reopens: 0,
            poisoned: None,
        }
    }

    /// The path being tailed.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The detected input format, once enough bytes have arrived.
    #[must_use]
    pub fn format(&self) -> Option<&'static str> {
        match self.state {
            FollowState::Probing(_) => None,
            FollowState::Binary(_) => Some("binary"),
            FollowState::Jsonl { .. } => Some("jsonl"),
        }
    }

    /// Bytes consumed from the file so far.
    #[must_use]
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// How many times the follower restarted from offset 0 because the
    /// file shrank (truncation / log rotation).
    #[must_use]
    pub fn reopens(&self) -> u64 {
        self.reopens
    }

    /// Reads everything appended since the last poll and replays the
    /// complete records among it into `sink`. Returns how many records
    /// were emitted.
    ///
    /// On a shrinking file the follower resets — offset 0, format
    /// re-probe, decode error cleared — and returns `Ok(0)` without
    /// emitting; the *next* poll reads the new content. The reset
    /// happens before any new bytes are folded, so a caller that
    /// watches [`Follower::reopens`] can discard state folded from the
    /// previous incarnation first.
    ///
    /// # Errors
    ///
    /// I/O errors reading the file (a missing file is treated as "no
    /// bytes yet") or a decode error from either codec — including a
    /// refused future `schema_version`. Decode errors are sticky: every
    /// later poll re-reports the same error until the file shrinks and
    /// the follower starts over.
    pub fn poll<S: EventSink>(&mut self, sink: &mut S) -> io::Result<u64> {
        let mut file = match std::fs::File::open(&self.path) {
            Ok(file) => file,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let len = file.metadata()?.len();
        if len < self.offset {
            self.offset = 0;
            self.state = FollowState::Probing(Vec::new());
            self.poisoned = None;
            self.reopens += 1;
            return Ok(0);
        }
        if let Some(msg) = &self.poisoned {
            return Err(invalid_data(msg));
        }
        if len == self.offset {
            return Ok(0);
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let mut fresh = Vec::with_capacity((len - self.offset) as usize);
        file.read_to_end(&mut fresh)?;
        self.offset += fresh.len() as u64;
        let result = self.ingest(&fresh, sink);
        if let Err(e) = &result {
            self.poisoned = Some(e.to_string());
        }
        result
    }

    fn ingest<S: EventSink>(&mut self, bytes: &[u8], sink: &mut S) -> io::Result<u64> {
        if let FollowState::Probing(probe) = &mut self.state {
            probe.extend_from_slice(bytes);
            if probe.len() < bin::MAGIC.len() {
                return Ok(0);
            }
            let buffered = std::mem::take(probe);
            self.state = if bin::is_binary(&buffered) {
                FollowState::Binary(StreamDecoder::new())
            } else {
                FollowState::Jsonl {
                    carry: Vec::new(),
                    lines: 0,
                }
            };
            return self.decode(&buffered, sink);
        }
        self.decode(bytes, sink)
    }

    fn decode<S: EventSink>(&mut self, bytes: &[u8], sink: &mut S) -> io::Result<u64> {
        let mut emitted = 0;
        match &mut self.state {
            FollowState::Probing(_) => unreachable!("decode is only called once decided"),
            FollowState::Binary(decoder) => {
                decoder.feed(bytes);
                while let Some(record) = decoder.next_record().map_err(invalid_data)? {
                    sink.emit(record.at, &record.event);
                    emitted += 1;
                }
            }
            FollowState::Jsonl { carry, lines } => {
                carry.extend_from_slice(bytes);
                // Replay every complete line; keep the partial tail.
                while let Some(nl) = carry.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = carry.drain(..=nl).collect();
                    let text = std::str::from_utf8(&line[..nl]).map_err(invalid_data)?;
                    if text.trim().is_empty() {
                        continue;
                    }
                    *lines += 1;
                    if *lines == 1 && text.contains("\"schema_version\"") {
                        // First line is the header: validate it (this
                        // refuses future versions), emit nothing.
                        jsonl::replay(text, &mut NullSink).map_err(invalid_data)?;
                        continue;
                    }
                    let record = jsonl::decode(text).map_err(invalid_data)?;
                    sink.emit(record.at, &record.event);
                    emitted += 1;
                }
            }
        }
        Ok(emitted)
    }
}

fn json_string(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// One shard's folding state: the cumulative metrics sink, the sliding
/// window, and follower bookkeeping.
#[derive(Debug)]
pub struct LiveState {
    /// The folding sink. Never settled in place — responders clone it
    /// and call `finish` on the clone.
    pub metrics: MetricsSink,
    /// Sliding-window rates over the same stream.
    pub window: WindowSink,
    /// Records folded so far.
    pub records: u64,
    /// Timestamp of the newest folded record.
    pub last_at: u64,
    /// Detected input format, once known.
    pub format: Option<&'static str>,
    /// Current decode error, if any. The server keeps answering so the
    /// failure is observable; the error clears if the log is truncated
    /// and rewritten (see [`Follower::reopens`]).
    pub error: Option<String>,
    /// Times the follower restarted because the file shrank.
    pub reopens: u64,
    /// Container count the metrics sink was configured with (kept so a
    /// reopen can rebuild an identically configured sink).
    containers: usize,
}

impl LiveState {
    /// Fresh state: an empty metrics sink (`containers = 0` grows on
    /// demand) and an empty sliding window of the given shape.
    #[must_use]
    pub fn new(containers: usize, window: WindowConfig) -> Self {
        LiveState {
            metrics: build_metrics(containers),
            window: WindowSink::new(window),
            records: 0,
            last_at: 0,
            format: None,
            error: None,
            reopens: 0,
            containers,
        }
    }

    /// Discards everything folded so far (the log was truncated and is
    /// a new stream), keeping the configuration.
    pub fn reset_fold(&mut self) {
        self.metrics = build_metrics(self.containers);
        self.window = WindowSink::new(*self.window.config());
        self.records = 0;
        self.last_at = 0;
        self.format = None;
    }

    /// A settled snapshot of the folding sink: the same values an
    /// offline replay of the consumed log prefix would report.
    #[must_use]
    pub fn settled_metrics(&self) -> MetricsSink {
        let mut snapshot = self.metrics.clone();
        snapshot.finish();
        snapshot
    }

    /// The per-shard `/status`-style JSON document.
    #[must_use]
    pub fn render_status(&self) -> String {
        let summary = self.settled_metrics().summary();
        let format = self
            .format
            .map_or_else(|| "null".to_string(), |f| format!("\"{f}\""));
        let error = self
            .error
            .as_ref()
            .map_or_else(|| "null".to_string(), |e| json_string(e));
        format!(
            concat!(
                "{{\"records\":{},\"last_at\":{},\"format\":{},\"error\":{},",
                "\"reopens\":{},\"executions_total\":{},\"rotations_completed\":{},",
                "\"hw_fraction\":{},\"fabric_occupancy\":{},\"dropped_events\":{}}}\n"
            ),
            self.records,
            self.last_at,
            format,
            error,
            self.reopens,
            summary.executions_total,
            summary.rotations_completed,
            summary.hw_fraction,
            summary.fabric_occupancy,
            summary.dropped_events,
        )
    }
}

fn build_metrics(containers: usize) -> MetricsSink {
    if containers > 0 {
        MetricsSink::new().with_containers(containers)
    } else {
        MetricsSink::new()
    }
}

/// Folds records into a [`LiveState`], keeping the counters in step
/// with the metrics sink and the sliding window.
struct FoldSink<'a> {
    state: &'a mut LiveState,
}

impl EventSink for FoldSink<'_> {
    fn emit(&mut self, at: u64, event: &rispp::obs::Event) {
        self.state.metrics.emit(at, event);
        self.state.window.emit(at, event);
        self.state.records += 1;
        self.state.last_at = at;
    }
}

/// One polling pass for one shard: drains everything the file gained
/// since last time into the shard's state. A decode error is recorded
/// in [`LiveState::error`] (and reported as `Err`); a successful poll
/// clears it. A reopen (shrunk file) discards the state folded from the
/// previous incarnation of the log.
///
/// # Errors
///
/// Propagates [`Follower::poll`] errors after recording them.
pub fn poll_shard(follower: &mut Follower, state: &mut LiveState) -> io::Result<u64> {
    let reopens_before = follower.reopens();
    let result = follower.poll(&mut FoldSink { state });
    if follower.reopens() > reopens_before {
        state.reset_fold();
    }
    state.format = follower.format();
    state.reopens = follower.reopens();
    match &result {
        Ok(_) => state.error = None,
        Err(e) => state.error = Some(e.to_string()),
    }
    result
}

/// The names [`AlertRule::metric`] may use, resolved against the fleet
/// aggregate on every poll. Cumulative summary fields first, then the
/// sliding-window rates, then follower bookkeeping.
#[must_use]
pub fn known_metrics() -> &'static [&'static str] {
    &[
        "elapsed_cycles",
        "fabric_occupancy",
        "logic_utilization",
        "bus_busy_fraction",
        "rotations_completed",
        "forecast_windows",
        "forecast_precision",
        "forecast_recall",
        "fc_hit_rate",
        "executions_total",
        "hw_fraction",
        "sw_fallback_rate",
        "cycles_saved_vs_sw",
        "dropped_events",
        "selection_cache_hits",
        "selection_cache_misses",
        "selection_cache_invalidations",
        "records",
        "reopens",
        "window_cycles",
        "window_events_per_kcycle",
        "window_rotations_per_kcycle",
        "window_sw_fallback_rate",
        "window_latency_p50_cycles",
        "window_latency_p99_cycles",
        "window_late_events",
    ]
}

/// Resolves one of [`known_metrics`] against a summary + window
/// cross-section. `None` for unknown names.
fn metric_value(
    name: &str,
    summary: &MetricsSummary,
    window: &WindowSnapshot,
    records: u64,
    reopens: u64,
) -> Option<f64> {
    Some(match name {
        "elapsed_cycles" => summary.elapsed_cycles as f64,
        "fabric_occupancy" => summary.fabric_occupancy,
        "logic_utilization" => summary.logic_utilization,
        "bus_busy_fraction" => summary.bus_busy_fraction,
        "rotations_completed" => summary.rotations_completed as f64,
        "forecast_windows" => summary.forecast_windows as f64,
        "forecast_precision" => summary.forecast_precision,
        "forecast_recall" => summary.forecast_recall,
        "fc_hit_rate" => summary.fc_hit_rate?,
        "executions_total" => summary.executions_total as f64,
        "hw_fraction" => summary.hw_fraction,
        "sw_fallback_rate" => 1.0 - summary.hw_fraction,
        "cycles_saved_vs_sw" => summary.cycles_saved_vs_sw as f64,
        "dropped_events" => summary.dropped_events as f64,
        "selection_cache_hits" => summary.selection_cache_hits as f64,
        "selection_cache_misses" => summary.selection_cache_misses as f64,
        "selection_cache_invalidations" => summary.selection_cache_invalidations as f64,
        "records" => records as f64,
        "reopens" => reopens as f64,
        "window_cycles" => window.window_cycles as f64,
        "window_events_per_kcycle" => window.events_per_kcycle(),
        "window_rotations_per_kcycle" => window.rotations_per_kcycle(),
        "window_sw_fallback_rate" => window.sw_fallback_rate(),
        "window_latency_p50_cycles" => window.latency_p50() as f64,
        "window_latency_p99_cycles" => window.latency_p99() as f64,
        "window_late_events" => window.late_events as f64,
        _ => return None,
    })
}

/// The state shared between the tailing thread and HTTP responders:
/// one [`LiveState`] per followed log, plus the optional alert engine.
#[derive(Debug)]
pub struct FleetState {
    /// Per-shard folding states, indexed like the followed paths.
    pub shards: Vec<LiveState>,
    /// The followed paths (for `/shards`).
    pub paths: Vec<PathBuf>,
    /// The SLO alert engine, when rules were loaded.
    pub alerts: Option<AlertEngine>,
}

impl FleetState {
    /// Fresh state for `paths`, each shard with the same sink
    /// configuration.
    #[must_use]
    pub fn new(
        paths: Vec<PathBuf>,
        containers: usize,
        window: WindowConfig,
        alerts: Option<AlertEngine>,
    ) -> Self {
        FleetState {
            shards: paths
                .iter()
                .map(|_| LiveState::new(containers, window))
                .collect(),
            paths,
            alerts,
        }
    }

    /// Largest simulated timestamp folded by any shard — the fleet's
    /// "now" for alert hold-for clocks.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.shards.iter().map(|s| s.last_at).max().unwrap_or(0)
    }

    /// The fleet aggregate: merged settled summaries, merged window
    /// snapshot, total records and reopens.
    #[must_use]
    pub fn aggregates(&self) -> (MetricsSummary, WindowSnapshot, u64, u64) {
        let mut summary = MetricsSummary::default();
        let mut window = WindowSnapshot::default();
        let mut records = 0;
        let mut reopens = 0;
        for shard in &self.shards {
            summary.merge(&shard.settled_metrics().summary());
            window.merge(&shard.window.snapshot());
            records += shard.records;
            reopens += shard.reopens;
        }
        (summary, window, records, reopens)
    }

    /// Evaluates the alert rules (if any) against the current fleet
    /// aggregate with live hold-for semantics. Called on every poll by
    /// the tail loop.
    pub fn evaluate_alerts(&mut self) {
        let now = self.now();
        let (summary, window, records, reopens) = self.aggregates();
        if let Some(engine) = &mut self.alerts {
            engine.evaluate(now, |name| {
                metric_value(name, &summary, &window, records, reopens)
            });
        }
    }

    /// Final one-shot evaluation for the `--check` gate. Returns `true`
    /// when any rule fires on the end-of-log aggregate.
    pub fn check_alerts_final(&mut self) -> bool {
        let now = self.now();
        let (summary, window, records, reopens) = self.aggregates();
        match &mut self.alerts {
            Some(engine) => engine.check_final(now, |name| {
                metric_value(name, &summary, &window, records, reopens)
            }),
            None => false,
        }
    }

    /// The `/metrics` Prometheus exposition. One shard keeps the full
    /// legacy exposition (per-container series included) so it stays
    /// equal to an offline replay; N shards render every summary series
    /// once unlabeled (aggregate) and once per shard as `{shard="k"}`,
    /// each metric family contiguous. Window series, follower counters
    /// and alert gauges follow in every mode.
    #[must_use]
    pub fn render_metrics(&self) -> String {
        let mut out = String::new();
        let fleet = self.shards.len() > 1;
        if !fleet {
            if let Some(shard) = self.shards.first() {
                out.push_str(&shard.settled_metrics().render_prometheus());
            }
        } else {
            let summaries: Vec<MetricsSummary> = self
                .shards
                .iter()
                .map(|s| s.settled_metrics().summary())
                .collect();
            let aggregate = summaries
                .iter()
                .fold(MetricsSummary::default(), |a, s| a.merged(s));
            let per_shard: Vec<Vec<(&str, &str, &str, f64)>> =
                summaries.iter().map(|s| s.prometheus_series()).collect();
            for (i, (name, kind, help, value)) in
                aggregate.prometheus_series().into_iter().enumerate()
            {
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
                out.push_str(&format!("{name} {value}\n"));
                for (k, series) in per_shard.iter().enumerate() {
                    let v = series[i].3;
                    out.push_str(&format!("{name}{{shard=\"{k}\"}} {v}\n"));
                }
            }
        }

        let snapshots: Vec<WindowSnapshot> =
            self.shards.iter().map(|s| s.window.snapshot()).collect();
        let mut aggregate_window = WindowSnapshot::default();
        for snap in &snapshots {
            aggregate_window.merge(snap);
        }
        if !fleet {
            out.push_str(&aggregate_window.render_prometheus("", true));
        } else {
            let per_shard: Vec<Vec<(&str, &str, f64)>> =
                snapshots.iter().map(|s| s.prometheus_series()).collect();
            for (i, (name, help, value)) in
                aggregate_window.prometheus_series().into_iter().enumerate()
            {
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
                out.push_str(&format!("{name} {value}\n"));
                for (k, series) in per_shard.iter().enumerate() {
                    let v = series[i].2;
                    out.push_str(&format!("{name}{{shard=\"{k}\"}} {v}\n"));
                }
            }
        }

        out.push_str("# HELP rispp_shards Shard logs being followed.\n");
        out.push_str("# TYPE rispp_shards gauge\n");
        out.push_str(&format!("rispp_shards {}\n", self.shards.len()));
        let mut follower_counter = |name: &str, help: &str, value: fn(&LiveState) -> u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            let total: u64 = self.shards.iter().map(&value).sum();
            out.push_str(&format!("{name} {total}\n"));
            if fleet {
                for (k, shard) in self.shards.iter().enumerate() {
                    out.push_str(&format!("{name}{{shard=\"{k}\"}} {}\n", value(shard)));
                }
            }
        };
        follower_counter(
            "rispp_follower_records_total",
            "Records folded from the followed logs.",
            |s| s.records,
        );
        follower_counter(
            "rispp_follower_reopens_total",
            "Times a follower restarted because its file shrank.",
            |s| s.reopens,
        );
        if let Some(engine) = &self.alerts {
            out.push_str(&engine.render_prometheus());
        }
        out
    }

    /// The `/status` JSON document: the shard's own doc when following
    /// one log, a fleet-level roll-up when following several.
    #[must_use]
    pub fn render_status(&self) -> String {
        if self.shards.len() == 1 {
            return self.shards[0].render_status();
        }
        let (summary, _, records, reopens) = self.aggregates();
        let mut formats = self.shards.iter().map(|s| s.format);
        let first = formats.next().unwrap_or(None);
        let format = if self.shards.iter().any(|s| s.format != first) {
            "\"mixed\"".to_string()
        } else {
            first.map_or_else(|| "null".to_string(), |f| format!("\"{f}\""))
        };
        let error = self
            .shards
            .iter()
            .find_map(|s| s.error.as_ref())
            .map_or_else(|| "null".to_string(), |e| json_string(e));
        format!(
            concat!(
                "{{\"shards\":{},\"records\":{},\"last_at\":{},\"format\":{},",
                "\"error\":{},\"reopens\":{},\"executions_total\":{},",
                "\"rotations_completed\":{},\"hw_fraction\":{},",
                "\"fabric_occupancy\":{},\"dropped_events\":{}}}\n"
            ),
            self.shards.len(),
            records,
            self.now(),
            format,
            error,
            reopens,
            summary.executions_total,
            summary.rotations_completed,
            summary.hw_fraction,
            summary.fabric_occupancy,
            summary.dropped_events,
        )
    }

    /// The `/shards` JSON document: one entry per followed log.
    #[must_use]
    pub fn render_shards(&self) -> String {
        let mut out = String::from("[");
        for (k, (shard, path)) in self.shards.iter().zip(&self.paths).enumerate() {
            if k > 0 {
                out.push(',');
            }
            let summary = shard.settled_metrics().summary();
            out.push_str(&format!(
                concat!(
                    "{{\"shard\":{},\"path\":{},\"records\":{},\"last_at\":{},",
                    "\"format\":{},\"error\":{},\"reopens\":{},",
                    "\"executions_total\":{},\"rotations_completed\":{},",
                    "\"hw_fraction\":{},\"fabric_occupancy\":{}}}"
                ),
                k,
                json_string(&path.display().to_string()),
                shard.records,
                shard.last_at,
                shard
                    .format
                    .map_or_else(|| "null".to_string(), |f| format!("\"{f}\"")),
                shard
                    .error
                    .as_ref()
                    .map_or_else(|| "null".to_string(), |e| json_string(e)),
                shard.reopens,
                summary.executions_total,
                summary.rotations_completed,
                summary.hw_fraction,
                summary.fabric_occupancy,
            ));
        }
        out.push_str("]\n");
        out
    }

    /// The `/alerts` JSON document.
    #[must_use]
    pub fn render_alerts(&self) -> String {
        let (any_firing, rules) = match &self.alerts {
            Some(engine) => (engine.any_firing(), engine.render_json()),
            None => (false, "[]".to_string()),
        };
        format!(
            "{{\"now\":{},\"any_firing\":{},\"alerts\":{}}}\n",
            self.now(),
            any_firing,
            rules
        )
    }
}

/// One polling pass over every follower, then an alert evaluation.
/// Returns the number of new records folded across the fleet; per-shard
/// decode errors are recorded in the shard states, not returned.
pub fn poll_fleet(followers: &mut [Follower], state: &Mutex<FleetState>) -> u64 {
    let mut guard = state.lock().expect("fleet state lock");
    let mut fresh = 0;
    for (follower, shard) in followers.iter_mut().zip(guard.shards.iter_mut()) {
        fresh += poll_shard(follower, shard).unwrap_or(0);
    }
    guard.evaluate_alerts();
    fresh
}

/// Runs [`poll_fleet`] every `poll` until `stop` is set. Decode errors
/// do not end the tail: they are visible in `/status` and `/shards`,
/// and a truncated-and-rewritten log recovers.
pub fn tail_loop(
    mut followers: Vec<Follower>,
    state: &Mutex<FleetState>,
    poll: Duration,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::Relaxed) {
        poll_fleet(&mut followers, state);
        std::thread::sleep(poll);
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Longest request line accepted before answering 400 — far above any
/// legitimate `GET /metrics`, far below anything that could balloon
/// memory from a garbage peer.
pub const MAX_REQUEST_LINE: usize = 8192;

/// Longest request head (request line + all headers) accepted before
/// answering 400.
pub const MAX_HEAD_BYTES: usize = 65536;

/// Reads the full request head byte-wise (so requests split across TCP
/// segments assemble correctly) up to the blank line, returning the
/// request line; headers are consumed and ignored. Consuming the whole
/// head before responding means closing after the response cannot
/// reset the connection under the peer's feet. `Ok(Err(_))` means the
/// peer sent garbage that deserves a 400.
fn read_request_head(stream: &mut TcpStream) -> io::Result<Result<String, &'static str>> {
    let mut request_line: Option<Vec<u8>> = None;
    let mut line: Vec<u8> = Vec::new();
    let mut total = 0usize;
    let mut byte = [0u8; 1];
    loop {
        if stream.read(&mut byte)? == 0 {
            break; // peer closed mid-head; work with what arrived
        }
        total += 1;
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if line.is_empty() {
                break; // blank line: end of head
            }
            if request_line.is_none() {
                request_line = Some(std::mem::take(&mut line));
            } else {
                line.clear();
            }
            continue;
        }
        line.push(byte[0]);
        if request_line.is_none() && line.len() > MAX_REQUEST_LINE {
            return Ok(Err("request line too long"));
        }
        if total > MAX_HEAD_BYTES {
            return Ok(Err("request head too large"));
        }
    }
    let bytes = request_line.unwrap_or(line);
    match String::from_utf8(bytes) {
        Ok(text) => Ok(Ok(text)),
        Err(_) => Ok(Err("request line is not UTF-8")),
    }
}

/// Half-closes the write side and drains any bytes the peer is still
/// sending (bounded by the read timeout), so the final close never
/// turns into a TCP reset that could clip the response in flight.
fn linger_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut scratch = [0u8; 1024];
    loop {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Answers one HTTP connection: `GET /metrics`, `/status`, `/`,
/// `/shards` or `/alerts`; everything else is 404, non-GET methods are
/// 405, oversized or non-UTF-8 request lines are 400.
///
/// # Errors
///
/// I/O errors talking to the peer.
pub fn handle_connection(mut stream: TcpStream, state: &Mutex<FleetState>) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let text = "text/plain; charset=utf-8";
    let json = "application/json; charset=utf-8";
    let prom = "text/plain; version=0.0.4; charset=utf-8";
    let (status, content_type, body) = match read_request_head(&mut stream)? {
        Err(reason) => ("400 Bad Request", text, format!("{reason}\n")),
        Ok(request_line) => {
            let mut parts = request_line.split_whitespace();
            let method = parts.next().unwrap_or("");
            let path = parts.next().unwrap_or("");
            if method != "GET" {
                (
                    "405 Method Not Allowed",
                    text,
                    "only GET is supported\n".to_string(),
                )
            } else {
                let state = state.lock().expect("fleet state lock");
                match path {
                    "/metrics" => ("200 OK", prom, state.render_metrics()),
                    "/status" | "/" => ("200 OK", json, state.render_status()),
                    "/shards" => ("200 OK", json, state.render_shards()),
                    "/alerts" => ("200 OK", json, state.render_alerts()),
                    _ => (
                        "404 Not Found",
                        text,
                        "try /metrics, /status, /shards or /alerts\n".to_string(),
                    ),
                }
            }
        }
    };
    let written = write_response(&mut stream, status, content_type, &body);
    linger_close(&mut stream);
    written
}

/// Accept-loop over an already-bound listener. With
/// `max_requests = Some(n)` the loop returns after `n` accepted
/// connections (smoke tests); `None` serves forever. *Every* accepted
/// connection counts — including ones answered 400/404/405 and ones
/// that died mid-response — so a noisy scraper cannot keep a
/// `--max-requests` server alive forever.
///
/// # Errors
///
/// Only fatal accept errors; per-connection errors are logged to
/// stderr and skipped.
pub fn serve(
    listener: &TcpListener,
    state: &Mutex<FleetState>,
    max_requests: Option<u64>,
) -> io::Result<()> {
    let mut answered = 0u64;
    while max_requests.is_none_or(|n| answered < n) {
        let (stream, _) = listener.accept()?;
        if let Err(e) = handle_connection(stream, state) {
            eprintln!("rispp_serve: connection error: {e}");
        }
        answered += 1;
    }
    Ok(())
}

/// Matches `name` against a shell-style pattern where `*` matches any
/// run of characters (including none). Iterative two-pointer backtrack,
/// byte-wise.
fn wildcard_match(pattern: &str, name: &str) -> bool {
    let (p, n) = (pattern.as_bytes(), name.as_bytes());
    let (mut pi, mut ni) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ni < n.len() {
        if pi < p.len() && (p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = Some((pi, ni));
            pi += 1;
        } else if let Some((sp, sn)) = star {
            pi = sp + 1;
            ni = sn + 1;
            star = Some((sp, sn + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

/// Expands a glob pattern whose *final path component* may contain `*`
/// wildcards (e.g. `logs/shard-*.bin`) into the sorted list of matching
/// files. A pattern without `*` passes through as-is (existing or not —
/// the follower treats a missing file as "no bytes yet").
///
/// # Errors
///
/// Reading the directory, or a wildcard pattern matching no files.
pub fn expand_glob(pattern: &str) -> io::Result<Vec<PathBuf>> {
    let path = Path::new(pattern);
    let Some(file_pattern) = path.file_name().and_then(|f| f.to_str()) else {
        return Err(invalid_data(format!("bad glob pattern {pattern:?}")));
    };
    if !file_pattern.contains('*') {
        return Ok(vec![path.to_path_buf()]);
    }
    let dir = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent,
        _ => Path::new("."),
    };
    let mut matches: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .filter(|entry| {
            entry
                .file_name()
                .to_str()
                .is_some_and(|name| wildcard_match(file_pattern, name))
        })
        .map(|entry| entry.path())
        .collect();
    matches.sort();
    if matches.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no files match {pattern:?}"),
        ));
    }
    Ok(matches)
}

/// Loads and validates an alert-rule file: TOML subset parse, then
/// every rule's metric checked against [`known_metrics`].
///
/// # Errors
///
/// Reading the file, a parse error (with line number), or an unknown
/// metric name.
pub fn load_alert_rules(path: &Path) -> io::Result<AlertEngine> {
    let text = std::fs::read_to_string(path)?;
    let rules = AlertRule::parse_toml(&text)
        .map_err(|e| invalid_data(format!("{}: {e}", path.display())))?;
    for rule in &rules {
        if !known_metrics().contains(&rule.metric.as_str()) {
            return Err(invalid_data(format!(
                "{}: rule {:?} watches unknown metric {:?} (known: {})",
                path.display(),
                rule.name,
                rule.metric,
                known_metrics().join(", ")
            )));
        }
    }
    Ok(AlertEngine::new(rules))
}

/// Everything the `rispp_serve` binary needs to run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The event logs to tail (binary or JSONL, auto-detected — one
    /// `Follower` per path).
    pub inputs: Vec<PathBuf>,
    /// A glob pattern (final component wildcards, e.g.
    /// `logs/shard-*.bin`) expanded into further inputs at startup.
    pub glob: Option<String>,
    /// Listen address, e.g. `127.0.0.1:9464`.
    pub addr: String,
    /// Tail-poll interval in milliseconds.
    pub poll_ms: u64,
    /// Exit after this many accepted connections (`None` = serve
    /// forever).
    pub max_requests: Option<u64>,
    /// Container count for the occupancy denominator (0 = grow on
    /// demand, matching `ReportConfig::infer` on a complete log).
    pub containers: usize,
    /// Alert-rule file ([`AlertRule::parse_toml`] grammar).
    pub rules: Option<PathBuf>,
    /// Shape of the sliding windows.
    pub window: WindowConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            inputs: Vec::new(),
            glob: None,
            addr: "127.0.0.1:9464".to_string(),
            poll_ms: 200,
            max_requests: None,
            containers: 0,
            rules: None,
            window: WindowConfig::default(),
        }
    }
}

impl ServeOptions {
    /// The full input list: explicit paths plus the expanded glob.
    ///
    /// # Errors
    ///
    /// Glob expansion failures, or no inputs at all.
    pub fn resolve_inputs(&self) -> io::Result<Vec<PathBuf>> {
        let mut inputs = self.inputs.clone();
        if let Some(pattern) = &self.glob {
            inputs.extend(expand_glob(pattern)?);
        }
        if inputs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no input logs (pass paths or --glob)",
            ));
        }
        Ok(inputs)
    }

    fn build_state(&self, inputs: Vec<PathBuf>) -> io::Result<FleetState> {
        let alerts = self.rules.as_deref().map(load_alert_rules).transpose()?;
        Ok(FleetState::new(
            inputs,
            self.containers,
            self.window,
            alerts,
        ))
    }
}

/// Binds, spawns the tailing thread (one pass over every follower per
/// tick) and serves until `max_requests` is exhausted (or forever).
/// This is `rispp_serve`'s whole main in serve mode.
///
/// # Errors
///
/// Input resolution, alert-rule loading, or binding/accepting on the
/// listen address.
pub fn run_serve(opts: &ServeOptions) -> io::Result<()> {
    let inputs = opts.resolve_inputs()?;
    let followers: Vec<Follower> = inputs.iter().map(Follower::new).collect();
    let state = Arc::new(Mutex::new(opts.build_state(inputs.clone())?));
    let listener = TcpListener::bind(&opts.addr)?;
    eprintln!(
        "rispp_serve: tailing {} log(s) — metrics at http://{}/metrics",
        inputs.len(),
        listener.local_addr()?
    );
    let stop = Arc::new(AtomicBool::new(false));
    let tail = {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        let poll = Duration::from_millis(opts.poll_ms.max(1));
        std::thread::spawn(move || tail_loop(followers, &state, poll, &stop))
    };
    let result = serve(&listener, &state, opts.max_requests);
    stop.store(true, Ordering::Relaxed);
    let _ = tail.join();
    result
}

/// The `--check` CI gate: drains every input log completely, evaluates
/// the alert rules once against the end-of-log fleet aggregate
/// ([`AlertEngine::check_final`] semantics), prints each rule's verdict
/// and returns whether any rule fired (the binary maps `true` to a
/// nonzero exit).
///
/// # Errors
///
/// Input resolution, alert-rule loading (rules are required in check
/// mode), or a decode error in any input — a gate must not pass on a
/// log it could not read.
pub fn run_check(opts: &ServeOptions) -> io::Result<bool> {
    if opts.rules.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "--check needs --rules <file>",
        ));
    }
    let inputs = opts.resolve_inputs()?;
    let mut followers: Vec<Follower> = inputs.iter().map(Follower::new).collect();
    let state = Mutex::new(opts.build_state(inputs)?);
    while poll_fleet(&mut followers, &state) > 0 {}
    let mut guard = state.lock().expect("fleet state lock");
    for (shard, path) in guard.shards.iter().zip(&guard.paths) {
        if let Some(error) = &shard.error {
            return Err(invalid_data(format!("{}: {error}", path.display())));
        }
    }
    let firing = guard.check_alerts_final();
    if let Some(engine) = &guard.alerts {
        for status in engine.statuses() {
            let value = status
                .value
                .map_or_else(|| "n/a".to_string(), |v| format!("{v}"));
            println!(
                "{} {} ({} {} {}, for {} cycles): value {}",
                if status.firing { "FIRING" } else { "ok    " },
                status.rule.name,
                status.rule.metric,
                status.rule.op,
                status.rule.threshold,
                status.rule.for_cycles,
                value,
            );
        }
    }
    Ok(firing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rispp::obs::{BinarySink, JsonlSink, SinkHandle, TimelineSink};
    use std::cell::RefCell;
    use std::io::BufReader;
    use std::rc::Rc;
    use std::sync::atomic::AtomicU64;

    static UNIQUE: AtomicU64 = AtomicU64::new(0);

    /// A scratch file path unique to this process and call site.
    fn scratch(tag: &str) -> PathBuf {
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("rispp_serve_test_{}_{tag}_{n}", std::process::id()))
    }

    fn fig6_export(binary: bool) -> Vec<u8> {
        let (mut engine, _) = rispp::sim::scenario::fig6_engine();
        if binary {
            let sink = Rc::new(RefCell::new(BinarySink::new(Vec::new())));
            engine.attach_sink(SinkHandle::shared(sink.clone()));
            engine.run(100_000);
            drop(engine);
            Rc::try_unwrap(sink).unwrap().into_inner().into_inner()
        } else {
            let sink = Rc::new(RefCell::new(JsonlSink::new(Vec::new())));
            engine.attach_sink(SinkHandle::shared(sink.clone()));
            engine.run(100_000);
            let bytes = sink.borrow().writer().clone();
            bytes
        }
    }

    fn offline_record_count(bytes: &[u8]) -> u64 {
        let mut t = TimelineSink::new();
        if rispp::obs::bin::is_binary(bytes) {
            rispp::obs::bin::replay(bytes, &mut t).unwrap();
        } else {
            jsonl::replay(std::str::from_utf8(bytes).unwrap(), &mut t).unwrap();
        }
        t.timeline().len() as u64
    }

    #[test]
    fn follower_tails_a_growing_binary_log() {
        let bytes = fig6_export(true);
        let path = scratch("bin");
        let mut follower = Follower::new(&path);
        let mut sink = TimelineSink::new();

        // Nothing there yet: not an error.
        assert_eq!(follower.poll(&mut sink).unwrap(), 0);
        assert_eq!(follower.format(), None);

        // Arrives in three chunks, cut mid-record.
        let cuts = [bytes.len() / 3, 2 * bytes.len() / 3, bytes.len()];
        let mut total = 0;
        for cut in cuts {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            total += follower.poll(&mut sink).unwrap();
        }
        assert_eq!(follower.format(), Some("binary"));
        assert_eq!(total, offline_record_count(&bytes));
        assert_eq!(follower.reopens(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn follower_tails_a_growing_jsonl_log() {
        let bytes = fig6_export(false);
        let path = scratch("jsonl");
        let mut follower = Follower::new(&path);
        let mut sink = TimelineSink::new();
        // Cut mid-line (and mid-UTF-8 is impossible here, but mid-line
        // carries exercise the carry buffer).
        let cuts = [7, bytes.len() / 2, bytes.len()];
        let mut total = 0;
        for cut in cuts {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            total += follower.poll(&mut sink).unwrap();
        }
        assert_eq!(follower.format(), Some("jsonl"));
        assert_eq!(total, offline_record_count(&bytes));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn follower_reopens_a_truncated_file() {
        let binary = fig6_export(true);
        let jsonl_bytes = fig6_export(false);
        let path = scratch("shrink");
        std::fs::write(&path, &binary).unwrap();
        let mut follower = Follower::new(&path);
        let first = follower.poll(&mut NullSink).unwrap();
        assert_eq!(first, offline_record_count(&binary));
        assert_eq!(follower.format(), Some("binary"));

        // Truncation is not an error: the follower resets and the next
        // poll reads the new content, re-probing the format. (The
        // truncation must actually shrink the file for a poll to see
        // it — a JSONL log is larger than its binary twin, so truncate
        // to empty first, as log rotation does.)
        std::fs::write(&path, b"").unwrap();
        assert_eq!(follower.poll(&mut NullSink).unwrap(), 0);
        std::fs::write(&path, &jsonl_bytes).unwrap();
        assert_eq!(follower.reopens(), 1);
        assert_eq!(follower.format(), None, "format re-probes after reopen");
        let second = follower.poll(&mut NullSink).unwrap();
        assert_eq!(second, offline_record_count(&jsonl_bytes));
        assert_eq!(follower.format(), Some("jsonl"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn served_metrics_match_an_offline_replay_of_the_same_log() {
        let bytes = fig6_export(true);
        let path = scratch("serve");
        std::fs::write(&path, &bytes).unwrap();

        // Offline truth: replay the log into an identically configured
        // sink and settle it.
        let mut offline = MetricsSink::new().with_containers(6);
        rispp::obs::bin::replay(&bytes, &mut offline).unwrap();
        offline.finish();

        // Live: one poll, then serve two requests on an OS-picked port.
        let state = Arc::new(Mutex::new(FleetState::new(
            vec![path.clone()],
            6,
            WindowConfig::default(),
            None,
        )));
        let mut followers = vec![Follower::new(&path)];
        poll_fleet(&mut followers, &state);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || serve(&listener, &state, Some(2)))
        };

        let get = |p: &str| {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(format!("GET {p} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                .unwrap();
            let mut response = String::new();
            BufReader::new(conn).read_to_string(&mut response).unwrap();
            let (head, body) = response.split_once("\r\n\r\n").unwrap();
            assert!(head.starts_with("HTTP/1.1 200 OK"), "head: {head}");
            body.to_string()
        };

        // Single-shard serving keeps the full legacy exposition as its
        // prefix — byte-equal to the offline replay — then appends the
        // window, follower and (absent here) alert series.
        let metrics_body = get("/metrics");
        assert!(metrics_body.starts_with(&offline.render_prometheus()));
        assert!(metrics_body.contains("rispp_fabric_occupancy"));
        assert!(metrics_body.contains("rispp_window_events_per_kcycle"));
        assert!(metrics_body.contains("rispp_follower_reopens_total 0"));
        assert!(metrics_body.contains("rispp_shards 1"));

        let status_body = get("/status");
        assert!(status_body.contains("\"format\":\"binary\""));
        assert!(status_body.contains("\"reopens\":0"));
        assert!(status_body.contains(&format!(
            "\"executions_total\":{}",
            offline.summary().executions_total
        )));

        server.join().unwrap().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_paths_and_methods_are_refused_and_count_toward_shutdown() {
        let state = Arc::new(Mutex::new(FleetState::new(
            vec![scratch("nofile")],
            0,
            WindowConfig::default(),
            None,
        )));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || serve(&listener, &state, Some(3)))
        };
        let request = |raw: String| {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(raw.as_bytes()).unwrap();
            let mut response = String::new();
            BufReader::new(conn).read_to_string(&mut response).unwrap();
            response
        };
        assert!(request("GET /nope HTTP/1.1\r\nHost: x\r\n\r\n".into()).starts_with("HTTP/1.1 404"));
        assert!(
            request("POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n".into()).starts_with("HTTP/1.1 405")
        );
        let long = format!(
            "GET /{} HTTP/1.1\r\n\r\n",
            "x".repeat(MAX_REQUEST_LINE + 10)
        );
        assert!(request(long).starts_with("HTTP/1.1 400"));
        // All three malformed requests counted: the server exits.
        server.join().unwrap().unwrap();
    }

    #[test]
    fn status_reports_decode_errors_and_recovers_after_truncation() {
        let path = scratch("corrupt");
        std::fs::write(&path, b"this is not an event log at all\n").unwrap();
        let mut state = LiveState::new(0, WindowConfig::default());
        let mut follower = Follower::new(&path);
        assert!(poll_shard(&mut follower, &mut state).is_err());
        assert!(state.render_status().contains("\"error\":\""));
        // The error is sticky while the file only grows…
        assert!(poll_shard(&mut follower, &mut state).is_err());

        // …but truncating and rewriting the log recovers: the reopen
        // discards the poisoned state and the rewritten log folds.
        let good = fig6_export(true);
        std::fs::write(&path, b"").unwrap(); // truncate
        assert_eq!(poll_shard(&mut follower, &mut state).unwrap(), 0);
        std::fs::write(&path, &good).unwrap();
        let folded = poll_shard(&mut follower, &mut state).unwrap();
        assert_eq!(folded, offline_record_count(&good));
        assert!(state.error.is_none(), "recovery clears the error");
        assert_eq!(state.reopens, 1);
        assert!(state.render_status().contains("\"error\":null"));
        assert!(state.render_status().contains("\"reopens\":1"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wildcard_matching_and_glob_expansion() {
        assert!(wildcard_match("shard-*.bin", "shard-0.bin"));
        assert!(wildcard_match("shard-*.bin", "shard-12.bin"));
        assert!(!wildcard_match("shard-*.bin", "shard-12.jsonl"));
        assert!(wildcard_match("*", "anything"));
        assert!(wildcard_match("a*b*c", "axxbyyc"));
        assert!(!wildcard_match("a*b*c", "axxbyy"));

        let dir = scratch("glob");
        std::fs::create_dir_all(&dir).unwrap();
        for k in [2u32, 0, 1] {
            std::fs::write(dir.join(format!("shard-{k}.bin")), b"x").unwrap();
        }
        std::fs::write(dir.join("other.txt"), b"x").unwrap();
        let pattern = dir.join("shard-*.bin").to_str().unwrap().to_string();
        let found = expand_glob(&pattern).unwrap();
        assert_eq!(found.len(), 3);
        // Sorted, so shard order is stable across runs.
        assert!(found[0].to_str().unwrap().ends_with("shard-0.bin"));
        assert!(found[2].to_str().unwrap().ends_with("shard-2.bin"));
        assert!(expand_glob(dir.join("none-*.bin").to_str().unwrap()).is_err());
        // No wildcard: passes through untouched, existing or not.
        let plain = dir.join("missing.bin");
        assert_eq!(
            expand_glob(plain.to_str().unwrap()).unwrap(),
            vec![plain.clone()]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn alert_rules_load_and_refuse_unknown_metrics() {
        let path = scratch("rules");
        std::fs::write(
            &path,
            "[[rule]]\nname = \"a\"\nmetric = \"hw_fraction\"\nop = \"<\"\nthreshold = 0.5\n",
        )
        .unwrap();
        assert_eq!(load_alert_rules(&path).unwrap().statuses().len(), 1);
        std::fs::write(
            &path,
            "[[rule]]\nname = \"a\"\nmetric = \"bogus\"\nop = \"<\"\nthreshold = 0.5\n",
        )
        .unwrap();
        let err = load_alert_rules(&path).unwrap_err().to_string();
        assert!(err.contains("unknown metric"), "{err}");
        assert!(err.contains("bogus"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }
}
