//! # rispp-bench — figure/table regeneration harnesses and benchmarks
//!
//! One binary per table and figure of the paper's evaluation (run with
//! `cargo run -p rispp-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig01_area` | Fig. 1 — extensible-processor vs RISPP GE model |
//! | `fig01_performance` | Fig. 1 — performance maintenance across phases |
//! | `fig02_sharing` | Fig. 2 — SIs sharing one Atom set (compatibility) |
//! | `fig03_aes_cfg` | Fig. 3 — AES BB graph with profile + FC candidates |
//! | `fig04_fdf` | Fig. 4 — the Forecast Decision Function surface |
//! | `fig06_scenario` | Fig. 6 — the two-task run-time scenario timeline |
//! | `fig11_si_exec` | Fig. 11 — SI execution time vs RISPP resources |
//! | `fig12_encoder` | Fig. 12 — all-over H.264 encoder performance |
//! | `fig13_pareto` | Fig. 13 — per-SI Pareto trade-off fronts |
//! | `tab01_atoms` | Table 1 — Atom hardware characteristics |
//! | `tab02_molecules` | Table 2 — Molecule composition of the SIs |
//! | `ablation_rotation` | ablation — "Rotation in Advance" vs target-only loading |
//! | `ablation_selection` | ablation — greedy vs exhaustive Molecule selection |
//! | `ablation_trimming` | ablation — FC trimming/placement vs all candidates |
//! | `sweep_containers` | sweep — encoder cycles/MB over the AC budget (0–18) |
//! | `sweep_qp` | sweep — PSNR/bitrate over QP, decoder-verified |
//! | `sweep_rotation_rate` | sweep — configuration bandwidth vs time-to-hardware |
//! | `synthesis_report` | future work — LCS-based automatic Atom synthesis |
//! | `stress_random` | fuzzing — random platforms through the full stack |
//! | `live_codec` | the real pixel pipeline on RISPP (live Fig. 12) |
//! | `bench_suite` | host-perf trajectory — writes `BENCH_<workload>.json` |
//! | `bench_compare` | host-perf trajectory — diffs two BENCH sets, gates CI |
//! | `fleet_bench` | sharded fleet across OS threads — writes `BENCH_fleet_<scenario>.json` |
//! | `rispp_serve` | live metrics — tails an event export, serves `/metrics` over HTTP |
//!
//! The Criterion benches (`cargo bench -p rispp-bench`) measure the code
//! under test itself: Molecule algebra, selection, CFG analysis, the
//! pixel kernels and the full encoder step.
//!
//! The [`report`] module is the shared analysis layer behind the
//! `rispp_report` binary: it turns any event export — JSONL or the
//! binary transport, auto-detected — into a markdown run report
//! (spans, gauges, waveform, forecast accuracy).
//!
//! The [`harness`] module is the layer behind `bench_suite` and
//! `bench_compare`: standardized workload runners, the versioned BENCH
//! JSON format, and the regression-comparison gate. The [`fleet`] module
//! is the layer behind `fleet_bench`: the fleet BENCH JSON document over
//! `rispp_sim`'s sharded fleet runner.
//!
//! The [`serve`] module is the layer behind `rispp_serve`: it tails a
//! live run's event export, folds it incrementally through
//! `MetricsSink`, and serves the Prometheus exposition plus a JSON
//! status doc over plain HTTP.

pub mod fleet;
pub mod harness;
pub mod report;
pub mod serve;

/// Renders a simple aligned table to stdout.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:>w$}  ",
                cell,
                w = widths[i.min(widths.len() - 1)]
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| (*h).to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn print_table_does_not_panic() {
        super::print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
