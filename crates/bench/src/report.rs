//! Offline run analysis: JSONL or binary event export → markdown report.
//!
//! Everything here consumes only the exported event stream (via
//! [`jsonl::replay`] or [`bin::replay`]), never live objects — the same
//! property the Fig. 6 binary demonstrates for the timeline. One replay
//! feeds three derived views at once: the raw [`Timeline`], the causality
//! [`SpanBuilder`] (per-SI time-to-hardware) and the time-weighted
//! [`MetricsSink`] (occupancy, bus busyness, forecast accuracy).
//!
//! [`analyze_bytes`] auto-detects the format by the binary magic prefix,
//! so callers can hand over any export without knowing how it was made.
//!
//! [`jsonl::replay`]: rispp::obs::jsonl::replay
//! [`bin::replay`]: rispp::obs::bin::replay

use std::fmt::Write as _;

use rispp::core::atom::AtomSet;
use rispp::obs::bin::{self, BinError};
use rispp::obs::jsonl::{self, JsonlError};
use rispp::obs::{Event, EventSink, HostProfile, MetricsSink, SpanBuilder, Timeline, TimelineSink};
use rispp::sim::waveform::render_waveform;

/// Platform knowledge the analyzer needs but the stream does not carry:
/// atom names for the waveform, the container-count denominator, and the
/// per-Atom logic-utilisation weights.
#[derive(Debug, Clone)]
pub struct ReportConfig {
    /// Atom names (waveform letters).
    pub atoms: AtomSet,
    /// Number of Atom Containers (occupancy denominator, waveform rows).
    pub containers: usize,
    /// Per-Atom logic-utilisation weights, index-aligned with `atoms`.
    pub utilization_weights: Vec<f64>,
    /// Waveform width in character columns.
    pub waveform_columns: usize,
}

impl ReportConfig {
    /// The H.264 case-study platform: Table 1 Atoms and utilisations.
    #[must_use]
    pub fn h264(containers: usize) -> Self {
        let fabric = rispp::sim::scenario::h264_fabric(containers);
        let utilization_weights = fabric
            .catalog()
            .iter()
            .map(|(_, p)| p.utilization())
            .collect();
        ReportConfig {
            atoms: fabric.atoms().clone(),
            containers,
            utilization_weights,
            waveform_columns: 96,
        }
    }

    /// Infers a generic configuration from the stream itself: container
    /// count and atom count from the largest indices seen, placeholder
    /// names (`K0`, `K1`, …), weight 1.0 (plain occupancy).
    #[must_use]
    pub fn infer(timeline: &Timeline) -> Self {
        let mut containers = 0usize;
        let mut kinds = 0usize;
        for r in timeline.entries() {
            match r.event {
                Event::RotationStarted { container, kind }
                | Event::RotationCompleted { container, kind }
                | Event::ContainerLoaded { container, kind }
                | Event::ContainerEvicted { container, kind } => {
                    containers = containers.max(container as usize + 1);
                    kinds = kinds.max(kind.index() + 1);
                }
                _ => {}
            }
        }
        let names: Vec<String> = (0..kinds.max(1)).map(|i| format!("K{i}")).collect();
        ReportConfig {
            atoms: AtomSet::from_names(names.iter().map(String::as_str)),
            containers,
            utilization_weights: Vec::new(),
            waveform_columns: 96,
        }
    }
}

/// The three derived views of one replayed stream.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The raw, ordered event record.
    pub timeline: Timeline,
    /// Causality spans (settled — `finish` already called).
    pub spans: SpanBuilder,
    /// Time-weighted gauges (settled — `finish` already called).
    pub metrics: MetricsSink,
    /// Host-time profile of the producing run. Always `None` from
    /// [`analyze`] — the exported stream carries simulated time only —
    /// but a caller that also drove the live run (e.g. the Fig. 6 binary)
    /// can attach the profiler snapshot before rendering.
    pub host_profile: Option<HostProfile>,
}

/// Replays every line into the timeline, span and metrics views at once.
struct FanoutSink {
    timeline: TimelineSink,
    spans: SpanBuilder,
    metrics: MetricsSink,
}

impl EventSink for FanoutSink {
    fn emit(&mut self, at: u64, event: &Event) {
        self.timeline.emit(at, event);
        self.spans.emit(at, event);
        self.metrics.emit(at, event);
    }
}

impl FanoutSink {
    fn fresh(config: &ReportConfig) -> Self {
        FanoutSink {
            timeline: TimelineSink::new(),
            spans: SpanBuilder::new(),
            metrics: MetricsSink::new()
                .with_containers(config.containers)
                .with_utilization_weights(config.utilization_weights.clone()),
        }
    }

    fn settle(mut self) -> Analysis {
        self.spans.finish();
        self.metrics.finish();
        Analysis {
            timeline: self.timeline.into_timeline(),
            spans: self.spans,
            metrics: self.metrics,
            host_profile: None,
        }
    }
}

/// Why an event export failed to decode — either codec, one error type.
#[derive(Debug)]
pub enum ReportError {
    /// The JSONL decoder rejected a line (or refused a future schema).
    Jsonl(JsonlError),
    /// The binary decoder rejected a record (or refused a future schema).
    Binary(BinError),
    /// The input had no binary magic but is not UTF-8 text either.
    NotText(std::str::Utf8Error),
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::Jsonl(e) => write!(f, "{e}"),
            ReportError::Binary(e) => write!(f, "{e}"),
            ReportError::NotText(e) => {
                write!(f, "input is neither a binary export nor UTF-8 JSONL: {e}")
            }
        }
    }
}

impl std::error::Error for ReportError {}

impl From<JsonlError> for ReportError {
    fn from(e: JsonlError) -> Self {
        ReportError::Jsonl(e)
    }
}

impl From<BinError> for ReportError {
    fn from(e: BinError) -> Self {
        ReportError::Binary(e)
    }
}

/// Analyzes a JSONL export under a platform configuration.
///
/// # Errors
///
/// Returns the underlying [`JsonlError`] for malformed lines.
pub fn analyze(jsonl_text: &str, config: &ReportConfig) -> Result<Analysis, JsonlError> {
    let mut fanout = FanoutSink::fresh(config);
    jsonl::replay(jsonl_text, &mut fanout)?;
    Ok(fanout.settle())
}

/// Analyzes an event export of either format, auto-detected by the
/// binary magic prefix ([`bin::is_binary`]): binary exports replay
/// through [`bin::replay`], anything else is treated as UTF-8 JSONL.
///
/// # Errors
///
/// Returns a [`ReportError`] when the stream fails to decode, including
/// when either codec refuses a future `schema_version`.
pub fn analyze_bytes(bytes: &[u8], config: &ReportConfig) -> Result<Analysis, ReportError> {
    if bin::is_binary(bytes) {
        let mut fanout = FanoutSink::fresh(config);
        bin::replay(bytes, &mut fanout)?;
        Ok(fanout.settle())
    } else {
        let text = std::str::from_utf8(bytes).map_err(ReportError::NotText)?;
        Ok(analyze(text, config)?)
    }
}

/// Renders the analysis as a Chrome-trace-event JSON document
/// (loadable in Perfetto / `chrome://tracing`): one track per Atom
/// Container with residency and rotation spans, one track per task with
/// SI-execution slices, occupancy and bus counters, and — when the
/// analysis carries one — the host-time profile as its own process.
/// Atom names come from the platform configuration so slices read
/// "DCT 4×4" rather than "atom#2".
#[must_use]
pub fn render_trace(analysis: &Analysis, config: &ReportConfig) -> String {
    let trace_config = rispp::obs::TraceConfig::new(
        config.atoms.names().map(str::to_string).collect(),
        config.containers,
    );
    rispp::obs::render_chrome_trace(
        &analysis.timeline,
        analysis.host_profile.as_ref(),
        &trace_config,
    )
}

fn opt(value: Option<u64>) -> String {
    value.map_or_else(|| "—".to_string(), |v| v.to_string())
}

fn frac(value: f64) -> String {
    format!("{value:.4}")
}

/// Renders the markdown run report.
#[must_use]
pub fn render_markdown(analysis: &Analysis, config: &ReportConfig) -> String {
    let mut out = String::new();
    let end = analysis
        .timeline
        .entries()
        .last()
        .map_or(0, |r| r.at)
        .max(analysis.metrics.now());
    let summary = analysis.metrics.summary();

    let _ = writeln!(out, "# RISPP run report");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{} events over {} cycles.",
        analysis.timeline.len(),
        end
    );
    let _ = writeln!(out);

    let _ = writeln!(out, "## Metrics summary");
    let _ = writeln!(out);
    let _ = writeln!(out, "| metric | value |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(
        out,
        "| fabric occupancy (time-weighted) | {} |",
        frac(summary.fabric_occupancy)
    );
    let _ = writeln!(
        out,
        "| logic utilization (Table 1-weighted) | {} |",
        frac(summary.logic_utilization)
    );
    let _ = writeln!(
        out,
        "| rotation-bus busy fraction | {} |",
        frac(summary.bus_busy_fraction)
    );
    let _ = writeln!(
        out,
        "| rotations completed | {} |",
        summary.rotations_completed
    );
    let _ = writeln!(out, "| SI executions | {} |", summary.executions_total);
    let _ = writeln!(out, "| hardware fraction | {} |", frac(summary.hw_fraction));
    let _ = writeln!(
        out,
        "| cycles saved vs software | {} |",
        summary.cycles_saved_vs_sw
    );
    let _ = writeln!(
        out,
        "| events dropped by capture | {} |",
        summary.dropped_events
    );
    let _ = writeln!(
        out,
        "| selection cache (hit / miss / flush) | {} / {} / {} |",
        summary.selection_cache_hits,
        summary.selection_cache_misses,
        summary.selection_cache_invalidations
    );
    let _ = writeln!(out);

    let _ = writeln!(out, "## Time-to-hardware spans");
    let _ = writeln!(out);
    if analysis.spans.spans().is_empty() {
        let _ = writeln!(out, "No forecast spans in this stream.");
    } else {
        let _ = writeln!(
            out,
            "| task | si | forecast @ | reselect @ | rotation start | rotation done \
             | first HW exec | time to HW | ladder rungs | SW execs before HW | closed |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|---|");
        for s in analysis.spans.spans() {
            let closed = s
                .closed
                .map_or_else(|| "open".to_string(), |(at, why)| format!("{why} @ {at}"));
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
                s.task,
                s.si,
                s.forecast_at,
                opt(s.reselect_at),
                opt(s.first_rotation_started),
                opt(s.first_rotation_completed),
                opt(s.first_hw_execution),
                opt(s.time_to_hardware()),
                s.ladder.len(),
                s.sw_executions_before_hw,
                closed,
            );
        }
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "## Container occupancy");
    let _ = writeln!(out);
    if config.containers == 0 {
        let _ = writeln!(out, "No containers in this configuration.");
    } else {
        let _ = writeln!(
            out,
            "Upper case = loaded Atom, lower case = rotation in flight, `.` = empty."
        );
        let _ = writeln!(out);
        let _ = writeln!(out, "```text");
        let _ = write!(
            out,
            "{}",
            render_waveform(
                &analysis.timeline,
                &config.atoms,
                config.containers,
                end.max(1),
                config.waveform_columns,
            )
        );
        let _ = writeln!(out, "```");
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "## Forecast accuracy");
    let _ = writeln!(out);
    let fc_rate = summary
        .fc_hit_rate
        .map_or_else(|| "n/a (no FC points)".to_string(), frac);
    let _ = writeln!(
        out,
        "Precision {} over {} windows, recall {}, FC hit rate {}.",
        frac(summary.forecast_precision),
        summary.forecast_windows,
        frac(summary.forecast_recall),
        fc_rate,
    );
    let pairs: Vec<_> = analysis.metrics.forecast_stats().collect();
    if !pairs.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "| task | si | windows | hits | execs in window | execs total |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|");
        for ((task, si), stats) in pairs {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} |",
                task,
                si,
                stats.windows,
                stats.hits,
                stats.executions_in_window,
                stats.executions_total,
            );
        }
    }
    let _ = writeln!(out);

    if let Some(profile) = &analysis.host_profile {
        let _ = writeln!(out, "## Host-time profile");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Wall-clock cost of the producing run's manager phases \
             (host nanoseconds, not simulated cycles)."
        );
        let _ = writeln!(out);
        let _ = write!(out, "{}", profile.render_markdown());
        let _ = writeln!(out);
    }

    let _ = writeln!(out, "## Prometheus exposition");
    let _ = writeln!(out);
    let _ = writeln!(out, "```text");
    let _ = write!(out, "{}", analysis.metrics.render_prometheus());
    if let Some(profile) = &analysis.host_profile {
        let _ = write!(out, "{}", profile.render_prometheus());
    }
    let _ = writeln!(out, "```");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rispp::obs::{JsonlSink, SinkHandle};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn fig6_export() -> String {
        let (mut engine, _) = rispp::sim::scenario::fig6_engine();
        let export = Rc::new(RefCell::new(JsonlSink::new(Vec::new())));
        engine.attach_sink(SinkHandle::shared(export.clone()));
        engine.run(100_000);
        let bytes = export.borrow().writer().clone();
        String::from_utf8(bytes).expect("JSONL is UTF-8")
    }

    /// One engine run teed into both codecs (event order can differ
    /// between separate runs, so a fair comparison needs one run).
    fn fig6_both_exports() -> (String, Vec<u8>) {
        let (mut engine, _) = rispp::sim::scenario::fig6_engine();
        let jsonl = Rc::new(RefCell::new(JsonlSink::new(Vec::new())));
        let binary = Rc::new(RefCell::new(rispp::obs::BinarySink::new(Vec::new())));
        engine.attach_sink(SinkHandle::shared(jsonl.clone()));
        engine.attach_sink(SinkHandle::shared(binary.clone()));
        engine.run(100_000);
        drop(engine); // release the engine's handles so we can unwrap the Rcs
        let text = String::from_utf8(Rc::try_unwrap(jsonl).unwrap().into_inner().into_inner())
            .expect("JSONL is UTF-8");
        let bytes = Rc::try_unwrap(binary).unwrap().into_inner().into_inner();
        (text, bytes)
    }

    #[test]
    fn analyze_bytes_detects_the_format_and_agrees_across_codecs() {
        let config = ReportConfig::h264(6);
        let (text, bytes) = fig6_both_exports();
        let from_jsonl = analyze(&text, &config).expect("JSONL replays");
        let from_binary = analyze_bytes(&bytes, &config).expect("binary replays");
        assert_eq!(from_binary.timeline, from_jsonl.timeline);
        assert_eq!(from_binary.metrics.summary(), from_jsonl.metrics.summary());
        // The same entry point accepts JSONL text as bytes.
        let via_bytes = analyze_bytes(text.as_bytes(), &config).expect("JSONL as bytes");
        assert_eq!(via_bytes.timeline, from_jsonl.timeline);
        // And garbage that is neither format is an error, not a panic.
        assert!(analyze_bytes(&[0xFF, 0xFE, 0x00], &ReportConfig::h264(1)).is_err());
    }

    #[test]
    fn analyze_builds_all_three_views() {
        let text = fig6_export();
        let config = ReportConfig::h264(6);
        let analysis = analyze(&text, &config).expect("export replays");
        assert!(!analysis.timeline.is_empty());
        assert!(!analysis.spans.spans().is_empty());
        assert!(analysis.metrics.summary().rotations_completed > 0);
    }

    #[test]
    fn markdown_report_has_every_section() {
        let text = fig6_export();
        let config = ReportConfig::h264(6);
        let analysis = analyze(&text, &config).expect("export replays");
        let md = render_markdown(&analysis, &config);
        for section in [
            "# RISPP run report",
            "## Metrics summary",
            "## Time-to-hardware spans",
            "## Container occupancy",
            "## Forecast accuracy",
            "## Prometheus exposition",
            "rispp_fabric_occupancy",
        ] {
            assert!(md.contains(section), "missing: {section}");
        }
        // The waveform renders one row per container.
        assert_eq!(md.matches("\nAC").count(), 6);
    }

    #[test]
    fn infer_reads_platform_shape_from_stream() {
        let text = fig6_export();
        let probe = analyze(&text, &ReportConfig::h264(6)).unwrap();
        let inferred = ReportConfig::infer(&probe.timeline);
        assert_eq!(inferred.containers, 6);
        assert_eq!(inferred.atoms.len(), 4);
        // Weight-less config still renders.
        let analysis = analyze(&text, &inferred).unwrap();
        let md = render_markdown(&analysis, &inferred);
        assert!(md.contains("## Metrics summary"));
    }

    #[test]
    fn host_profile_section_appears_only_when_attached() {
        let text = fig6_export();
        let config = ReportConfig::h264(6);
        let mut analysis = analyze(&text, &config).expect("export replays");
        let md = render_markdown(&analysis, &config);
        assert!(!md.contains("## Host-time profile"));

        let prof = rispp::obs::ProfHandle::enabled();
        drop(prof.scope("reselect"));
        analysis.host_profile = prof.snapshot();
        let md = render_markdown(&analysis, &config);
        assert!(md.contains("## Host-time profile"));
        assert!(md.contains("| reselect |"));
    }

    #[test]
    fn trace_export_is_valid_chrome_json_with_named_tracks() {
        let text = fig6_export();
        let config = ReportConfig::h264(6);
        let analysis = analyze(&text, &config).expect("export replays");
        let trace = render_trace(&analysis, &config);
        assert!(trace.starts_with("{\"displayTimeUnit\""));
        assert!(trace.ends_with("]}\n") || trace.ends_with("]}"));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"C\""));
        // One named track per Atom Container.
        for k in 0..6 {
            assert!(trace.contains(&format!("\"AC{k}\"")), "missing track AC{k}");
        }
        // Platform atom names, not inferred placeholders.
        assert!(!trace.contains("atom#"));
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(analyze("{\"not\": \"an event\"}", &ReportConfig::h264(1)).is_err());
    }
}
