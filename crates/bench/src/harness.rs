//! The benchmark-trajectory harness: standardized host-performance runs
//! of the repository's three reference workloads, exported as versioned
//! `BENCH_<workload>.json` files so the repo's own performance can be
//! tracked — and gated — over its growth history.
//!
//! Three layers live here:
//!
//! * the **workload runners** ([`run_workload`]): fig06 (the paper's
//!   Fig. 6 scenario), stress (random platforms through the full stack)
//!   and live_codec (the real encoder on RISPP), each executed with
//!   warmup + N timed repetitions with the profiler *disabled* (pure
//!   host throughput), plus one instrumented repetition capturing event
//!   counts, the [`MetricsSummary`] and the per-phase host-time profile;
//! * the **BENCH file format** ([`WorkloadResult::to_json`] /
//!   [`WorkloadResult::from_json`]): hand-rolled JSON (the workspace is
//!   offline — no serde) with a `schema_version` field, readable by any
//!   future build;
//! * the **comparison gate** ([`compare`]): diffs two BENCH sets by
//!   workload and flags medians that regressed past a threshold — the
//!   logic behind the `bench_compare` binary and the CI perf-smoke job.
//!
//! Timing uses the vendored criterion shim's [`criterion::measure`], so
//! `cargo bench` and the harness share one measurement core.

use std::cell::RefCell;
use std::rc::Rc;

use rispp::obs::{PhaseProfile, Record};
use rispp::prelude::*;

/// Version of the `BENCH_*.json` schema this build writes.
///
/// Bump when a field changes meaning or disappears; readers refuse
/// files from the future and treat missing optional fields as defaults.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// The workloads the suite runs, in execution order.
pub const WORKLOADS: [&str; 3] = ["fig06", "stress", "live_codec"];

/// File name a workload's result is written to (`BENCH_fig06.json` …).
#[must_use]
pub fn bench_file_name(workload: &str) -> String {
    format!("BENCH_{workload}.json")
}

/// Repetition plan for one suite run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessConfig {
    /// Smaller workload sizes and fewer reps (the CI smoke setting).
    pub quick: bool,
    /// Timed repetitions per workload.
    pub reps: usize,
    /// Untimed warmup repetitions per workload.
    pub warmup: usize,
}

impl HarnessConfig {
    /// The committed-baseline setting: full workload sizes, 5 reps.
    #[must_use]
    pub fn full() -> Self {
        HarnessConfig {
            quick: false,
            reps: 5,
            warmup: 2,
        }
    }

    /// The CI smoke setting: small workloads, 3 reps.
    #[must_use]
    pub fn quick() -> Self {
        HarnessConfig {
            quick: true,
            reps: 3,
            warmup: 1,
        }
    }

    fn mode(&self) -> &'static str {
        if self.quick {
            "quick"
        } else {
            "full"
        }
    }
}

/// Per-sink host cost of one event emission, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SinkOverhead {
    /// A disabled [`SinkHandle`] — the one-branch path; the event is
    /// never constructed.
    pub null: f64,
    /// [`CountersSink`] — aggregate statistics.
    pub counters: f64,
    /// [`TimelineSink`] — full ordered record.
    pub timeline: f64,
    /// [`JsonlSink`] — streaming text export.
    pub jsonl: f64,
    /// [`BinarySink`] — streaming binary transport.
    pub binary: f64,
}

/// One workload's measured result — the content of a `BENCH_*.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadResult {
    /// Workload name (`fig06`, `stress`, `live_codec`).
    pub workload: String,
    /// `quick` or `full` (comparisons across modes are flagged).
    pub mode: String,
    /// Untimed warmup repetitions that preceded the timed ones.
    pub warmup: u64,
    /// Timed repetitions.
    pub reps: u64,
    /// Wall time of each timed repetition, in nanoseconds.
    pub wall_ns: Vec<u64>,
    /// Median of `wall_ns` — the comparison gate's metric.
    pub wall_ns_median: u64,
    /// Events the instrumented repetition emitted.
    pub events: u64,
    /// Simulated cycles the instrumented repetition covered.
    pub sim_cycles: u64,
    /// Host throughput: events per wall second (median rep).
    pub events_per_sec: f64,
    /// Host throughput: simulated cycles per wall second (median rep).
    pub sim_cycles_per_sec: f64,
    /// Simulated-time summary of the instrumented repetition.
    pub metrics: MetricsSummary,
    /// Host-time phase profile of the instrumented repetition.
    pub phases: Vec<PhaseProfile>,
    /// Per-sink emit cost measured over a canned record set.
    pub sink_overhead_ns_per_event: SinkOverhead,
}

// ---------------------------------------------------------------------
// Workload runners
// ---------------------------------------------------------------------

/// One repetition's observable outcome (instrumented repetitions only).
struct RepOutcome {
    events: u64,
    sim_cycles: u64,
    metrics: MetricsSummary,
    host: Option<HostProfile>,
}

/// The [`ShardSpec`] a harness workload runs as. Timed repetitions use
/// the disabled sink (pure host throughput); the instrumented one adds
/// the metrics pipeline and the host profiler.
fn workload_spec(workload: &str, config: &HarnessConfig, instrument: bool) -> ShardSpec {
    // Fixed per-workload seeds, unchanged across builds, so BENCH numbers
    // always measure the same work (live_codec keeps its historical seed).
    let (scenario, seed) = match workload {
        "fig06" => (Scenario::Fig6, 0),
        "stress" => (Scenario::stress(config.quick), 0),
        "live_codec" => (Scenario::live_codec(config.quick), 2_026),
        other => panic!("unknown workload {other:?} (expected one of {WORKLOADS:?})"),
    };
    let sink = if instrument {
        SinkSpec::Metrics
    } else {
        SinkSpec::Null
    };
    ShardSpec::new(scenario, seed)
        .with_sink(sink)
        .with_profile(instrument)
}

fn run_once(workload: &str, config: &HarnessConfig, instrument: bool) -> RepOutcome {
    let out = workload_spec(workload, config, instrument).run();
    RepOutcome {
        events: out.events,
        sim_cycles: out.sim_cycles,
        metrics: out.summary,
        host: out.host,
    }
}

/// Repetitions (median taken) and batched iterations per repetition for
/// the sink-overhead measurement. The fig06 record set is only ~1.6k
/// events, so a single pass lasts tens of microseconds — far too short
/// for a one-shot reading on a shared machine. Batching several passes
/// per timing and taking a median across repetitions keeps the
/// committed ns/event numbers reproducible.
const SINK_OVERHEAD_REPS: usize = 5;
const SINK_OVERHEAD_ITERS: u64 = 8;

/// Median ns/event over [`SINK_OVERHEAD_REPS`] timings of
/// [`SINK_OVERHEAD_ITERS`] record-set passes each. Sink state accumulates
/// across passes, which is the steady-state regime the number describes.
fn sink_ns_per_event(events: usize, mut routine: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..SINK_OVERHEAD_REPS)
        .map(|_| {
            criterion::measure(SINK_OVERHEAD_ITERS, &mut routine).as_nanos() as f64
                / (SINK_OVERHEAD_ITERS as f64 * events as f64)
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[SINK_OVERHEAD_REPS / 2]
}

/// Measures per-sink emit cost over a canned fig06 record set.
fn measure_sink_overhead() -> SinkOverhead {
    let (mut engine, _) = ShardSpec::new(Scenario::Fig6, 0).build_fig6();
    engine.run(100_000);
    let records: Vec<Record> = engine.timeline().entries().to_vec();
    assert!(!records.is_empty(), "fig06 produces events");
    let n = records.len();

    // The disabled handle: one branch, event never constructed.
    let null = SinkHandle::null();
    let null_ns = sink_ns_per_event(n, || {
        for r in &records {
            null.emit_with(r.at, || r.event.clone());
        }
    });
    let counters = Rc::new(RefCell::new(CountersSink::new()));
    let h = SinkHandle::shared(counters);
    let counters_ns = sink_ns_per_event(n, || {
        for r in &records {
            h.emit(r.at, &r.event);
        }
    });
    let timeline = Rc::new(RefCell::new(TimelineSink::new()));
    let h = SinkHandle::shared(timeline);
    let timeline_ns = sink_ns_per_event(n, || {
        for r in &records {
            h.emit(r.at, &r.event);
        }
    });
    let jsonl = Rc::new(RefCell::new(JsonlSink::new(Vec::new())));
    let h = SinkHandle::shared(jsonl);
    let jsonl_ns = sink_ns_per_event(n, || {
        for r in &records {
            h.emit(r.at, &r.event);
        }
    });
    let binary = Rc::new(RefCell::new(BinarySink::new(Vec::new())));
    let h = SinkHandle::shared(binary);
    let binary_ns = sink_ns_per_event(n, || {
        for r in &records {
            h.emit(r.at, &r.event);
        }
    });
    SinkOverhead {
        null: null_ns,
        counters: counters_ns,
        timeline: timeline_ns,
        jsonl: jsonl_ns,
        binary: binary_ns,
    }
}

/// Median of a non-empty sample (mean of the two middles when even).
#[must_use]
pub fn median_ns(samples: &[u64]) -> u64 {
    assert!(!samples.is_empty(), "median of an empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

/// Runs one workload under the repetition plan: `config.warmup` untimed
/// runs, `config.reps` timed runs with the profiler disabled, then one
/// instrumented run capturing events, metrics and the phase profile.
///
/// # Panics
///
/// Panics on an unknown workload name.
#[must_use]
pub fn run_workload(workload: &str, config: &HarnessConfig) -> WorkloadResult {
    for _ in 0..config.warmup {
        let _ = run_once(workload, config, false);
    }
    let mut wall_ns = Vec::with_capacity(config.reps);
    for _ in 0..config.reps.max(1) {
        let d = criterion::measure(1, || run_once(workload, config, false));
        wall_ns.push(d.as_nanos() as u64);
    }
    let wall_ns_median = median_ns(&wall_ns);
    let outcome = run_once(workload, config, true);
    let phases = outcome.host.map_or_else(Vec::new, |p| p.phases);
    let secs = wall_ns_median as f64 / 1e9;
    WorkloadResult {
        workload: workload.to_string(),
        mode: config.mode().to_string(),
        warmup: config.warmup as u64,
        reps: wall_ns.len() as u64,
        wall_ns,
        wall_ns_median,
        events: outcome.events,
        sim_cycles: outcome.sim_cycles,
        events_per_sec: if secs > 0.0 {
            outcome.events as f64 / secs
        } else {
            0.0
        },
        sim_cycles_per_sec: if secs > 0.0 {
            outcome.sim_cycles as f64 / secs
        } else {
            0.0
        },
        metrics: outcome.metrics,
        phases,
        sink_overhead_ns_per_event: measure_sink_overhead(),
    }
}

// ---------------------------------------------------------------------
// BENCH JSON format
// ---------------------------------------------------------------------

pub(crate) fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl WorkloadResult {
    /// Renders the versioned BENCH JSON document (pretty-printed, stable
    /// field order, trailing newline — friendly to committed baselines).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"workload\": \"{}\",\n  \"mode\": \"{}\",\n",
            json_escape(&self.workload),
            json_escape(&self.mode),
        ));
        out.push_str(&format!(
            "  \"warmup\": {},\n  \"reps\": {},\n",
            self.warmup, self.reps
        ));
        let walls: Vec<String> = self.wall_ns.iter().map(u64::to_string).collect();
        out.push_str(&format!("  \"wall_ns\": [{}],\n", walls.join(", ")));
        out.push_str(&format!(
            "  \"wall_ns_median\": {},\n  \"events\": {},\n  \"sim_cycles\": {},\n",
            self.wall_ns_median, self.events, self.sim_cycles
        ));
        out.push_str(&format!(
            "  \"events_per_sec\": {},\n  \"sim_cycles_per_sec\": {},\n",
            json_f64(self.events_per_sec),
            json_f64(self.sim_cycles_per_sec)
        ));
        let m = &self.metrics;
        out.push_str("  \"metrics\": {\n");
        out.push_str(&format!(
            "    \"elapsed_cycles\": {},\n    \"fabric_occupancy\": {},\n    \"logic_utilization\": {},\n    \"bus_busy_fraction\": {},\n",
            m.elapsed_cycles,
            json_f64(m.fabric_occupancy),
            json_f64(m.logic_utilization),
            json_f64(m.bus_busy_fraction)
        ));
        out.push_str(&format!(
            "    \"rotations_completed\": {},\n    \"forecast_windows\": {},\n    \"forecast_precision\": {},\n    \"forecast_recall\": {},\n",
            m.rotations_completed,
            m.forecast_windows,
            json_f64(m.forecast_precision),
            json_f64(m.forecast_recall)
        ));
        // Omitted (not zero) when the workload defines no FC points: a
        // run with no monitored outcomes has no hit rate.
        if let Some(rate) = m.fc_hit_rate {
            out.push_str(&format!("    \"fc_hit_rate\": {},\n", json_f64(rate)));
        }
        out.push_str(&format!(
            "    \"executions_total\": {},\n    \"hw_fraction\": {},\n    \"cycles_saved_vs_sw\": {},\n    \"dropped_events\": {},\n",
            m.executions_total,
            json_f64(m.hw_fraction),
            m.cycles_saved_vs_sw,
            m.dropped_events
        ));
        out.push_str(&format!(
            "    \"selection_cache_hits\": {},\n    \"selection_cache_misses\": {},\n    \"selection_cache_invalidations\": {}\n",
            m.selection_cache_hits, m.selection_cache_misses, m.selection_cache_invalidations
        ));
        out.push_str("  },\n");
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}{}\n",
                json_escape(&p.name),
                p.count,
                p.total_ns,
                p.min_ns,
                p.max_ns,
                p.p50_ns,
                p.p99_ns,
                if i + 1 < self.phases.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        let s = &self.sink_overhead_ns_per_event;
        out.push_str(&format!(
            "  \"sink_overhead_ns_per_event\": {{\"null\": {}, \"counters\": {}, \"timeline\": {}, \"jsonl\": {}, \"binary\": {}}}\n",
            json_f64(s.null),
            json_f64(s.counters),
            json_f64(s.timeline),
            json_f64(s.jsonl),
            json_f64(s.binary)
        ));
        out.push_str("}\n");
        out
    }

    /// Parses a BENCH JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem: malformed JSON, a
    /// `schema_version` newer than this build, or a missing field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = JsonValue::parse(text)?;
        let version = v
            .get("schema_version")
            .and_then(JsonValue::as_u64)
            .ok_or("missing schema_version")?;
        if version > BENCH_SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (this build reads versions up to {BENCH_SCHEMA_VERSION})"
            ));
        }
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing {key}"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing {key}"))
        };
        let f64_field = |obj: &JsonValue, key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing {key}"))
        };
        let wall_ns: Vec<u64> = v
            .get("wall_ns")
            .and_then(JsonValue::as_arr)
            .ok_or("missing wall_ns")?
            .iter()
            .filter_map(JsonValue::as_u64)
            .collect();
        let m = v.get("metrics").ok_or("missing metrics")?;
        let metrics = MetricsSummary {
            elapsed_cycles: m
                .get("elapsed_cycles")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            fabric_occupancy: f64_field(m, "fabric_occupancy")?,
            logic_utilization: f64_field(m, "logic_utilization")?,
            bus_busy_fraction: f64_field(m, "bus_busy_fraction")?,
            rotations_completed: m
                .get("rotations_completed")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            forecast_windows: m
                .get("forecast_windows")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            forecast_precision: f64_field(m, "forecast_precision")?,
            forecast_recall: f64_field(m, "forecast_recall")?,
            // Absent in pre-cache baselines and FC-less runs alike; both
            // read back as None.
            fc_hit_rate: m.get("fc_hit_rate").and_then(JsonValue::as_f64),
            executions_total: m
                .get("executions_total")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            hw_fraction: f64_field(m, "hw_fraction")?,
            cycles_saved_vs_sw: m
                .get("cycles_saved_vs_sw")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            dropped_events: m
                .get("dropped_events")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            selection_cache_hits: m
                .get("selection_cache_hits")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            selection_cache_misses: m
                .get("selection_cache_misses")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            selection_cache_invalidations: m
                .get("selection_cache_invalidations")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
        };
        let phases = v
            .get("phases")
            .and_then(JsonValue::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|p| {
                        Some(PhaseProfile {
                            name: p.get("name")?.as_str()?.to_string(),
                            count: p.get("count")?.as_u64()?,
                            total_ns: p.get("total_ns")?.as_u64()?,
                            min_ns: p.get("min_ns")?.as_u64()?,
                            max_ns: p.get("max_ns")?.as_u64()?,
                            p50_ns: p.get("p50_ns")?.as_u64()?,
                            p99_ns: p.get("p99_ns")?.as_u64()?,
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        let so = v
            .get("sink_overhead_ns_per_event")
            .ok_or("missing sink_overhead_ns_per_event")?;
        Ok(WorkloadResult {
            workload: str_field("workload")?,
            mode: str_field("mode")?,
            warmup: u64_field("warmup")?,
            reps: u64_field("reps")?,
            wall_ns,
            wall_ns_median: u64_field("wall_ns_median")?,
            events: u64_field("events")?,
            sim_cycles: u64_field("sim_cycles")?,
            events_per_sec: f64_field(&v, "events_per_sec")?,
            sim_cycles_per_sec: f64_field(&v, "sim_cycles_per_sec")?,
            metrics,
            phases,
            sink_overhead_ns_per_event: SinkOverhead {
                null: f64_field(so, "null")?,
                counters: f64_field(so, "counters")?,
                timeline: f64_field(so, "timeline")?,
                jsonl: f64_field(so, "jsonl")?,
                // Absent in pre-PR-7 documents; read tolerantly.
                binary: f64_field(so, "binary").unwrap_or(0.0),
            },
        })
    }
}

// ---------------------------------------------------------------------
// Minimal JSON reader (offline workspace: no serde)
// ---------------------------------------------------------------------

/// A parsed JSON value — just enough for the BENCH file format.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; `as_u64` round-trips integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a position-annotated description of the first syntax
    /// error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float, when it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("invalid number {text:?} at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the full UTF-8 character, not byte-by-byte.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Comparison gate
// ---------------------------------------------------------------------

/// One workload's old-vs-new comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareLine {
    /// Workload name.
    pub workload: String,
    /// Baseline median wall time, ns.
    pub old_median_ns: u64,
    /// Candidate median wall time, ns.
    pub new_median_ns: u64,
    /// Relative change: `new/old - 1` (positive = slower).
    pub ratio: f64,
    /// `true` when `ratio` exceeds the threshold.
    pub regressed: bool,
    /// `true` when the two results ran in different modes (quick vs
    /// full) — the comparison is then apples-to-oranges.
    pub mode_mismatch: bool,
}

/// Outcome of diffing two BENCH sets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompareReport {
    /// Per-workload comparisons, in baseline order.
    pub lines: Vec<CompareLine>,
    /// Workloads present in the baseline but absent from the candidate.
    pub missing_in_new: Vec<String>,
    /// Workloads present in the candidate but absent from the baseline.
    pub missing_in_old: Vec<String>,
}

impl CompareReport {
    /// `true` when any workload regressed past the threshold or
    /// disappeared from the candidate set.
    #[must_use]
    pub fn has_regressions(&self) -> bool {
        self.lines.iter().any(|l| l.regressed) || !self.missing_in_new.is_empty()
    }

    /// Renders the human-readable comparison table.
    #[must_use]
    pub fn render(&self, threshold: f64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>14} {:>14} {:>8}  verdict",
            "workload", "old median ns", "new median ns", "change"
        );
        for l in &self.lines {
            let verdict = if l.regressed {
                "REGRESSED"
            } else if l.ratio < -threshold {
                "improved"
            } else {
                "ok"
            };
            let note = if l.mode_mismatch {
                " (mode mismatch)"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{:<12} {:>14} {:>14} {:>+7.1}%  {verdict}{note}",
                l.workload,
                l.old_median_ns,
                l.new_median_ns,
                l.ratio * 100.0
            );
        }
        for w in &self.missing_in_new {
            let _ = writeln!(out, "{w:<12} missing from candidate set  REGRESSED");
        }
        for w in &self.missing_in_old {
            let _ = writeln!(out, "{w:<12} new workload (no baseline)  ok");
        }
        out
    }
}

/// Diffs two BENCH sets by workload name. `threshold` is the relative
/// slowdown past which a workload counts as regressed (0.20 = 20%).
#[must_use]
pub fn compare(old: &[WorkloadResult], new: &[WorkloadResult], threshold: f64) -> CompareReport {
    let mut report = CompareReport::default();
    for o in old {
        let Some(n) = new.iter().find(|n| n.workload == o.workload) else {
            report.missing_in_new.push(o.workload.clone());
            continue;
        };
        let ratio = if o.wall_ns_median == 0 {
            0.0
        } else {
            n.wall_ns_median as f64 / o.wall_ns_median as f64 - 1.0
        };
        report.lines.push(CompareLine {
            workload: o.workload.clone(),
            old_median_ns: o.wall_ns_median,
            new_median_ns: n.wall_ns_median,
            ratio,
            regressed: ratio > threshold,
            mode_mismatch: o.mode != n.mode,
        });
    }
    for n in new {
        if !old.iter().any(|o| o.workload == n.workload) {
            report.missing_in_old.push(n.workload.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(workload: &str, median: u64) -> WorkloadResult {
        WorkloadResult {
            workload: workload.to_string(),
            mode: "quick".to_string(),
            warmup: 1,
            reps: 3,
            wall_ns: vec![median - 1, median, median + 1],
            wall_ns_median: median,
            events: 1_000,
            sim_cycles: 5_000_000,
            events_per_sec: 2.5e6,
            sim_cycles_per_sec: 1.25e10,
            metrics: MetricsSummary {
                elapsed_cycles: 5_000_000,
                fabric_occupancy: 0.5,
                hw_fraction: 0.75,
                ..MetricsSummary::default()
            },
            phases: vec![PhaseProfile {
                name: "reselect".to_string(),
                count: 10,
                total_ns: 1_234,
                min_ns: 7,
                max_ns: 600,
                p50_ns: 100,
                p99_ns: 600,
            }],
            sink_overhead_ns_per_event: SinkOverhead {
                null: 0.5,
                counters: 20.0,
                timeline: 60.0,
                jsonl: 400.0,
                binary: 30.0,
            },
        }
    }

    #[test]
    fn bench_json_roundtrips() {
        let original = sample("fig06", 400_000);
        let text = original.to_json();
        assert!(text.contains("\"schema_version\": 1"));
        let parsed = WorkloadResult::from_json(&text).expect("own output parses");
        assert_eq!(parsed, original);
    }

    #[test]
    fn pre_binary_sink_documents_still_parse() {
        // `binary` joined the sink-overhead object in PR 7; older
        // committed BENCH files must keep parsing (as 0.0).
        let text = sample("fig06", 400_000)
            .to_json()
            .replace(", \"binary\": 30", "");
        assert!(!text.contains("binary"), "field removal failed: {text}");
        let parsed = WorkloadResult::from_json(&text).expect("old document parses");
        assert_eq!(parsed.sink_overhead_ns_per_event.binary, 0.0);
    }

    #[test]
    fn future_bench_schema_is_refused() {
        let text = sample("fig06", 1)
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = WorkloadResult::from_json(&text).unwrap_err();
        assert!(err.contains("unsupported schema_version 99"), "{err}");
    }

    #[test]
    fn median_handles_odd_and_even() {
        assert_eq!(median_ns(&[5]), 5);
        assert_eq!(median_ns(&[3, 1, 2]), 2);
        assert_eq!(median_ns(&[4, 1, 3, 2]), 2);
    }

    #[test]
    fn identical_sets_do_not_regress() {
        let old = vec![sample("fig06", 100), sample("stress", 200)];
        let report = compare(&old, &old.clone(), 0.2);
        assert!(!report.has_regressions());
        assert_eq!(report.lines.len(), 2);
        assert!(report.lines.iter().all(|l| l.ratio == 0.0));
    }

    #[test]
    fn injected_slowdown_regresses() {
        let old = vec![sample("fig06", 100)];
        let new = vec![sample("fig06", 150)];
        let report = compare(&old, &new, 0.2);
        assert!(report.has_regressions());
        assert!((report.lines[0].ratio - 0.5).abs() < 1e-9);
        assert!(report.render(0.2).contains("REGRESSED"));
        // …but a generous threshold lets the same diff pass.
        assert!(!compare(&old, &new, 0.6).has_regressions());
    }

    #[test]
    fn missing_workload_is_a_regression() {
        let old = vec![sample("fig06", 100), sample("stress", 200)];
        let new = vec![sample("fig06", 100)];
        let report = compare(&old, &new, 0.2);
        assert!(report.has_regressions());
        assert_eq!(report.missing_in_new, vec!["stress".to_string()]);
    }

    #[test]
    fn mode_mismatch_is_flagged() {
        let old = vec![sample("fig06", 100)];
        let mut newer = sample("fig06", 100);
        newer.mode = "full".to_string();
        let report = compare(&old, &[newer], 0.2);
        assert!(report.lines[0].mode_mismatch);
        assert!(report.render(0.2).contains("mode mismatch"));
    }

    #[test]
    fn json_parser_handles_the_grammar() {
        let v = JsonValue::parse(
            "{\"a\": [1, 2.5, -3e2], \"s\": \"x\\n\\\"y\\u0041\", \"b\": true, \"n\": null}",
        )
        .unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\n\"yA"));
        assert_eq!(v.get("b"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("n"), Some(&JsonValue::Null));
        assert!(JsonValue::parse("{\"unterminated\": ").is_err());
        assert!(JsonValue::parse("[1, 2] trailing").is_err());
    }
}
