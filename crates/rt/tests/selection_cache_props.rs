//! Twin-comparison properties for the incremental selection cache.
//!
//! Two managers run the same random operation sequence on the same
//! platform under the same deterministic fault plan; one has the
//! selection cache enabled, the other runs every re-selection from
//! scratch (the oracle). The cache is only allowed to change *speed*:
//! selections, rotation plans and the entire event timeline must be
//! identical modulo the `cache_hit` marker on `Reselect` events —
//! across every invalidation interleaving the sequence produces
//! (rotation completions, CRC faults, quarantines, power-mode flips).

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use rispp_core::atom::AtomSet;
use rispp_core::energy::EnergyModel;
use rispp_core::forecast::ForecastValue;
use rispp_core::molecule::Molecule;
use rispp_core::si::{MoleculeImpl, SiId, SiLibrary, SpecialInstruction};
use rispp_fabric::catalog::{AtomCatalog, AtomHwProfile};
use rispp_fabric::fabric::Fabric;
use rispp_fabric::fault::FaultPlan;
use rispp_obs::{Event, Record, SinkHandle, TimelineSink};
use rispp_rt::manager::{PowerMode, RisppManager};

const SIS: usize = 4;
const CONTAINERS: usize = 4;

/// Three-kind platform with four SIs whose upgrade ladders overlap, so
/// random demand mixes force real selection trade-offs.
fn platform() -> (SiLibrary, Fabric) {
    let atoms = AtomSet::from_names(["A", "B", "C"]);
    let catalog = AtomCatalog::new(vec![
        AtomHwProfile::new("A", 100, 200, 6_920),
        AtomHwProfile::new("B", 100, 200, 6_920),
        AtomHwProfile::new("C", 100, 200, 6_920),
    ]);
    let fabric = Fabric::new(atoms, catalog, CONTAINERS);
    let mut lib = SiLibrary::new(3);
    let sis = [
        SpecialInstruction::new(
            "S0",
            500,
            vec![
                MoleculeImpl::new(Molecule::from_counts([1, 1, 0]), 20),
                MoleculeImpl::new(Molecule::from_counts([2, 1, 0]), 10),
            ],
        ),
        SpecialInstruction::new(
            "S1",
            400,
            vec![MoleculeImpl::new(Molecule::from_counts([0, 2, 0]), 15)],
        ),
        SpecialInstruction::new(
            "S2",
            600,
            vec![
                MoleculeImpl::new(Molecule::from_counts([0, 1, 1]), 30),
                MoleculeImpl::new(Molecule::from_counts([0, 1, 2]), 12),
            ],
        ),
        SpecialInstruction::new(
            "S3",
            300,
            vec![
                MoleculeImpl::new(Molecule::from_counts([1, 0, 1]), 25),
                MoleculeImpl::new(Molecule::from_counts([2, 0, 2]), 8),
            ],
        ),
    ];
    for si in sis {
        lib.insert(si.unwrap()).unwrap();
    }
    (lib, fabric)
}

/// One step of the random driver program.
#[derive(Debug, Clone)]
enum Op {
    Forecast { task: u32, si: usize, execs: u32 },
    Retract { task: u32, si: usize },
    Execute { task: u32, si: usize },
    Advance { delta: u64 },
    Power { energy: bool },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..3, 0usize..SIS, 1u32..200).prop_map(|(task, si, execs)| Op::Forecast {
            task,
            si,
            execs
        }),
        (0u32..3, 0usize..SIS).prop_map(|(task, si)| Op::Retract { task, si }),
        (0u32..3, 0usize..SIS).prop_map(|(task, si)| Op::Execute { task, si }),
        (1u64..150_000).prop_map(|delta| Op::Advance { delta }),
        any::<bool>().prop_map(|energy| Op::Power { energy }),
    ]
}

/// Everything observable a run produces.
struct RunOutcome {
    timeline: Vec<Record>,
    target: Molecule,
    loaded: Molecule,
    rotations_requested: u64,
    cache_stats: (u64, u64, u64),
}

/// Drives `ops` against a fresh platform (faulted per `fault_seed`) and
/// returns the observables, with `cache_hit` markers normalised away.
fn run(ops: &[Op], fault_seed: u64, cache: bool) -> RunOutcome {
    let (lib, fabric) = platform();
    let fabric = if fault_seed == 0 {
        fabric
    } else {
        fabric.with_faults(FaultPlan::seeded(fault_seed, CONTAINERS, 400_000))
    };
    let sink = Rc::new(RefCell::new(TimelineSink::new()));
    let mut mgr = RisppManager::builder(lib, fabric)
        .sink(SinkHandle::shared(sink.clone()))
        .deterministic_timing(true)
        .selection_cache(cache)
        .build();
    for op in ops {
        match *op {
            Op::Forecast { task, si, execs } => {
                mgr.forecast(
                    task,
                    ForecastValue::new(SiId(si), 1.0, 50_000.0, f64::from(execs)),
                );
            }
            Op::Retract { task, si } => mgr.retract_forecast(task, SiId(si)),
            Op::Execute { task, si } => {
                mgr.execute_si(task, SiId(si));
            }
            Op::Advance { delta } => {
                let t = mgr.now() + delta;
                mgr.advance_to(t).expect("monotone time");
            }
            Op::Power { energy } => mgr.adapt_power_mode(if energy {
                PowerMode::EnergySaving {
                    model: EnergyModel::default(),
                    alpha: 1.5,
                }
            } else {
                PowerMode::Performance
            }),
        }
    }
    let outcome = RunOutcome {
        timeline: Vec::new(),
        target: mgr.target().clone(),
        loaded: mgr.loaded(),
        rotations_requested: mgr.rotations_requested(),
        cache_stats: mgr.selection_cache_stats(),
    };
    drop(mgr);
    let mut timeline = Rc::try_unwrap(sink)
        .expect("manager dropped its sink handle")
        .into_inner()
        .into_timeline();
    for record in timeline.entries_mut() {
        if let Event::Reselect { cache_hit, .. } = &mut record.event {
            *cache_hit = false;
        }
    }
    RunOutcome {
        timeline: timeline.entries().to_vec(),
        ..outcome
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cache never changes a decision: same ops, same faults ⇒ the
    /// cached run and the from-scratch oracle agree on every event.
    #[test]
    fn cached_run_matches_from_scratch_oracle(
        ops in proptest::collection::vec(op(), 1..60),
        fault_seed in 0u64..8,
    ) {
        let cached = run(&ops, fault_seed, true);
        let oracle = run(&ops, fault_seed, false);
        prop_assert_eq!(&cached.timeline, &oracle.timeline);
        prop_assert_eq!(&cached.target, &oracle.target);
        prop_assert_eq!(&cached.loaded, &oracle.loaded);
        prop_assert_eq!(cached.rotations_requested, oracle.rotations_requested);
        // The oracle genuinely ran from scratch every time.
        prop_assert_eq!(oracle.cache_stats.0, 0);
        prop_assert_eq!(oracle.cache_stats.2, 0);
        // Every re-selection in the cached run is accounted hit-or-miss.
        let reselects = cached
            .timeline
            .iter()
            .filter(|r| matches!(r.event, Event::Reselect { .. }))
            .count() as u64;
        prop_assert_eq!(cached.cache_stats.0 + cached.cache_stats.1, reselects);
    }
}
