//! End-to-end behaviour of the run-time manager shell.
//!
//! These tests pin the observable contract of [`RisppManager`] — the
//! forecast → select → rotate → execute pipeline, fault degradation,
//! accounting and event emission — independently of how the decision
//! stages are factored internally. They moved here verbatim from the
//! pre-decomposition `manager.rs` unit tests; golden fixtures at the
//! workspace level additionally pin bit-identical event streams.

use rispp_core::atom::{AtomKind, AtomSet};
use rispp_core::error::CoreError;
use rispp_core::forecast::ForecastValue;
use rispp_core::molecule::Molecule;
use rispp_core::si::{MoleculeImpl, SiId, SiLibrary, SpecialInstruction};
use rispp_fabric::catalog::{AtomCatalog, AtomHwProfile};
use rispp_fabric::fabric::{Fabric, FabricEvent};
use rispp_obs::{Event, ReselectTrigger, SinkHandle};
use rispp_rt::manager::{PowerMode, RisppManager, RotationStrategy};

/// Two-kind platform with fast, equal rotation times for readability.
fn small_platform() -> (SiLibrary, Fabric, SiId, SiId) {
    let atoms = AtomSet::from_names(["A", "B"]);
    let catalog = AtomCatalog::new(vec![
        AtomHwProfile::new("A", 100, 200, 6_920), // 100 µs → 10 000 cycles
        AtomHwProfile::new("B", 100, 200, 6_920),
    ]);
    let fabric = Fabric::new(atoms, catalog, 3);
    let mut lib = SiLibrary::new(2);
    let s0 = lib
        .insert(
            SpecialInstruction::new(
                "S0",
                500,
                vec![
                    MoleculeImpl::new(Molecule::from_counts([1, 1]), 20),
                    MoleculeImpl::new(Molecule::from_counts([2, 1]), 10),
                ],
            )
            .unwrap(),
        )
        .unwrap();
    let s1 = lib
        .insert(
            SpecialInstruction::new(
                "S1",
                400,
                vec![MoleculeImpl::new(Molecule::from_counts([0, 2]), 15)],
            )
            .unwrap(),
        )
        .unwrap();
    (lib, fabric, s0, s1)
}

fn fv(si: SiId, execs: f64) -> ForecastValue {
    ForecastValue::new(si, 1.0, 50_000.0, execs)
}

/// Advances past every queued and in-flight rotation and returns the
/// cycle at which the last one completed. Panics — with the manager's
/// current clock — when nothing is rotating or time cannot advance.
fn drain_rotations(mgr: &mut RisppManager) -> u64 {
    let done = mgr
        .all_rotations_done_at()
        .unwrap_or_else(|| panic!("nothing to drain: fabric idle at cycle {}", mgr.now()));
    advance_or_panic(mgr, done);
    done
}

/// `advance_to` that reports the manager's current clock on failure.
fn advance_or_panic(mgr: &mut RisppManager, t: u64) {
    if let Err(e) = mgr.advance_to(t) {
        panic!("advance_to({t}) failed at cycle {}: {e}", mgr.now());
    }
}

#[test]
fn forecast_triggers_rotations() {
    let (lib, fabric, s0, _) = small_platform();
    let mut mgr = RisppManager::builder(lib, fabric).build();
    mgr.forecast(0, fv(s0, 100.0));
    assert!(mgr.rotations_requested() >= 2);
    assert_eq!(mgr.target(), &Molecule::from_counts([2, 1]));
}

#[test]
fn execution_upgrades_gradually() {
    let (lib, fabric, s0, _) = small_platform();
    let mut mgr = RisppManager::builder(lib, fabric).build();
    mgr.forecast(0, fv(s0, 100.0));
    // Nothing loaded yet → software.
    let r0 = mgr.execute_si(0, s0);
    assert!(!r0.hardware);
    assert_eq!(r0.cycles, 500);
    // Advance until the fabric holds (1, 1) — the minimal Molecule.
    let mut t = mgr.now();
    loop {
        t += 10_000;
        advance_or_panic(&mut mgr, t);
        if mgr.loaded().count(AtomKind(0)) >= 1 && mgr.loaded().count(AtomKind(1)) >= 1 {
            break;
        }
        assert!(t < 1_000_000, "rotation never completed");
    }
    let r1 = mgr.execute_si(0, s0);
    assert!(r1.hardware);
    assert!(r1.cycles == 20 || r1.cycles == 10);
    // After all rotations: the fastest Molecule.
    if mgr.all_rotations_done_at().is_some() {
        drain_rotations(&mut mgr);
    }
    assert_eq!(mgr.execute_si(0, s0).cycles, 10);
}

#[test]
fn retraction_frees_atoms_for_other_task() {
    let (lib, fabric, s0, s1) = small_platform();
    let mut mgr = RisppManager::builder(lib, fabric).build();
    mgr.forecast(0, fv(s0, 100.0));
    drain_rotations(&mut mgr);
    assert_eq!(mgr.execute_si(0, s0).cycles, 10);
    // Task 1 wants S1 (needs two B atoms); S0's forecast retracts.
    mgr.retract_forecast(0, s0);
    mgr.forecast(1, fv(s1, 100.0));
    drain_rotations(&mut mgr);
    let r = mgr.execute_si(1, s1);
    assert!(r.hardware);
    assert_eq!(r.cycles, 15);
}

#[test]
fn stats_accumulate() {
    let (lib, fabric, s0, _) = small_platform();
    let mut mgr = RisppManager::builder(lib, fabric).build();
    mgr.execute_si(0, s0);
    mgr.execute_si(0, s0);
    let s = mgr.stats(s0);
    assert_eq!(s.sw_executions, 2);
    assert_eq!(s.hw_executions, 0);
    assert_eq!(s.cycles, 1000);
}

#[test]
fn observation_reweights_selection() {
    let (lib, fabric, s0, s1) = small_platform();
    let mut mgr = RisppManager::builder(lib, fabric).build();
    // Both tasks forecast; capacity 3 cannot host (2,1) ∪ (0,2) = (2,3).
    mgr.forecast(0, fv(s0, 100.0));
    mgr.forecast(1, fv(s1, 1.0));
    // S0 dominates: target covers S0's fast molecule.
    assert!(Molecule::from_counts([2, 1]).le(mgr.target()));
    // Repeated misses of S0's forecast drain its probability.
    for _ in 0..20 {
        mgr.record_fc_outcome(0, s0, false, 0.0, 0.0);
    }
    // Now S1 should win the containers.
    assert!(Molecule::from_counts([0, 2]).le(mgr.target()));
}

#[test]
fn fc_stats_track_monitoring() {
    let (lib, fabric, s0, _) = small_platform();
    let mut mgr = RisppManager::builder(lib, fabric).build();
    mgr.forecast(0, fv(s0, 10.0));
    mgr.forecast(1, fv(s0, 10.0));
    mgr.record_fc_outcome(0, s0, true, 1_000.0, 5.0);
    mgr.record_fc_outcome(0, s0, false, 0.0, 0.0);
    mgr.record_fc_outcome(0, s0, true, 1_000.0, 5.0);
    mgr.retract_forecast(1, s0);
    let fc = mgr.fc_stats(s0);
    assert_eq!(fc.issued, 2);
    assert_eq!(fc.retracted, 1);
    assert_eq!((fc.hits, fc.misses), (2, 1));
    assert!((fc.hit_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
}

#[test]
fn fc_stats_empty_hit_rate_is_none() {
    let (lib, fabric, s0, _) = small_platform();
    let mgr = RisppManager::builder(lib, fabric).build();
    assert_eq!(mgr.fc_stats(s0).hit_rate(), None);
}

#[test]
fn target_only_strategy_delays_first_hw_execution() {
    // The ablation: with TargetOnly, the atom load order follows the
    // final molecule's kind order, so with an equal number of
    // rotations the time to the *first* hardware execution can only
    // be later or equal than with UpgradePath.
    let first_hw_at = |strategy: RotationStrategy| {
        let (lib, fabric, s0, _) = small_platform();
        let mut mgr = RisppManager::builder(lib, fabric)
            .rotation_strategy(strategy)
            .build();
        mgr.forecast(0, fv(s0, 100.0));
        let mut t = 0u64;
        loop {
            t += 1_000;
            advance_or_panic(&mut mgr, t);
            if mgr.execute_si(0, s0).hardware {
                return t;
            }
            assert!(t < 1_000_000, "never reached hardware");
        }
    };
    let upgrade = first_hw_at(RotationStrategy::UpgradePath);
    let target_only = first_hw_at(RotationStrategy::TargetOnly);
    assert!(upgrade <= target_only, "{upgrade} > {target_only}");
}

#[test]
fn energy_saving_mode_refuses_unamortised_rotations() {
    use rispp_core::energy::EnergyModel;
    let (lib, fabric, s0, _) = small_platform();
    let mut mgr = RisppManager::builder(lib, fabric).build();
    mgr.adapt_power_mode(PowerMode::EnergySaving {
        model: EnergyModel::default(),
        alpha: 1.0,
    });
    // Few expected executions: rotation energy never amortises.
    mgr.forecast(0, fv(s0, 3.0));
    assert_eq!(mgr.rotations_requested(), 0, "rotated for 3 executions");
    // Many expected executions: rotation pays for itself.
    mgr.forecast(0, fv(s0, 100_000.0));
    assert!(mgr.rotations_requested() > 0);
}

#[test]
fn performance_mode_rotates_for_small_demands_too() {
    let (lib, fabric, s0, _) = small_platform();
    let mut mgr = RisppManager::builder(lib, fabric).build();
    mgr.forecast(0, fv(s0, 3.0));
    assert!(mgr.rotations_requested() > 0);
}

#[test]
fn reselects_count_every_fc_event() {
    let (lib, fabric, s0, s1) = small_platform();
    let mut mgr = RisppManager::builder(lib, fabric).build();
    let before = mgr.reselects();
    mgr.forecast(0, fv(s0, 10.0));
    mgr.forecast(1, fv(s1, 10.0));
    mgr.retract_forecast(0, s0);
    mgr.record_fc_outcome(1, s1, true, 100.0, 5.0);
    assert_eq!(mgr.reselects() - before, 4);
    // A batched FC Block costs one re-evaluation, not two.
    let b2 = mgr.reselects();
    mgr.forecast_block(0, vec![fv(s0, 10.0), fv(s1, 10.0)]);
    assert_eq!(mgr.reselects() - b2, 1);
}

#[test]
fn energy_report_accounts_all_three_terms() {
    use rispp_core::energy::EnergyModel;
    let (lib, fabric, s0, _) = small_platform();
    let mut mgr = RisppManager::builder(lib, fabric).build();
    let model = EnergyModel::default();
    // Pure software run: only SW execution energy.
    mgr.execute_si(0, s0);
    let r = mgr.energy_report(&model);
    assert!(r.sw_execution_j > 0.0);
    assert_eq!(r.hw_execution_j, 0.0);
    assert_eq!(r.rotation_j, 0.0);
    // Forecast → rotations add transfer energy; HW executions follow.
    mgr.forecast(0, fv(s0, 100.0));
    assert!(mgr.rotation_bytes() > 0);
    drain_rotations(&mut mgr);
    mgr.execute_si(0, s0);
    let r2 = mgr.energy_report(&model);
    assert!(r2.rotation_j > 0.0);
    assert!(r2.hw_execution_j > 0.0);
    assert!(r2.total_j() > r.total_j());
}

#[test]
fn cancelled_rotations_are_not_billed() {
    let (lib, fabric, s0, s1) = small_platform();
    let mut mgr = RisppManager::builder(lib, fabric).build();
    mgr.forecast(0, fv(s0, 100.0));
    let after_first = mgr.rotation_bytes();
    // Immediate retraction cancels everything still queued; only the
    // in-flight transfer (at most one) stays billed.
    mgr.retract_forecast(0, s0);
    assert!(mgr.rotation_bytes() <= after_first);
    assert!(mgr.rotation_bytes() <= 6_920, "{}", mgr.rotation_bytes());
    let _ = s1;
}

#[test]
#[should_panic(expected = "lambda")]
fn smoothing_out_of_range_rejected() {
    let (lib, fabric, ..) = small_platform();
    let _ = RisppManager::builder(lib, fabric).smoothing(1.5).build();
}

#[test]
fn try_execute_rejects_unknown_si() {
    let (lib, fabric, s0, _) = small_platform();
    let mut mgr = RisppManager::builder(lib, fabric).build();
    let err = mgr.try_execute_si(0, SiId(99)).unwrap_err();
    assert_eq!(
        err,
        CoreError::UnknownSi {
            id: 99,
            library_len: 2
        }
    );
    // The valid path matches the panicking API.
    let rec = mgr.try_execute_si(0, s0).unwrap();
    assert_eq!(rec, mgr.execute_si(0, s0));
}

#[test]
#[should_panic(expected = "unknown special instruction")]
fn execute_panics_on_unknown_si() {
    let (lib, fabric, ..) = small_platform();
    let mut mgr = RisppManager::builder(lib, fabric).build();
    let _ = mgr.execute_si(0, SiId(99));
}

#[test]
fn sink_sees_manager_events_at_source() {
    use rispp_obs::TimelineSink;
    use std::cell::RefCell;
    use std::rc::Rc;

    let timeline = Rc::new(RefCell::new(TimelineSink::new()));
    let (lib, fabric, s0, _) = small_platform();
    let mut mgr = RisppManager::builder(lib, fabric)
        .sink(SinkHandle::shared(timeline.clone()))
        .build();

    mgr.forecast(0, fv(s0, 100.0));
    mgr.execute_si(0, s0); // software: nothing loaded yet
    let done = drain_rotations(&mut mgr);
    mgr.execute_si(0, s0); // hardware
    mgr.record_fc_outcome(0, s0, true, 50_000.0, 100.0);
    mgr.retract_forecast(0, s0);

    let tl = timeline.borrow();
    let records = tl.timeline().entries();
    let has = |pred: &dyn Fn(&Event) -> bool| records.iter().any(|r| pred(&r.event));
    assert!(has(&|e| matches!(
        e,
        Event::ForecastUpdated { task: 0, .. }
    )));
    assert!(has(&|e| matches!(
        e,
        Event::Reselect {
            trigger: ReselectTrigger::Forecast,
            ..
        }
    )));
    assert!(has(&|e| matches!(e, Event::UpgradeStep { step: 0, .. })));
    assert!(has(&|e| matches!(
        e,
        Event::SiExecuted {
            hw: false,
            cycles: 500,
            molecule: None,
            ..
        }
    )));
    // Rotations flow through the shared fabric sink.
    assert!(has(&|e| matches!(e, Event::RotationStarted { .. })));
    assert!(has(&|e| matches!(e, Event::RotationCompleted { .. })));
    // The hardware execution carries its Molecule.
    assert!(records.iter().any(|r| matches!(
        &r.event,
        Event::SiExecuted { hw: true, molecule: Some(m), .. }
            if m.determinant() > 0 && r.at == done
    )));
    assert!(has(&|e| matches!(
        e,
        Event::FcOutcome { reached: true, .. }
    )));
    assert!(has(&|e| matches!(
        e,
        Event::ForecastRetracted { task: 0, .. }
    )));
}

#[test]
fn disabled_sink_changes_nothing() {
    let run = |sink: Option<SinkHandle>| {
        let (lib, fabric, s0, s1) = small_platform();
        let mut b = RisppManager::builder(lib, fabric);
        if let Some(s) = sink {
            b = b.sink(s);
        }
        let mut mgr = b.build();
        mgr.forecast(0, fv(s0, 100.0));
        mgr.forecast(1, fv(s1, 10.0));
        drain_rotations(&mut mgr);
        let r = mgr.execute_si(0, s0);
        (r, mgr.rotations_requested(), mgr.target().clone())
    };
    let observed = run(Some(SinkHandle::new(rispp_obs::CountersSink::default())));
    let silent = run(None);
    assert_eq!(observed, silent);
}

#[test]
fn retry_waits_out_the_backoff() {
    use rispp_fabric::FaultPlan;
    // One container, one single-Atom Molecule: exactly one rotation
    // is ever in flight, so the retry timing is fully determined.
    let atoms = AtomSet::from_names(["A", "B"]);
    let catalog = AtomCatalog::new(vec![
        AtomHwProfile::new("A", 100, 200, 6_920), // 10 000-cycle rotation
        AtomHwProfile::new("B", 100, 200, 6_920),
    ]);
    let fabric = Fabric::new(atoms, catalog, 1).with_faults(FaultPlan {
        crc_failures: vec![0],
        ..FaultPlan::default()
    });
    let mut lib = SiLibrary::new(2);
    let si = lib
        .insert(
            SpecialInstruction::new(
                "S",
                500,
                vec![MoleculeImpl::new(Molecule::from_counts([0, 1]), 20)],
            )
            .unwrap(),
        )
        .unwrap();
    let mut mgr = RisppManager::builder(lib, fabric).build();
    mgr.forecast(0, fv(si, 100.0));
    let events = mgr.advance_to(100_000).unwrap();
    // Rotation 0 starts at 0 and fails CRC at 10 000; the retry
    // starts exactly when the 50 µs (5 000 cycle) backoff expires.
    let starts: Vec<u64> = events
        .iter()
        .filter_map(|e| match *e {
            FabricEvent::RotationStarted { at, .. } => Some(at),
            _ => None,
        })
        .collect();
    assert_eq!(starts, vec![0, 15_000]);
    assert!(events
        .iter()
        .any(|e| matches!(e, FabricEvent::RotationFailed { at: 10_000, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, FabricEvent::RotationCompleted { at: 25_000, .. })));
    // The success wiped the failure history; execution is hardware.
    assert!(mgr.blocked_kinds().is_empty());
    assert!(mgr.execute_si(0, si).hardware);
    // Both transfers moved bits: the failed one stays billed.
    assert_eq!(mgr.rotations_requested(), 2);
    assert_eq!(mgr.rotation_bytes(), 2 * 6_920);
}

#[test]
fn kind_parks_after_max_attempts_and_degrades_to_software() {
    use rispp_fabric::FaultPlan;
    // Every rotation fails CRC. After max_attempts per kind the
    // manager parks the kind instead of retrying forever, and the SI
    // keeps executing in software — never an error.
    let (lib, fabric, s0, _) = small_platform();
    let plan = FaultPlan {
        crc_failures: (0..64).collect(),
        ..FaultPlan::default()
    };
    let mut mgr = RisppManager::builder(lib, fabric.with_faults(plan)).build();
    mgr.forecast(0, fv(s0, 100.0));
    let mut failures = 0usize;
    let mut t = 0u64;
    while t < 2_000_000 {
        t += 1_000;
        let events = mgr
            .advance_to(t)
            .expect("advance never errors under faults");
        failures += events
            .iter()
            .filter(|e| matches!(e, FabricEvent::RotationFailed { .. }))
            .count();
        assert!(mgr.execute_si(0, s0).cycles > 0);
    }
    let max = mgr.retry_policy().max_attempts as usize;
    assert!(
        failures >= max,
        "kind parked too early: {failures} failures"
    );
    // Bounded retry: at most max_attempts per kind, plus rotations
    // already queued when their kind parked (one per container).
    assert!(failures <= 2 * max + 3, "retry storm: {failures} failures");
    assert_eq!(mgr.blocked_kinds().len(), 2);
    assert!(!mgr.execute_si(0, s0).hardware);
    assert_eq!(mgr.execute_si(0, s0).cycles, 500);
    // Once parked, the fabric stays quiet: no new rotations, no new
    // failures, however long the run continues.
    let tail = mgr.advance_to(4_000_000).unwrap();
    assert!(tail.is_empty(), "parked kinds still rotating: {tail:?}");
}

#[test]
fn quarantined_container_is_routed_around() {
    use rispp_fabric::{ContainerId, FaultPlan};
    let (lib, fabric, s0, _) = small_platform();
    let plan = FaultPlan {
        bad_containers: vec![ContainerId(0)],
        ..FaultPlan::default()
    };
    let mut mgr = RisppManager::builder(lib, fabric.with_faults(plan)).build();
    mgr.forecast(0, fv(s0, 100.0));
    let events = mgr.advance_to(1_000_000).unwrap();
    let quarantined_at = events
        .iter()
        .find_map(|e| match *e {
            FabricEvent::ContainerQuarantined {
                container: ContainerId(0),
                at,
            } => Some(at),
            _ => None,
        })
        .expect("bad container was never quarantined");
    // No rotation targets the dead container afterwards.
    assert!(events
        .iter()
        .filter_map(|e| match *e {
            FabricEvent::RotationStarted { container, at, .. } if at > quarantined_at =>
                Some(container),
            _ => None,
        })
        .all(|c| c != ContainerId(0)));
    assert_eq!(mgr.fabric().usable_containers(), 2);
    // Selection re-plans under the reduced capacity: the fast (2,1)
    // Molecule no longer fits two containers, the minimal (1,1) does.
    let r = mgr.execute_si(0, s0);
    assert!(r.hardware);
    assert_eq!(r.cycles, 20);
}

#[test]
fn transient_fault_triggers_reloading() {
    use rispp_fabric::{ContainerId, FaultPlan};
    let (lib, fabric, s0, _) = small_platform();
    // Long after everything is loaded, AC0 loses its Atom.
    let plan = FaultPlan {
        transient_faults: vec![(200_000, ContainerId(0))],
        ..FaultPlan::default()
    };
    let mut mgr = RisppManager::builder(lib, fabric.with_faults(plan)).build();
    mgr.forecast(0, fv(s0, 100.0));
    drain_rotations(&mut mgr);
    assert_eq!(mgr.execute_si(0, s0).cycles, 10);
    let events = mgr.advance_to(250_000).unwrap();
    assert!(events
        .iter()
        .any(|e| matches!(e, FabricEvent::ContainerFaulted { .. })));
    // The fault triggered a re-selection that reloads the lost Atom.
    drain_rotations(&mut mgr);
    assert_eq!(mgr.execute_si(0, s0).cycles, 10);
}

#[test]
fn two_tasks_share_atoms() {
    let (lib, fabric, s0, s1) = small_platform();
    let mut mgr = RisppManager::builder(lib, fabric).build();
    mgr.forecast(0, fv(s0, 50.0));
    mgr.forecast(1, fv(s1, 50.0));
    drain_rotations(&mut mgr);
    // Capacity 3: selection can satisfy S0 minimal (1,1) and S1 (0,2)
    // by sharing the B atoms: target (1,2).
    let loaded = mgr.loaded();
    assert!(Molecule::from_counts([1, 1]).le(&loaded), "loaded {loaded}");
    let ra = mgr.execute_si(0, s0);
    let rb = mgr.execute_si(1, s1);
    assert!(ra.hardware && rb.hardware);
}
