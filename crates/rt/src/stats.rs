//! Statistics stage: pure accumulation of execution, forecast-monitoring
//! and rotation-accounting totals.
//!
//! The [`StatsLedger`] is the only place run-time counters live. It never
//! touches the fabric or emits events — the imperative shell
//! ([`RisppManager`](crate::manager::RisppManager)) feeds it facts
//! (an execution happened, a rotation was requested or cancelled, a
//! forecast settled) and reads totals back out. Because the ledger is a
//! plain value, every accounting rule is unit-testable without a
//! platform.

use rispp_core::energy::EnergyModel;
use rispp_core::si::SiId;

/// Outcome of one SI execution through the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionRecord {
    /// Executed SI.
    pub si: SiId,
    /// Latency in cycles.
    pub cycles: u64,
    /// `true` when a hardware Molecule executed, `false` for software.
    pub hardware: bool,
}

/// Per-SI execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiStats {
    /// Hardware executions.
    pub hw_executions: u64,
    /// Software executions.
    pub sw_executions: u64,
    /// Total cycles spent in this SI.
    pub cycles: u64,
    /// Cycles spent in hardware Molecules (subset of `cycles`).
    pub hw_cycles: u64,
}

impl SiStats {
    /// Cycles spent in the software Molecule.
    #[must_use]
    pub fn sw_cycles(&self) -> u64 {
        self.cycles - self.hw_cycles
    }
}

/// Per-SI forecast monitoring statistics (the paper's run-time task (a):
/// "Monitoring FCs and SIs in order to fine-tune the profiling
/// information").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FcStats {
    /// Forecasts announced for this SI (over all tasks).
    pub issued: u64,
    /// Negative forecasts (retractions).
    pub retracted: u64,
    /// Recorded outcomes where the SI was actually reached.
    pub hits: u64,
    /// Recorded outcomes where it was not.
    pub misses: u64,
}

impl FcStats {
    /// Fraction of recorded outcomes that were hits (`None` before any
    /// outcome was recorded).
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }
}

/// Energy totals of a manager's run under an [`EnergyModel`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Energy of software SI executions, in joules.
    pub sw_execution_j: f64,
    /// Energy of hardware SI executions, in joules.
    pub hw_execution_j: f64,
    /// Energy of bitstream transfers (rotations), in joules.
    pub rotation_j: f64,
}

impl EnergyReport {
    /// Total energy in joules.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.sw_execution_j + self.hw_execution_j + self.rotation_j
    }
}

/// Accumulated run statistics: per-SI execution and forecast-monitoring
/// counters plus rotation accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsLedger {
    si: Vec<SiStats>,
    fc: Vec<FcStats>,
    rotations_requested: u64,
    rotation_bytes: u64,
}

impl StatsLedger {
    /// Creates a ledger covering `len` SIs.
    #[must_use]
    pub fn new(len: usize) -> Self {
        StatsLedger {
            si: vec![SiStats::default(); len],
            fc: vec![FcStats::default(); len],
            rotations_requested: 0,
            rotation_bytes: 0,
        }
    }

    /// Per-SI execution statistics.
    #[must_use]
    pub fn si_stats(&self, si: SiId) -> SiStats {
        self.si[si.index()]
    }

    /// Per-SI forecast monitoring statistics.
    #[must_use]
    pub fn fc_stats(&self, si: SiId) -> FcStats {
        self.fc[si.index()]
    }

    /// Records one SI execution.
    pub fn record_execution(&mut self, record: &ExecutionRecord) {
        let s = &mut self.si[record.si.index()];
        if record.hardware {
            s.hw_executions += 1;
            s.hw_cycles += record.cycles;
        } else {
            s.sw_executions += 1;
        }
        s.cycles += record.cycles;
    }

    /// Records that a forecast was announced for `si`.
    pub fn note_forecast_issued(&mut self, si: SiId) {
        self.fc[si.index()].issued += 1;
    }

    /// Records a negative forecast (retraction) for `si`.
    pub fn note_forecast_retracted(&mut self, si: SiId) {
        self.fc[si.index()].retracted += 1;
    }

    /// Records a monitored forecast outcome for `si`.
    pub fn note_fc_outcome(&mut self, si: SiId, reached: bool) {
        if reached {
            self.fc[si.index()].hits += 1;
        } else {
            self.fc[si.index()].misses += 1;
        }
    }

    /// Bills one requested rotation of `bitstream_bytes`.
    pub fn note_rotation_requested(&mut self, bitstream_bytes: u64) {
        self.rotations_requested += 1;
        self.rotation_bytes += bitstream_bytes;
    }

    /// Refunds one cancelled (queued, never started) rotation: it will
    /// never transfer a bitstream, so it must not stay billed.
    pub fn note_rotation_cancelled(&mut self, bitstream_bytes: u64) {
        self.rotations_requested -= 1;
        self.rotation_bytes -= bitstream_bytes;
    }

    /// Total rotations requested so far (net of cancellations).
    #[must_use]
    pub fn rotations_requested(&self) -> u64 {
        self.rotations_requested
    }

    /// Total bitstream bytes of all (non-cancelled) requested rotations.
    #[must_use]
    pub fn rotation_bytes(&self) -> u64 {
        self.rotation_bytes
    }

    /// Energy totals of the run so far under `model` (paper §4.1's energy
    /// accounting: execution energy split SW/HW plus rotation transfers).
    #[must_use]
    pub fn energy_report(&self, model: &EnergyModel) -> EnergyReport {
        let mut report = EnergyReport {
            rotation_j: model.rotation_energy_j(self.rotation_bytes),
            ..EnergyReport::default()
        };
        for s in &self.si {
            report.sw_execution_j += model.sw_execution_energy_j(s.sw_cycles());
            report.hw_execution_j += model.hw_execution_energy_j(s.hw_cycles);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(si: usize, cycles: u64, hardware: bool) -> ExecutionRecord {
        ExecutionRecord {
            si: SiId(si),
            cycles,
            hardware,
        }
    }

    #[test]
    fn executions_split_hw_and_sw() {
        let mut ledger = StatsLedger::new(2);
        ledger.record_execution(&rec(0, 500, false));
        ledger.record_execution(&rec(0, 20, true));
        ledger.record_execution(&rec(1, 400, false));
        let s = ledger.si_stats(SiId(0));
        assert_eq!((s.sw_executions, s.hw_executions), (1, 1));
        assert_eq!(s.cycles, 520);
        assert_eq!(s.hw_cycles, 20);
        assert_eq!(s.sw_cycles(), 500);
        assert_eq!(ledger.si_stats(SiId(1)).sw_executions, 1);
    }

    #[test]
    fn rotation_billing_nets_out_cancellations() {
        let mut ledger = StatsLedger::new(1);
        ledger.note_rotation_requested(1_000);
        ledger.note_rotation_requested(2_000);
        ledger.note_rotation_cancelled(2_000);
        assert_eq!(ledger.rotations_requested(), 1);
        assert_eq!(ledger.rotation_bytes(), 1_000);
    }

    #[test]
    fn fc_counters_accumulate() {
        let mut ledger = StatsLedger::new(1);
        ledger.note_forecast_issued(SiId(0));
        ledger.note_forecast_issued(SiId(0));
        ledger.note_forecast_retracted(SiId(0));
        ledger.note_fc_outcome(SiId(0), true);
        ledger.note_fc_outcome(SiId(0), false);
        let fc = ledger.fc_stats(SiId(0));
        assert_eq!((fc.issued, fc.retracted), (2, 1));
        assert_eq!((fc.hits, fc.misses), (1, 1));
        assert_eq!(fc.hit_rate(), Some(0.5));
    }

    #[test]
    fn hit_rate_is_none_before_outcomes() {
        assert_eq!(StatsLedger::new(1).fc_stats(SiId(0)).hit_rate(), None);
    }

    #[test]
    fn energy_report_covers_all_three_terms() {
        let model = EnergyModel::default();
        let mut ledger = StatsLedger::new(1);
        ledger.record_execution(&rec(0, 500, false));
        ledger.record_execution(&rec(0, 20, true));
        ledger.note_rotation_requested(6_920);
        let r = ledger.energy_report(&model);
        assert!(r.sw_execution_j > 0.0);
        assert!(r.hw_execution_j > 0.0);
        assert!(r.rotation_j > 0.0);
        assert!((r.total_j() - (r.sw_execution_j + r.hw_execution_j + r.rotation_j)).abs() < 1e-18);
    }
}
