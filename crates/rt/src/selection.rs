//! Selection stage: demand weighting and Molecule selection as a pure
//! decision step.
//!
//! This module turns the active forecasts into the paper's run-time task
//! (b), "Selecting Molecules considering the demands of all tasks":
//!
//! 1. [`weigh_demands`] aggregates a benefit weight per SI over all
//!    demanding tasks, under the current adaptation goal ([`PowerMode`]);
//! 2. a [`SelectionPolicy`] maps `(library, weights, capacity)` to a
//!    [`MoleculeSelection`] — the greedy profit heuristic of the paper by
//!    default, the exhaustive oracle for validation;
//! 3. [`SelectionStage`] holds the policy, the mode and the last
//!    selection, so the shell can ask "what is the current target?"
//!    without re-deriving it.
//!
//! Nothing in this module touches the fabric or emits events: given the
//! same inputs, every function returns the same outputs.

use std::collections::BTreeMap;

pub use rispp_core::selection::{select_molecules, select_molecules_exhaustive, MoleculeSelection};
use rispp_core::si::{SiId, SiLibrary};
use rispp_fabric::catalog::AtomCatalog;

use crate::forecast::ForecastStore;
use crate::TaskId;

/// Adaptation goal of the run-time system (the paper's §1 motivation
/// "change in design constraints (system runs out of energy, for
/// example)").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PowerMode {
    /// Maximise speed-up: demands are weighted by expected cycle savings.
    #[default]
    Performance,
    /// Save energy: an SI only earns hardware when its expected execution
    /// count amortises the rotation energy under the given
    /// [`EnergyModel`](rispp_core::energy::EnergyModel) with trade-off
    /// factor α; demand weights become expected energy savings.
    EnergySaving {
        /// The energy model used for amortisation checks.
        model: rispp_core::energy::EnergyModel,
        /// The α trade-off factor of §4.1 (α > 1 = stricter).
        alpha: f64,
    },
}

/// How Molecules are selected from the weighted demands.
///
/// Mirrors [`ReplacementPolicy`](crate::policy::ReplacementPolicy): a
/// small strategy trait with static dispatch, so swapping the selector
/// changes the manager's type parameter instead of adding a branch to the
/// hot path.
pub trait SelectionPolicy {
    /// Chooses hardware Molecules for the weighted `demands` under the
    /// Atom-Container budget `capacity`.
    fn select(&self, lib: &SiLibrary, demands: &[(SiId, f64)], capacity: u32) -> MoleculeSelection;
}

/// The paper's greedy profit-driven selection
/// ([`select_molecules`]) — the default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedySelection;

impl SelectionPolicy for GreedySelection {
    fn select(&self, lib: &SiLibrary, demands: &[(SiId, f64)], capacity: u32) -> MoleculeSelection {
        select_molecules(lib, demands, capacity)
    }
}

/// The exhaustive oracle ([`select_molecules_exhaustive`]) — exponential
/// in the number of demands; for validation runs only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExhaustiveSelection;

impl SelectionPolicy for ExhaustiveSelection {
    fn select(&self, lib: &SiLibrary, demands: &[(SiId, f64)], capacity: u32) -> MoleculeSelection {
        select_molecules_exhaustive(lib, demands, capacity)
    }
}

/// Aggregated benefit weight and owning task per demanded SI.
///
/// The owner is the first (lowest-id) task that demanded the SI; rotations
/// requested on its behalf are attributed to that task in the event
/// stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DemandWeights(BTreeMap<usize, (f64, TaskId)>);

impl DemandWeights {
    /// Aggregated weight of `si` (0 when undemanded).
    #[must_use]
    pub fn weight_of(&self, si: SiId) -> f64 {
        self.0.get(&si.index()).map_or(0.0, |&(w, _)| w)
    }

    /// Owning task of `si`, `None` when undemanded.
    #[must_use]
    pub fn owner_of(&self, si: SiId) -> Option<TaskId> {
        self.0.get(&si.index()).map(|&(_, t)| t)
    }

    /// The weights as the `(si, weight)` demand list the selection
    /// algorithms consume, in ascending SI order.
    #[must_use]
    pub fn as_demands(&self) -> Vec<(SiId, f64)> {
        self.0.iter().map(|(&si, &(w, _))| (SiId(si), w)).collect()
    }
}

/// Bitstream bytes needed to load an SI's minimal Molecule — the
/// energy-rotation cost a forecast must amortise before the SI earns
/// hardware in [`PowerMode::EnergySaving`].
#[must_use]
pub fn minimal_rotation_bytes(lib: &SiLibrary, catalog: &AtomCatalog, si: SiId) -> u64 {
    lib.get(si)
        .minimal()
        .molecule
        .iter_nonzero()
        .map(|(kind, count)| u64::from(count) * catalog.profile(kind).bitstream_bytes)
        .sum()
}

/// Aggregates a benefit weight per SI over all demanding tasks, under the
/// adaptation goal `mode`.
///
/// In [`PowerMode::Performance`] a demand's weight is its expected cycle
/// saving; in [`PowerMode::EnergySaving`] it becomes the expected energy
/// saving in nanojoules, zeroed when the expected executions do not
/// amortise the rotation transfer (§4.1's offset).
#[must_use]
pub fn weigh_demands(
    lib: &SiLibrary,
    catalog: &AtomCatalog,
    mode: PowerMode,
    demands: &ForecastStore,
) -> DemandWeights {
    let mut weights: BTreeMap<usize, (f64, TaskId)> = BTreeMap::new();
    for (task, si, fv) in demands.iter() {
        let def = lib.get(si);
        let benefit = match mode {
            PowerMode::Performance => {
                fv.expected_benefit(def.sw_cycles() as f64, def.fastest().cycles as f64)
            }
            PowerMode::EnergySaving { model, alpha } => {
                // Rotation only pays when the expected executions
                // amortise its transfer energy (§4.1's offset).
                let bytes = minimal_rotation_bytes(lib, catalog, si);
                let needed = model.amortisation_executions(def, bytes, alpha);
                let expected = fv.probability * fv.expected_executions;
                if expected < needed {
                    0.0
                } else {
                    expected * model.per_execution_saving_j(def) * 1e9 // nJ
                }
            }
        };
        let entry = weights.entry(si.index()).or_insert((0.0, task));
        entry.0 += benefit;
    }
    DemandWeights(weights)
}

/// The selection stage: policy + adaptation goal + the last selection.
#[derive(Debug, Clone)]
pub struct SelectionStage<S = GreedySelection> {
    policy: S,
    power_mode: PowerMode,
    selection: MoleculeSelection,
    reselects: u64,
}

impl<S: SelectionPolicy> SelectionStage<S> {
    /// Creates the stage with an empty selection.
    #[must_use]
    pub fn new(policy: S, power_mode: PowerMode) -> Self {
        SelectionStage {
            policy,
            power_mode,
            selection: MoleculeSelection::default(),
            reselects: 0,
        }
    }

    /// The selection currently in force.
    #[must_use]
    pub fn selection(&self) -> &MoleculeSelection {
        &self.selection
    }

    /// The adaptation goal currently in force.
    #[must_use]
    pub fn power_mode(&self) -> PowerMode {
        self.power_mode
    }

    /// Switches the adaptation goal. The caller decides whether that
    /// warrants a re-selection (it does, at run time).
    pub fn set_power_mode(&mut self, mode: PowerMode) {
        self.power_mode = mode;
    }

    /// Number of selection re-evaluations so far — every FC event invokes
    /// one, which is exactly why the compile-time pass trims FC
    /// candidates ("every FC invokes the run-time system to
    /// re-evaluate").
    #[must_use]
    pub fn reselects(&self) -> u64 {
        self.reselects
    }

    /// Re-evaluates the selection from the active demands under the
    /// Atom-Container budget `capacity`, and returns the demand weights
    /// that drove it (the rotation planner orders upgrades by them).
    pub fn reselect(
        &mut self,
        lib: &SiLibrary,
        catalog: &AtomCatalog,
        demands: &ForecastStore,
        capacity: u32,
    ) -> DemandWeights {
        self.reselects += 1;
        let weights = weigh_demands(lib, catalog, self.power_mode, demands);
        self.selection = self.policy.select(lib, &weights.as_demands(), capacity);
        weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rispp_core::forecast::ForecastValue;
    use rispp_core::molecule::Molecule;
    use rispp_core::si::{MoleculeImpl, SpecialInstruction};
    use rispp_fabric::catalog::AtomHwProfile;

    fn platform() -> (SiLibrary, AtomCatalog, SiId, SiId) {
        let catalog = AtomCatalog::new(vec![
            AtomHwProfile::new("A", 100, 200, 6_920),
            AtomHwProfile::new("B", 100, 200, 6_920),
        ]);
        let mut lib = SiLibrary::new(2);
        let s0 = lib
            .insert(
                SpecialInstruction::new(
                    "S0",
                    500,
                    vec![
                        MoleculeImpl::new(Molecule::from_counts([1, 1]), 20),
                        MoleculeImpl::new(Molecule::from_counts([2, 1]), 10),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        let s1 = lib
            .insert(
                SpecialInstruction::new(
                    "S1",
                    400,
                    vec![MoleculeImpl::new(Molecule::from_counts([0, 2]), 15)],
                )
                .unwrap(),
            )
            .unwrap();
        (lib, catalog, s0, s1)
    }

    fn fv(si: SiId, execs: f64) -> ForecastValue {
        ForecastValue::new(si, 1.0, 50_000.0, execs)
    }

    #[test]
    fn weights_aggregate_over_tasks_and_keep_first_owner() {
        let (lib, catalog, s0, _) = platform();
        let mut store = ForecastStore::new(0.25);
        store.insert(3, fv(s0, 10.0));
        store.insert(1, fv(s0, 10.0));
        let w = weigh_demands(&lib, &catalog, PowerMode::Performance, &store);
        // 2 tasks × 10 executions × (500 − 10) cycles saved.
        assert!((w.weight_of(s0) - 2.0 * 10.0 * 490.0).abs() < 1e-9);
        // Iteration is (task, si)-ascending, so task 1 owns the SI.
        assert_eq!(w.owner_of(s0), Some(1));
        assert_eq!(w.owner_of(SiId(1)), None);
        assert_eq!(w.weight_of(SiId(1)), 0.0);
    }

    #[test]
    fn energy_mode_zeroes_unamortised_demands() {
        use rispp_core::energy::EnergyModel;
        let (lib, catalog, s0, _) = platform();
        let mode = PowerMode::EnergySaving {
            model: EnergyModel::default(),
            alpha: 1.0,
        };
        let mut few = ForecastStore::new(0.25);
        few.insert(0, fv(s0, 3.0));
        assert_eq!(weigh_demands(&lib, &catalog, mode, &few).weight_of(s0), 0.0);
        let mut many = ForecastStore::new(0.25);
        many.insert(0, fv(s0, 100_000.0));
        assert!(weigh_demands(&lib, &catalog, mode, &many).weight_of(s0) > 0.0);
    }

    #[test]
    fn stage_tracks_selection_and_reselects() {
        let (lib, catalog, s0, s1) = platform();
        let mut stage = SelectionStage::new(GreedySelection, PowerMode::default());
        let mut store = ForecastStore::new(0.25);
        store.insert(0, fv(s0, 100.0));
        store.insert(1, fv(s1, 1.0));
        let w = stage.reselect(&lib, &catalog, &store, 3);
        assert_eq!(stage.reselects(), 1);
        assert!(w.weight_of(s0) > w.weight_of(s1));
        // S0 dominates: the target covers its fast Molecule.
        assert!(Molecule::from_counts([2, 1]).le(&stage.selection().target));
    }

    #[test]
    fn greedy_and_exhaustive_agree_on_the_small_platform() {
        let (lib, catalog, s0, s1) = platform();
        let mut store = ForecastStore::new(0.25);
        store.insert(0, fv(s0, 50.0));
        store.insert(1, fv(s1, 50.0));
        let w = weigh_demands(&lib, &catalog, PowerMode::Performance, &store);
        let greedy = GreedySelection.select(&lib, &w.as_demands(), 3);
        let exhaustive = ExhaustiveSelection.select(&lib, &w.as_demands(), 3);
        assert_eq!(greedy.target, exhaustive.target);
    }

    #[test]
    fn minimal_rotation_bytes_counts_the_minimal_molecule() {
        let (lib, catalog, s0, s1) = platform();
        // S0 minimal (1,1): two atoms; S1 minimal (0,2): two atoms.
        assert_eq!(minimal_rotation_bytes(&lib, &catalog, s0), 2 * 6_920);
        assert_eq!(minimal_rotation_bytes(&lib, &catalog, s1), 2 * 6_920);
    }
}
