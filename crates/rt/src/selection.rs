//! Selection stage: demand weighting and Molecule selection as a pure
//! decision step.
//!
//! This module turns the active forecasts into the paper's run-time task
//! (b), "Selecting Molecules considering the demands of all tasks":
//!
//! 1. [`weigh_demands`] aggregates a benefit weight per SI over all
//!    demanding tasks, under the current adaptation goal ([`PowerMode`]);
//! 2. a [`SelectionPolicy`] maps `(library, weights, capacity)` to a
//!    [`MoleculeSelection`] — the greedy profit heuristic of the paper by
//!    default, the exhaustive oracle for validation;
//! 3. [`SelectionStage`] holds the policy, the mode and the last
//!    selection, so the shell can ask "what is the current target?"
//!    without re-deriving it.
//!
//! Nothing in this module touches the fabric or emits events: given the
//! same inputs, every function returns the same outputs.

use std::collections::BTreeMap;
use std::sync::Arc;

pub use rispp_core::selection::{
    select_molecules, select_molecules_exhaustive, select_molecules_with, MoleculeSelection,
    SelectionContext,
};
use rispp_core::si::{SiId, SiLibrary};
use rispp_fabric::catalog::AtomCatalog;

use crate::forecast::ForecastStore;
use crate::rotation::RotationPlan;
use crate::TaskId;

/// Adaptation goal of the run-time system (the paper's §1 motivation
/// "change in design constraints (system runs out of energy, for
/// example)").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PowerMode {
    /// Maximise speed-up: demands are weighted by expected cycle savings.
    #[default]
    Performance,
    /// Save energy: an SI only earns hardware when its expected execution
    /// count amortises the rotation energy under the given
    /// [`EnergyModel`](rispp_core::energy::EnergyModel) with trade-off
    /// factor α; demand weights become expected energy savings.
    EnergySaving {
        /// The energy model used for amortisation checks.
        model: rispp_core::energy::EnergyModel,
        /// The α trade-off factor of §4.1 (α > 1 = stricter).
        alpha: f64,
    },
}

/// How Molecules are selected from the weighted demands.
///
/// Mirrors [`ReplacementPolicy`](crate::policy::ReplacementPolicy): a
/// small strategy trait with static dispatch, so swapping the selector
/// changes the manager's type parameter instead of adding a branch to the
/// hot path.
pub trait SelectionPolicy {
    /// Chooses hardware Molecules for the weighted `demands` under the
    /// Atom-Container budget `capacity`.
    fn select(&self, lib: &SiLibrary, demands: &[(SiId, f64)], capacity: u32) -> MoleculeSelection;

    /// Incremental entry point: like [`select`](Self::select) but with a
    /// reusable [`SelectionContext`] holding the scratch buffers of the
    /// selection kernel. Policies that cannot exploit it fall back to the
    /// from-scratch path — results must be identical either way.
    fn select_with(
        &self,
        _ctx: &mut SelectionContext,
        lib: &SiLibrary,
        demands: &[(SiId, f64)],
        capacity: u32,
    ) -> MoleculeSelection {
        self.select(lib, demands, capacity)
    }
}

/// The paper's greedy profit-driven selection
/// ([`select_molecules`]) — the default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedySelection;

impl SelectionPolicy for GreedySelection {
    fn select(&self, lib: &SiLibrary, demands: &[(SiId, f64)], capacity: u32) -> MoleculeSelection {
        select_molecules(lib, demands, capacity)
    }

    fn select_with(
        &self,
        ctx: &mut SelectionContext,
        lib: &SiLibrary,
        demands: &[(SiId, f64)],
        capacity: u32,
    ) -> MoleculeSelection {
        select_molecules_with(ctx, lib, demands, capacity)
    }
}

/// The exhaustive oracle ([`select_molecules_exhaustive`]) — exponential
/// in the number of demands; for validation runs only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExhaustiveSelection;

impl SelectionPolicy for ExhaustiveSelection {
    fn select(&self, lib: &SiLibrary, demands: &[(SiId, f64)], capacity: u32) -> MoleculeSelection {
        select_molecules_exhaustive(lib, demands, capacity)
    }
}

/// Aggregated benefit weight and owning task per demanded SI, kept as a
/// flat `(si index, weight, owner)` list in ascending SI order — a
/// representation the hot reselect path can refill in place without any
/// per-call node allocation.
///
/// The owner is the first (lowest-id) task that demanded the SI; rotations
/// requested on its behalf are attributed to that task in the event
/// stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DemandWeights(Vec<(usize, f64, TaskId)>);

impl DemandWeights {
    fn get(&self, si: SiId) -> Option<&(usize, f64, TaskId)> {
        self.0
            .binary_search_by_key(&si.index(), |&(i, _, _)| i)
            .ok()
            .map(|at| &self.0[at])
    }

    /// Aggregated weight of `si` (0 when undemanded).
    #[must_use]
    pub fn weight_of(&self, si: SiId) -> f64 {
        self.get(si).map_or(0.0, |&(_, w, _)| w)
    }

    /// Owning task of `si`, `None` when undemanded.
    #[must_use]
    pub fn owner_of(&self, si: SiId) -> Option<TaskId> {
        self.get(si).map(|&(_, _, t)| t)
    }

    /// The weights as the `(si, weight)` demand list the selection
    /// algorithms consume, in ascending SI order.
    #[must_use]
    pub fn as_demands(&self) -> Vec<(SiId, f64)> {
        self.0.iter().map(|&(si, w, _)| (SiId(si), w)).collect()
    }

    /// All `(si, weight, owner)` triples in ascending SI order.
    pub fn iter(&self) -> impl Iterator<Item = (SiId, f64, TaskId)> + '_ {
        self.0.iter().map(|&(si, w, t)| (SiId(si), w, t))
    }
}

/// Bitstream bytes needed to load an SI's minimal Molecule — the
/// energy-rotation cost a forecast must amortise before the SI earns
/// hardware in [`PowerMode::EnergySaving`].
#[must_use]
pub fn minimal_rotation_bytes(lib: &SiLibrary, catalog: &AtomCatalog, si: SiId) -> u64 {
    lib.get(si)
        .minimal()
        .molecule
        .iter_nonzero()
        .map(|(kind, count)| u64::from(count) * catalog.profile(kind).bitstream_bytes)
        .sum()
}

/// Aggregates a benefit weight per SI over all demanding tasks, under the
/// adaptation goal `mode`.
///
/// In [`PowerMode::Performance`] a demand's weight is its expected cycle
/// saving; in [`PowerMode::EnergySaving`] it becomes the expected energy
/// saving in nanojoules, zeroed when the expected executions do not
/// amortise the rotation transfer (§4.1's offset).
#[must_use]
pub fn weigh_demands(
    lib: &SiLibrary,
    catalog: &AtomCatalog,
    mode: PowerMode,
    demands: &ForecastStore,
) -> DemandWeights {
    let mut acc = Vec::new();
    let mut out = DemandWeights::default();
    weigh_demands_into(lib, catalog, mode, demands, &mut acc, &mut out);
    out
}

/// [`weigh_demands`] into caller-owned buffers: `acc` is a dense
/// per-SI accumulator (resized to the library width), `out` is refilled
/// in place. The hot reselect path reuses both across calls, so steady
/// state weighs without allocating.
///
/// Benefits accumulate per SI in forecast-store iteration order and the
/// first demanding task owns the SI — bit-identical to summing into a
/// map keyed by SI index.
pub fn weigh_demands_into(
    lib: &SiLibrary,
    catalog: &AtomCatalog,
    mode: PowerMode,
    demands: &ForecastStore,
    acc: &mut Vec<(f64, TaskId, bool)>,
    out: &mut DemandWeights,
) {
    acc.clear();
    acc.resize(lib.len(), (0.0, 0, false));
    for (task, si, fv) in demands.iter() {
        let def = lib.get(si);
        let benefit = match mode {
            PowerMode::Performance => {
                fv.expected_benefit(def.sw_cycles() as f64, def.fastest().cycles as f64)
            }
            PowerMode::EnergySaving { model, alpha } => {
                // Rotation only pays when the expected executions
                // amortise its transfer energy (§4.1's offset).
                let bytes = minimal_rotation_bytes(lib, catalog, si);
                let needed = model.amortisation_executions(def, bytes, alpha);
                let expected = fv.probability * fv.expected_executions;
                if expected < needed {
                    0.0
                } else {
                    expected * model.per_execution_saving_j(def) * 1e9 // nJ
                }
            }
        };
        let slot = &mut acc[si.index()];
        if !slot.2 {
            slot.1 = task;
            slot.2 = true;
        }
        slot.0 += benefit;
    }
    out.0.clear();
    out.0.extend(
        acc.iter()
            .enumerate()
            .filter(|(_, &(_, _, demanded))| demanded)
            .map(|(si, &(w, t, _))| (si, w, t)),
    );
}

/// Why the selection memo cache was flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheInvalidation {
    /// A rotation completed: the committed fabric state moved, so any
    /// memoised "plan already satisfied" judgement may be stale.
    RotationCompleted,
    /// A rotation failed, or a container was quarantined or faulted.
    Fault,
    /// The SI library or Atom catalog changed under the stage.
    SiTableChanged,
    /// The adaptation goal was switched.
    PowerMode,
}

/// Outcome of a cached re-selection ([`SelectionStage::reselect_cached`]).
#[derive(Debug)]
pub enum CacheLookup {
    /// The decision was served from cache: the stage's selection and
    /// weights already hold the memoised result, and the returned plan is
    /// the one computed when the entry was first stored. The caller must
    /// still apply it (unless provably a no-op) so rotation sequence
    /// numbers stay byte-identical to the from-scratch kernel.
    Hit(Arc<RotationPlan>),
    /// A fresh selection was computed; the caller must plan rotations and
    /// hand the plan back via [`SelectionStage::store_plan`].
    Miss,
}

/// A memoised selection decision: everything downstream of weighing.
#[derive(Debug, Clone)]
struct CachedDecision {
    selection: MoleculeSelection,
    weights: DemandWeights,
    plan: Arc<RotationPlan>,
}

/// The selection stage: policy + adaptation goal + the last selection,
/// plus the incremental kernel's two cache tiers:
///
/// * a **revision fingerprint** `(forecast revision, capacity, mode
///   epoch)` — when unchanged since the last reselect, nothing observable
///   moved and even re-weighing is skipped;
/// * a **decision memo** keyed by the exact bits of `(capacity, mode
///   epoch, weighted demands)` — a forecast delta that lands back on a
///   previously weighed state (retract-then-restore, oscillating FCs)
///   reuses the full decision including its rotation plan.
///
/// Both tiers are *provably* decision-identical: the memo key includes
/// every input of the selection policy (weights carry owners, the epoch
/// separates power modes), so a hit replays exactly what the from-scratch
/// kernel would recompute. Invalidation therefore only ever costs speed,
/// never correctness.
#[derive(Debug, Clone)]
pub struct SelectionStage<S = GreedySelection> {
    policy: S,
    power_mode: PowerMode,
    /// Bumped on every power-mode switch; part of every cache key so a
    /// mode change can never alias an entry from the previous goal.
    mode_epoch: u64,
    selection: MoleculeSelection,
    reselects: u64,
    cache_enabled: bool,
    ctx: SelectionContext,
    memo: BTreeMap<Vec<u64>, CachedDecision>,
    /// Scratch for the memo key of the in-flight reselect; promoted into
    /// `memo` by [`store_plan`](Self::store_plan) when `pending_key`.
    key_buf: Vec<u64>,
    pending_key: bool,
    /// Dense per-SI accumulator reused by every weigh pass.
    weigh_acc: Vec<(f64, TaskId, bool)>,
    /// Weigh output buffer, swapped into `last_weights` on a miss.
    weights_scratch: DemandWeights,
    /// `(si, weight)` list handed to the selection policy, reused.
    demand_scratch: Vec<(SiId, f64)>,
    last_weights: DemandWeights,
    last_plan: Arc<RotationPlan>,
    last_fingerprint: Option<(u64, u32, u64)>,
    cache_hits: u64,
    cache_misses: u64,
    cache_invalidations: u64,
}

/// Memo entries kept before a wholesale flush. A deterministic clear (not
/// LRU) so cache *contents* never depend on query order — only hit rates
/// do.
const MEMO_CAPACITY: usize = 128;

impl<S: SelectionPolicy> SelectionStage<S> {
    /// Creates the stage with an empty selection and the cache enabled.
    #[must_use]
    pub fn new(policy: S, power_mode: PowerMode) -> Self {
        SelectionStage {
            policy,
            power_mode,
            mode_epoch: 0,
            selection: MoleculeSelection::default(),
            reselects: 0,
            cache_enabled: true,
            ctx: SelectionContext::default(),
            memo: BTreeMap::new(),
            key_buf: Vec::new(),
            pending_key: false,
            weigh_acc: Vec::new(),
            weights_scratch: DemandWeights::default(),
            demand_scratch: Vec::new(),
            last_weights: DemandWeights::default(),
            last_plan: Arc::new(RotationPlan::default()),
            last_fingerprint: None,
            cache_hits: 0,
            cache_misses: 0,
            cache_invalidations: 0,
        }
    }

    /// Enables or disables both cache tiers (builder-style). Disabled, the
    /// stage is the from-scratch oracle the cached kernel is validated
    /// against.
    #[must_use]
    pub fn with_cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        if !enabled {
            self.memo.clear();
            self.last_fingerprint = None;
        }
        self
    }

    /// Whether the cache tiers are active.
    #[must_use]
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// The selection currently in force.
    #[must_use]
    pub fn selection(&self) -> &MoleculeSelection {
        &self.selection
    }

    /// The adaptation goal currently in force.
    #[must_use]
    pub fn power_mode(&self) -> PowerMode {
        self.power_mode
    }

    /// Switches the adaptation goal. The caller decides whether that
    /// warrants a re-selection (it does, at run time). Bumps the mode
    /// epoch and invalidates the cache: weights are mode-dependent.
    pub fn set_power_mode(&mut self, mode: PowerMode) {
        self.power_mode = mode;
        self.mode_epoch = self.mode_epoch.wrapping_add(1);
        self.invalidate(CacheInvalidation::PowerMode);
    }

    /// Number of selection re-evaluations so far — every FC event invokes
    /// one, which is exactly why the compile-time pass trims FC
    /// candidates ("every FC invokes the run-time system to
    /// re-evaluate").
    #[must_use]
    pub fn reselects(&self) -> u64 {
        self.reselects
    }

    /// `(hits, misses, invalidations)` of the decision cache.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        (self.cache_hits, self.cache_misses, self.cache_invalidations)
    }

    /// The weights that drove the last re-selection (cached or fresh).
    #[must_use]
    pub fn last_weights(&self) -> &DemandWeights {
        &self.last_weights
    }

    /// Drops every memoised decision and the revision fingerprint.
    ///
    /// Called when state *outside* the cache key changes — the committed
    /// fabric moved, a container died, the SI table was swapped. Counted
    /// only when something was actually cached: flushing an empty cache
    /// carries no information.
    pub fn invalidate(&mut self, _reason: CacheInvalidation) {
        if !self.cache_enabled || (self.memo.is_empty() && self.last_fingerprint.is_none()) {
            return;
        }
        self.cache_invalidations += 1;
        self.memo.clear();
        self.last_fingerprint = None;
    }

    /// Re-evaluates the selection from the active demands under the
    /// Atom-Container budget `capacity`, and returns the demand weights
    /// that drove it (the rotation planner orders upgrades by them).
    ///
    /// The uncached legacy entry point: always recomputes, never consults
    /// or populates the memo, and drops the fingerprint so a subsequent
    /// [`reselect_cached`](Self::reselect_cached) cannot alias stale
    /// state.
    pub fn reselect(
        &mut self,
        lib: &SiLibrary,
        catalog: &AtomCatalog,
        demands: &ForecastStore,
        capacity: u32,
    ) -> DemandWeights {
        self.reselects += 1;
        self.pending_key = false;
        self.last_fingerprint = None;
        let weights = weigh_demands(lib, catalog, self.power_mode, demands);
        self.selection =
            self.policy
                .select_with(&mut self.ctx, lib, &weights.as_demands(), capacity);
        self.last_weights = weights.clone();
        weights
    }

    /// The incremental re-selection entry point.
    ///
    /// Tier 1: when `(demands.revision(), capacity, mode_epoch)` matches
    /// the previous call, no input of the decision changed — the previous
    /// selection, weights and plan are reused without touching the
    /// library. Tier 2: otherwise demands are re-weighed and the exact
    /// weighted state is looked up in the memo. Only on a miss does the
    /// selection policy run; the caller then plans rotations and stores
    /// the plan via [`store_plan`](Self::store_plan), completing the memo
    /// entry.
    pub fn reselect_cached(
        &mut self,
        lib: &SiLibrary,
        catalog: &AtomCatalog,
        demands: &ForecastStore,
        capacity: u32,
    ) -> CacheLookup {
        self.reselects += 1;
        self.pending_key = false;
        let fingerprint = (demands.revision(), capacity, self.mode_epoch);
        if self.cache_enabled && self.last_fingerprint == Some(fingerprint) {
            self.cache_hits += 1;
            return CacheLookup::Hit(Arc::clone(&self.last_plan));
        }
        weigh_demands_into(
            lib,
            catalog,
            self.power_mode,
            demands,
            &mut self.weigh_acc,
            &mut self.weights_scratch,
        );
        if self.cache_enabled {
            self.key_buf.clear();
            self.key_buf.push(u64::from(capacity));
            self.key_buf.push(self.mode_epoch);
            for (si, w, owner) in self.weights_scratch.iter() {
                self.key_buf.push(si.index() as u64);
                self.key_buf.push(w.to_bits());
                self.key_buf.push(u64::from(owner));
            }
            if let Some(cached) = self.memo.get(&self.key_buf) {
                self.selection.clone_from(&cached.selection);
                self.last_weights.clone_from(&cached.weights);
                self.last_plan = Arc::clone(&cached.plan);
                self.last_fingerprint = Some(fingerprint);
                self.cache_hits += 1;
                return CacheLookup::Hit(Arc::clone(&self.last_plan));
            }
            self.pending_key = true;
        }
        self.cache_misses += 1;
        self.demand_scratch.clear();
        self.demand_scratch
            .extend(self.weights_scratch.iter().map(|(si, w, _)| (si, w)));
        self.selection =
            self.policy
                .select_with(&mut self.ctx, lib, &self.demand_scratch, capacity);
        std::mem::swap(&mut self.last_weights, &mut self.weights_scratch);
        self.last_fingerprint = Some(fingerprint);
        CacheLookup::Miss
    }

    /// Completes a [`CacheLookup::Miss`]: records `plan` as the plan of
    /// the current decision and memoises the whole decision under the key
    /// built by [`reselect_cached`](Self::reselect_cached).
    pub fn store_plan(&mut self, plan: RotationPlan) -> Arc<RotationPlan> {
        let plan = Arc::new(plan);
        self.last_plan = Arc::clone(&plan);
        if self.cache_enabled && self.pending_key {
            self.pending_key = false;
            if self.memo.len() >= MEMO_CAPACITY {
                self.memo.clear();
            }
            self.memo.insert(
                self.key_buf.clone(),
                CachedDecision {
                    selection: self.selection.clone(),
                    weights: self.last_weights.clone(),
                    plan: Arc::clone(&plan),
                },
            );
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rispp_core::forecast::ForecastValue;
    use rispp_core::molecule::Molecule;
    use rispp_core::si::{MoleculeImpl, SpecialInstruction};
    use rispp_fabric::catalog::AtomHwProfile;

    fn platform() -> (SiLibrary, AtomCatalog, SiId, SiId) {
        let catalog = AtomCatalog::new(vec![
            AtomHwProfile::new("A", 100, 200, 6_920),
            AtomHwProfile::new("B", 100, 200, 6_920),
        ]);
        let mut lib = SiLibrary::new(2);
        let s0 = lib
            .insert(
                SpecialInstruction::new(
                    "S0",
                    500,
                    vec![
                        MoleculeImpl::new(Molecule::from_counts([1, 1]), 20),
                        MoleculeImpl::new(Molecule::from_counts([2, 1]), 10),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        let s1 = lib
            .insert(
                SpecialInstruction::new(
                    "S1",
                    400,
                    vec![MoleculeImpl::new(Molecule::from_counts([0, 2]), 15)],
                )
                .unwrap(),
            )
            .unwrap();
        (lib, catalog, s0, s1)
    }

    fn fv(si: SiId, execs: f64) -> ForecastValue {
        ForecastValue::new(si, 1.0, 50_000.0, execs)
    }

    #[test]
    fn weights_aggregate_over_tasks_and_keep_first_owner() {
        let (lib, catalog, s0, _) = platform();
        let mut store = ForecastStore::new(0.25);
        store.insert(3, fv(s0, 10.0));
        store.insert(1, fv(s0, 10.0));
        let w = weigh_demands(&lib, &catalog, PowerMode::Performance, &store);
        // 2 tasks × 10 executions × (500 − 10) cycles saved.
        assert!((w.weight_of(s0) - 2.0 * 10.0 * 490.0).abs() < 1e-9);
        // Iteration is (task, si)-ascending, so task 1 owns the SI.
        assert_eq!(w.owner_of(s0), Some(1));
        assert_eq!(w.owner_of(SiId(1)), None);
        assert_eq!(w.weight_of(SiId(1)), 0.0);
    }

    #[test]
    fn energy_mode_zeroes_unamortised_demands() {
        use rispp_core::energy::EnergyModel;
        let (lib, catalog, s0, _) = platform();
        let mode = PowerMode::EnergySaving {
            model: EnergyModel::default(),
            alpha: 1.0,
        };
        let mut few = ForecastStore::new(0.25);
        few.insert(0, fv(s0, 3.0));
        assert_eq!(weigh_demands(&lib, &catalog, mode, &few).weight_of(s0), 0.0);
        let mut many = ForecastStore::new(0.25);
        many.insert(0, fv(s0, 100_000.0));
        assert!(weigh_demands(&lib, &catalog, mode, &many).weight_of(s0) > 0.0);
    }

    #[test]
    fn stage_tracks_selection_and_reselects() {
        let (lib, catalog, s0, s1) = platform();
        let mut stage = SelectionStage::new(GreedySelection, PowerMode::default());
        let mut store = ForecastStore::new(0.25);
        store.insert(0, fv(s0, 100.0));
        store.insert(1, fv(s1, 1.0));
        let w = stage.reselect(&lib, &catalog, &store, 3);
        assert_eq!(stage.reselects(), 1);
        assert!(w.weight_of(s0) > w.weight_of(s1));
        // S0 dominates: the target covers its fast Molecule.
        assert!(Molecule::from_counts([2, 1]).le(&stage.selection().target));
    }

    #[test]
    fn greedy_and_exhaustive_agree_on_the_small_platform() {
        let (lib, catalog, s0, s1) = platform();
        let mut store = ForecastStore::new(0.25);
        store.insert(0, fv(s0, 50.0));
        store.insert(1, fv(s1, 50.0));
        let w = weigh_demands(&lib, &catalog, PowerMode::Performance, &store);
        let greedy = GreedySelection.select(&lib, &w.as_demands(), 3);
        let exhaustive = ExhaustiveSelection.select(&lib, &w.as_demands(), 3);
        assert_eq!(greedy.target, exhaustive.target);
    }

    #[test]
    fn cache_tiers_hit_and_stay_decision_identical() {
        let (lib, catalog, s0, s1) = platform();
        let mut stage = SelectionStage::new(GreedySelection, PowerMode::default());
        let mut store = ForecastStore::new(0.25);
        store.insert(0, fv(s0, 100.0));
        store.insert(1, fv(s1, 1.0));

        // First reselect: miss; complete it with a plan.
        assert!(matches!(
            stage.reselect_cached(&lib, &catalog, &store, 3),
            CacheLookup::Miss
        ));
        let fresh = stage.selection().clone();
        stage.store_plan(RotationPlan::default());

        // Unchanged store ⇒ tier-1 (fingerprint) hit.
        assert!(matches!(
            stage.reselect_cached(&lib, &catalog, &store, 3),
            CacheLookup::Hit(_)
        ));
        assert_eq!(stage.selection(), &fresh);

        // Retract-then-restore bumps the revision twice but lands on an
        // already-weighed state ⇒ tier-2 (memo) hit.
        store.retract(1, s1);
        assert!(matches!(
            stage.reselect_cached(&lib, &catalog, &store, 3),
            CacheLookup::Miss
        ));
        stage.store_plan(RotationPlan::default());
        store.insert(1, fv(s1, 1.0));
        assert!(matches!(
            stage.reselect_cached(&lib, &catalog, &store, 3),
            CacheLookup::Hit(_)
        ));
        assert_eq!(stage.selection(), &fresh);

        let (hits, misses, _) = stage.cache_stats();
        assert_eq!((hits, misses), (2, 2));

        // Invalidation forces a recompute of the same decision.
        stage.invalidate(CacheInvalidation::RotationCompleted);
        assert!(matches!(
            stage.reselect_cached(&lib, &catalog, &store, 3),
            CacheLookup::Miss
        ));
        assert_eq!(stage.selection(), &fresh);
        assert_eq!(stage.cache_stats().2, 1);
    }

    #[test]
    fn disabled_cache_always_misses() {
        let (lib, catalog, s0, _) = platform();
        let mut stage =
            SelectionStage::new(GreedySelection, PowerMode::default()).with_cache(false);
        let mut store = ForecastStore::new(0.25);
        store.insert(0, fv(s0, 100.0));
        for _ in 0..3 {
            assert!(matches!(
                stage.reselect_cached(&lib, &catalog, &store, 3),
                CacheLookup::Miss
            ));
            stage.store_plan(RotationPlan::default());
        }
        assert_eq!(stage.cache_stats(), (0, 3, 0));
        // Invalidating a disabled cache is a counted no-op.
        stage.invalidate(CacheInvalidation::Fault);
        assert_eq!(stage.cache_stats(), (0, 3, 0));
    }

    #[test]
    fn power_mode_switch_separates_cache_epochs() {
        use rispp_core::energy::EnergyModel;
        let (lib, catalog, s0, _) = platform();
        let mut stage = SelectionStage::new(GreedySelection, PowerMode::default());
        let mut store = ForecastStore::new(0.25);
        store.insert(0, fv(s0, 3.0));
        assert!(matches!(
            stage.reselect_cached(&lib, &catalog, &store, 3),
            CacheLookup::Miss
        ));
        stage.store_plan(RotationPlan::default());
        stage.set_power_mode(PowerMode::EnergySaving {
            model: EnergyModel::default(),
            alpha: 1.0,
        });
        // Same store, new epoch: must miss and re-weigh under the new goal.
        assert!(matches!(
            stage.reselect_cached(&lib, &catalog, &store, 3),
            CacheLookup::Miss
        ));
        assert!(stage.last_weights().weight_of(s0).abs() < f64::EPSILON);
    }

    #[test]
    fn minimal_rotation_bytes_counts_the_minimal_molecule() {
        let (lib, catalog, s0, s1) = platform();
        // S0 minimal (1,1): two atoms; S1 minimal (0,2): two atoms.
        assert_eq!(minimal_rotation_bytes(&lib, &catalog, s0), 2 * 6_920);
        assert_eq!(minimal_rotation_bytes(&lib, &catalog, s1), 2 * 6_920);
    }
}
