//! Atom-Container replacement policies.
//!
//! When the run-time manager needs to rotate a new Atom in, it must pick a
//! victim container. The paper's scenario (Fig. 6) reallocates containers
//! whose Atoms the current selection no longer needs; among those, the
//! least-recently-used Atom goes first.

use rispp_core::molecule::Molecule;
use rispp_fabric::container::ContainerId;
use rispp_fabric::fabric::Fabric;

/// Strategy for choosing the container a new Atom is rotated into.
pub trait ReplacementPolicy {
    /// Picks a victim container for a new Atom, given the Meta-Molecule
    /// `keep` of Atoms that must stay available. Containers with pending
    /// rotations are never eligible. Returns `None` when every container
    /// is either pending or protected.
    fn choose_victim(&self, fabric: &Fabric, keep: &Molecule) -> Option<ContainerId>;
}

/// Default policy: empty containers first, then loaded containers whose
/// Atom kind has surplus instances relative to `keep`, least-recently-used
/// first.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LruSurplusPolicy;

impl LruSurplusPolicy {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        LruSurplusPolicy
    }
}

impl ReplacementPolicy for LruSurplusPolicy {
    fn choose_victim(&self, fabric: &Fabric, keep: &Molecule) -> Option<ContainerId> {
        let mut pending = vec![false; fabric.num_containers()];
        for (id, c) in fabric.iter_containers() {
            if c.is_loading() {
                pending[id.index()] = true;
            }
        }
        // Queued-but-unstarted rotations also make a container ineligible:
        // it already has a new Atom on the way.
        for (id, _) in fabric.pending_rotations() {
            pending[id.index()] = true;
        }
        // Empty, non-pending containers are free wins. Quarantined
        // containers also report no loaded Atom, but rotating into them
        // is pointless — they reject every request.
        for (id, c) in fabric.iter_containers() {
            if !pending[id.index()]
                && c.loaded_kind().is_none()
                && !c.is_loading()
                && !c.is_quarantined()
            {
                return Some(id);
            }
        }
        // Count surplus per kind: loaded instances beyond what `keep`
        // requires.
        let loaded = fabric.loaded_molecule();
        let mut surplus: Vec<i64> = loaded
            .iter()
            .map(|(k, have)| i64::from(have) - i64::from(keep.count(k)))
            .collect();
        // LRU among surplus-kind containers.
        let mut candidates: Vec<(u64, ContainerId)> = fabric
            .iter_containers()
            .filter_map(|(id, c)| {
                let kind = c.loaded_kind()?;
                if pending[id.index()] || surplus[kind.index()] <= 0 {
                    None
                } else {
                    Some((c.last_used(), id))
                }
            })
            .collect();
        candidates.sort_unstable_by_key(|&(used, id)| (used, id));
        let victim = candidates.first().map(|&(_, id)| id);
        if let Some(id) = victim {
            if let Some(kind) = fabric.container(id).loaded_kind() {
                surplus[kind.index()] -= 1;
            }
        }
        victim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rispp_core::atom::{AtomKind, AtomSet};
    use rispp_fabric::catalog::{table1_profiles, AtomCatalog};

    fn fabric(containers: usize) -> Fabric {
        let atoms = AtomSet::from_names(["Transform", "SATD", "Pack", "QuadSub"]);
        Fabric::new(
            atoms,
            AtomCatalog::new(table1_profiles().to_vec()),
            containers,
        )
    }

    fn load(fabric: &mut Fabric, id: usize, kind: usize) {
        fabric
            .request_rotation(ContainerId(id), AtomKind(kind))
            .unwrap();
        let t = fabric.next_completion().unwrap();
        fabric.advance_to(t).unwrap();
    }

    #[test]
    fn prefers_empty_containers() {
        let mut f = fabric(3);
        load(&mut f, 0, 0);
        let keep = Molecule::zero(4);
        let victim = LruSurplusPolicy.choose_victim(&f, &keep).unwrap();
        assert_ne!(victim, ContainerId(0)); // 0 holds an atom; 1/2 empty
    }

    #[test]
    fn protects_kept_atoms() {
        let mut f = fabric(2);
        load(&mut f, 0, 0);
        load(&mut f, 1, 1);
        // Keep requires one Transform (kind 0): only container 1 (SATD)
        // has surplus.
        let keep = Molecule::from_counts([1, 0, 0, 0]);
        assert_eq!(
            LruSurplusPolicy.choose_victim(&f, &keep),
            Some(ContainerId(1))
        );
    }

    #[test]
    fn evicts_least_recently_used_surplus() {
        let mut f = fabric(2);
        load(&mut f, 0, 0);
        load(&mut f, 1, 0);
        let t = f.now();
        f.advance_to(t + 10).unwrap();
        // Touch kind 0 once: the first matching container gets the newer
        // stamp, so container 1 is the LRU victim.
        f.touch_atoms(&Molecule::from_counts([1, 0, 0, 0]));
        let keep = Molecule::from_counts([1, 0, 0, 0]); // one surplus Transform
        assert_eq!(
            LruSurplusPolicy.choose_victim(&f, &keep),
            Some(ContainerId(1))
        );
    }

    #[test]
    fn returns_none_when_everything_protected() {
        let mut f = fabric(2);
        load(&mut f, 0, 0);
        load(&mut f, 1, 1);
        let keep = Molecule::from_counts([1, 1, 0, 0]);
        assert_eq!(LruSurplusPolicy.choose_victim(&f, &keep), None);
    }

    #[test]
    fn never_picks_quarantined_containers() {
        use rispp_fabric::FaultPlan;
        let mut f = fabric(3).with_faults(FaultPlan {
            bad_containers: vec![ContainerId(1)],
            ..FaultPlan::default()
        });
        // The first rotation into the bad container quarantines it.
        f.request_rotation(ContainerId(1), AtomKind(0)).unwrap();
        let t = f.next_completion().unwrap();
        f.advance_to(t).unwrap();
        assert!(f.container(ContainerId(1)).is_quarantined());
        load(&mut f, 0, 0);
        load(&mut f, 2, 1);
        // Only the surplus SATD in AC2 is evictable — never AC1, even
        // though it reports no loaded Atom.
        let keep = Molecule::from_counts([1, 0, 0, 0]);
        assert_eq!(
            LruSurplusPolicy.choose_victim(&f, &keep),
            Some(ContainerId(2))
        );
        // With every healthy Atom protected there is no victim at all.
        let keep_all = Molecule::from_counts([1, 1, 0, 0]);
        assert_eq!(LruSurplusPolicy.choose_victim(&f, &keep_all), None);
    }

    #[test]
    fn skips_loading_containers() {
        let mut f = fabric(2);
        load(&mut f, 0, 0);
        f.request_rotation(ContainerId(1), AtomKind(2)).unwrap(); // in flight
        let keep = Molecule::zero(4);
        // Only container 0 is eligible (1 is loading).
        assert_eq!(
            LruSurplusPolicy.choose_victim(&f, &keep),
            Some(ContainerId(0))
        );
    }
}
