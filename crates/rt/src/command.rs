//! Command stage: the single place where decisions become fabric
//! mutations.
//!
//! The decision stages ([`forecast`](crate::forecast),
//! [`selection`](crate::selection), [`rotation`](crate::rotation)) are
//! pure: they read state and return values. Everything they decide is
//! expressed as a [`Command`], and `apply` is the one function that
//! executes commands against the [`Fabric`] — with the matching
//! [`StatsLedger`] accounting, so billing can never drift from what the
//! fabric actually did.

use rispp_core::atom::AtomKind;
use rispp_core::molecule::Molecule;
use rispp_fabric::container::ContainerId;
use rispp_fabric::fabric::{Fabric, FabricError};

use crate::stats::StatsLedger;
use crate::TaskId;

/// One fabric mutation decided by the policy kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum Command<'a> {
    /// Cancels every queued-but-unstarted rotation (the port cannot abort
    /// an in-flight write) and refunds their billing.
    CancelPending,
    /// Rotates `kind` into `victim` on behalf of `owner`, billing the
    /// transfer.
    Rotate {
        /// Container chosen by the replacement policy.
        victim: ContainerId,
        /// Atom kind to load.
        kind: AtomKind,
        /// Task the rotation is attributed to.
        owner: Option<TaskId>,
    },
    /// Marks the Atoms of a Molecule as used (LRU metadata for the
    /// replacement policy). Borrowed: dispatch is the hot path and must
    /// not clone the Molecule.
    Touch(&'a Molecule),
}

/// Applies one command to the fabric and mirrors it into the ledger.
///
/// # Errors
///
/// [`Command::Rotate`] forwards the fabric's refusal (unknown container,
/// quarantined container, container already rotating); nothing is billed
/// in that case. The other commands are infallible.
pub(crate) fn apply(
    fabric: &mut Fabric,
    ledger: &mut StatsLedger,
    cmd: &Command<'_>,
) -> Result<(), FabricError> {
    match *cmd {
        Command::CancelPending => {
            // Cancelled queued rotations never transfer a bitstream:
            // deduct them from the accounting before dropping them.
            for (_, kind) in fabric.pending_rotations() {
                ledger.note_rotation_cancelled(fabric.catalog().profile(kind).bitstream_bytes);
            }
            fabric.cancel_all_pending();
            Ok(())
        }
        Command::Rotate {
            victim,
            kind,
            owner,
        } => {
            fabric.request_rotation_for(victim, kind, owner)?;
            ledger.note_rotation_requested(fabric.catalog().profile(kind).bitstream_bytes);
            Ok(())
        }
        Command::Touch(molecule) => {
            fabric.touch_atoms(molecule);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rispp_core::atom::AtomSet;
    use rispp_fabric::catalog::{AtomCatalog, AtomHwProfile};

    fn fabric() -> Fabric {
        let atoms = AtomSet::from_names(["A", "B"]);
        let catalog = AtomCatalog::new(vec![
            AtomHwProfile::new("A", 100, 200, 6_920),
            AtomHwProfile::new("B", 100, 200, 1_000),
        ]);
        Fabric::new(atoms, catalog, 2)
    }

    #[test]
    fn rotate_bills_and_attributes() {
        let mut f = fabric();
        let mut ledger = StatsLedger::new(1);
        apply(
            &mut f,
            &mut ledger,
            &Command::Rotate {
                victim: ContainerId(0),
                kind: AtomKind(0),
                owner: Some(7),
            },
        )
        .unwrap();
        assert_eq!(ledger.rotations_requested(), 1);
        assert_eq!(ledger.rotation_bytes(), 6_920);
        assert_eq!(f.container(ContainerId(0)).owner(), Some(7));
    }

    #[test]
    fn failed_rotate_bills_nothing() {
        let mut f = fabric();
        let mut ledger = StatsLedger::new(1);
        let err = apply(
            &mut f,
            &mut ledger,
            &Command::Rotate {
                victim: ContainerId(9),
                kind: AtomKind(0),
                owner: None,
            },
        );
        assert!(err.is_err());
        assert_eq!(ledger.rotations_requested(), 0);
        assert_eq!(ledger.rotation_bytes(), 0);
    }

    #[test]
    fn cancel_refunds_queued_but_not_in_flight() {
        let mut f = fabric();
        let mut ledger = StatsLedger::new(1);
        // First rotation starts immediately; the second queues behind the
        // single reconfiguration port.
        for (victim, kind, bytes) in [(0, 0, 6_920), (1, 1, 1_000)] {
            apply(
                &mut f,
                &mut ledger,
                &Command::Rotate {
                    victim: ContainerId(victim),
                    kind: AtomKind(kind),
                    owner: None,
                },
            )
            .unwrap();
            let _ = bytes;
        }
        assert_eq!(ledger.rotation_bytes(), 7_920);
        apply(&mut f, &mut ledger, &Command::CancelPending).unwrap();
        // Only the queued B transfer is refunded.
        assert_eq!(ledger.rotations_requested(), 1);
        assert_eq!(ledger.rotation_bytes(), 6_920);
        assert!(f.pending_rotations().is_empty());
    }
}
