//! # rispp-rt — the RISPP run-time architecture
//!
//! The run-time half of the paper (§5): given the SI library (from
//! `rispp-core`/`rispp-h264`) and the reconfigurable fabric (from
//! `rispp-fabric`), the [`manager::RisppManager`]
//!
//! * **monitors** forecast events and fine-tunes their values with
//!   observed behaviour;
//! * **selects** which SIs get hardware and with which Molecules, under
//!   the Atom-Container budget;
//! * **schedules** rotations through the single reconfiguration port,
//!   most-important SI first, with victims picked by a
//!   [`policy::ReplacementPolicy`];
//! * **dispatches** SI executions to the fastest currently loaded
//!   Molecule, falling back to software — the gradual SW → HW upgrade of
//!   the paper's Fig. 6 scenario.
//!
//! # Examples
//!
//! See [`manager::RisppManager`] for an end-to-end forecast → rotate →
//! execute walkthrough.

#![warn(missing_docs)]
// The deprecated ctor/setter shims in `manager` exist for external
// callers only; the crate itself must not regress into using them.
#![deny(deprecated)]

pub mod manager;
pub mod policy;

pub use manager::{
    EnergyReport, ExecutionRecord, FcStats, ManagerBuilder, PowerMode, RisppManager,
    RotationStrategy, SiStats, TaskId,
};
pub use policy::{LruSurplusPolicy, ReplacementPolicy};
// The platform's single time base, re-exported so run-time code can name
// the shared clock without depending on `rispp-fabric` directly.
pub use rispp_fabric::clock::Clock;
