//! # rispp-rt — the RISPP run-time architecture
//!
//! The run-time half of the paper (§5), structured as a layered policy
//! kernel: pure decision stages coordinated by a thin imperative shell.
//!
//! * [`forecast`] — the store of active per-task demands and their online
//!   fine-tuning ("monitoring FCs and SIs");
//! * [`selection`] — demand weighting under the adaptation goal and
//!   Molecule selection via a [`selection::SelectionPolicy`];
//! * [`rotation`] — the rotation schedule planned by a
//!   [`rotation::RotationSchedulePolicy`] ("Rotation in Advance") and the
//!   retry-backoff governor for fabric faults;
//! * [`stats`] — pure accumulation of execution, forecast and rotation
//!   accounting;
//! * [`policy`] — Atom-Container replacement policies picking rotation
//!   victims;
//! * [`manager`] — the imperative shell: the only layer that mutates the
//!   fabric (through one command-application site), emits events and
//!   reads the clock. It **dispatches** SI executions to the fastest
//!   currently loaded Molecule, falling back to software — the gradual
//!   SW → HW upgrade of the paper's Fig. 6 scenario.
//!
//! Every stage is independently testable without a fabric; the shell's
//! behaviour is pinned end-to-end by `tests/manager_behavior.rs` and the
//! workspace golden fixtures.
//!
//! # Examples
//!
//! See [`manager::RisppManager`] for an end-to-end forecast → rotate →
//! execute walkthrough.

#![warn(missing_docs)]
// The run-time crate must never consume deprecated shims elsewhere in the
// workspace.
#![deny(deprecated)]

pub mod command;
pub mod forecast;
pub mod manager;
pub mod policy;
pub mod rotation;
pub mod selection;
pub mod stats;

/// Identifier of a task issuing forecasts and SI executions.
pub type TaskId = u32;

pub use forecast::ForecastStore;
pub use manager::{ManagerBuilder, RisppManager};
pub use policy::{LruSurplusPolicy, ReplacementPolicy};
pub use rotation::{
    BackoffGovernor, PlannedUpgrade, RetryPolicy, RotationPlan, RotationSchedulePolicy,
    RotationStrategy,
};
pub use selection::{
    DemandWeights, ExhaustiveSelection, GreedySelection, PowerMode, SelectionPolicy, SelectionStage,
};
pub use stats::{EnergyReport, ExecutionRecord, FcStats, SiStats, StatsLedger};
// The platform's single time base, re-exported so run-time code can name
// the shared clock without depending on `rispp-fabric` directly.
pub use rispp_fabric::clock::Clock;
