//! Forecast stage: the store of active per-task demands and their online
//! fine-tuning (the paper's run-time task (a), "Monitoring FCs and SIs in
//! order to fine-tune the profiling information").
//!
//! The [`ForecastStore`] is a pure value: it holds the forecasts announced
//! by FC instrumentation, keyed by `(task, si)`, and folds observed
//! outcomes into them with exponential smoothing. It never touches the
//! fabric, never emits events and never triggers selection — the
//! imperative shell ([`RisppManager`](crate::manager::RisppManager))
//! decides *when* a change warrants a re-selection; this stage only
//! answers *what* the current demands are.

use std::collections::BTreeMap;

use rispp_core::forecast::ForecastValue;
use rispp_core::si::SiId;

use crate::TaskId;

/// Active forecasts of all tasks, with the smoothing factor used to
/// fine-tune them from run-time observation.
///
/// Iteration order is deterministic: ascending `(task, si)`. Downstream
/// weighting depends on this — the first (lowest-id) task demanding an SI
/// becomes the owner recorded for its rotations.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastStore {
    /// Active forecasts, keyed by (task, si).
    demands: BTreeMap<(TaskId, usize), ForecastValue>,
    /// Smoothing factor λ ∈ [0, 1] for online forecast fine-tuning
    /// (weight of each new observation).
    lambda: f64,
    /// Bumped on every *observable* change of the demand set — an insert
    /// that actually changes a value, a retract that actually removes one,
    /// an observation that moves a forecast. Two equal revisions of one
    /// store guarantee equal demand contents, which is what lets the
    /// selection stage skip re-weighing entirely when nothing changed.
    revision: u64,
}

impl ForecastStore {
    /// Creates an empty store with smoothing factor `lambda`.
    ///
    /// # Panics
    ///
    /// Panics unless `lambda ∈ [0, 1]`.
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
        ForecastStore {
            demands: BTreeMap::new(),
            lambda,
            revision: 0,
        }
    }

    /// Monotonic change counter: equal revisions imply equal demand
    /// contents (the converse does not hold — a retracted-then-restored
    /// demand bumps the revision twice). No-op mutations (retracting an
    /// absent demand, re-inserting an identical forecast, observing an
    /// untracked pair) leave the revision untouched, which is exactly the
    /// delta that "provably cannot change the winner".
    #[must_use]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The smoothing factor λ.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Number of active `(task, si)` demands.
    #[must_use]
    pub fn len(&self) -> usize {
        self.demands.len()
    }

    /// `true` when no demand is active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.demands.is_empty()
    }

    /// Stores (or replaces) `task`'s forecast for `value.si`.
    pub fn insert(&mut self, task: TaskId, value: ForecastValue) {
        let key = (task, value.si.index());
        if self.demands.get(&key) != Some(&value) {
            self.revision = self.revision.wrapping_add(1);
        }
        self.demands.insert(key, value);
    }

    /// Drops `task`'s forecast for `si` (a negative FC). Returns the
    /// retracted value, `None` when no such demand was active.
    pub fn retract(&mut self, task: TaskId, si: SiId) -> Option<ForecastValue> {
        let removed = self.demands.remove(&(task, si.index()));
        if removed.is_some() {
            self.revision = self.revision.wrapping_add(1);
        }
        removed
    }

    /// Fine-tunes `task`'s stored forecast for `si` with one observed
    /// outcome (exponential smoothing with factor λ). A no-op when the
    /// demand is not active — monitoring an SI the store no longer tracks
    /// carries no information worth keeping.
    pub fn observe(
        &mut self,
        task: TaskId,
        si: SiId,
        reached: bool,
        observed_distance: f64,
        observed_executions: f64,
    ) {
        let lambda = self.lambda;
        if let Some(fv) = self.demands.get_mut(&(task, si.index())) {
            let before = fv.clone();
            fv.observe(lambda, reached, observed_distance, observed_executions);
            if *fv != before {
                self.revision = self.revision.wrapping_add(1);
            }
        }
    }

    /// All active demands in ascending `(task, si)` order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, SiId, &ForecastValue)> {
        self.demands
            .iter()
            .map(|(&(task, si), fv)| (task, SiId(si), fv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(si: usize, execs: f64) -> ForecastValue {
        ForecastValue::new(SiId(si), 1.0, 50_000.0, execs)
    }

    #[test]
    fn insert_replaces_per_task_and_si() {
        let mut store = ForecastStore::new(0.25);
        store.insert(0, fv(1, 10.0));
        store.insert(0, fv(1, 99.0));
        store.insert(1, fv(1, 5.0));
        assert_eq!(store.len(), 2);
        let values: Vec<f64> = store
            .iter()
            .map(|(_, _, f)| f.expected_executions)
            .collect();
        assert_eq!(values, vec![99.0, 5.0]);
    }

    #[test]
    fn iteration_is_task_major_ascending() {
        let mut store = ForecastStore::new(0.25);
        store.insert(1, fv(0, 1.0));
        store.insert(0, fv(2, 2.0));
        store.insert(0, fv(1, 3.0));
        let keys: Vec<(TaskId, usize)> = store.iter().map(|(t, si, _)| (t, si.index())).collect();
        assert_eq!(keys, vec![(0, 1), (0, 2), (1, 0)]);
    }

    #[test]
    fn retract_removes_only_that_demand() {
        let mut store = ForecastStore::new(0.25);
        store.insert(0, fv(1, 10.0));
        store.insert(1, fv(1, 20.0));
        assert!(store.retract(0, SiId(1)).is_some());
        assert!(store.retract(0, SiId(1)).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn observe_smooths_the_stored_value() {
        let mut store = ForecastStore::new(0.5);
        store.insert(0, ForecastValue::new(SiId(0), 0.5, 1_000.0, 10.0));
        store.observe(0, SiId(0), true, 2_000.0, 20.0);
        let (_, _, f) = store.iter().next().unwrap();
        assert!((f.probability - 0.75).abs() < 1e-9);
        assert!((f.expected_executions - 15.0).abs() < 1e-9);
        // An outcome for an unknown demand changes nothing.
        store.observe(7, SiId(0), false, 0.0, 0.0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn lambda_out_of_range_rejected() {
        let _ = ForecastStore::new(1.5);
    }

    #[test]
    fn revision_tracks_only_real_changes() {
        let mut store = ForecastStore::new(0.25);
        assert_eq!(store.revision(), 0);
        store.insert(0, fv(1, 10.0));
        let r1 = store.revision();
        assert_ne!(r1, 0);
        // Re-inserting the identical forecast is a no-op.
        store.insert(0, fv(1, 10.0));
        assert_eq!(store.revision(), r1);
        // Retracting an absent pair is a no-op.
        assert!(store.retract(3, SiId(1)).is_none());
        assert_eq!(store.revision(), r1);
        // Observing an untracked pair is a no-op.
        store.observe(9, SiId(1), true, 1.0, 1.0);
        assert_eq!(store.revision(), r1);
        // A real observation and a real retract both bump.
        store.observe(0, SiId(1), false, 0.0, 0.0);
        let r2 = store.revision();
        assert_ne!(r2, r1);
        assert!(store.retract(0, SiId(1)).is_some());
        assert_ne!(store.revision(), r2);
    }
}
