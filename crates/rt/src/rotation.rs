//! Rotation stage: planning the rotation schedule and governing retry
//! backoff after fabric faults.
//!
//! Two pure decision pieces live here:
//!
//! * a [`RotationSchedulePolicy`] maps the current selection and demand
//!   weights to a [`RotationPlan`] — which SIs upgrade, in which order,
//!   through which Molecule stages. [`RotationStrategy`] implements it
//!   with the paper's "Rotation in Advance" upgrade ladder (and the
//!   `TargetOnly` ablation). The plan never names containers: victim
//!   choice depends on fabric state that changes with every request, so
//!   the imperative shell walks the plan and issues
//!   [`Command`](crate::command::Command)s one at a time.
//! * a [`BackoffGovernor`] tracks per-Atom-kind failure history under a
//!   [`RetryPolicy`], answering "may this kind rotate now?" and "when is
//!   the next retry due?" without ever touching the fabric itself.

use std::collections::BTreeMap;

use rispp_core::atom::AtomKind;
use rispp_core::molecule::Molecule;
use rispp_core::selection::MoleculeSelection;
use rispp_core::si::{SiId, SiLibrary};
use rispp_fabric::clock::Clock;

use crate::selection::DemandWeights;
use crate::TaskId;

/// Order in which the rotation scheduler requests Atoms — the design
/// choice behind the paper's "Rotation in Advance".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RotationStrategy {
    /// Stage the SI's upgrade path: smallest (slowest) fitting Molecule
    /// first, so hardware execution starts as early as possible and then
    /// gradually upgrades (the paper's behaviour).
    #[default]
    UpgradePath,
    /// Load the final target Molecule's Atoms in plain kind order —
    /// hardware execution only starts once everything is there. Kept as
    /// the ablation baseline (see the `ablation_rotation` harness).
    TargetOnly,
}

/// One SI's planned upgrade: the Molecule stages to establish, in order,
/// on behalf of `owner`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedUpgrade {
    /// The SI this upgrade serves.
    pub si: SiId,
    /// Task the rotations are attributed to (the SI's first demander).
    pub owner: Option<TaskId>,
    /// Molecule stages, earliest first; the last stage is the chosen
    /// target implementation.
    pub stages: Vec<Molecule>,
}

/// The full rotation schedule for one re-selection, most important SI
/// first.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RotationPlan {
    /// Planned upgrades in descending demand weight.
    pub upgrades: Vec<PlannedUpgrade>,
}

/// How a selection is turned into an ordered rotation schedule.
///
/// Mirrors [`SelectionPolicy`](crate::selection::SelectionPolicy):
/// static dispatch, so swapping the planner changes the manager's type
/// parameter instead of adding a branch to the hot path.
pub trait RotationSchedulePolicy {
    /// Plans the upgrade ladder for `selection`, ordering SIs by their
    /// demand `weights` (descending, ties in selection order).
    fn plan(
        &self,
        lib: &SiLibrary,
        selection: &MoleculeSelection,
        weights: &DemandWeights,
    ) -> RotationPlan;
}

impl RotationSchedulePolicy for RotationStrategy {
    fn plan(
        &self,
        lib: &SiLibrary,
        selection: &MoleculeSelection,
        weights: &DemandWeights,
    ) -> RotationPlan {
        // Chosen implementations, most important SI first. The sort is
        // stable: equal weights keep the selection's own order.
        let mut order: Vec<&rispp_core::selection::ChosenMolecule> =
            selection.chosen.iter().collect();
        order.sort_by(|a, b| {
            let wa = weights.weight_of(a.si);
            let wb = weights.weight_of(b.si);
            wb.partial_cmp(&wa).unwrap_or(std::cmp::Ordering::Equal)
        });
        let upgrades = order
            .into_iter()
            .map(|choice| {
                let wanted = choice.molecule.clone();
                // "Rotation in Advance": load the SI's upgrade path stage
                // by stage — smallest (slowest) Molecule first — so
                // hardware execution starts as early as possible and then
                // gradually upgrades, instead of only after the full
                // target is loaded.
                let mut stages: Vec<Molecule> = match self {
                    RotationStrategy::UpgradePath => {
                        let mut s: Vec<Molecule> = lib
                            .get(choice.si)
                            .molecules()
                            .iter()
                            .filter(|m| m.molecule.le(&wanted))
                            .map(|m| m.molecule.clone())
                            .collect();
                        s.sort_by_key(Molecule::determinant);
                        s
                    }
                    RotationStrategy::TargetOnly => Vec::new(),
                };
                stages.push(wanted);
                PlannedUpgrade {
                    si: choice.si,
                    owner: weights.owner_of(choice.si),
                    stages,
                }
            })
            .collect();
        RotationPlan { upgrades }
    }
}

/// Bounded-retry configuration for rotations that fail in the fabric
/// (e.g. CRC errors injected by a
/// [`FaultPlan`](rispp_fabric::FaultPlan)).
///
/// After each failed rotation of an Atom kind the manager waits an
/// exponentially growing backoff —
/// `backoff_base_us · backoff_factor^(attempt − 1)` simulated
/// microseconds — before requesting that kind again. Once `max_attempts`
/// consecutive failures accumulate, the kind is *parked*: no further
/// rotations are requested for it until some rotation of that kind
/// succeeds (one already in flight, for instance). Affected SIs keep
/// executing on the best Molecule the remaining loaded Atoms support,
/// ultimately the software one — a fabric fault never becomes an
/// execution error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Consecutive failed rotations of one Atom kind before that kind is
    /// parked (default 3). Zero parks a kind on its very first failure.
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated microseconds
    /// (default 50 µs).
    pub backoff_base_us: f64,
    /// Multiplicative backoff growth per further failure (default 2).
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_us: 50.0,
            backoff_factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// The cycle until which a kind with `attempts` consecutive failures
    /// (the latest at cycle `at`) must not be re-requested.
    ///
    /// Saturates instead of overflowing: an exponent beyond `i32::MAX`,
    /// a non-finite backoff (huge factors) or a cycle count past
    /// `u64::MAX` all yield `u64::MAX` — an effective park, never a
    /// panic or a wrapped-around "retry immediately".
    #[must_use]
    pub fn backoff_until(&self, attempts: u32, at: u64, clock: &Clock) -> u64 {
        let exponent = attempts.saturating_sub(1).min(i32::MAX as u32) as i32;
        let us = self.backoff_base_us * self.backoff_factor.powi(exponent);
        if us.is_finite() {
            at.saturating_add(clock.us_to_cycles(us).max(1))
        } else {
            u64::MAX
        }
    }
}

/// Per-kind failure bookkeeping for [`RetryPolicy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct BackoffState {
    /// Consecutive failures since the last success of this kind.
    attempts: u32,
    /// Cycle until which the kind must not be re-requested (`u64::MAX`
    /// once parked).
    blocked_until: u64,
}

/// Tracks rotation failures per Atom kind and decides when each kind may
/// be requested again (see [`RetryPolicy`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BackoffGovernor {
    policy: RetryPolicy,
    /// Per-Atom-kind backoff state, keyed by kind index. An entry exists
    /// only while the kind has unresolved failures.
    states: BTreeMap<usize, BackoffState>,
}

impl BackoffGovernor {
    /// Creates a governor with no failure history.
    #[must_use]
    pub fn new(policy: RetryPolicy) -> Self {
        BackoffGovernor {
            policy,
            states: BTreeMap::new(),
        }
    }

    /// The bounded-retry policy in effect.
    #[must_use]
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Records one failed rotation of `kind` at cycle `at` and computes
    /// the cycle until which that kind must not be re-requested.
    pub fn note_failure(&mut self, kind: AtomKind, at: u64, clock: &Clock) {
        let policy = self.policy;
        let entry = self.states.entry(kind.index()).or_default();
        entry.attempts += 1;
        if entry.attempts >= policy.max_attempts {
            entry.blocked_until = u64::MAX; // parked until a success
        } else {
            entry.blocked_until = policy.backoff_until(entry.attempts, at, clock);
        }
    }

    /// Records a successful rotation of `kind`: wipes its failure
    /// history, un-parking it.
    pub fn note_success(&mut self, kind: AtomKind) {
        self.states.remove(&kind.index());
    }

    /// `true` while `kind` is under failure backoff (or parked) at `now`.
    #[must_use]
    pub fn is_blocked(&self, kind: AtomKind, now: u64) -> bool {
        self.states
            .get(&kind.index())
            .is_some_and(|b| b.blocked_until > now)
    }

    /// Atom kinds barred from rotation by failure backoff at `now` —
    /// both those waiting out a delay and those parked after
    /// [`RetryPolicy::max_attempts`] failures.
    #[must_use]
    pub fn blocked_kinds(&self, now: u64) -> Vec<AtomKind> {
        self.states
            .iter()
            .filter(|(_, b)| b.blocked_until > now)
            .map(|(&k, _)| AtomKind(k))
            .collect()
    }

    /// Earliest backoff expiry inside `(now, t]`: the moment a blocked
    /// kind becomes requestable again, `None` when no expiry falls in the
    /// window.
    #[must_use]
    pub fn next_wake_within(&self, now: u64, t: u64) -> Option<u64> {
        self.states
            .values()
            .map(|b| b.blocked_until)
            .filter(|&w| w > now && w <= t)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> Clock {
        Clock::new(100_000_000) // 100 MHz: 1 µs = 100 cycles
    }

    #[test]
    fn backoff_grows_exponentially() {
        let policy = RetryPolicy::default();
        let c = clock();
        // 50 µs, 100 µs: 5 000 and 10 000 cycles past the failure.
        assert_eq!(policy.backoff_until(1, 1_000, &c), 6_000);
        assert_eq!(policy.backoff_until(2, 1_000, &c), 11_000);
    }

    #[test]
    fn zero_max_attempts_parks_on_first_failure() {
        let mut gov = BackoffGovernor::new(RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        });
        gov.note_failure(AtomKind(0), 100, &clock());
        // Parked outright: blocked at any time, no retry wake ever due.
        assert!(gov.is_blocked(AtomKind(0), u64::MAX - 1));
        assert_eq!(gov.next_wake_within(0, u64::MAX - 1), None);
    }

    #[test]
    fn huge_exponents_saturate_instead_of_overflowing() {
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            backoff_base_us: 50.0,
            backoff_factor: 2.0,
        };
        let c = clock();
        // 2^(u32::MAX − 2) µs is far beyond f64 range: the delay must
        // saturate to an effective park, not wrap into an immediate
        // retry or panic.
        assert_eq!(policy.backoff_until(u32::MAX - 1, 0, &c), u64::MAX);
        // Same when the exponent is representable but the product is not.
        let wild = RetryPolicy {
            backoff_base_us: 1e300,
            backoff_factor: 1e300,
            ..policy
        };
        assert_eq!(wild.backoff_until(2, 0, &c), u64::MAX);
        // And a merely-huge finite delay saturates through the cycle
        // conversion without wrapping past `at`.
        let large = RetryPolicy {
            backoff_base_us: 1e18,
            backoff_factor: 1.0,
            ..policy
        };
        assert_eq!(large.backoff_until(1, u64::MAX - 5, &c), u64::MAX);
    }

    #[test]
    fn backoff_is_never_zero_cycles() {
        // A sub-cycle backoff still blocks for at least one cycle;
        // otherwise a failure at cycle t would be retried at cycle t in
        // the same advance step, defeating the backoff entirely.
        let tiny = RetryPolicy {
            backoff_base_us: 1e-9,
            ..RetryPolicy::default()
        };
        assert_eq!(tiny.backoff_until(1, 500, &clock()), 501);
    }

    #[test]
    fn kind_unparks_when_the_delay_expires() {
        let mut gov = BackoffGovernor::new(RetryPolicy::default());
        let c = clock();
        gov.note_failure(AtomKind(1), 10_000, &c); // blocked until 15 000
        assert!(gov.is_blocked(AtomKind(1), 14_999));
        assert_eq!(gov.blocked_kinds(14_999), vec![AtomKind(1)]);
        assert_eq!(gov.next_wake_within(10_000, 100_000), Some(15_000));
        // At the expiry cycle the kind is requestable again — without any
        // success having been recorded.
        assert!(!gov.is_blocked(AtomKind(1), 15_000));
        assert!(gov.blocked_kinds(15_000).is_empty());
        assert_eq!(gov.next_wake_within(15_000, 100_000), None);
    }

    #[test]
    fn success_wipes_the_failure_history() {
        let mut gov = BackoffGovernor::new(RetryPolicy::default());
        let c = clock();
        for _ in 0..3 {
            gov.note_failure(AtomKind(0), 0, &c);
        }
        assert!(gov.is_blocked(AtomKind(0), u64::MAX - 1)); // parked
        gov.note_success(AtomKind(0));
        assert!(!gov.is_blocked(AtomKind(0), 0));
        // The next failure starts from attempt 1 again.
        gov.note_failure(AtomKind(0), 0, &c);
        assert_eq!(gov.next_wake_within(0, u64::MAX - 1), Some(5_000));
    }

    #[test]
    fn parked_kinds_do_not_produce_wakeups() {
        let mut gov = BackoffGovernor::new(RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        });
        gov.note_failure(AtomKind(0), 0, &clock());
        // `blocked_until` is u64::MAX: outside every finite window.
        assert_eq!(gov.next_wake_within(0, 1_000_000), None);
        assert!(gov.is_blocked(AtomKind(0), 1_000_000));
    }
}
