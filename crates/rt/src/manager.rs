//! The RISPP run-time manager (paper §5): the imperative shell over the
//! pure decision stages.
//!
//! The manager performs the three run-time tasks of the paper:
//!
//! 1. **Monitoring** — forecast values announced by FC instrumentation are
//!    stored per task and fine-tuned with observed behaviour
//!    ([`crate::forecast::ForecastStore`],
//!    [`RisppManager::record_fc_outcome`]);
//! 2. **Selecting** — on every forecast change the Molecule selection is
//!    recomputed over all active demands under the Atom-Container budget
//!    ([`crate::selection::SelectionStage`]);
//! 3. **Scheduling** — rotations are (re)queued so the fabric converges to
//!    the selected target Meta-Molecule, most-important SI first
//!    ("Rotation in Advance", [`crate::rotation::RotationSchedulePolicy`]),
//!    with victims chosen by a replacement policy.
//!
//! The stages are pure: they map state to decision values. The manager is
//! the only place those values become effects — every fabric mutation
//! flows through one [`Command`] application
//! site, every counter through the [`StatsLedger`], every event through
//! the shared sink. SI execution always uses the fastest Molecule the
//! *currently loaded* Atoms support, falling back to the software
//! Molecule — so execution upgrades gradually while rotations complete,
//! exactly the T4/T5 steps of the paper's Fig. 6 scenario.

use rispp_core::error::CoreError;
use rispp_core::forecast::ForecastValue;
use rispp_core::si::{SiId, SiLibrary};
use rispp_fabric::fabric::{Fabric, FabricError, FabricEvent};
use rispp_obs::{phase, Event, ProfHandle, ReselectTrigger, SinkHandle};

use crate::command::{self, Command};
use crate::forecast::ForecastStore;
use crate::policy::{LruSurplusPolicy, ReplacementPolicy};
use crate::rotation::{BackoffGovernor, RotationPlan, RotationSchedulePolicy};
use crate::selection::{CacheInvalidation, CacheLookup, SelectionPolicy, SelectionStage};
use crate::stats::StatsLedger;

pub use crate::rotation::{RetryPolicy, RotationStrategy};
pub use crate::selection::{ExhaustiveSelection, GreedySelection, PowerMode};
pub use crate::stats::{EnergyReport, ExecutionRecord, FcStats, SiStats};
pub use crate::TaskId;

mod builder;
mod views;

pub use builder::ManagerBuilder;

/// The run-time manager tying the SI library, fabric and decision stages
/// together.
///
/// The type parameters select the three policies with static dispatch:
/// `P` picks rotation victims ([`ReplacementPolicy`]), `S` chooses
/// Molecules ([`SelectionPolicy`]) and `R` orders rotations
/// ([`RotationSchedulePolicy`]). The defaults are the paper's
/// configuration.
///
/// # Examples
///
/// ```
/// use rispp_core::forecast::ForecastValue;
/// use rispp_fabric::{AtomCatalog, Fabric};
/// use rispp_fabric::catalog::AtomHwProfile;
/// use rispp_h264::si_library::{atom_set, build_library};
/// use rispp_rt::manager::RisppManager;
///
/// let (lib, sis) = build_library();
/// let profiles = vec![
///     AtomHwProfile::new("QuadSub", 352, 700, 58_745),
///     AtomHwProfile::new("Pack", 406, 812, 65_713),
///     AtomHwProfile::new("Transform", 517, 1034, 59_353),
///     AtomHwProfile::new("SATD", 407, 808, 58_141),
/// ];
/// let fabric = Fabric::new(atom_set(), AtomCatalog::new(profiles), 4);
/// let mut mgr = RisppManager::builder(lib, fabric).build();
///
/// // A forecast triggers rotations; until they finish, execution is SW.
/// mgr.forecast(0, ForecastValue::new(sis.satd_4x4, 1.0, 200_000.0, 500.0));
/// assert!(!mgr.execute_si(0, sis.satd_4x4).hardware);
///
/// // After all rotations complete, the SI executes in hardware.
/// let done = mgr.all_rotations_done_at().expect("rotations queued");
/// mgr.advance_to(done)?;
/// assert!(mgr.execute_si(0, sis.satd_4x4).hardware);
/// # Ok::<(), rispp_fabric::FabricError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RisppManager<P = LruSurplusPolicy, S = GreedySelection, R = RotationStrategy> {
    lib: SiLibrary,
    fabric: Fabric,
    policy: P,
    forecasts: ForecastStore,
    selector: SelectionStage<S>,
    scheduler: R,
    ledger: StatsLedger,
    backoff: BackoffGovernor,
    /// Structured-event sink (disabled by default); shared with the fabric
    /// so rotation and manager events interleave in one stream.
    sink: SinkHandle,
    /// Host-side wall-clock profiler (disabled by default); shared with
    /// the fabric so every hot path reports into one phase tree.
    prof: ProfHandle,
    /// Report host-measured event payloads (`Reselect::duration_ns`) as
    /// zero so the event stream replays bit-exactly across runs.
    deterministic_timing: bool,
}

impl<P: ReplacementPolicy, S: SelectionPolicy, R: RotationSchedulePolicy> RisppManager<P, S, R> {
    /// Switches the adaptation goal (see [`PowerMode`]) and immediately
    /// re-selects under it. This is the one configuration knob that
    /// legitimately changes *during* a run (the paper's §1: the system
    /// adapts when it "runs out of energy"); the initial mode is set with
    /// [`ManagerBuilder::power_mode`].
    pub fn adapt_power_mode(&mut self, mode: PowerMode) {
        self.selector.set_power_mode(mode);
        self.reselect(ReselectTrigger::PowerMode);
    }

    /// Tees an additional consumer into the structured-event stream of
    /// both the manager and its fabric, keeping every sink installed so
    /// far. Normally the sink is installed once via
    /// [`ManagerBuilder::sink`]; this exists so a driver (e.g. the
    /// simulation engine) can attach consumers to an already-built
    /// manager.
    pub fn tee_sink(&mut self, extra: SinkHandle) {
        self.fabric
            .set_sink(SinkHandle::tee(self.fabric.sink().clone(), extra.clone()));
        self.sink = SinkHandle::tee(self.sink.clone(), extra);
    }

    /// Advances time, completing rotations and — when a
    /// [`FaultPlan`](rispp_fabric::FaultPlan) is installed — driving the
    /// degradation state machine: a failed rotation is retried after an
    /// exponential backoff (see [`RetryPolicy`]), quarantined or faulted
    /// containers trigger a re-selection that routes around them, and
    /// execution keeps using the best *loaded* Molecule throughout, so
    /// [`RisppManager::execute_si`] never errors because of fabric
    /// faults.
    ///
    /// Time advances in sub-steps: the manager stops at every rotation
    /// completion and every backoff expiry inside `(now, t]` so retries
    /// are issued at the simulated instant they become legal, not at the
    /// end of the caller's step.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::TimeReversal`] when `t` is in the past.
    pub fn advance_to(&mut self, t: u64) -> Result<Vec<FabricEvent>, FabricError> {
        let mut all = Vec::new();
        loop {
            let now = self.fabric.now();
            // Earliest backoff expiry inside (now, t]: the moment a
            // blocked kind becomes requestable again.
            let wake = self.backoff.next_wake_within(now, t);
            let mut step_to = wake.unwrap_or(t);
            if let Some(done) = self.fabric.next_completion() {
                if done > now {
                    step_to = step_to.min(done);
                }
            }
            let events = self.fabric.advance_to(step_to)?;
            let mut need_reselect = wake == Some(step_to);
            for event in &events {
                match *event {
                    FabricEvent::RotationFailed { kind, at, .. } => {
                        self.backoff.note_failure(kind, at, self.fabric.clock());
                        self.selector.invalidate(CacheInvalidation::Fault);
                        need_reselect = true;
                    }
                    FabricEvent::RotationCompleted { kind, .. } => {
                        // A success wipes the kind's failure history.
                        self.backoff.note_success(kind);
                        self.selector
                            .invalidate(CacheInvalidation::RotationCompleted);
                    }
                    FabricEvent::ContainerQuarantined { .. }
                    | FabricEvent::ContainerFaulted { .. } => {
                        self.selector.invalidate(CacheInvalidation::Fault);
                        need_reselect = true;
                    }
                    _ => {}
                }
            }
            all.extend(events);
            if need_reselect {
                self.reselect(ReselectTrigger::Fault);
            }
            if step_to >= t {
                return Ok(all);
            }
        }
    }

    /// Handles an FC event: task `task` announces (or updates) a forecast
    /// for an SI. Triggers re-selection and rotation scheduling.
    pub fn forecast(&mut self, task: TaskId, value: ForecastValue) {
        let _scope = self.prof.scope(phase::FORECAST_UPDATE);
        self.ledger.note_forecast_issued(value.si);
        self.sink
            .emit_with(self.fabric.now(), || Event::ForecastUpdated {
                task,
                si: value.si,
                probability: value.probability,
                expected_executions: value.expected_executions,
            });
        self.forecasts.insert(task, value);
        self.reselect(ReselectTrigger::Forecast);
    }

    /// Handles a whole FC Block: several forecasts announced at once (the
    /// compile-time pass "combines FCs to FC Blocks, which will ease the
    /// run-time computation effort" — selection and rotation scheduling
    /// run once for the batch instead of once per forecast).
    pub fn forecast_block<I>(&mut self, task: TaskId, values: I)
    where
        I: IntoIterator<Item = ForecastValue>,
    {
        let _scope = self.prof.scope(phase::FORECAST_UPDATE);
        let mut any = false;
        for value in values {
            self.ledger.note_forecast_issued(value.si);
            self.sink
                .emit_with(self.fabric.now(), || Event::ForecastUpdated {
                    task,
                    si: value.si,
                    probability: value.probability,
                    expected_executions: value.expected_executions,
                });
            self.forecasts.insert(task, value);
            any = true;
        }
        if any {
            self.reselect(ReselectTrigger::ForecastBlock);
        }
    }

    /// Handles a negative FC: the SI is forecast to be no longer needed by
    /// `task` (the T2 step of Fig. 6). Frees its Atoms for other demands.
    pub fn retract_forecast(&mut self, task: TaskId, si: SiId) {
        let _scope = self.prof.scope(phase::FORECAST_UPDATE);
        self.ledger.note_forecast_retracted(si);
        self.sink
            .emit(self.fabric.now(), &Event::ForecastRetracted { task, si });
        self.forecasts.retract(task, si);
        self.reselect(ReselectTrigger::Retract);
    }

    /// Fine-tunes a stored forecast with run-time observation (the
    /// "monitoring" task: exponential smoothing with factor λ).
    pub fn record_fc_outcome(
        &mut self,
        task: TaskId,
        si: SiId,
        reached: bool,
        observed_distance: f64,
        observed_executions: f64,
    ) {
        let _scope = self.prof.scope(phase::FORECAST_UPDATE);
        self.ledger.note_fc_outcome(si, reached);
        self.sink
            .emit(self.fabric.now(), &Event::FcOutcome { task, si, reached });
        self.forecasts
            .observe(task, si, reached, observed_distance, observed_executions);
        self.reselect(ReselectTrigger::Observation);
    }

    /// Executes one SI for `task` using the fastest loaded Molecule, or
    /// software when none fits. Updates LRU metadata and statistics.
    ///
    /// # Panics
    ///
    /// Panics when `si` was not issued by this manager's library; use
    /// [`RisppManager::try_execute_si`] to handle that case gracefully.
    pub fn execute_si(&mut self, task: TaskId, si: SiId) -> ExecutionRecord {
        match self.try_execute_si(task, si) {
            Ok(record) => record,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`RisppManager::execute_si`], for callers
    /// that receive SI ids from untrusted input (a decoded instruction
    /// stream, a replayed event log).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownSi`] when `si` was not issued by this
    /// manager's library.
    pub fn try_execute_si(&mut self, task: TaskId, si: SiId) -> Result<ExecutionRecord, CoreError> {
        let _scope = self.prof.scope(phase::SI_DISPATCH);
        let def = self.lib.try_get(si).ok_or(CoreError::UnknownSi {
            id: si.index(),
            library_len: self.lib.len(),
        })?;
        let loaded = self.fabric.loaded_molecule();
        let best = def.best_available(&loaded);
        let record = match best {
            Some(m) => {
                command::apply(
                    &mut self.fabric,
                    &mut self.ledger,
                    &Command::Touch(&m.molecule),
                )
                .expect("touch is infallible");
                ExecutionRecord {
                    si,
                    cycles: m.cycles,
                    hardware: true,
                }
            }
            None => ExecutionRecord {
                si,
                cycles: def.sw_cycles(),
                hardware: false,
            },
        };
        self.ledger.record_execution(&record);
        self.sink
            .emit_with(self.fabric.now(), || Event::SiExecuted {
                task,
                si,
                hw: record.hardware,
                cycles: record.cycles,
                molecule: best.map(|m| m.molecule.clone()),
            });
        Ok(record)
    }

    /// Recomputes the Molecule selection from all active demands and
    /// re-schedules rotations towards the new target.
    fn reselect(&mut self, trigger: ReselectTrigger) {
        // The profiler owns the host clock: the scope both feeds the
        // phase histogram and yields the duration for the Reselect event.
        // Forcing the clock while only the sink listens keeps the event's
        // `duration_ns` available without a second timer; with neither
        // enabled no host clock is read at all.
        let scope = self.prof.scope_forcing(
            phase::RESELECT,
            self.sink.is_enabled() && !self.deterministic_timing,
        );
        // Quarantined containers can never hold an Atom again; selecting
        // under the full container count would chase an unreachable
        // target forever.
        let capacity = self.fabric.usable_containers() as u32;
        let lookup = self.selector.reselect_cached(
            &self.lib,
            self.fabric.catalog(),
            &self.forecasts,
            capacity,
        );
        let cache_hit = matches!(lookup, CacheLookup::Hit(_));
        let plan = match lookup {
            CacheLookup::Hit(plan) => plan,
            CacheLookup::Miss => {
                // Only a fresh decision pays for rotation scheduling; a
                // cached one re-applies its memoised plan below.
                let _sched = self.prof.scope(phase::ROTATION_SCHEDULE);
                let plan = self.scheduler.plan(
                    &self.lib,
                    self.selector.selection(),
                    self.selector.last_weights(),
                );
                self.selector.store_plan(plan)
            }
        };
        // Applying the plan is provably a no-op when no rotation is queued
        // (cancelling would refund nothing) and the committed fabric
        // already covers the target: every upgrade stage ≤ its SI's wanted
        // Molecule ≤ the target, so no stage has missing Atoms and no
        // Rotate or UpgradeStep would be issued. Skipping keeps rotation
        // sequence numbers — and therefore fault-plan CRC outcomes —
        // byte-identical to the from-scratch kernel.
        let satisfied = self.fabric.pending_rotation_count() == 0
            && self
                .selector
                .selection()
                .target
                .le(&self.fabric.committed_molecule());
        if !satisfied {
            self.apply_plan(&plan);
        }
        let measured = scope.stop();
        if self.sink.is_enabled() {
            // Under deterministic timing the event is still emitted (the
            // stream's structure must not depend on the knob) but carries
            // a zero duration, so exports replay bit-exactly.
            let duration_ns = if self.deterministic_timing {
                0
            } else {
                measured.unwrap_or(0)
            };
            self.sink.emit(
                self.fabric.now(),
                &Event::Reselect {
                    trigger,
                    duration_ns,
                    cache_hit,
                },
            );
        }
    }

    /// Executes a rotation plan: cancels queued-but-unstarted rotations
    /// (the port cannot abort an in-flight write), then walks the planned
    /// upgrade ladders, turning each missing Atom into a
    /// [`Command::Rotate`] against a victim chosen by the replacement
    /// policy. Kinds under failure backoff are skipped, not retried
    /// early: the rest of each stage still loads.
    fn apply_plan(&mut self, plan: &RotationPlan) {
        command::apply(&mut self.fabric, &mut self.ledger, &Command::CancelPending)
            .expect("cancel is infallible");
        let target = self.selector.selection().target.clone();
        for upgrade in &plan.upgrades {
            for (step, stage) in upgrade.stages.iter().enumerate() {
                let mut requested = 0u32;
                let mut exhausted = false;
                loop {
                    let committed = self.fabric.committed_molecule();
                    let missing = committed
                        .additional_atoms(stage)
                        .expect("widths agree by construction");
                    let now = self.fabric.now();
                    let Some((kind, _)) = missing
                        .iter_nonzero()
                        .find(|&(k, _)| !self.backoff.is_blocked(k, now))
                    else {
                        break;
                    };
                    let Some(victim) = self.policy.choose_victim(&self.fabric, &target) else {
                        exhausted = true; // nothing evictable; stop scheduling
                        break;
                    };
                    let rotate = Command::Rotate {
                        victim,
                        kind,
                        owner: upgrade.owner,
                    };
                    match command::apply(&mut self.fabric, &mut self.ledger, &rotate) {
                        Ok(()) => requested += 1,
                        Err(_) => {
                            exhausted = true; // defensive: victim raced a rotation
                            break;
                        }
                    }
                }
                // An upgrade step is only news when it made the fabric
                // move; re-selections that merely confirm the loaded state
                // stay silent.
                if requested > 0 {
                    self.sink
                        .emit_with(self.fabric.now(), || Event::UpgradeStep {
                            si: upgrade.si,
                            task: upgrade.owner,
                            step: step as u32,
                            molecule: stage.clone(),
                        });
                }
                if exhausted {
                    return;
                }
            }
        }
    }
}
