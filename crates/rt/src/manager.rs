//! The RISPP run-time manager (paper §5).
//!
//! The manager performs the three run-time tasks of the paper:
//!
//! 1. **Monitoring** — forecast values announced by FC instrumentation are
//!    stored per task and fine-tuned with observed behaviour
//!    ([`RisppManager::record_fc_outcome`]);
//! 2. **Selecting** — on every forecast change the Molecule selection is
//!    recomputed over all active demands under the Atom-Container budget
//!    ([`rispp_core::selection::select_molecules`]);
//! 3. **Scheduling** — rotations are (re)queued so the fabric converges to
//!    the selected target Meta-Molecule, most-important SI first
//!    ("Rotation in Advance"), with victims chosen by a replacement
//!    policy.
//!
//! SI execution always uses the fastest Molecule the *currently loaded*
//! Atoms support, falling back to the software Molecule — so execution
//! upgrades gradually while rotations complete, exactly the T4/T5 steps of
//! the paper's Fig. 6 scenario.

use std::collections::BTreeMap;

use rispp_core::atom::AtomKind;
use rispp_core::error::CoreError;
use rispp_core::forecast::ForecastValue;
use rispp_core::molecule::Molecule;
use rispp_core::selection::{select_molecules, MoleculeSelection};
use rispp_core::si::{SiId, SiLibrary};
use rispp_fabric::clock::Clock;
use rispp_fabric::fabric::{Fabric, FabricError, FabricEvent};
use rispp_obs::{Event, ProfHandle, ReselectTrigger, SinkHandle};

use crate::policy::{LruSurplusPolicy, ReplacementPolicy};

/// Identifier of a task issuing forecasts and SI executions.
pub type TaskId = u32;

/// Outcome of one SI execution through the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionRecord {
    /// Executed SI.
    pub si: SiId,
    /// Latency in cycles.
    pub cycles: u64,
    /// `true` when a hardware Molecule executed, `false` for software.
    pub hardware: bool,
}

/// Per-SI execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiStats {
    /// Hardware executions.
    pub hw_executions: u64,
    /// Software executions.
    pub sw_executions: u64,
    /// Total cycles spent in this SI.
    pub cycles: u64,
    /// Cycles spent in hardware Molecules (subset of `cycles`).
    pub hw_cycles: u64,
}

impl SiStats {
    /// Cycles spent in the software Molecule.
    #[must_use]
    pub fn sw_cycles(&self) -> u64 {
        self.cycles - self.hw_cycles
    }
}

/// Energy totals of a manager's run under an
/// [`EnergyModel`](rispp_core::energy::EnergyModel).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Energy of software SI executions, in joules.
    pub sw_execution_j: f64,
    /// Energy of hardware SI executions, in joules.
    pub hw_execution_j: f64,
    /// Energy of bitstream transfers (rotations), in joules.
    pub rotation_j: f64,
}

impl EnergyReport {
    /// Total energy in joules.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.sw_execution_j + self.hw_execution_j + self.rotation_j
    }
}

/// Per-SI forecast monitoring statistics (the paper's run-time task (a):
/// "Monitoring FCs and SIs in order to fine-tune the profiling
/// information").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FcStats {
    /// Forecasts announced for this SI (over all tasks).
    pub issued: u64,
    /// Negative forecasts (retractions).
    pub retracted: u64,
    /// Recorded outcomes where the SI was actually reached.
    pub hits: u64,
    /// Recorded outcomes where it was not.
    pub misses: u64,
}

impl FcStats {
    /// Fraction of recorded outcomes that were hits (`None` before any
    /// outcome was recorded).
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }
}

/// Adaptation goal of the run-time system (the paper's §1 motivation
/// "change in design constraints (system runs out of energy, for
/// example)").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PowerMode {
    /// Maximise speed-up: demands are weighted by expected cycle savings.
    #[default]
    Performance,
    /// Save energy: an SI only earns hardware when its expected execution
    /// count amortises the rotation energy under the given
    /// [`EnergyModel`](rispp_core::energy::EnergyModel) with trade-off
    /// factor α; demand weights become expected energy savings.
    EnergySaving {
        /// The energy model used for amortisation checks.
        model: rispp_core::energy::EnergyModel,
        /// The α trade-off factor of §4.1 (α > 1 = stricter).
        alpha: f64,
    },
}

/// Order in which the rotation scheduler requests Atoms — the design
/// choice behind the paper's "Rotation in Advance".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RotationStrategy {
    /// Stage the SI's upgrade path: smallest (slowest) fitting Molecule
    /// first, so hardware execution starts as early as possible and then
    /// gradually upgrades (the paper's behaviour).
    #[default]
    UpgradePath,
    /// Load the final target Molecule's Atoms in plain kind order —
    /// hardware execution only starts once everything is there. Kept as
    /// the ablation baseline (see the `ablation_rotation` harness).
    TargetOnly,
}

/// Bounded-retry configuration for rotations that fail in the fabric
/// (e.g. CRC errors injected by a
/// [`FaultPlan`](rispp_fabric::FaultPlan)).
///
/// After each failed rotation of an Atom kind the manager waits an
/// exponentially growing backoff —
/// `backoff_base_us · backoff_factor^(attempt − 1)` simulated
/// microseconds — before requesting that kind again. Once `max_attempts`
/// consecutive failures accumulate, the kind is *parked*: no further
/// rotations are requested for it until some rotation of that kind
/// succeeds (one already in flight, for instance). Affected SIs keep
/// executing on the best Molecule the remaining loaded Atoms support,
/// ultimately the software one — a fabric fault never becomes an
/// execution error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Consecutive failed rotations of one Atom kind before that kind is
    /// parked (default 3).
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated microseconds
    /// (default 50 µs).
    pub backoff_base_us: f64,
    /// Multiplicative backoff growth per further failure (default 2).
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_us: 50.0,
            backoff_factor: 2.0,
        }
    }
}

/// Per-kind failure bookkeeping for [`RetryPolicy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct BackoffState {
    /// Consecutive failures since the last success of this kind.
    attempts: u32,
    /// Cycle until which the kind must not be re-requested (`u64::MAX`
    /// once parked).
    blocked_until: u64,
}

/// The run-time manager tying the SI library, fabric and selection
/// algorithms together.
///
/// # Examples
///
/// ```
/// use rispp_core::forecast::ForecastValue;
/// use rispp_fabric::{AtomCatalog, Fabric};
/// use rispp_fabric::catalog::AtomHwProfile;
/// use rispp_h264::si_library::{atom_set, build_library};
/// use rispp_rt::manager::RisppManager;
///
/// let (lib, sis) = build_library();
/// let profiles = vec![
///     AtomHwProfile::new("QuadSub", 352, 700, 58_745),
///     AtomHwProfile::new("Pack", 406, 812, 65_713),
///     AtomHwProfile::new("Transform", 517, 1034, 59_353),
///     AtomHwProfile::new("SATD", 407, 808, 58_141),
/// ];
/// let fabric = Fabric::new(atom_set(), AtomCatalog::new(profiles), 4);
/// let mut mgr = RisppManager::builder(lib, fabric).build();
///
/// // A forecast triggers rotations; until they finish, execution is SW.
/// mgr.forecast(0, ForecastValue::new(sis.satd_4x4, 1.0, 200_000.0, 500.0));
/// assert!(!mgr.execute_si(0, sis.satd_4x4).hardware);
///
/// // After all rotations complete, the SI executes in hardware.
/// let done = mgr.all_rotations_done_at().expect("rotations queued");
/// mgr.advance_to(done)?;
/// assert!(mgr.execute_si(0, sis.satd_4x4).hardware);
/// # Ok::<(), rispp_fabric::FabricError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RisppManager<P = LruSurplusPolicy> {
    lib: SiLibrary,
    fabric: Fabric,
    policy: P,
    /// Active forecasts, keyed by (task, si).
    demands: BTreeMap<(TaskId, usize), ForecastValue>,
    selection: MoleculeSelection,
    stats: Vec<SiStats>,
    fc_stats: Vec<FcStats>,
    rotations_requested: u64,
    rotation_bytes: u64,
    reselects: u64,
    rotation_strategy: RotationStrategy,
    power_mode: PowerMode,
    /// Smoothing factor for online forecast fine-tuning.
    lambda: f64,
    /// Structured-event sink (disabled by default); shared with the fabric
    /// so rotation and manager events interleave in one stream.
    sink: SinkHandle,
    /// Host-side wall-clock profiler (disabled by default); shared with
    /// the fabric so every hot path reports into one phase tree.
    prof: ProfHandle,
    /// Bounded-retry configuration for failed rotations.
    retry_policy: RetryPolicy,
    /// Per-Atom-kind backoff state, keyed by kind index. An entry exists
    /// only while the kind has unresolved failures.
    backoff: BTreeMap<usize, BackoffState>,
}

/// Step-by-step construction of a [`RisppManager`].
///
/// Obtained from [`RisppManager::builder`]; every knob has the same
/// default as the paper's configuration ([`PowerMode::Performance`],
/// [`RotationStrategy::UpgradePath`], λ = 0.25, observability off), so
/// `builder(lib, fabric).build()` is the common case and each method
/// overrides exactly one aspect.
///
/// # Examples
///
/// ```
/// use rispp_fabric::{AtomCatalog, Fabric};
/// use rispp_fabric::catalog::AtomHwProfile;
/// use rispp_h264::si_library::{atom_set, build_library};
/// use rispp_rt::manager::{RisppManager, RotationStrategy};
///
/// let (lib, _sis) = build_library();
/// let profiles = vec![
///     AtomHwProfile::new("QuadSub", 352, 700, 58_745),
///     AtomHwProfile::new("Pack", 406, 812, 65_713),
///     AtomHwProfile::new("Transform", 517, 1034, 59_353),
///     AtomHwProfile::new("SATD", 407, 808, 58_141),
/// ];
/// let fabric = Fabric::new(atom_set(), AtomCatalog::new(profiles), 4);
/// let mgr = RisppManager::builder(lib, fabric)
///     .rotation_strategy(RotationStrategy::TargetOnly)
///     .smoothing(0.5)
///     .build();
/// assert_eq!(mgr.now(), 0);
/// ```
#[derive(Debug)]
pub struct ManagerBuilder<P = LruSurplusPolicy> {
    lib: SiLibrary,
    fabric: Fabric,
    policy: P,
    power_mode: PowerMode,
    rotation_strategy: RotationStrategy,
    lambda: f64,
    sink: SinkHandle,
    prof: ProfHandle,
    retry_policy: RetryPolicy,
}

impl<P: ReplacementPolicy> ManagerBuilder<P> {
    /// Replaces the replacement policy (default:
    /// [`LruSurplusPolicy`]). Changes the manager's type parameter.
    #[must_use]
    pub fn policy<Q: ReplacementPolicy>(self, policy: Q) -> ManagerBuilder<Q> {
        ManagerBuilder {
            lib: self.lib,
            fabric: self.fabric,
            policy,
            power_mode: self.power_mode,
            rotation_strategy: self.rotation_strategy,
            lambda: self.lambda,
            sink: self.sink,
            prof: self.prof,
            retry_policy: self.retry_policy,
        }
    }

    /// Sets the bounded-retry policy for rotations that fail in the
    /// fabric (default: [`RetryPolicy::default`]).
    #[must_use]
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry_policy = retry;
        self
    }

    /// Sets the initial adaptation goal (default:
    /// [`PowerMode::Performance`]). Runtime changes go through
    /// [`RisppManager::set_power_mode`].
    #[must_use]
    pub fn power_mode(mut self, mode: PowerMode) -> Self {
        self.power_mode = mode;
        self
    }

    /// Sets the rotation scheduling strategy (default:
    /// [`RotationStrategy::UpgradePath`]).
    #[must_use]
    pub fn rotation_strategy(mut self, strategy: RotationStrategy) -> Self {
        self.rotation_strategy = strategy;
        self
    }

    /// Sets the forecast-smoothing factor λ ∈ [0, 1] (weight of each new
    /// observation; default 0.25).
    ///
    /// # Panics
    ///
    /// Panics unless `lambda ∈ [0, 1]`.
    #[must_use]
    pub fn smoothing(mut self, lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
        self.lambda = lambda;
        self
    }

    /// Installs a structured-event sink (default: disabled). The manager
    /// shares the sink with its fabric, so rotation events and manager
    /// events arrive interleaved at the same consumer.
    #[must_use]
    pub fn sink(mut self, sink: SinkHandle) -> Self {
        self.sink = sink;
        self
    }

    /// Installs a host-side wall-clock profiler (default: disabled). The
    /// manager shares the profiler with its fabric, so manager phases and
    /// `fabric_advance` report into the same phase tree. A disabled
    /// handle costs one branch per instrumented phase and never reads the
    /// host clock.
    #[must_use]
    pub fn profiler(mut self, prof: ProfHandle) -> Self {
        self.prof = prof;
        self
    }

    /// Builds the manager.
    ///
    /// # Panics
    ///
    /// Panics if the library width differs from the fabric's Atom count.
    #[must_use]
    pub fn build(self) -> RisppManager<P> {
        assert_eq!(
            self.lib.width(),
            self.fabric.atoms().len(),
            "SI library and fabric must agree on the atom kinds"
        );
        let stats = vec![SiStats::default(); self.lib.len()];
        let fc_stats = vec![FcStats::default(); self.lib.len()];
        let mut fabric = self.fabric;
        fabric.set_sink(SinkHandle::tee(fabric.sink().clone(), self.sink.clone()));
        fabric.set_profiler(self.prof.clone());
        RisppManager {
            lib: self.lib,
            fabric,
            policy: self.policy,
            demands: BTreeMap::new(),
            selection: MoleculeSelection::default(),
            stats,
            fc_stats,
            rotations_requested: 0,
            rotation_bytes: 0,
            reselects: 0,
            rotation_strategy: self.rotation_strategy,
            power_mode: self.power_mode,
            lambda: self.lambda,
            sink: self.sink,
            prof: self.prof,
            retry_policy: self.retry_policy,
            backoff: BTreeMap::new(),
        }
    }
}

impl RisppManager<LruSurplusPolicy> {
    /// Starts building a manager over `lib` and `fabric` with the default
    /// configuration (see [`ManagerBuilder`]).
    #[must_use]
    pub fn builder(lib: SiLibrary, fabric: Fabric) -> ManagerBuilder<LruSurplusPolicy> {
        ManagerBuilder {
            lib,
            fabric,
            policy: LruSurplusPolicy::new(),
            power_mode: PowerMode::default(),
            rotation_strategy: RotationStrategy::default(),
            lambda: 0.25,
            sink: SinkHandle::null(),
            prof: ProfHandle::null(),
            retry_policy: RetryPolicy::default(),
        }
    }

    /// Creates a manager with the default LRU-surplus replacement policy.
    #[deprecated(
        since = "0.2.0",
        note = "use `RisppManager::builder(lib, fabric).build()`"
    )]
    #[must_use]
    pub fn new(lib: SiLibrary, fabric: Fabric) -> Self {
        Self::builder(lib, fabric).build()
    }
}

impl<P: ReplacementPolicy> RisppManager<P> {
    /// Creates a manager with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the library width differs from the fabric's Atom count.
    #[deprecated(
        since = "0.2.0",
        note = "use `RisppManager::builder(lib, fabric).policy(policy).build()`"
    )]
    #[must_use]
    pub fn with_policy(lib: SiLibrary, fabric: Fabric, policy: P) -> Self {
        RisppManager::builder(lib, fabric).policy(policy).build()
    }

    /// Switches the adaptation goal (see [`PowerMode`]). This is the one
    /// configuration knob that legitimately changes *during* a run (the
    /// paper's §1: the system adapts when it "runs out of energy"), so it
    /// stays a mutator rather than moving into the builder; the initial
    /// mode is set with [`ManagerBuilder::power_mode`].
    pub fn set_power_mode(&mut self, mode: PowerMode) {
        self.power_mode = mode;
        self.reselect(ReselectTrigger::PowerMode);
    }

    /// Number of selection re-evaluations so far — every FC event invokes
    /// one, which is exactly why the compile-time pass trims FC
    /// candidates ("every FC invokes the run-time system to
    /// re-evaluate").
    #[must_use]
    pub fn reselects(&self) -> u64 {
        self.reselects
    }

    /// Overrides the rotation scheduling strategy (default:
    /// [`RotationStrategy::UpgradePath`]).
    #[deprecated(
        since = "0.2.0",
        note = "configure via `ManagerBuilder::rotation_strategy`"
    )]
    pub fn set_rotation_strategy(&mut self, strategy: RotationStrategy) {
        self.rotation_strategy = strategy;
    }

    /// Overrides the forecast-smoothing factor λ ∈ [0, 1] (weight of each
    /// new observation; default 0.25).
    ///
    /// # Panics
    ///
    /// Panics unless `lambda ∈ [0, 1]`.
    #[deprecated(since = "0.2.0", note = "configure via `ManagerBuilder::smoothing`")]
    pub fn set_smoothing(&mut self, lambda: f64) {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
        self.lambda = lambda;
    }

    /// Replaces the structured-event sink on both the manager and its
    /// fabric. Normally installed once via [`ManagerBuilder::sink`]; this
    /// mutator exists so a driver (e.g. the simulation engine) can tee an
    /// additional consumer into an already-built manager.
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.fabric.set_sink(sink.clone());
        self.sink = sink;
    }

    /// The installed structured-event sink (disabled by default).
    #[must_use]
    pub fn sink(&self) -> &SinkHandle {
        &self.sink
    }

    /// Replaces the host-side profiler on both the manager and its
    /// fabric. Normally installed once via [`ManagerBuilder::profiler`];
    /// this mutator exists so a driver can attach a profiler to an
    /// already-built manager.
    pub fn set_profiler(&mut self, prof: ProfHandle) {
        self.fabric.set_profiler(prof.clone());
        self.prof = prof;
    }

    /// The installed host-side profiler (disabled by default).
    #[must_use]
    pub fn profiler(&self) -> &ProfHandle {
        &self.prof
    }

    /// The SI library.
    #[must_use]
    pub fn library(&self) -> &SiLibrary {
        &self.lib
    }

    /// The underlying fabric.
    #[must_use]
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The platform clock — the same instance the fabric advances, so
    /// manager time and fabric time can never diverge.
    #[must_use]
    pub fn clock(&self) -> &Clock {
        self.fabric.clock()
    }

    /// Current time in cycles (shorthand for `clock().now()`).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.fabric.now()
    }

    /// Currently usable Atoms.
    #[must_use]
    pub fn loaded(&self) -> Molecule {
        self.fabric.loaded_molecule()
    }

    /// The Meta-Molecule the current selection is converging to.
    #[must_use]
    pub fn target(&self) -> &Molecule {
        &self.selection.target
    }

    /// Total rotations requested so far.
    #[must_use]
    pub fn rotations_requested(&self) -> u64 {
        self.rotations_requested
    }

    /// Per-SI execution statistics.
    #[must_use]
    pub fn stats(&self, si: SiId) -> SiStats {
        self.stats[si.index()]
    }

    /// Per-SI forecast monitoring statistics.
    #[must_use]
    pub fn fc_stats(&self, si: SiId) -> FcStats {
        self.fc_stats[si.index()]
    }

    /// Total bitstream bytes of all (non-cancelled) requested rotations.
    #[must_use]
    pub fn rotation_bytes(&self) -> u64 {
        self.rotation_bytes
    }

    /// Energy totals of the run so far under `model` (paper §4.1's energy
    /// accounting: execution energy split SW/HW plus rotation transfers).
    #[must_use]
    pub fn energy_report(&self, model: &rispp_core::energy::EnergyModel) -> EnergyReport {
        let mut report = EnergyReport {
            rotation_j: model.rotation_energy_j(self.rotation_bytes),
            ..EnergyReport::default()
        };
        for s in &self.stats {
            report.sw_execution_j += model.sw_execution_energy_j(s.sw_cycles());
            report.hw_execution_j += model.hw_execution_energy_j(s.hw_cycles);
        }
        report
    }

    /// Cycle at which all queued rotations will have completed.
    #[must_use]
    pub fn all_rotations_done_at(&self) -> Option<u64> {
        self.fabric.all_rotations_done_at()
    }

    /// Advances time, completing rotations and — when a
    /// [`FaultPlan`](rispp_fabric::FaultPlan) is installed — driving the
    /// degradation state machine: a failed rotation is retried after an
    /// exponential backoff (see [`RetryPolicy`]), quarantined or faulted
    /// containers trigger a re-selection that routes around them, and
    /// execution keeps using the best *loaded* Molecule throughout, so
    /// [`RisppManager::execute_si`] never errors because of fabric
    /// faults.
    ///
    /// Time advances in sub-steps: the manager stops at every rotation
    /// completion and every backoff expiry inside `(now, t]` so retries
    /// are issued at the simulated instant they become legal, not at the
    /// end of the caller's step.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::TimeReversal`] when `t` is in the past.
    pub fn advance_to(&mut self, t: u64) -> Result<Vec<FabricEvent>, FabricError> {
        let mut all = Vec::new();
        loop {
            let now = self.fabric.now();
            // Earliest backoff expiry inside (now, t]: the moment a
            // blocked kind becomes requestable again.
            let wake = self
                .backoff
                .values()
                .map(|b| b.blocked_until)
                .filter(|&w| w > now && w <= t)
                .min();
            let mut step_to = wake.unwrap_or(t);
            if let Some(done) = self.fabric.next_completion() {
                if done > now {
                    step_to = step_to.min(done);
                }
            }
            let events = self.fabric.advance_to(step_to)?;
            let mut need_reselect = wake == Some(step_to);
            for event in &events {
                match *event {
                    FabricEvent::RotationFailed { kind, at, .. } => {
                        self.note_rotation_failure(kind, at);
                        need_reselect = true;
                    }
                    FabricEvent::RotationCompleted { kind, .. } => {
                        // A success wipes the kind's failure history.
                        self.backoff.remove(&kind.index());
                    }
                    FabricEvent::ContainerQuarantined { .. }
                    | FabricEvent::ContainerFaulted { .. } => {
                        need_reselect = true;
                    }
                    _ => {}
                }
            }
            all.extend(events);
            if need_reselect {
                self.reselect(ReselectTrigger::Fault);
            }
            if step_to >= t {
                return Ok(all);
            }
        }
    }

    /// Records one failed rotation of `kind` and computes the cycle until
    /// which that kind must not be re-requested.
    fn note_rotation_failure(&mut self, kind: AtomKind, at: u64) {
        let retry = self.retry_policy;
        let clock = self.fabric.clock();
        let entry = self.backoff.entry(kind.index()).or_default();
        entry.attempts += 1;
        if entry.attempts >= retry.max_attempts {
            entry.blocked_until = u64::MAX; // parked until a success
        } else {
            let us = retry.backoff_base_us * retry.backoff_factor.powi(entry.attempts as i32 - 1);
            entry.blocked_until = at.saturating_add(clock.us_to_cycles(us).max(1));
        }
    }

    /// `true` while `kind` is under failure backoff (or parked) at `now`.
    fn is_blocked(&self, kind: AtomKind, now: u64) -> bool {
        self.backoff
            .get(&kind.index())
            .is_some_and(|b| b.blocked_until > now)
    }

    /// Atom kinds currently barred from rotation by failure backoff —
    /// both those waiting out a delay and those parked after
    /// [`RetryPolicy::max_attempts`] failures.
    #[must_use]
    pub fn blocked_kinds(&self) -> Vec<AtomKind> {
        let now = self.fabric.now();
        self.backoff
            .iter()
            .filter(|(_, b)| b.blocked_until > now)
            .map(|(&k, _)| AtomKind(k))
            .collect()
    }

    /// The bounded-retry policy in effect.
    #[must_use]
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry_policy
    }

    /// Handles an FC event: task `task` announces (or updates) a forecast
    /// for an SI. Triggers re-selection and rotation scheduling.
    pub fn forecast(&mut self, task: TaskId, value: ForecastValue) {
        let _scope = self.prof.scope("forecast_update");
        self.fc_stats[value.si.index()].issued += 1;
        self.sink
            .emit_with(self.fabric.now(), || Event::ForecastUpdated {
                task,
                si: value.si,
                probability: value.probability,
                expected_executions: value.expected_executions,
            });
        self.demands.insert((task, value.si.index()), value);
        self.reselect(ReselectTrigger::Forecast);
    }

    /// Handles a whole FC Block: several forecasts announced at once (the
    /// compile-time pass "combines FCs to FC Blocks, which will ease the
    /// run-time computation effort" — selection and rotation scheduling
    /// run once for the batch instead of once per forecast).
    pub fn forecast_block<I>(&mut self, task: TaskId, values: I)
    where
        I: IntoIterator<Item = ForecastValue>,
    {
        let _scope = self.prof.scope("forecast_update");
        let mut any = false;
        for value in values {
            self.fc_stats[value.si.index()].issued += 1;
            self.sink
                .emit_with(self.fabric.now(), || Event::ForecastUpdated {
                    task,
                    si: value.si,
                    probability: value.probability,
                    expected_executions: value.expected_executions,
                });
            self.demands.insert((task, value.si.index()), value);
            any = true;
        }
        if any {
            self.reselect(ReselectTrigger::ForecastBlock);
        }
    }

    /// Handles a negative FC: the SI is forecast to be no longer needed by
    /// `task` (the T2 step of Fig. 6). Frees its Atoms for other demands.
    pub fn retract_forecast(&mut self, task: TaskId, si: SiId) {
        let _scope = self.prof.scope("forecast_update");
        self.fc_stats[si.index()].retracted += 1;
        self.sink
            .emit(self.fabric.now(), &Event::ForecastRetracted { task, si });
        self.demands.remove(&(task, si.index()));
        self.reselect(ReselectTrigger::Retract);
    }

    /// Fine-tunes a stored forecast with run-time observation (the
    /// "monitoring" task: exponential smoothing with factor λ).
    pub fn record_fc_outcome(
        &mut self,
        task: TaskId,
        si: SiId,
        reached: bool,
        observed_distance: f64,
        observed_executions: f64,
    ) {
        let _scope = self.prof.scope("forecast_update");
        let lambda = self.lambda;
        if reached {
            self.fc_stats[si.index()].hits += 1;
        } else {
            self.fc_stats[si.index()].misses += 1;
        }
        self.sink
            .emit(self.fabric.now(), &Event::FcOutcome { task, si, reached });
        if let Some(fv) = self.demands.get_mut(&(task, si.index())) {
            fv.observe(lambda, reached, observed_distance, observed_executions);
        }
        self.reselect(ReselectTrigger::Observation);
    }

    /// Executes one SI for `task` using the fastest loaded Molecule, or
    /// software when none fits. Updates LRU metadata and statistics.
    ///
    /// # Panics
    ///
    /// Panics when `si` was not issued by this manager's library; use
    /// [`RisppManager::try_execute_si`] to handle that case gracefully.
    pub fn execute_si(&mut self, task: TaskId, si: SiId) -> ExecutionRecord {
        match self.try_execute_si(task, si) {
            Ok(record) => record,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`RisppManager::execute_si`], for callers
    /// that receive SI ids from untrusted input (a decoded instruction
    /// stream, a replayed event log).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownSi`] when `si` was not issued by this
    /// manager's library.
    pub fn try_execute_si(&mut self, task: TaskId, si: SiId) -> Result<ExecutionRecord, CoreError> {
        let _scope = self.prof.scope("si_dispatch");
        let def = self.lib.try_get(si).ok_or(CoreError::UnknownSi {
            id: si.index(),
            library_len: self.lib.len(),
        })?;
        let loaded = self.fabric.loaded_molecule();
        let best = def.best_available(&loaded);
        let record = match best {
            Some(m) => {
                self.fabric.touch_atoms(&m.molecule);
                ExecutionRecord {
                    si,
                    cycles: m.cycles,
                    hardware: true,
                }
            }
            None => ExecutionRecord {
                si,
                cycles: def.sw_cycles(),
                hardware: false,
            },
        };
        let s = &mut self.stats[si.index()];
        if record.hardware {
            s.hw_executions += 1;
            s.hw_cycles += record.cycles;
        } else {
            s.sw_executions += 1;
        }
        s.cycles += record.cycles;
        self.sink
            .emit_with(self.fabric.now(), || Event::SiExecuted {
                task,
                si,
                hw: record.hardware,
                cycles: record.cycles,
                molecule: best.map(|m| m.molecule.clone()),
            });
        Ok(record)
    }

    /// Expected energy-rotation cost of loading an SI's minimal Molecule,
    /// in bitstream bytes.
    fn minimal_rotation_bytes(&self, si: SiId) -> u64 {
        self.lib
            .get(si)
            .minimal()
            .molecule
            .iter_nonzero()
            .map(|(kind, count)| {
                u64::from(count) * self.fabric.catalog().profile(kind).bitstream_bytes
            })
            .sum()
    }

    /// Recomputes the Molecule selection from all active demands and
    /// re-schedules rotations towards the new target.
    fn reselect(&mut self, trigger: ReselectTrigger) {
        self.reselects += 1;
        // The profiler owns the host clock: the scope both feeds the
        // phase histogram and yields the duration for the Reselect event.
        // Forcing the clock while only the sink listens keeps the event's
        // `duration_ns` available without a second timer; with neither
        // enabled no host clock is read at all.
        let scope = self.prof.scope_forcing("reselect", self.sink.is_enabled());
        // Aggregate benefit weight per SI over all demanding tasks; the
        // weighting depends on the adaptation goal.
        let mut weights: BTreeMap<usize, (f64, TaskId)> = BTreeMap::new();
        for (&(task, si), fv) in &self.demands {
            let def = self.lib.get(SiId(si));
            let benefit = match self.power_mode {
                PowerMode::Performance => {
                    fv.expected_benefit(def.sw_cycles() as f64, def.fastest().cycles as f64)
                }
                PowerMode::EnergySaving { model, alpha } => {
                    // Rotation only pays when the expected executions
                    // amortise its transfer energy (§4.1's offset).
                    let bytes = self.minimal_rotation_bytes(SiId(si));
                    let needed = model.amortisation_executions(def, bytes, alpha);
                    let expected = fv.probability * fv.expected_executions;
                    if expected < needed {
                        0.0
                    } else {
                        expected * model.per_execution_saving_j(def) * 1e9 // nJ
                    }
                }
            };
            let entry = weights.entry(si).or_insert((0.0, task));
            entry.0 += benefit;
        }
        let demands: Vec<(SiId, f64)> =
            weights.iter().map(|(&si, &(w, _))| (SiId(si), w)).collect();
        // Quarantined containers can never hold an Atom again; selecting
        // under the full container count would chase an unreachable
        // target forever.
        let capacity = self.fabric.usable_containers() as u32;
        self.selection = select_molecules(&self.lib, &demands, capacity);
        {
            let _sched = self.prof.scope("rotation_schedule");
            self.schedule_rotations(&weights);
        }
        if let Some(duration_ns) = scope.stop() {
            if self.sink.is_enabled() {
                self.sink.emit(
                    self.fabric.now(),
                    &Event::Reselect {
                        trigger,
                        duration_ns,
                    },
                );
            }
        }
    }

    /// Requeues rotations so the fabric converges to the selection target.
    /// Queued-but-unstarted rotations are cancelled first (the port cannot
    /// abort an in-flight write), then missing Atoms are requested in
    /// descending SI importance.
    fn schedule_rotations(&mut self, weights: &BTreeMap<usize, (f64, TaskId)>) {
        // Cancelled queued rotations never transfer a bitstream: deduct
        // them from the accounting before re-planning.
        for (_, kind) in self.fabric.pending_rotations() {
            self.rotations_requested -= 1;
            self.rotation_bytes -= self.fabric.catalog().profile(kind).bitstream_bytes;
        }
        self.fabric.cancel_all_pending();
        // Chosen implementations, most important SI first.
        let mut order: Vec<&rispp_core::selection::ChosenMolecule> =
            self.selection.chosen.iter().collect();
        order.sort_by(|a, b| {
            let wa = weights.get(&a.si.index()).map_or(0.0, |&(w, _)| w);
            let wb = weights.get(&b.si.index()).map_or(0.0, |&(w, _)| w);
            wb.partial_cmp(&wa).unwrap_or(std::cmp::Ordering::Equal)
        });
        let target = self.selection.target.clone();
        for choice in order {
            let owner = weights.get(&choice.si.index()).map(|&(_, t)| t);
            let si_def = self.lib.get(choice.si);
            let wanted = si_def.molecules()[choice.molecule_index].molecule.clone();
            // "Rotation in Advance": load the SI's upgrade path stage by
            // stage — smallest (slowest) Molecule first — so hardware
            // execution starts as early as possible and then gradually
            // upgrades, instead of only after the full target is loaded.
            let mut stages: Vec<Molecule> = match self.rotation_strategy {
                RotationStrategy::UpgradePath => {
                    let mut s: Vec<Molecule> = si_def
                        .molecules()
                        .iter()
                        .filter(|m| m.molecule.le(&wanted))
                        .map(|m| m.molecule.clone())
                        .collect();
                    s.sort_by_key(Molecule::determinant);
                    s
                }
                RotationStrategy::TargetOnly => Vec::new(),
            };
            stages.push(wanted);
            for (step, stage) in stages.iter().enumerate() {
                let mut requested = 0u32;
                let mut exhausted = false;
                loop {
                    let committed = self.fabric.committed_molecule();
                    let missing = committed
                        .additional_atoms(stage)
                        .expect("widths agree by construction");
                    // Kinds under failure backoff are skipped, not
                    // retried early: the rest of the stage still loads.
                    let now = self.fabric.now();
                    let Some((kind, _)) = missing
                        .iter_nonzero()
                        .find(|&(k, _)| !self.is_blocked(k, now))
                    else {
                        break;
                    };
                    let Some(victim) = self.policy.choose_victim(&self.fabric, &target) else {
                        exhausted = true; // nothing evictable; stop scheduling
                        break;
                    };
                    match self.fabric.request_rotation(victim, kind) {
                        Ok(()) => {
                            self.rotations_requested += 1;
                            self.rotation_bytes +=
                                self.fabric.catalog().profile(kind).bitstream_bytes;
                            let _ = self.fabric.set_owner(victim, owner);
                            requested += 1;
                        }
                        Err(_) => {
                            exhausted = true; // defensive: victim raced a rotation
                            break;
                        }
                    }
                }
                // An upgrade step is only news when it made the fabric
                // move; re-selections that merely confirm the loaded state
                // stay silent.
                if requested > 0 {
                    self.sink
                        .emit_with(self.fabric.now(), || Event::UpgradeStep {
                            si: choice.si,
                            task: owner,
                            step: step as u32,
                            molecule: stage.clone(),
                        });
                }
                if exhausted {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rispp_core::atom::AtomSet;
    use rispp_core::si::{MoleculeImpl, SpecialInstruction};
    use rispp_fabric::catalog::{AtomCatalog, AtomHwProfile};

    /// Two-kind platform with fast, equal rotation times for readability.
    fn small_platform() -> (SiLibrary, Fabric, SiId, SiId) {
        let atoms = AtomSet::from_names(["A", "B"]);
        let catalog = AtomCatalog::new(vec![
            AtomHwProfile::new("A", 100, 200, 6_920), // 100 µs → 10 000 cycles
            AtomHwProfile::new("B", 100, 200, 6_920),
        ]);
        let fabric = Fabric::new(atoms, catalog, 3);
        let mut lib = SiLibrary::new(2);
        let s0 = lib
            .insert(
                SpecialInstruction::new(
                    "S0",
                    500,
                    vec![
                        MoleculeImpl::new(Molecule::from_counts([1, 1]), 20),
                        MoleculeImpl::new(Molecule::from_counts([2, 1]), 10),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        let s1 = lib
            .insert(
                SpecialInstruction::new(
                    "S1",
                    400,
                    vec![MoleculeImpl::new(Molecule::from_counts([0, 2]), 15)],
                )
                .unwrap(),
            )
            .unwrap();
        (lib, fabric, s0, s1)
    }

    fn fv(si: SiId, execs: f64) -> ForecastValue {
        ForecastValue::new(si, 1.0, 50_000.0, execs)
    }

    /// Advances past every queued and in-flight rotation and returns the
    /// cycle at which the last one completed. Panics — with the manager's
    /// current clock — when nothing is rotating or time cannot advance.
    fn drain_rotations(mgr: &mut RisppManager) -> u64 {
        let done = mgr
            .all_rotations_done_at()
            .unwrap_or_else(|| panic!("nothing to drain: fabric idle at cycle {}", mgr.now()));
        advance_or_panic(mgr, done);
        done
    }

    /// `advance_to` that reports the manager's current clock on failure.
    fn advance_or_panic(mgr: &mut RisppManager, t: u64) {
        if let Err(e) = mgr.advance_to(t) {
            panic!("advance_to({t}) failed at cycle {}: {e}", mgr.now());
        }
    }

    #[test]
    fn forecast_triggers_rotations() {
        let (lib, fabric, s0, _) = small_platform();
        let mut mgr = RisppManager::builder(lib, fabric).build();
        mgr.forecast(0, fv(s0, 100.0));
        assert!(mgr.rotations_requested() >= 2);
        assert_eq!(mgr.target(), &Molecule::from_counts([2, 1]));
    }

    #[test]
    fn execution_upgrades_gradually() {
        let (lib, fabric, s0, _) = small_platform();
        let mut mgr = RisppManager::builder(lib, fabric).build();
        mgr.forecast(0, fv(s0, 100.0));
        // Nothing loaded yet → software.
        let r0 = mgr.execute_si(0, s0);
        assert!(!r0.hardware);
        assert_eq!(r0.cycles, 500);
        // Advance until the fabric holds (1, 1) — the minimal Molecule.
        let mut t = mgr.now();
        loop {
            t += 10_000;
            advance_or_panic(&mut mgr, t);
            if mgr.loaded().count(rispp_core::atom::AtomKind(0)) >= 1
                && mgr.loaded().count(rispp_core::atom::AtomKind(1)) >= 1
            {
                break;
            }
            assert!(t < 1_000_000, "rotation never completed");
        }
        let r1 = mgr.execute_si(0, s0);
        assert!(r1.hardware);
        assert!(r1.cycles == 20 || r1.cycles == 10);
        // After all rotations: the fastest Molecule.
        if mgr.all_rotations_done_at().is_some() {
            drain_rotations(&mut mgr);
        }
        assert_eq!(mgr.execute_si(0, s0).cycles, 10);
    }

    #[test]
    fn retraction_frees_atoms_for_other_task() {
        let (lib, fabric, s0, s1) = small_platform();
        let mut mgr = RisppManager::builder(lib, fabric).build();
        mgr.forecast(0, fv(s0, 100.0));
        drain_rotations(&mut mgr);
        assert_eq!(mgr.execute_si(0, s0).cycles, 10);
        // Task 1 wants S1 (needs two B atoms); S0's forecast retracts.
        mgr.retract_forecast(0, s0);
        mgr.forecast(1, fv(s1, 100.0));
        drain_rotations(&mut mgr);
        let r = mgr.execute_si(1, s1);
        assert!(r.hardware);
        assert_eq!(r.cycles, 15);
    }

    #[test]
    fn stats_accumulate() {
        let (lib, fabric, s0, _) = small_platform();
        let mut mgr = RisppManager::builder(lib, fabric).build();
        mgr.execute_si(0, s0);
        mgr.execute_si(0, s0);
        let s = mgr.stats(s0);
        assert_eq!(s.sw_executions, 2);
        assert_eq!(s.hw_executions, 0);
        assert_eq!(s.cycles, 1000);
    }

    #[test]
    fn observation_reweights_selection() {
        let (lib, fabric, s0, s1) = small_platform();
        let mut mgr = RisppManager::builder(lib, fabric).build();
        // Both tasks forecast; capacity 3 cannot host (2,1) ∪ (0,2) = (2,3).
        mgr.forecast(0, fv(s0, 100.0));
        mgr.forecast(1, fv(s1, 1.0));
        // S0 dominates: target covers S0's fast molecule.
        assert!(Molecule::from_counts([2, 1]).le(mgr.target()));
        // Repeated misses of S0's forecast drain its probability.
        for _ in 0..20 {
            mgr.record_fc_outcome(0, s0, false, 0.0, 0.0);
        }
        // Now S1 should win the containers.
        assert!(Molecule::from_counts([0, 2]).le(mgr.target()));
    }

    #[test]
    fn fc_stats_track_monitoring() {
        let (lib, fabric, s0, _) = small_platform();
        let mut mgr = RisppManager::builder(lib, fabric).build();
        mgr.forecast(0, fv(s0, 10.0));
        mgr.forecast(1, fv(s0, 10.0));
        mgr.record_fc_outcome(0, s0, true, 1_000.0, 5.0);
        mgr.record_fc_outcome(0, s0, false, 0.0, 0.0);
        mgr.record_fc_outcome(0, s0, true, 1_000.0, 5.0);
        mgr.retract_forecast(1, s0);
        let fc = mgr.fc_stats(s0);
        assert_eq!(fc.issued, 2);
        assert_eq!(fc.retracted, 1);
        assert_eq!((fc.hits, fc.misses), (2, 1));
        assert!((fc.hit_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fc_stats_empty_hit_rate_is_none() {
        let (lib, fabric, s0, _) = small_platform();
        let mgr = RisppManager::builder(lib, fabric).build();
        assert_eq!(mgr.fc_stats(s0).hit_rate(), None);
    }

    #[test]
    fn target_only_strategy_delays_first_hw_execution() {
        // The ablation: with TargetOnly, the atom load order follows the
        // final molecule's kind order, so with an equal number of
        // rotations the time to the *first* hardware execution can only
        // be later or equal than with UpgradePath.
        let first_hw_at = |strategy: RotationStrategy| {
            let (lib, fabric, s0, _) = small_platform();
            let mut mgr = RisppManager::builder(lib, fabric)
                .rotation_strategy(strategy)
                .build();
            mgr.forecast(0, fv(s0, 100.0));
            let mut t = 0u64;
            loop {
                t += 1_000;
                advance_or_panic(&mut mgr, t);
                if mgr.execute_si(0, s0).hardware {
                    return t;
                }
                assert!(t < 1_000_000, "never reached hardware");
            }
        };
        let upgrade = first_hw_at(RotationStrategy::UpgradePath);
        let target_only = first_hw_at(RotationStrategy::TargetOnly);
        assert!(upgrade <= target_only, "{upgrade} > {target_only}");
    }

    #[test]
    fn energy_saving_mode_refuses_unamortised_rotations() {
        use rispp_core::energy::EnergyModel;
        let (lib, fabric, s0, _) = small_platform();
        let mut mgr = RisppManager::builder(lib, fabric).build();
        mgr.set_power_mode(PowerMode::EnergySaving {
            model: EnergyModel::default(),
            alpha: 1.0,
        });
        // Few expected executions: rotation energy never amortises.
        mgr.forecast(0, fv(s0, 3.0));
        assert_eq!(mgr.rotations_requested(), 0, "rotated for 3 executions");
        // Many expected executions: rotation pays for itself.
        mgr.forecast(0, fv(s0, 100_000.0));
        assert!(mgr.rotations_requested() > 0);
    }

    #[test]
    fn performance_mode_rotates_for_small_demands_too() {
        let (lib, fabric, s0, _) = small_platform();
        let mut mgr = RisppManager::builder(lib, fabric).build();
        mgr.forecast(0, fv(s0, 3.0));
        assert!(mgr.rotations_requested() > 0);
    }

    #[test]
    fn reselects_count_every_fc_event() {
        let (lib, fabric, s0, s1) = small_platform();
        let mut mgr = RisppManager::builder(lib, fabric).build();
        let before = mgr.reselects();
        mgr.forecast(0, fv(s0, 10.0));
        mgr.forecast(1, fv(s1, 10.0));
        mgr.retract_forecast(0, s0);
        mgr.record_fc_outcome(1, s1, true, 100.0, 5.0);
        assert_eq!(mgr.reselects() - before, 4);
        // A batched FC Block costs one re-evaluation, not two.
        let b2 = mgr.reselects();
        mgr.forecast_block(0, vec![fv(s0, 10.0), fv(s1, 10.0)]);
        assert_eq!(mgr.reselects() - b2, 1);
    }

    #[test]
    fn energy_report_accounts_all_three_terms() {
        use rispp_core::energy::EnergyModel;
        let (lib, fabric, s0, _) = small_platform();
        let mut mgr = RisppManager::builder(lib, fabric).build();
        let model = EnergyModel::default();
        // Pure software run: only SW execution energy.
        mgr.execute_si(0, s0);
        let r = mgr.energy_report(&model);
        assert!(r.sw_execution_j > 0.0);
        assert_eq!(r.hw_execution_j, 0.0);
        assert_eq!(r.rotation_j, 0.0);
        // Forecast → rotations add transfer energy; HW executions follow.
        mgr.forecast(0, fv(s0, 100.0));
        assert!(mgr.rotation_bytes() > 0);
        drain_rotations(&mut mgr);
        mgr.execute_si(0, s0);
        let r2 = mgr.energy_report(&model);
        assert!(r2.rotation_j > 0.0);
        assert!(r2.hw_execution_j > 0.0);
        assert!(r2.total_j() > r.total_j());
    }

    #[test]
    fn cancelled_rotations_are_not_billed() {
        let (lib, fabric, s0, s1) = small_platform();
        let mut mgr = RisppManager::builder(lib, fabric).build();
        mgr.forecast(0, fv(s0, 100.0));
        let after_first = mgr.rotation_bytes();
        // Immediate retraction cancels everything still queued; only the
        // in-flight transfer (at most one) stays billed.
        mgr.retract_forecast(0, s0);
        assert!(mgr.rotation_bytes() <= after_first);
        assert!(mgr.rotation_bytes() <= 6_920, "{}", mgr.rotation_bytes());
        let _ = s1;
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn smoothing_out_of_range_rejected() {
        let (lib, fabric, ..) = small_platform();
        let _ = RisppManager::builder(lib, fabric).smoothing(1.5).build();
    }

    #[test]
    fn try_execute_rejects_unknown_si() {
        let (lib, fabric, s0, _) = small_platform();
        let mut mgr = RisppManager::builder(lib, fabric).build();
        let err = mgr.try_execute_si(0, SiId(99)).unwrap_err();
        assert_eq!(
            err,
            CoreError::UnknownSi {
                id: 99,
                library_len: 2
            }
        );
        // The valid path matches the panicking API.
        let rec = mgr.try_execute_si(0, s0).unwrap();
        assert_eq!(rec, mgr.execute_si(0, s0));
    }

    #[test]
    #[should_panic(expected = "unknown special instruction")]
    fn execute_panics_on_unknown_si() {
        let (lib, fabric, ..) = small_platform();
        let mut mgr = RisppManager::builder(lib, fabric).build();
        let _ = mgr.execute_si(0, SiId(99));
    }

    #[test]
    fn sink_sees_manager_events_at_source() {
        use rispp_obs::TimelineSink;
        use std::cell::RefCell;
        use std::rc::Rc;

        let timeline = Rc::new(RefCell::new(TimelineSink::new()));
        let (lib, fabric, s0, _) = small_platform();
        let mut mgr = RisppManager::builder(lib, fabric)
            .sink(SinkHandle::shared(timeline.clone()))
            .build();

        mgr.forecast(0, fv(s0, 100.0));
        mgr.execute_si(0, s0); // software: nothing loaded yet
        let done = drain_rotations(&mut mgr);
        mgr.execute_si(0, s0); // hardware
        mgr.record_fc_outcome(0, s0, true, 50_000.0, 100.0);
        mgr.retract_forecast(0, s0);

        let tl = timeline.borrow();
        let records = tl.timeline().entries();
        let has = |pred: &dyn Fn(&Event) -> bool| records.iter().any(|r| pred(&r.event));
        assert!(has(&|e| matches!(
            e,
            Event::ForecastUpdated { task: 0, .. }
        )));
        assert!(has(&|e| matches!(
            e,
            Event::Reselect {
                trigger: ReselectTrigger::Forecast,
                ..
            }
        )));
        assert!(has(&|e| matches!(e, Event::UpgradeStep { step: 0, .. })));
        assert!(has(&|e| matches!(
            e,
            Event::SiExecuted {
                hw: false,
                cycles: 500,
                molecule: None,
                ..
            }
        )));
        // Rotations flow through the shared fabric sink.
        assert!(has(&|e| matches!(e, Event::RotationStarted { .. })));
        assert!(has(&|e| matches!(e, Event::RotationCompleted { .. })));
        // The hardware execution carries its Molecule.
        assert!(records.iter().any(|r| matches!(
            &r.event,
            Event::SiExecuted { hw: true, molecule: Some(m), .. }
                if m.determinant() > 0 && r.at == done
        )));
        assert!(has(&|e| matches!(
            e,
            Event::FcOutcome { reached: true, .. }
        )));
        assert!(has(&|e| matches!(
            e,
            Event::ForecastRetracted { task: 0, .. }
        )));
    }

    #[test]
    fn disabled_sink_changes_nothing() {
        let run = |sink: Option<SinkHandle>| {
            let (lib, fabric, s0, s1) = small_platform();
            let mut b = RisppManager::builder(lib, fabric);
            if let Some(s) = sink {
                b = b.sink(s);
            }
            let mut mgr = b.build();
            mgr.forecast(0, fv(s0, 100.0));
            mgr.forecast(1, fv(s1, 10.0));
            drain_rotations(&mut mgr);
            let r = mgr.execute_si(0, s0);
            (r, mgr.rotations_requested(), mgr.target().clone())
        };
        let observed = run(Some(SinkHandle::new(rispp_obs::CountersSink::default())));
        let silent = run(None);
        assert_eq!(observed, silent);
    }

    #[test]
    fn retry_waits_out_the_backoff() {
        use rispp_fabric::FaultPlan;
        // One container, one single-Atom Molecule: exactly one rotation
        // is ever in flight, so the retry timing is fully determined.
        let atoms = AtomSet::from_names(["A", "B"]);
        let catalog = AtomCatalog::new(vec![
            AtomHwProfile::new("A", 100, 200, 6_920), // 10 000-cycle rotation
            AtomHwProfile::new("B", 100, 200, 6_920),
        ]);
        let fabric = Fabric::new(atoms, catalog, 1).with_faults(FaultPlan {
            crc_failures: vec![0],
            ..FaultPlan::default()
        });
        let mut lib = SiLibrary::new(2);
        let si = lib
            .insert(
                SpecialInstruction::new(
                    "S",
                    500,
                    vec![MoleculeImpl::new(Molecule::from_counts([0, 1]), 20)],
                )
                .unwrap(),
            )
            .unwrap();
        let mut mgr = RisppManager::builder(lib, fabric).build();
        mgr.forecast(0, fv(si, 100.0));
        let events = mgr.advance_to(100_000).unwrap();
        // Rotation 0 starts at 0 and fails CRC at 10 000; the retry
        // starts exactly when the 50 µs (5 000 cycle) backoff expires.
        let starts: Vec<u64> = events
            .iter()
            .filter_map(|e| match *e {
                FabricEvent::RotationStarted { at, .. } => Some(at),
                _ => None,
            })
            .collect();
        assert_eq!(starts, vec![0, 15_000]);
        assert!(events
            .iter()
            .any(|e| matches!(e, FabricEvent::RotationFailed { at: 10_000, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, FabricEvent::RotationCompleted { at: 25_000, .. })));
        // The success wiped the failure history; execution is hardware.
        assert!(mgr.blocked_kinds().is_empty());
        assert!(mgr.execute_si(0, si).hardware);
        // Both transfers moved bits: the failed one stays billed.
        assert_eq!(mgr.rotations_requested(), 2);
        assert_eq!(mgr.rotation_bytes(), 2 * 6_920);
    }

    #[test]
    fn kind_parks_after_max_attempts_and_degrades_to_software() {
        use rispp_fabric::FaultPlan;
        // Every rotation fails CRC. After max_attempts per kind the
        // manager parks the kind instead of retrying forever, and the SI
        // keeps executing in software — never an error.
        let (lib, fabric, s0, _) = small_platform();
        let plan = FaultPlan {
            crc_failures: (0..64).collect(),
            ..FaultPlan::default()
        };
        let mut mgr = RisppManager::builder(lib, fabric.with_faults(plan)).build();
        mgr.forecast(0, fv(s0, 100.0));
        let mut failures = 0usize;
        let mut t = 0u64;
        while t < 2_000_000 {
            t += 1_000;
            let events = mgr
                .advance_to(t)
                .expect("advance never errors under faults");
            failures += events
                .iter()
                .filter(|e| matches!(e, FabricEvent::RotationFailed { .. }))
                .count();
            assert!(mgr.execute_si(0, s0).cycles > 0);
        }
        let max = mgr.retry_policy().max_attempts as usize;
        assert!(
            failures >= max,
            "kind parked too early: {failures} failures"
        );
        // Bounded retry: at most max_attempts per kind, plus rotations
        // already queued when their kind parked (one per container).
        assert!(failures <= 2 * max + 3, "retry storm: {failures} failures");
        assert_eq!(mgr.blocked_kinds().len(), 2);
        assert!(!mgr.execute_si(0, s0).hardware);
        assert_eq!(mgr.execute_si(0, s0).cycles, 500);
        // Once parked, the fabric stays quiet: no new rotations, no new
        // failures, however long the run continues.
        let tail = mgr.advance_to(4_000_000).unwrap();
        assert!(tail.is_empty(), "parked kinds still rotating: {tail:?}");
    }

    #[test]
    fn quarantined_container_is_routed_around() {
        use rispp_fabric::{ContainerId, FaultPlan};
        let (lib, fabric, s0, _) = small_platform();
        let plan = FaultPlan {
            bad_containers: vec![ContainerId(0)],
            ..FaultPlan::default()
        };
        let mut mgr = RisppManager::builder(lib, fabric.with_faults(plan)).build();
        mgr.forecast(0, fv(s0, 100.0));
        let events = mgr.advance_to(1_000_000).unwrap();
        let quarantined_at = events
            .iter()
            .find_map(|e| match *e {
                FabricEvent::ContainerQuarantined {
                    container: ContainerId(0),
                    at,
                } => Some(at),
                _ => None,
            })
            .expect("bad container was never quarantined");
        // No rotation targets the dead container afterwards.
        assert!(events
            .iter()
            .filter_map(|e| match *e {
                FabricEvent::RotationStarted { container, at, .. } if at > quarantined_at =>
                    Some(container),
                _ => None,
            })
            .all(|c| c != ContainerId(0)));
        assert_eq!(mgr.fabric().usable_containers(), 2);
        // Selection re-plans under the reduced capacity: the fast (2,1)
        // Molecule no longer fits two containers, the minimal (1,1) does.
        let r = mgr.execute_si(0, s0);
        assert!(r.hardware);
        assert_eq!(r.cycles, 20);
    }

    #[test]
    fn transient_fault_triggers_reloading() {
        use rispp_fabric::{ContainerId, FaultPlan};
        let (lib, fabric, s0, _) = small_platform();
        // Long after everything is loaded, AC0 loses its Atom.
        let plan = FaultPlan {
            transient_faults: vec![(200_000, ContainerId(0))],
            ..FaultPlan::default()
        };
        let mut mgr = RisppManager::builder(lib, fabric.with_faults(plan)).build();
        mgr.forecast(0, fv(s0, 100.0));
        drain_rotations(&mut mgr);
        assert_eq!(mgr.execute_si(0, s0).cycles, 10);
        let events = mgr.advance_to(250_000).unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, FabricEvent::ContainerFaulted { .. })));
        // The fault triggered a re-selection that reloads the lost Atom.
        drain_rotations(&mut mgr);
        assert_eq!(mgr.execute_si(0, s0).cycles, 10);
    }

    #[test]
    fn two_tasks_share_atoms() {
        let (lib, fabric, s0, s1) = small_platform();
        let mut mgr = RisppManager::builder(lib, fabric).build();
        mgr.forecast(0, fv(s0, 50.0));
        mgr.forecast(1, fv(s1, 50.0));
        drain_rotations(&mut mgr);
        // Capacity 3: selection can satisfy S0 minimal (1,1) and S1 (0,2)
        // by sharing the B atoms: target (1,2).
        let loaded = mgr.loaded();
        assert!(Molecule::from_counts([1, 1]).le(&loaded), "loaded {loaded}");
        let ra = mgr.execute_si(0, s0);
        let rb = mgr.execute_si(1, s1);
        assert!(ra.hardware && rb.hardware);
    }
}
