//! Read-only views of a [`RisppManager`]: accessors over the platform
//! state and the accumulated statistics. Nothing here mutates — every
//! state change lives in the parent module's decision loop.

use rispp_core::atom::AtomKind;
use rispp_core::energy::EnergyModel;
use rispp_core::molecule::Molecule;
use rispp_core::si::{SiId, SiLibrary};
use rispp_fabric::clock::Clock;
use rispp_fabric::fabric::Fabric;
use rispp_obs::{ProfHandle, SinkHandle};

use crate::policy::ReplacementPolicy;
use crate::rotation::{RetryPolicy, RotationSchedulePolicy};
use crate::selection::SelectionPolicy;
use crate::stats::{EnergyReport, FcStats, SiStats};

use super::RisppManager;

impl<P: ReplacementPolicy, S: SelectionPolicy, R: RotationSchedulePolicy> RisppManager<P, S, R> {
    /// The installed structured-event sink (disabled by default).
    #[must_use]
    pub fn sink(&self) -> &SinkHandle {
        &self.sink
    }

    /// The installed host-side profiler (disabled by default).
    #[must_use]
    pub fn profiler(&self) -> &ProfHandle {
        &self.prof
    }

    /// The SI library.
    #[must_use]
    pub fn library(&self) -> &SiLibrary {
        &self.lib
    }

    /// The underlying fabric.
    #[must_use]
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The platform clock — the same instance the fabric advances, so
    /// manager time and fabric time can never diverge.
    #[must_use]
    pub fn clock(&self) -> &Clock {
        self.fabric.clock()
    }

    /// Current time in cycles (shorthand for `clock().now()`).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.fabric.now()
    }

    /// Currently usable Atoms.
    #[must_use]
    pub fn loaded(&self) -> Molecule {
        self.fabric.loaded_molecule()
    }

    /// The Meta-Molecule the current selection is converging to.
    #[must_use]
    pub fn target(&self) -> &Molecule {
        &self.selector.selection().target
    }

    /// Number of selection re-evaluations so far — every FC event invokes
    /// one, which is exactly why the compile-time pass trims FC
    /// candidates ("every FC invokes the run-time system to
    /// re-evaluate").
    #[must_use]
    pub fn reselects(&self) -> u64 {
        self.selector.reselects()
    }

    /// `(hits, misses, invalidations)` of the incremental selection
    /// cache. All zeros when the cache is disabled via
    /// [`ManagerBuilder::selection_cache`](super::ManagerBuilder::selection_cache).
    #[must_use]
    pub fn selection_cache_stats(&self) -> (u64, u64, u64) {
        self.selector.cache_stats()
    }

    /// Total rotations requested so far.
    #[must_use]
    pub fn rotations_requested(&self) -> u64 {
        self.ledger.rotations_requested()
    }

    /// Per-SI execution statistics.
    #[must_use]
    pub fn stats(&self, si: SiId) -> SiStats {
        self.ledger.si_stats(si)
    }

    /// Per-SI forecast monitoring statistics.
    #[must_use]
    pub fn fc_stats(&self, si: SiId) -> FcStats {
        self.ledger.fc_stats(si)
    }

    /// Total bitstream bytes of all (non-cancelled) requested rotations.
    #[must_use]
    pub fn rotation_bytes(&self) -> u64 {
        self.ledger.rotation_bytes()
    }

    /// Energy totals of the run so far under `model` (paper §4.1's energy
    /// accounting: execution energy split SW/HW plus rotation transfers).
    #[must_use]
    pub fn energy_report(&self, model: &EnergyModel) -> EnergyReport {
        self.ledger.energy_report(model)
    }

    /// Cycle at which all queued rotations will have completed.
    #[must_use]
    pub fn all_rotations_done_at(&self) -> Option<u64> {
        self.fabric.all_rotations_done_at()
    }

    /// Atom kinds currently barred from rotation by failure backoff —
    /// both those waiting out a delay and those parked after
    /// [`RetryPolicy::max_attempts`] failures.
    #[must_use]
    pub fn blocked_kinds(&self) -> Vec<AtomKind> {
        self.backoff.blocked_kinds(self.fabric.now())
    }

    /// The bounded-retry policy in effect.
    #[must_use]
    pub fn retry_policy(&self) -> RetryPolicy {
        self.backoff.policy()
    }
}
