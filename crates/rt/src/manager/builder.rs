//! Step-by-step construction of a [`RisppManager`] — the only place a
//! manager comes into existence, so every invariant (library/fabric
//! width agreement, shared sink and profiler wiring) is established
//! here once.

use rispp_core::si::SiLibrary;
use rispp_fabric::fabric::Fabric;
use rispp_obs::{ProfHandle, SinkHandle};

use crate::forecast::ForecastStore;
use crate::policy::{LruSurplusPolicy, ReplacementPolicy};
use crate::rotation::{BackoffGovernor, RetryPolicy, RotationSchedulePolicy, RotationStrategy};
use crate::selection::{GreedySelection, PowerMode, SelectionPolicy, SelectionStage};
use crate::stats::StatsLedger;

use super::RisppManager;

/// Step-by-step construction of a [`RisppManager`].
///
/// Obtained from [`RisppManager::builder`]; every knob has the same
/// default as the paper's configuration ([`PowerMode::Performance`],
/// [`RotationStrategy::UpgradePath`], [`GreedySelection`], λ = 0.25,
/// observability off), so `builder(lib, fabric).build()` is the common
/// case and each method overrides exactly one aspect.
///
/// # Examples
///
/// ```
/// use rispp_fabric::{AtomCatalog, Fabric};
/// use rispp_fabric::catalog::AtomHwProfile;
/// use rispp_h264::si_library::{atom_set, build_library};
/// use rispp_rt::manager::{RisppManager, RotationStrategy};
///
/// let (lib, _sis) = build_library();
/// let profiles = vec![
///     AtomHwProfile::new("QuadSub", 352, 700, 58_745),
///     AtomHwProfile::new("Pack", 406, 812, 65_713),
///     AtomHwProfile::new("Transform", 517, 1034, 59_353),
///     AtomHwProfile::new("SATD", 407, 808, 58_141),
/// ];
/// let fabric = Fabric::new(atom_set(), AtomCatalog::new(profiles), 4);
/// let mgr = RisppManager::builder(lib, fabric)
///     .rotation_strategy(RotationStrategy::TargetOnly)
///     .smoothing(0.5)
///     .build();
/// assert_eq!(mgr.now(), 0);
/// ```
#[derive(Debug)]
pub struct ManagerBuilder<P = LruSurplusPolicy, S = GreedySelection, R = RotationStrategy> {
    lib: SiLibrary,
    fabric: Fabric,
    policy: P,
    selection_policy: S,
    schedule_policy: R,
    power_mode: PowerMode,
    lambda: f64,
    sink: SinkHandle,
    prof: ProfHandle,
    retry_policy: RetryPolicy,
    deterministic_timing: bool,
    selection_cache: bool,
}

impl<P: ReplacementPolicy, S: SelectionPolicy, R: RotationSchedulePolicy> ManagerBuilder<P, S, R> {
    /// Replaces the replacement policy (default:
    /// [`LruSurplusPolicy`]). Changes the manager's type parameter.
    #[must_use]
    pub fn policy<Q: ReplacementPolicy>(self, policy: Q) -> ManagerBuilder<Q, S, R> {
        ManagerBuilder {
            lib: self.lib,
            fabric: self.fabric,
            policy,
            selection_policy: self.selection_policy,
            schedule_policy: self.schedule_policy,
            power_mode: self.power_mode,
            lambda: self.lambda,
            sink: self.sink,
            prof: self.prof,
            retry_policy: self.retry_policy,
            deterministic_timing: self.deterministic_timing,
            selection_cache: self.selection_cache,
        }
    }

    /// Replaces the Molecule-selection policy (default:
    /// [`GreedySelection`]). Changes the manager's type parameter.
    #[must_use]
    pub fn selection_policy<T: SelectionPolicy>(self, selection: T) -> ManagerBuilder<P, T, R> {
        ManagerBuilder {
            lib: self.lib,
            fabric: self.fabric,
            policy: self.policy,
            selection_policy: selection,
            schedule_policy: self.schedule_policy,
            power_mode: self.power_mode,
            lambda: self.lambda,
            sink: self.sink,
            prof: self.prof,
            retry_policy: self.retry_policy,
            deterministic_timing: self.deterministic_timing,
            selection_cache: self.selection_cache,
        }
    }

    /// Replaces the rotation-schedule policy (default:
    /// [`RotationStrategy::UpgradePath`]). Changes the manager's type
    /// parameter.
    #[must_use]
    pub fn schedule_policy<U: RotationSchedulePolicy>(
        self,
        schedule: U,
    ) -> ManagerBuilder<P, S, U> {
        ManagerBuilder {
            lib: self.lib,
            fabric: self.fabric,
            policy: self.policy,
            selection_policy: self.selection_policy,
            schedule_policy: schedule,
            power_mode: self.power_mode,
            lambda: self.lambda,
            sink: self.sink,
            prof: self.prof,
            retry_policy: self.retry_policy,
            deterministic_timing: self.deterministic_timing,
            selection_cache: self.selection_cache,
        }
    }

    /// Sets the rotation scheduling strategy (default:
    /// [`RotationStrategy::UpgradePath`]) — shorthand for
    /// [`ManagerBuilder::schedule_policy`] with the built-in strategy
    /// enum.
    #[must_use]
    pub fn rotation_strategy(
        self,
        strategy: RotationStrategy,
    ) -> ManagerBuilder<P, S, RotationStrategy> {
        self.schedule_policy(strategy)
    }

    /// Sets the bounded-retry policy for rotations that fail in the
    /// fabric (default: [`RetryPolicy::default`]).
    #[must_use]
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry_policy = retry;
        self
    }

    /// Sets the initial adaptation goal (default:
    /// [`PowerMode::Performance`]). Runtime changes go through
    /// [`RisppManager::adapt_power_mode`].
    #[must_use]
    pub fn power_mode(mut self, mode: PowerMode) -> Self {
        self.power_mode = mode;
        self
    }

    /// Sets the forecast-smoothing factor λ ∈ [0, 1] (weight of each new
    /// observation; default 0.25).
    ///
    /// # Panics
    ///
    /// Panics unless `lambda ∈ [0, 1]`.
    #[must_use]
    pub fn smoothing(mut self, lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
        self.lambda = lambda;
        self
    }

    /// Installs a structured-event sink (default: disabled). The manager
    /// shares the sink with its fabric, so rotation events and manager
    /// events arrive interleaved at the same consumer.
    #[must_use]
    pub fn sink(mut self, sink: SinkHandle) -> Self {
        self.sink = sink;
        self
    }

    /// Installs a host-side wall-clock profiler (default: disabled). The
    /// manager shares the profiler with its fabric, so manager phases and
    /// `fabric_advance` report into the same phase tree. A disabled
    /// handle costs one branch per instrumented phase and never reads the
    /// host clock.
    #[must_use]
    pub fn profiler(mut self, prof: ProfHandle) -> Self {
        self.prof = prof;
        self
    }

    /// Enables or disables the incremental selection cache (default: on).
    ///
    /// Disabled, every re-selection runs the full weighing + selection +
    /// scheduling kernel from scratch — the oracle configuration the
    /// cached kernel is validated against (decisions, rotation plans and
    /// timelines must be identical either way, modulo the `cache_hit`
    /// marker on `Reselect` events).
    #[must_use]
    pub fn selection_cache(mut self, enabled: bool) -> Self {
        self.selection_cache = enabled;
        self
    }

    /// Replays bit-exactly: host-measured durations in emitted events
    /// (the `duration_ns` of `Reselect`) are reported as zero, so the
    /// structured event stream depends only on simulated state — the
    /// property the fleet layer's shard-replay guarantee rests on. An
    /// installed profiler still measures real host time; only event
    /// payloads are normalised. Default: off (events carry measured
    /// durations).
    #[must_use]
    pub fn deterministic_timing(mut self, deterministic: bool) -> Self {
        self.deterministic_timing = deterministic;
        self
    }

    /// Builds the manager.
    ///
    /// # Panics
    ///
    /// Panics if the library width differs from the fabric's Atom count.
    #[must_use]
    pub fn build(self) -> RisppManager<P, S, R> {
        assert_eq!(
            self.lib.width(),
            self.fabric.atoms().len(),
            "SI library and fabric must agree on the atom kinds"
        );
        let ledger = StatsLedger::new(self.lib.len());
        let mut fabric = self.fabric;
        fabric.set_sink(SinkHandle::tee(fabric.sink().clone(), self.sink.clone()));
        fabric.set_profiler(self.prof.clone());
        RisppManager {
            lib: self.lib,
            fabric,
            policy: self.policy,
            forecasts: ForecastStore::new(self.lambda),
            selector: SelectionStage::new(self.selection_policy, self.power_mode)
                .with_cache(self.selection_cache),
            scheduler: self.schedule_policy,
            ledger,
            backoff: BackoffGovernor::new(self.retry_policy),
            sink: self.sink,
            prof: self.prof,
            deterministic_timing: self.deterministic_timing,
        }
    }
}

impl RisppManager {
    /// Starts building a manager over `lib` and `fabric` with the default
    /// configuration (see [`ManagerBuilder`]).
    #[must_use]
    pub fn builder(lib: SiLibrary, fabric: Fabric) -> ManagerBuilder {
        ManagerBuilder {
            lib,
            fabric,
            policy: LruSurplusPolicy::new(),
            selection_policy: GreedySelection,
            schedule_policy: RotationStrategy::default(),
            power_mode: PowerMode::default(),
            lambda: 0.25,
            sink: SinkHandle::null(),
            prof: ProfHandle::null(),
            retry_policy: RetryPolicy::default(),
            deterministic_timing: false,
            selection_cache: true,
        }
    }
}
