//! The gate-equivalent (GE) area model behind the paper's Fig. 1:
//! extensible processor vs RISPP hardware requirements over the H.264
//! encoder phases.
//!
//! An extensible processor must provision dedicated SI hardware for
//! *every* hot spot at design time — `GE_total = Σ GE(phase)` — even
//! though each phase's hardware idles while the others run. RISPP needs
//! only the area of the largest hot spot plus rotation headroom:
//! `GE_RISPP = α · GE_max`, with α trading rotation overhead against
//! performance preservation, under a constraint `GE_RISPP ≤
//! GE_constraint`. The GE saving is `(GE_total − α·GE_max) / GE_total`.

/// One functional phase of the application (ME, MC, TQ, LF for the H.264
/// encoder).
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Phase name.
    pub name: String,
    /// Share of total processing time, in `(0, 1]`.
    pub time_share: f64,
    /// Gate equivalents of the phase's dedicated SI hardware.
    pub gate_equivalents: u64,
}

impl Phase {
    /// Creates a phase.
    ///
    /// # Panics
    ///
    /// Panics unless `time_share ∈ (0, 1]` and `gate_equivalents > 0`.
    #[must_use]
    pub fn new<S: Into<String>>(name: S, time_share: f64, gate_equivalents: u64) -> Self {
        assert!(
            time_share > 0.0 && time_share <= 1.0,
            "time share must be in (0, 1]"
        );
        assert!(gate_equivalents > 0, "phase hardware cannot be empty");
        Phase {
            name: name.into(),
            time_share,
            gate_equivalents,
        }
    }
}

/// The Fig. 1 area comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaModel {
    phases: Vec<Phase>,
    alpha: f64,
}

impl AreaModel {
    /// Creates a model from the application phases and the RISPP scaling
    /// factor α.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, α < 1 (RISPP needs at least the
    /// largest hot spot), or the time shares do not sum to ≈ 1.
    #[must_use]
    pub fn new(phases: Vec<Phase>, alpha: f64) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        assert!(alpha >= 1.0, "alpha must cover the largest hot spot");
        let total_share: f64 = phases.iter().map(|p| p.time_share).sum();
        assert!(
            (total_share - 1.0).abs() < 1e-6,
            "phase time shares must sum to 1 (got {total_share})"
        );
        AreaModel { phases, alpha }
    }

    /// The phases.
    #[must_use]
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// The rotation-headroom scaling factor α.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// `GE_total`: the extensible processor's area (sum over all phases).
    #[must_use]
    pub fn extensible_ge(&self) -> u64 {
        self.phases.iter().map(|p| p.gate_equivalents).sum()
    }

    /// `GE_max`: the largest single hot spot.
    #[must_use]
    pub fn max_phase_ge(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.gate_equivalents)
            .max()
            .expect("non-empty by construction")
    }

    /// `GE_RISPP = α · GE_max`.
    #[must_use]
    pub fn rispp_ge(&self) -> u64 {
        (self.alpha * self.max_phase_ge() as f64).round() as u64
    }

    /// The paper's GE saving:
    /// `(GE_total − α·GE_max) · 100 / GE_total` percent.
    #[must_use]
    pub fn ge_saving_percent(&self) -> f64 {
        let total = self.extensible_ge() as f64;
        (total - self.rispp_ge() as f64) * 100.0 / total
    }

    /// Checks the paper's constraint `RISPP HW_required = α·GE_max ≤
    /// GE_constraint`.
    #[must_use]
    pub fn fits_constraint(&self, ge_constraint: u64) -> bool {
        self.rispp_ge() <= ge_constraint
    }

    /// Area utilisation of the extensible processor: the time-weighted
    /// fraction of its SI hardware that is actually in use (each phase
    /// only exercises its own hardware — the idle remainder is the
    /// "power/energy loss and overhead of silicon area" of Fig. 1).
    #[must_use]
    pub fn extensible_utilization(&self) -> f64 {
        let total = self.extensible_ge() as f64;
        self.phases
            .iter()
            .map(|p| p.time_share * p.gate_equivalents as f64 / total)
            .sum()
    }

    /// RISPP utilisation under the same accounting: every phase uses (up
    /// to) the whole rotating area.
    #[must_use]
    pub fn rispp_utilization(&self) -> f64 {
        let area = self.rispp_ge() as f64;
        self.phases
            .iter()
            .map(|p| p.time_share * (p.gate_equivalents as f64).min(area) / area)
            .sum()
    }
}

/// Gate equivalents per Virtex-II slice — the rule-of-thumb conversion
/// (two 4-input LUTs plus two flip-flops ≈ 112 two-input-NAND
/// equivalents) used to express FPGA resources in the ASIC-style GE
/// units of Fig. 1.
pub const GE_PER_SLICE: u64 = 112;

/// Gate equivalents of one Atom, from its synthesis profile (Table 1
/// slices × [`GE_PER_SLICE`]).
#[must_use]
pub fn atom_ge(profile: &rispp_fabric::catalog::AtomHwProfile) -> u64 {
    u64::from(profile.slices) * GE_PER_SLICE
}

/// Gate equivalents of a Molecule: the sum over its Atom instances under
/// a catalog — what a design-time-fixed processor would have to burn to
/// host that implementation permanently.
#[must_use]
pub fn molecule_ge(
    molecule: &rispp_core::molecule::Molecule,
    catalog: &rispp_fabric::catalog::AtomCatalog,
) -> u64 {
    molecule
        .iter_nonzero()
        .map(|(kind, count)| u64::from(count) * atom_ge(catalog.profile(kind)))
        .sum()
}

/// The H.264 encoder phase model of Fig. 1: Motion Estimation, Motion
/// Compensation, Transform+Quantisation and Loop Filter. MC consumes only
/// 17 % of processing time but needs the biggest area (`GE_max`), while
/// ME takes the largest time share with the least hardware — the
/// asymmetry that motivates rotation.
#[must_use]
pub fn h264_phases() -> Vec<Phase> {
    vec![
        Phase::new("ME", 0.45, 48_000),
        Phase::new("MC", 0.17, 120_000),
        Phase::new("TQ", 0.23, 86_000),
        Phase::new("LF", 0.15, 64_000),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AreaModel {
        AreaModel::new(h264_phases(), 1.2)
    }

    #[test]
    fn mc_is_biggest_but_not_longest() {
        let phases = h264_phases();
        let mc = phases.iter().find(|p| p.name == "MC").unwrap();
        assert_eq!(mc.gate_equivalents, 120_000);
        assert!(phases
            .iter()
            .all(|p| p.gate_equivalents <= mc.gate_equivalents));
        // ME has the largest time share with the least hardware.
        let me = phases.iter().find(|p| p.name == "ME").unwrap();
        assert!(phases.iter().all(|p| p.time_share <= me.time_share));
        assert!(phases
            .iter()
            .all(|p| p.gate_equivalents >= me.gate_equivalents));
    }

    #[test]
    fn saving_formula_matches_paper() {
        let m = model();
        // GE_total = 318k, α·GE_max = 144k → saving ≈ 54.7 %.
        assert_eq!(m.extensible_ge(), 318_000);
        assert_eq!(m.rispp_ge(), 144_000);
        let saving = m.ge_saving_percent();
        assert!((saving - 54.7).abs() < 0.1, "saving {saving}");
    }

    #[test]
    fn bigger_alpha_costs_area() {
        let tight = AreaModel::new(h264_phases(), 1.0);
        let loose = AreaModel::new(h264_phases(), 1.5);
        assert!(loose.rispp_ge() > tight.rispp_ge());
        assert!(loose.ge_saving_percent() < tight.ge_saving_percent());
    }

    #[test]
    fn constraint_check() {
        let m = model();
        assert!(m.fits_constraint(150_000));
        assert!(!m.fits_constraint(100_000));
    }

    #[test]
    fn rispp_utilises_area_better() {
        let m = model();
        assert!(m.rispp_utilization() > m.extensible_utilization());
        // Extensible: each phase uses only its own share of silicon.
        // Extensible: 0.45·48k + 0.17·120k + 0.23·86k + 0.15·64k over
        // 318k ≈ 22 %; RISPP: the same numerator over 144k ≈ 50 %.
        assert!(m.extensible_utilization() < 0.25);
        assert!(m.rispp_utilization() > 0.45);
    }

    #[test]
    fn atom_ge_follows_table1_slices() {
        use rispp_fabric::catalog::table1_profiles;
        let profiles = table1_profiles();
        // Transform (517 slices) is the biggest Atom in GE terms.
        let ges: Vec<u64> = profiles.iter().map(atom_ge).collect();
        assert_eq!(ges[0], 517 * GE_PER_SLICE);
        assert!(ges.iter().all(|&g| g <= ges[0]));
    }

    #[test]
    fn molecule_ge_sums_instances() {
        use rispp_core::molecule::Molecule;
        use rispp_fabric::catalog::{table1_profiles, AtomCatalog};
        let catalog = AtomCatalog::new(table1_profiles().to_vec());
        // One Transform + two SATD atoms (order: Transform, SATD, …).
        let m = Molecule::from_counts([1, 2, 0, 0]);
        assert_eq!(molecule_ge(&m, &catalog), (517 + 2 * 407) * GE_PER_SLICE);
        assert_eq!(molecule_ge(&Molecule::zero(4), &catalog), 0);
    }

    #[test]
    fn fastest_satd_molecule_costs_asic_scale_ge() {
        // The 16-atom SATD Molecule burned into silicon would cost
        // ~750k GE (16 atoms × ~420 slices × 112 GE/slice) — the scale
        // that motivates rotating instead of dedicating.
        use rispp_fabric::catalog::{table1_profiles, AtomCatalog};
        use rispp_h264::si_library::{atom_set, build_library};
        let atoms = atom_set();
        let profiles: Vec<_> = atoms
            .names()
            .map(|n| {
                table1_profiles()
                    .iter()
                    .find(|p| p.name == n)
                    .expect("profile exists")
                    .clone()
            })
            .collect();
        let catalog = AtomCatalog::new(profiles);
        let (lib, sis) = build_library();
        let ge = molecule_ge(&lib.get(sis.satd_4x4).fastest().molecule, &catalog);
        assert!((700_000..800_000).contains(&ge), "GE = {ge}");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn shares_must_sum_to_one() {
        let _ = AreaModel::new(vec![Phase::new("X", 0.5, 10)], 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_below_one_rejected() {
        let _ = AreaModel::new(h264_phases(), 0.8);
    }
}
