//! Baseline processors: the design-time-fixed extensible processor (ASIP)
//! and the pure-software core.
//!
//! The extensible processor picks one Molecule per SI *at design time*
//! under an area budget and can never change it — the paper's Fig. 13
//! point: "an ASIP has to choose fixed SI implementations at design-time",
//! whereas RISPP moves along the Pareto front at run time.

use rispp_core::molecule::Molecule;
use rispp_core::selection::{select_molecules, MoleculeSelection};
use rispp_core::si::{SiId, SiLibrary};

/// A design-time-fixed extensible processor.
#[derive(Debug, Clone)]
pub struct ExtensibleProcessor {
    lib: SiLibrary,
    fixed: MoleculeSelection,
}

impl ExtensibleProcessor {
    /// "Synthesises" the processor: chooses fixed SI implementations for
    /// the given demand profile under `area_atoms` total Atom instances
    /// (the design-time analogue of the run-time selection).
    #[must_use]
    pub fn design(lib: SiLibrary, demands: &[(SiId, f64)], area_atoms: u32) -> Self {
        let fixed = select_molecules(&lib, demands, area_atoms);
        ExtensibleProcessor { lib, fixed }
    }

    /// The SI library.
    #[must_use]
    pub fn library(&self) -> &SiLibrary {
        &self.lib
    }

    /// Total Atom instances of the synthesised hardware.
    #[must_use]
    pub fn area_atoms(&self) -> u32 {
        self.fixed.target.determinant()
    }

    /// The fixed hardware Meta-Molecule.
    #[must_use]
    pub fn hardware(&self) -> &Molecule {
        &self.fixed.target
    }

    /// Execution latency of one SI: the fixed hardware implementation if
    /// one was synthesised, else software. Never changes at run time.
    #[must_use]
    pub fn exec_cycles(&self, si: SiId) -> u64 {
        self.lib.get(si).exec_cycles(&self.fixed.target)
    }

    /// Returns `true` when the SI got dedicated hardware.
    #[must_use]
    pub fn accelerates(&self, si: SiId) -> bool {
        self.fixed.choice_for(si).is_some()
            || self
                .lib
                .get(si)
                .best_available(&self.fixed.target)
                .is_some()
    }
}

/// The pure-software baseline: every SI at its optimised-software latency.
#[derive(Debug, Clone)]
pub struct SoftwareProcessor {
    lib: SiLibrary,
}

impl SoftwareProcessor {
    /// Creates the baseline.
    #[must_use]
    pub fn new(lib: SiLibrary) -> Self {
        SoftwareProcessor { lib }
    }

    /// Execution latency of one SI (always software).
    #[must_use]
    pub fn exec_cycles(&self, si: SiId) -> u64 {
        self.lib.get(si).sw_cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rispp_h264::si_library::build_library;

    #[test]
    fn asip_fixes_molecules_at_design_time() {
        let (lib, sis) = build_library();
        // Designed for the encoder mix with a 6-atom budget.
        let demands = [
            (sis.satd_4x4, 256.0),
            (sis.dct_4x4, 24.0),
            (sis.ht_4x4, 1.0),
            (sis.ht_2x2, 2.0),
        ];
        let asip = ExtensibleProcessor::design(lib, &demands, 6);
        assert!(asip.area_atoms() <= 6);
        assert!(asip.accelerates(sis.satd_4x4));
        // The latency is frozen: repeated queries agree.
        let a = asip.exec_cycles(sis.satd_4x4);
        assert_eq!(a, asip.exec_cycles(sis.satd_4x4));
        assert!(a < 544);
    }

    #[test]
    fn asip_designed_for_one_phase_misses_another() {
        let (lib, sis) = build_library();
        // Designed exclusively for ME (SAD): transforms stay in software.
        let asip = ExtensibleProcessor::design(lib, &[(sis.sad_4x4, 1.0)], 2);
        assert!(asip.accelerates(sis.sad_4x4));
        assert_eq!(asip.exec_cycles(sis.dct_4x4), 488);
        assert_eq!(asip.exec_cycles(sis.ht_4x4), 298);
    }

    #[test]
    fn software_baseline_matches_sw_cycles() {
        let (lib, sis) = build_library();
        let sw = SoftwareProcessor::new(lib.clone());
        assert_eq!(sw.exec_cycles(sis.satd_4x4), 544);
        assert_eq!(sw.exec_cycles(sis.dct_4x4), 488);
        assert_eq!(sw.exec_cycles(sis.ht_4x4), 298);
    }

    #[test]
    fn more_area_never_slower() {
        let (lib, sis) = build_library();
        let demands = [(sis.satd_4x4, 1.0), (sis.dct_4x4, 1.0)];
        let mut prev = u64::MAX;
        for area in [0u32, 4, 6, 8, 12, 16, 24] {
            let asip = ExtensibleProcessor::design(lib.clone(), &demands, area);
            let total = asip.exec_cycles(sis.satd_4x4) + asip.exec_cycles(sis.dct_4x4);
            assert!(total <= prev, "area {area}: {total} > {prev}");
            prev = total;
        }
    }
}
