//! # rispp-baseline — comparison baselines for RISPP
//!
//! The paper evaluates RISPP against (a) a conventional *extensible
//! processor* whose Special-Instruction hardware is fixed at design time
//! and (b) an optimised pure-software implementation. This crate builds
//! both, plus the gate-equivalent area model behind Fig. 1.
//!
//! * [`area`] — `GE_total` vs `α·GE_max`, GE savings, utilisation;
//! * [`asip`] — [`asip::ExtensibleProcessor`] (design-time-fixed
//!   Molecules) and [`asip::SoftwareProcessor`].
//!
//! # Examples
//!
//! ```
//! use rispp_baseline::area::{h264_phases, AreaModel};
//!
//! let model = AreaModel::new(h264_phases(), 1.2);
//! // RISPP needs α·GE_max instead of Σ GE(phase): > 50 % area saved.
//! assert!(model.ge_saving_percent() > 50.0);
//! ```

#![warn(missing_docs)]

pub mod area;
pub mod asip;

pub use area::{atom_ge, h264_phases, molecule_ge, AreaModel, Phase, GE_PER_SLICE};
pub use asip::{ExtensibleProcessor, SoftwareProcessor};
