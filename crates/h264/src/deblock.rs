//! In-loop deblocking filter (the LF stage of Fig. 1), simplified to the
//! H.264 normal-strength (bS < 4) luma edge filter with fixed α/β
//! thresholds derived from QP.

use crate::block::Plane;

/// α (edge activity) threshold per QP, from the H.264 table (subset —
/// indexed lookup clamps into range).
const ALPHA: [i32; 52] = [
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 4, 4, 5, 6, 7, 8, 9, 10, 12, 13, 15, 17, 20,
    22, 25, 28, 32, 36, 40, 45, 50, 56, 63, 71, 80, 90, 101, 113, 127, 144, 162, 182, 203, 226,
    255, 255,
];

/// β (gradient) threshold per QP.
const BETA: [i32; 52] = [
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 6, 6, 7, 7, 8, 8,
    9, 9, 10, 10, 11, 11, 12, 12, 13, 13, 14, 14, 15, 15, 16, 16, 17, 17, 18, 18,
];

fn clip(v: i32, lo: i32, hi: i32) -> i32 {
    v.clamp(lo, hi)
}

/// Filters one vertical 4-sample edge segment at column `x` (samples
/// `x-2..x+2` of rows `y..y+4`). Returns the number of sample pairs
/// modified.
pub fn filter_vertical_edge(plane: &mut Plane, x: usize, y: usize, qp: u8) -> u32 {
    assert!(qp <= 51, "H.264 QP range is 0..=51");
    if x < 2 || x + 1 >= plane.width {
        return 0;
    }
    let alpha = ALPHA[usize::from(qp)];
    let beta = BETA[usize::from(qp)];
    let mut modified = 0;
    for r in 0..4 {
        let yy = y + r;
        if yy >= plane.height {
            break;
        }
        let p1 = i32::from(plane.sample(x as isize - 2, yy as isize));
        let p0 = i32::from(plane.sample(x as isize - 1, yy as isize));
        let q0 = i32::from(plane.sample(x as isize, yy as isize));
        let q1 = i32::from(plane.sample(x as isize + 1, yy as isize));
        // Filter condition of the standard: a real edge discontinuity that
        // is small enough to be a coding artefact rather than content.
        if (p0 - q0).abs() < alpha && (p1 - p0).abs() < beta && (q1 - q0).abs() < beta {
            let delta = clip(((q0 - p0) * 4 + (p1 - q1) + 4) >> 3, -3, 3);
            let new_p0 = clip(p0 + delta, 0, 255);
            let new_q0 = clip(q0 - delta, 0, 255);
            plane.set_sample(x - 1, yy, new_p0 as u8);
            plane.set_sample(x, yy, new_q0 as u8);
            if delta != 0 {
                modified += 1;
            }
        }
    }
    modified
}

/// Runs the filter over every 4×4 block edge of the plane and returns the
/// number of modified sample pairs — the LF workload of one frame.
pub fn deblock_plane(plane: &mut Plane, qp: u8) -> u32 {
    let mut modified = 0;
    let width = plane.width;
    let height = plane.height;
    for y in (0..height).step_by(4) {
        for x in (4..width).step_by(4) {
            modified += filter_vertical_edge(plane, x, y, qp);
        }
    }
    modified
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_plane(left: u8, right: u8) -> Plane {
        let mut p = Plane::filled(8, 8, left);
        for y in 0..8 {
            for x in 4..8 {
                p.set_sample(x, y, right);
            }
        }
        p
    }

    #[test]
    fn small_step_is_smoothed() {
        let mut p = step_plane(100, 104);
        let modified = filter_vertical_edge(&mut p, 4, 0, 30);
        assert!(modified > 0);
        let p0 = p.sample(3, 0);
        let q0 = p.sample(4, 0);
        assert!(p0 > 100 && q0 < 104, "edge not smoothed: {p0} {q0}");
    }

    #[test]
    fn strong_content_edge_is_preserved() {
        // A 100-level step is real content: |p0 - q0| >= α for QP 30.
        let mut p = step_plane(50, 150);
        let modified = filter_vertical_edge(&mut p, 4, 0, 30);
        assert_eq!(modified, 0);
        assert_eq!(p.sample(3, 0), 50);
        assert_eq!(p.sample(4, 0), 150);
    }

    #[test]
    fn flat_region_untouched() {
        let mut p = Plane::filled(8, 8, 128);
        let before = p.clone();
        deblock_plane(&mut p, 30);
        assert_eq!(p, before);
    }

    #[test]
    fn low_qp_disables_filtering() {
        // α = β = 0 below QP 16: nothing qualifies.
        let mut p = step_plane(100, 103);
        assert_eq!(deblock_plane(&mut p, 10), 0);
    }

    #[test]
    fn deblock_plane_covers_all_edges() {
        let mut p = step_plane(100, 104);
        let modified = deblock_plane(&mut p, 30);
        // One filtered edge column × 2 row groups of 4.
        assert!(modified >= 8, "modified = {modified}");
    }
}
