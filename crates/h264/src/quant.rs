//! H.264 scalar quantisation of 4×4 transform coefficients (the TQ stage
//! of Fig. 1), with the standard's multiplier tables folding the DCT
//! scaling into the quantiser.

use crate::block::Block4x4;

/// Forward quantiser multipliers M(QP%6, pos-class), classes
/// (0,0)-type / (1,1)-type / other.
const M: [[i32; 3]; 6] = [
    [13107, 5243, 8066],
    [11916, 4660, 7490],
    [10082, 4194, 6554],
    [9362, 3647, 5825],
    [8192, 3355, 5243],
    [7282, 2893, 4559],
];

/// Inverse quantiser (rescale) multipliers V(QP%6, pos-class).
const V: [[i32; 3]; 6] = [
    [10, 16, 13],
    [11, 18, 14],
    [13, 20, 16],
    [14, 23, 18],
    [16, 25, 20],
    [18, 29, 23],
];

fn pos_class(r: usize, c: usize) -> usize {
    match (r % 2, c % 2) {
        (0, 0) => 0,
        (1, 1) => 1,
        _ => 2,
    }
}

/// Quantises forward-transform coefficients at quantisation parameter
/// `qp` (0..=51).
///
/// # Panics
///
/// Panics if `qp > 51`.
#[must_use]
pub fn quantize4x4(coeffs: &Block4x4, qp: u8) -> Block4x4 {
    assert!(qp <= 51, "H.264 QP range is 0..=51");
    let qbits = 15 + u32::from(qp / 6);
    let f = (1i64 << qbits) / 6; // intra rounding offset
    let table = &M[usize::from(qp % 6)];
    let mut out = [[0i32; 4]; 4];
    for r in 0..4 {
        for c in 0..4 {
            let z = i64::from(coeffs[r][c]);
            let m = i64::from(table[pos_class(r, c)]);
            let level = (z.abs() * m + f) >> qbits;
            out[r][c] = (level as i32) * z.signum() as i32;
        }
    }
    out
}

/// Rescales quantised levels back to transform-domain coefficients
/// (input to [`crate::transform::inverse_dct4x4`]).
///
/// # Panics
///
/// Panics if `qp > 51`.
#[must_use]
pub fn dequantize4x4(levels: &Block4x4, qp: u8) -> Block4x4 {
    assert!(qp <= 51, "H.264 QP range is 0..=51");
    let shift = u32::from(qp / 6);
    let table = &V[usize::from(qp % 6)];
    let mut out = [[0i32; 4]; 4];
    for r in 0..4 {
        for c in 0..4 {
            out[r][c] = (levels[r][c] * table[pos_class(r, c)]) << shift;
        }
    }
    out
}

/// Count of non-zero levels, the encoder's cheap "is this block coded"
/// predicate.
#[must_use]
pub fn nonzero_count(levels: &Block4x4) -> usize {
    levels.iter().flatten().filter(|&&v| v != 0).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{forward_dct4x4, inverse_dct4x4};

    fn pixels() -> Block4x4 {
        [
            [58, 64, 51, 58],
            [52, 64, 56, 66],
            [62, 63, 61, 64],
            [59, 51, 63, 69],
        ]
    }

    #[test]
    fn zero_block_stays_zero() {
        let z = [[0i32; 4]; 4];
        assert_eq!(quantize4x4(&z, 26), z);
        assert_eq!(dequantize4x4(&z, 26), z);
    }

    #[test]
    fn roundtrip_error_is_bounded_at_low_qp() {
        let x = pixels();
        let coeffs = forward_dct4x4(&x);
        let q = quantize4x4(&coeffs, 4);
        let dq = dequantize4x4(&q, 4);
        let back = inverse_dct4x4(&dq);
        for (br, xr) in back.iter().zip(&x) {
            for (bv, xv) in br.iter().zip(xr) {
                assert!((bv - xv).abs() <= 2, "reconstruction {bv} vs {xv}");
            }
        }
    }

    #[test]
    fn higher_qp_zeroes_more_coefficients() {
        let x = pixels();
        let coeffs = forward_dct4x4(&x);
        let low = nonzero_count(&quantize4x4(&coeffs, 8));
        let high = nonzero_count(&quantize4x4(&coeffs, 40));
        assert!(high <= low, "QP40 kept {high} > QP8 {low}");
        assert!(high < 16);
    }

    #[test]
    fn quantisation_preserves_sign() {
        let mut coeffs = [[0i32; 4]; 4];
        coeffs[0][0] = 4000;
        coeffs[1][1] = -4000;
        let q = quantize4x4(&coeffs, 20);
        assert!(q[0][0] > 0);
        assert!(q[1][1] < 0);
    }

    #[test]
    #[should_panic(expected = "QP range")]
    fn qp_out_of_range_rejected() {
        let _ = quantize4x4(&[[0; 4]; 4], 52);
    }

    #[test]
    fn qp_periodicity_in_shift() {
        // QP and QP+6 differ exactly by one doubling in the rescale.
        let mut levels = [[0i32; 4]; 4];
        levels[2][1] = 5;
        let a = dequantize4x4(&levels, 10);
        let b = dequantize4x4(&levels, 16);
        assert_eq!(b[2][1], 2 * a[2][1]);
    }
}
