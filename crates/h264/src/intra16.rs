//! Intra 16×16 prediction: the whole-macroblock intra modes of H.264
//! (Vertical, Horizontal, DC and the least-squares **Plane** mode), used
//! for smooth areas where per-4×4 signalling would waste bits.

use crate::block::Plane;

/// A 16×16 prediction block.
pub type Block16x16 = [[i32; 16]; 16];

/// The four intra 16×16 modes (standard numbering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntraMode16x16 {
    /// Mode 0 — copy the row above.
    Vertical,
    /// Mode 1 — copy the column to the left.
    Horizontal,
    /// Mode 2 — mean of the available neighbours.
    Dc,
    /// Mode 3 — first-order plane fit through the border samples.
    Plane,
}

/// All four modes in standard numbering order.
pub const INTRA_MODES_16X16: [IntraMode16x16; 4] = [
    IntraMode16x16::Vertical,
    IntraMode16x16::Horizontal,
    IntraMode16x16::Dc,
    IntraMode16x16::Plane,
];

fn clip255(v: i32) -> i32 {
    v.clamp(0, 255)
}

/// Predicts the 16×16 macroblock at pixel position `(x, y)` from its
/// reconstructed neighbours.
///
/// Availability follows this simulator's clamping model; the DC of the
/// top-left macroblock degrades to 128 as in the standard.
#[must_use]
pub fn predict16x16(plane: &Plane, x: usize, y: usize, mode: IntraMode16x16) -> Block16x16 {
    let xi = x as isize;
    let yi = y as isize;
    let top = |i: isize| i32::from(plane.sample(xi + i, yi - 1));
    let left = |i: isize| i32::from(plane.sample(xi - 1, yi + i));
    let mut out = [[0i32; 16]; 16];
    match mode {
        IntraMode16x16::Vertical => {
            for row in &mut out {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = top(c as isize);
                }
            }
        }
        IntraMode16x16::Horizontal => {
            for (r, row) in out.iter_mut().enumerate() {
                let l = left(r as isize);
                for v in row.iter_mut() {
                    *v = l;
                }
            }
        }
        IntraMode16x16::Dc => {
            let have_top = y > 0;
            let have_left = x > 0;
            let dc = if have_top || have_left {
                let mut sum = 0i32;
                let mut n = 0i32;
                if have_top {
                    for i in 0..16 {
                        sum += top(i);
                    }
                    n += 16;
                }
                if have_left {
                    for i in 0..16 {
                        sum += left(i);
                    }
                    n += 16;
                }
                (sum + n / 2) / n
            } else {
                128
            };
            out = [[dc; 16]; 16];
        }
        IntraMode16x16::Plane => {
            // H.264 §8.3.3.4: a first-order fit through the border.
            let mut h = 0i32;
            let mut v = 0i32;
            for i in 0..8i32 {
                h += (i + 1) * (top((8 + i) as isize) - top((6 - i) as isize));
                v += (i + 1) * (left((8 + i) as isize) - left((6 - i) as isize));
            }
            let a = 16 * (top(15) + left(15));
            let b = (5 * h + 32) >> 6;
            let c = (5 * v + 32) >> 6;
            for (yy, row) in out.iter_mut().enumerate() {
                for (xx, val) in row.iter_mut().enumerate() {
                    *val = clip255((a + b * (xx as i32 - 7) + c * (yy as i32 - 7) + 16) >> 5);
                }
            }
        }
    }
    out
}

/// Sum of absolute differences between a source macroblock and a 16×16
/// prediction — the mode-decision cost.
#[must_use]
pub fn sad16x16(plane: &Plane, x: usize, y: usize, pred: &Block16x16) -> u32 {
    let mut acc = 0u32;
    for (r, row) in pred.iter().enumerate() {
        for (c, &p) in row.iter().enumerate() {
            let s = i32::from(plane.sample((x + c) as isize, (y + r) as isize));
            acc += s.abs_diff(p);
        }
    }
    acc
}

/// Picks the best 16×16 intra mode by SAD. Returns `(mode, cost)`.
#[must_use]
pub fn best_mode16x16(plane: &Plane, x: usize, y: usize) -> (IntraMode16x16, u32) {
    INTRA_MODES_16X16
        .iter()
        .map(|&m| (m, sad16x16(plane, x, y, &predict16x16(plane, x, y, m))))
        .min_by_key(|&(_, cost)| cost)
        .expect("mode table is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_plane_predicts_flat_in_every_mode() {
        let p = Plane::filled(48, 48, 120);
        for mode in INTRA_MODES_16X16 {
            let pred = predict16x16(&p, 16, 16, mode);
            assert_eq!(pred, [[120; 16]; 16], "{mode:?}");
        }
    }

    #[test]
    fn plane_mode_reconstructs_a_linear_ramp() {
        // A plane u(x, y) = 40 + 2x + 3y is exactly representable by the
        // first-order fit; prediction error stays within rounding.
        let mut p = Plane::filled(64, 64, 0);
        for y in 0..64usize {
            for x in 0..64usize {
                p.set_sample(x, y, (40 + 2 * x + 3 * y).min(255) as u8);
            }
        }
        let pred = predict16x16(&p, 16, 16, IntraMode16x16::Plane);
        for (yy, row) in pred.iter().enumerate() {
            for (xx, &v) in row.iter().enumerate() {
                let truth = (40 + 2 * (16 + xx) + 3 * (16 + yy)) as i32;
                assert!((v - truth).abs() <= 2, "({xx},{yy}): {v} vs {truth}");
            }
        }
        // And the mode decision picks Plane on such content.
        let (mode, _) = best_mode16x16(&p, 16, 16);
        assert_eq!(mode, IntraMode16x16::Plane);
    }

    #[test]
    fn dc_of_corner_macroblock_is_mid_grey() {
        let p = Plane::filled(32, 32, 7);
        let pred = predict16x16(&p, 0, 0, IntraMode16x16::Dc);
        assert_eq!(pred, [[128; 16]; 16]);
    }

    #[test]
    fn vertical_copies_the_top_row() {
        let mut p = Plane::filled(48, 48, 0);
        for x in 0..48 {
            p.set_sample(x, 15, (x * 5 % 250) as u8);
        }
        let pred = predict16x16(&p, 16, 16, IntraMode16x16::Vertical);
        for row in &pred {
            for (c, &v) in row.iter().enumerate() {
                assert_eq!(v, i32::from(p.sample((16 + c) as isize, 15)));
            }
        }
    }

    #[test]
    fn mode_decision_picks_horizontal_on_row_stripes() {
        let mut p = Plane::filled(48, 48, 0);
        for y in 0..48usize {
            for x in 0..48usize {
                p.set_sample(x, y, if y % 2 == 0 { 200 } else { 40 });
            }
        }
        let (mode, cost) = best_mode16x16(&p, 16, 16);
        assert_eq!(mode, IntraMode16x16::Horizontal);
        assert_eq!(cost, 0);
    }

    #[test]
    fn sad_counts_prediction_error() {
        let p = Plane::filled(32, 32, 100);
        let pred = [[90i32; 16]; 16];
        assert_eq!(sad16x16(&p, 0, 0, &pred), 256 * 10);
    }
}
