//! Half-sample interpolation: the H.264 6-tap Wiener filter
//! `(1, −5, 20, 20, −5, 1) / 32` used by sub-pixel motion compensation —
//! the data-path the Motion Compensation (MC) hot spot of Fig. 1 spends
//! its area on.

use crate::block::{Block4x4, Plane};
use crate::me::MotionVector;
use crate::satd::sad4x4;

/// The 6-tap filter applied to six consecutive integer samples.
#[must_use]
pub fn six_tap(a: i32, b: i32, c: i32, d: i32, e: i32, f: i32) -> i32 {
    a - 5 * b + 20 * c + 20 * d - 5 * e + f
}

fn clip255(v: i32) -> i32 {
    v.clamp(0, 255)
}

/// Horizontal half-sample at `(x + ½, y)`.
#[must_use]
pub fn half_sample_h(plane: &Plane, x: isize, y: isize) -> i32 {
    let s = |dx: isize| i32::from(plane.sample(x + dx, y));
    clip255((six_tap(s(-2), s(-1), s(0), s(1), s(2), s(3)) + 16) >> 5)
}

/// Vertical half-sample at `(x, y + ½)`.
#[must_use]
pub fn half_sample_v(plane: &Plane, x: isize, y: isize) -> i32 {
    let s = |dy: isize| i32::from(plane.sample(x, y + dy));
    clip255((six_tap(s(-2), s(-1), s(0), s(1), s(2), s(3)) + 16) >> 5)
}

/// Diagonal half-sample at `(x + ½, y + ½)`: vertical filtering of
/// horizontal intermediate values, with the standard's single final
/// rounding (`>> 10`).
#[must_use]
pub fn half_sample_hv(plane: &Plane, x: isize, y: isize) -> i32 {
    let h = |dy: isize| {
        let s = |dx: isize| i32::from(plane.sample(x + dx, y + dy));
        six_tap(s(-2), s(-1), s(0), s(1), s(2), s(3))
    };
    clip255((six_tap(h(-2), h(-1), h(0), h(1), h(2), h(3)) + 512) >> 10)
}

/// A motion vector in half-sample units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct HalfPelVector {
    /// Horizontal displacement in half samples.
    pub dx2: i16,
    /// Vertical displacement in half samples.
    pub dy2: i16,
}

impl HalfPelVector {
    /// Promotes an integer vector.
    #[must_use]
    pub fn from_integer(mv: MotionVector) -> Self {
        HalfPelVector {
            dx2: i16::from(mv.dx) * 2,
            dy2: i16::from(mv.dy) * 2,
        }
    }

    /// Returns `true` when both components are at integer positions.
    #[must_use]
    pub fn is_integer(&self) -> bool {
        self.dx2 % 2 == 0 && self.dy2 % 2 == 0
    }
}

/// Extracts a motion-compensated 4×4 prediction at half-sample accuracy.
#[must_use]
pub fn compensate_half_pel(plane: &Plane, x: usize, y: usize, mv: HalfPelVector) -> Block4x4 {
    let bx = x as isize + isize::from(mv.dx2 >> 1);
    let by = y as isize + isize::from(mv.dy2 >> 1);
    let frac_x = mv.dx2.rem_euclid(2) == 1;
    let frac_y = mv.dy2.rem_euclid(2) == 1;
    let mut out = [[0i32; 4]; 4];
    for (r, row) in out.iter_mut().enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            let px = bx + c as isize;
            let py = by + r as isize;
            *v = match (frac_x, frac_y) {
                (false, false) => i32::from(plane.sample(px, py)),
                (true, false) => half_sample_h(plane, px, py),
                (false, true) => half_sample_v(plane, px, py),
                (true, true) => half_sample_hv(plane, px, py),
            };
        }
    }
    out
}

/// Half-pel refinement around an integer-search result: evaluates the 8
/// half-sample neighbours and returns the best vector and its SAD cost.
#[must_use]
pub fn refine_half_pel(
    current: &Plane,
    reference: &Plane,
    x: usize,
    y: usize,
    integer_mv: MotionVector,
) -> (HalfPelVector, u32) {
    let orig = current.block4x4(x as isize, y as isize);
    let centre = HalfPelVector::from_integer(integer_mv);
    let mut best = centre;
    let mut best_cost = sad4x4(&orig, &compensate_half_pel(reference, x, y, centre));
    for ddy in -1i16..=1 {
        for ddx in -1i16..=1 {
            if ddx == 0 && ddy == 0 {
                continue;
            }
            let cand = HalfPelVector {
                dx2: centre.dx2 + ddx,
                dy2: centre.dy2 + ddy,
            };
            let cost = sad4x4(&orig, &compensate_half_pel(reference, x, y, cand));
            if cost < best_cost {
                best_cost = cost;
                best = cand;
            }
        }
    }
    (best, best_cost)
}

/// A motion vector in quarter-sample units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct QuarterPelVector {
    /// Horizontal displacement in quarter samples.
    pub dx4: i16,
    /// Vertical displacement in quarter samples.
    pub dy4: i16,
}

impl QuarterPelVector {
    /// Promotes a half-pel vector.
    #[must_use]
    pub fn from_half_pel(mv: HalfPelVector) -> Self {
        QuarterPelVector {
            dx4: mv.dx2 * 2,
            dy4: mv.dy2 * 2,
        }
    }
}

/// Sample at a quarter-pel position: H.264 derives quarter samples by
/// averaging the two nearest integer/half samples.
#[must_use]
pub fn quarter_sample(plane: &Plane, x4: isize, y4: isize) -> i32 {
    let at_half = |x4: isize, y4: isize| -> i32 {
        debug_assert!(x4 % 2 == 0 && y4 % 2 == 0);
        let (x, y) = (x4 / 4, y4 / 4);
        let frac_x = x4.rem_euclid(4) == 2;
        let frac_y = y4.rem_euclid(4) == 2;
        let (bx, by) = (x4.div_euclid(4), y4.div_euclid(4));
        match (frac_x, frac_y) {
            (false, false) => i32::from(plane.sample(x, y)),
            (true, false) => half_sample_h(plane, bx, by),
            (false, true) => half_sample_v(plane, bx, by),
            (true, true) => half_sample_hv(plane, bx, by),
        }
    };
    if x4 % 2 == 0 && y4 % 2 == 0 {
        return at_half(x4, y4);
    }
    // Average the two nearest even (integer/half) positions, preferring
    // the axis with the fractional offset.
    let (ax, ay, bx2, by2) = if x4 % 2 != 0 && y4 % 2 != 0 {
        (x4 - 1, y4 - 1, x4 + 1, y4 + 1)
    } else if x4 % 2 != 0 {
        (x4 - 1, y4, x4 + 1, y4)
    } else {
        (x4, y4 - 1, x4, y4 + 1)
    };
    (at_half(ax, ay) + at_half(bx2, by2) + 1) >> 1
}

/// Motion-compensated 4×4 prediction at quarter-sample accuracy.
#[must_use]
pub fn compensate_quarter_pel(plane: &Plane, x: usize, y: usize, mv: QuarterPelVector) -> Block4x4 {
    let mut out = [[0i32; 4]; 4];
    for (r, row) in out.iter_mut().enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            let x4 = 4 * (x as isize + c as isize) + isize::from(mv.dx4);
            let y4 = 4 * (y as isize + r as isize) + isize::from(mv.dy4);
            *v = quarter_sample(plane, x4, y4);
        }
    }
    out
}

/// Quarter-pel refinement around a half-pel result.
#[must_use]
pub fn refine_quarter_pel(
    current: &Plane,
    reference: &Plane,
    x: usize,
    y: usize,
    half_mv: HalfPelVector,
) -> (QuarterPelVector, u32) {
    let orig = current.block4x4(x as isize, y as isize);
    let centre = QuarterPelVector::from_half_pel(half_mv);
    let mut best = centre;
    let mut best_cost = sad4x4(&orig, &compensate_quarter_pel(reference, x, y, centre));
    for ddy in -1i16..=1 {
        for ddx in -1i16..=1 {
            if ddx == 0 && ddy == 0 {
                continue;
            }
            let cand = QuarterPelVector {
                dx4: centre.dx4 + ddx,
                dy4: centre.dy4 + ddy,
            };
            let cost = sad4x4(&orig, &compensate_quarter_pel(reference, x, y, cand));
            if cost < best_cost {
                best_cost = cost;
                best = cand;
            }
        }
    }
    (best, best_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::me::full_search_4x4;
    use crate::video::SyntheticVideo;

    #[test]
    fn six_tap_is_the_wiener_kernel() {
        // Flat input: taps sum to 32.
        assert_eq!(six_tap(9, 9, 9, 9, 9, 9), 9 * 32);
        // Unit impulse picks each coefficient.
        assert_eq!(six_tap(1, 0, 0, 0, 0, 0), 1);
        assert_eq!(six_tap(0, 1, 0, 0, 0, 0), -5);
        assert_eq!(six_tap(0, 0, 1, 0, 0, 0), 20);
    }

    #[test]
    fn half_samples_of_flat_plane_are_flat() {
        let p = Plane::filled(16, 16, 80);
        assert_eq!(half_sample_h(&p, 8, 8), 80);
        assert_eq!(half_sample_v(&p, 8, 8), 80);
        assert_eq!(half_sample_hv(&p, 8, 8), 80);
    }

    #[test]
    fn half_sample_interpolates_a_ramp() {
        // A horizontal ramp: the half sample between v and v+2 is v+1.
        let mut p = Plane::filled(16, 4, 0);
        for y in 0..4 {
            for x in 0..16 {
                p.set_sample(x, y, (x * 2) as u8);
            }
        }
        let h = half_sample_h(&p, 8, 1);
        assert_eq!(h, 17); // between 16 and 18
    }

    #[test]
    fn integer_vector_compensation_matches_direct_read() {
        let mut v = SyntheticVideo::new(32, 32, 9);
        let f = v.next_frame();
        let mv = HalfPelVector::from_integer(MotionVector { dx: 2, dy: -1 });
        assert!(mv.is_integer());
        let pred = compensate_half_pel(&f.y, 12, 12, mv);
        assert_eq!(pred, f.y.block4x4(14, 11));
    }

    #[test]
    fn refinement_never_worse_than_integer() {
        let mut v = SyntheticVideo::new(48, 48, 4);
        let f0 = v.next_frame();
        let f1 = v.next_frame();
        let int_res = full_search_4x4(&f1.y, &f0.y, 20, 20, 4);
        let (half_mv, half_cost) = refine_half_pel(&f1.y, &f0.y, 20, 20, int_res.mv);
        assert!(half_cost <= int_res.cost, "{half_cost} > {}", int_res.cost);
        let _ = half_mv;
    }

    #[test]
    fn quarter_sample_at_integer_positions_reads_directly() {
        let mut v = SyntheticVideo::new(32, 32, 2);
        let f = v.next_frame();
        for (x, y) in [(8usize, 8usize), (15, 3), (20, 27)] {
            assert_eq!(
                quarter_sample(&f.y, 4 * x as isize, 4 * y as isize),
                i32::from(f.y.sample(x as isize, y as isize))
            );
        }
    }

    #[test]
    fn quarter_sample_interpolates_between_neighbours() {
        // Horizontal ramp: quarter positions land between integer and
        // half samples.
        let mut p = Plane::filled(16, 4, 0);
        for y in 0..4 {
            for x in 0..16 {
                p.set_sample(x, y, (x * 8) as u8);
            }
        }
        let int_v = quarter_sample(&p, 4 * 8, 4);
        let quarter = quarter_sample(&p, 4 * 8 + 1, 4);
        let half = quarter_sample(&p, 4 * 8 + 2, 4);
        assert!(
            int_v <= quarter && quarter <= half,
            "{int_v} {quarter} {half}"
        );
    }

    #[test]
    fn quarter_compensation_at_zero_vector_is_identity() {
        let mut v = SyntheticVideo::new(32, 32, 6);
        let f = v.next_frame();
        let pred = compensate_quarter_pel(&f.y, 12, 12, QuarterPelVector::default());
        assert_eq!(pred, f.y.block4x4(12, 12));
    }

    #[test]
    fn quarter_refinement_never_worse_than_half() {
        let mut v = SyntheticVideo::new(48, 48, 8);
        let f0 = v.next_frame();
        let f1 = v.next_frame();
        let int_res = full_search_4x4(&f1.y, &f0.y, 20, 20, 4);
        let (half_mv, half_cost) = refine_half_pel(&f1.y, &f0.y, 20, 20, int_res.mv);
        let (_, quarter_cost) = refine_quarter_pel(&f1.y, &f0.y, 20, 20, half_mv);
        assert!(quarter_cost <= half_cost, "{quarter_cost} > {half_cost}");
        assert!(half_cost <= int_res.cost);
    }

    #[test]
    fn output_is_clipped_to_pixel_range() {
        // Alternating extremes can overshoot before clipping.
        let mut p = Plane::filled(16, 1, 0);
        for x in 0..16 {
            p.set_sample(x, 0, if x % 2 == 0 { 255 } else { 0 });
        }
        for x in 2..13 {
            let v = half_sample_h(&p, x, 0);
            assert!((0..=255).contains(&v), "unclipped {v}");
        }
    }
}
