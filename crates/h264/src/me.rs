//! Integer-pixel motion estimation: full search over a window using SAD
//! (the ME stage of Fig. 1; the paper notes QuadSub + SATD Atoms combine
//! into an SAD SI used exactly here).

use crate::block::{Block4x4, Plane};
use crate::satd::sad4x4;

/// A motion vector in integer luma samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MotionVector {
    /// Horizontal displacement.
    pub dx: i8,
    /// Vertical displacement.
    pub dy: i8,
}

/// Result of one block search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotionSearchResult {
    /// Best motion vector found.
    pub mv: MotionVector,
    /// SAD cost at the best vector.
    pub cost: u32,
    /// Number of candidate positions evaluated (= SAD SI invocations).
    pub evaluated: u32,
}

/// Full-search motion estimation of the 4×4 block at `(x, y)` of
/// `current` within `reference`, over `±range` in both axes.
///
/// Ties resolve towards the shorter vector, then raster order — the
/// deterministic tie-break every real encoder implements to keep motion
/// fields coherent.
///
/// # Panics
///
/// Panics if `range` is 0 (the search would be meaningless) or exceeds
/// `i8::MAX`.
#[must_use]
pub fn full_search_4x4(
    current: &Plane,
    reference: &Plane,
    x: usize,
    y: usize,
    range: u8,
) -> MotionSearchResult {
    assert!(range > 0 && range <= i8::MAX as u8, "bad search range");
    let orig = current.block4x4(x as isize, y as isize);
    let r = i16::from(range);
    let mut best = MotionSearchResult {
        mv: MotionVector::default(),
        cost: u32::MAX,
        evaluated: 0,
    };
    let mut evaluated = 0u32;
    for dy in -r..=r {
        for dx in -r..=r {
            let cand =
                reference.block4x4(x as isize + isize::from(dx), y as isize + isize::from(dy));
            let cost = sad4x4(&orig, &cand);
            evaluated += 1;
            let mv = MotionVector {
                dx: dx as i8,
                dy: dy as i8,
            };
            if cost < best.cost || (cost == best.cost && mv_rank(mv) < mv_rank(best.mv)) {
                best.mv = mv;
                best.cost = cost;
            }
        }
    }
    best.evaluated = evaluated;
    best
}

/// Extracts the predicted block for a motion vector.
#[must_use]
pub fn motion_compensate_4x4(reference: &Plane, x: usize, y: usize, mv: MotionVector) -> Block4x4 {
    reference.block4x4(
        x as isize + isize::from(mv.dx),
        y as isize + isize::from(mv.dy),
    )
}

fn mv_rank(mv: MotionVector) -> (u16, i8, i8) {
    let len = u16::from(mv.dx.unsigned_abs()) + u16::from(mv.dy.unsigned_abs());
    (len, mv.dy, mv.dx)
}

/// SAD of a whole 16×16 macroblock at displacement `(dx, dy)`, with an
/// early-out once `best_so_far` is exceeded (the standard ME
/// optimisation: most candidates are rejected after a few rows). Returns
/// `u32::MAX` for early-rejected candidates, so partial sums can never be
/// mistaken for real costs.
#[must_use]
pub fn sad16x16_at(
    current: &Plane,
    reference: &Plane,
    x: usize,
    y: usize,
    dx: isize,
    dy: isize,
    best_so_far: u32,
) -> u32 {
    let mut acc = 0u32;
    for r in 0..16isize {
        for c in 0..16isize {
            let a = i32::from(current.sample(x as isize + c, y as isize + r));
            let b = i32::from(reference.sample(x as isize + c + dx, y as isize + r + dy));
            acc += a.abs_diff(b);
        }
        if acc > best_so_far {
            return u32::MAX; // candidate already lost
        }
    }
    acc
}

/// Full-search ME for a whole 16×16 macroblock: one motion vector for the
/// MB (H.264's 16×16 partition), with the early-termination SAD.
///
/// # Panics
///
/// Panics if `range` is 0 or exceeds `i8::MAX`.
#[must_use]
pub fn full_search_16x16(
    current: &Plane,
    reference: &Plane,
    x: usize,
    y: usize,
    range: u8,
) -> MotionSearchResult {
    assert!(range > 0 && range <= i8::MAX as u8, "bad search range");
    let r = i16::from(range);
    let mut best = MotionSearchResult {
        mv: MotionVector::default(),
        cost: u32::MAX,
        evaluated: 0,
    };
    let mut evaluated = 0u32;
    for dy in -r..=r {
        for dx in -r..=r {
            let cost = sad16x16_at(
                current,
                reference,
                x,
                y,
                isize::from(dx),
                isize::from(dy),
                best.cost,
            );
            evaluated += 1;
            let mv = MotionVector {
                dx: dx as i8,
                dy: dy as i8,
            };
            if cost < best.cost || (cost == best.cost && mv_rank(mv) < mv_rank(best.mv)) {
                best.mv = mv;
                best.cost = cost;
            }
        }
    }
    best.evaluated = evaluated;
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plane with a bright 4×4 patch at `(px, py)`.
    fn patch_plane(px: usize, py: usize) -> Plane {
        let mut p = Plane::filled(32, 32, 20);
        for r in 0..4 {
            for c in 0..4 {
                p.set_sample(px + c, py + r, 200);
            }
        }
        p
    }

    #[test]
    fn finds_translated_patch() {
        let current = patch_plane(12, 10);
        let reference = patch_plane(9, 13); // moved by (+3, -3) to current
        let res = full_search_4x4(&current, &reference, 12, 10, 4);
        assert_eq!(res.mv, MotionVector { dx: -3, dy: 3 });
        assert_eq!(res.cost, 0);
    }

    #[test]
    fn zero_motion_on_static_content() {
        let p = patch_plane(8, 8);
        let res = full_search_4x4(&p, &p, 8, 8, 6);
        assert_eq!(res.mv, MotionVector::default());
        assert_eq!(res.cost, 0);
    }

    #[test]
    fn evaluates_full_window() {
        let p = patch_plane(8, 8);
        let res = full_search_4x4(&p, &p, 8, 8, 3);
        assert_eq!(res.evaluated, 49); // (2·3+1)²
    }

    #[test]
    fn compensation_matches_search() {
        let current = patch_plane(12, 10);
        let reference = patch_plane(10, 10);
        let res = full_search_4x4(&current, &reference, 12, 10, 4);
        let pred = motion_compensate_4x4(&reference, 12, 10, res.mv);
        assert_eq!(sad4x4(&current.block4x4(12, 10), &pred), res.cost);
    }

    #[test]
    fn tie_break_prefers_short_vectors() {
        // Uniform planes: every candidate costs 0; the zero vector wins.
        let a = Plane::filled(32, 32, 90);
        let res = full_search_4x4(&a, &a, 16, 16, 5);
        assert_eq!(res.mv, MotionVector::default());
    }

    #[test]
    #[should_panic(expected = "bad search range")]
    fn zero_range_rejected() {
        let p = Plane::filled(16, 16, 0);
        let _ = full_search_4x4(&p, &p, 0, 0, 0);
    }

    /// A plane with a bright 16×16 patch at `(px, py)`.
    fn big_patch_plane(px: usize, py: usize) -> Plane {
        let mut p = Plane::filled(64, 64, 30);
        for r in 0..16 {
            for c in 0..16 {
                p.set_sample(px + c, py + r, 210);
            }
        }
        p
    }

    #[test]
    fn mb_search_finds_translated_patch() {
        let current = big_patch_plane(24, 20);
        let reference = big_patch_plane(20, 24);
        let res = full_search_16x16(&current, &reference, 24, 20, 6);
        assert_eq!(res.mv, MotionVector { dx: -4, dy: 4 });
        assert_eq!(res.cost, 0);
        assert_eq!(res.evaluated, 169); // (2·6+1)²
    }

    #[test]
    fn mb_search_ties_resolve_to_zero_vector() {
        let p = Plane::filled(64, 64, 90);
        let res = full_search_16x16(&p, &p, 24, 24, 5);
        assert_eq!(res.mv, MotionVector::default());
        assert_eq!(res.cost, 0);
    }

    #[test]
    fn mb_search_agrees_with_exhaustive_sad() {
        // The early-termination search must return the same optimum as a
        // naive full evaluation.
        let current = big_patch_plane(24, 20);
        let mut reference = big_patch_plane(22, 21);
        // Add structure so costs are distinct.
        for i in 0..64 {
            reference.set_sample(i, 0, (i * 3) as u8);
        }
        let fast = full_search_16x16(&current, &reference, 24, 20, 4);
        let mut best = u32::MAX;
        for dy in -4isize..=4 {
            for dx in -4isize..=4 {
                let c = sad16x16_at(&current, &reference, 24, 20, dx, dy, u32::MAX - 1);
                best = best.min(c);
            }
        }
        assert_eq!(fast.cost, best);
    }

    #[test]
    fn early_out_rejects_with_sentinel() {
        let a = big_patch_plane(24, 24);
        let b = Plane::filled(64, 64, 0);
        // Tight budget: the candidate must be rejected as MAX.
        let c = sad16x16_at(&a, &b, 24, 24, 0, 0, 10);
        assert_eq!(c, u32::MAX);
    }
}
