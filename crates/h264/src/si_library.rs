//! The H.264 Special-Instruction library of the case study (paper §6,
//! Table 2).
//!
//! The platform has four Atom kinds — exactly the four the paper profiles
//! in Table 1: **QuadSub** (4-way packed subtract), **Pack** (16↔32-bit
//! lane packing), **Transform** (the shared add/sub butterfly of Fig. 9)
//! and **SATD** (absolute-sum accumulate). Five SIs are composed from
//! them:
//!
//! | SI | Molecules | cycles (fastest…slowest) | SW cycles |
//! |---|---|---|---|
//! | HT_2x2   | 1  | 5            | 60  |
//! | HT_4x4   | 6  | 8…22         | 298 |
//! | DCT_4x4  | 8  | 9…24         | 488 |
//! | SATD_4x4 | 15 | 12…24        | 544 |
//! | SAD_4x4  | 3  | 8…16         | 400 |
//!
//! The 30 hardware cycle counts of HT_2x2/HT_4x4/DCT_4x4/SATD_4x4 are the
//! paper's Table 2 values verbatim. The per-Molecule Atom vectors are a
//! *reconstruction* (the scanned table rows are illegible, see DESIGN.md)
//! constrained by the paper's prose: HT_2x2 needs exactly one Atom;
//! HT_4x4 needs 4 Transform- and 4 Pack-executions; SATD_4x4's minimum is
//! 4 Atoms, one of each kind (which is what lets the 4-AC prototype run
//! it at 24 cycles); instance counts follow the 1/2/4 pattern; larger
//! Molecules are never slower than Molecules they dominate; and the
//! Pareto staircase spans 1…16 Atoms as in Fig. 13. SAD_4x4 is the
//! QuadSub+SATD combination the paper describes for integer-pixel ME.
//! Software-Molecule latencies for SATD_4x4/DCT_4x4/HT_4x4 are the
//! "Opt. SW" values of Fig. 11 (544/488/298).

use rispp_core::atom::{AtomKind, AtomSet};
use rispp_core::molecule::Molecule;
use rispp_core::si::{MoleculeImpl, SiId, SiLibrary, SpecialInstruction};

/// Number of Atom kinds on the H.264 platform.
pub const ATOM_KINDS: usize = 4;

/// The four Atom kinds, index-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct H264Atoms {
    /// 4-way packed subtraction (residual formation).
    pub quad_sub: AtomKind,
    /// 16↔32-bit lane packing (two 16-bit values per 32-bit register).
    pub pack: AtomKind,
    /// The shared DCT/HT butterfly data path (Fig. 9).
    pub transform: AtomKind,
    /// Absolute-value summation tree.
    pub satd: AtomKind,
}

impl Default for H264Atoms {
    fn default() -> Self {
        H264Atoms {
            quad_sub: AtomKind(0),
            pack: AtomKind(1),
            transform: AtomKind(2),
            satd: AtomKind(3),
        }
    }
}

/// The platform [`AtomSet`]: QuadSub, Pack, Transform, SATD.
#[must_use]
pub fn atom_set() -> AtomSet {
    AtomSet::from_names(["QuadSub", "Pack", "Transform", "SATD"])
}

/// Ids of the five case-study SIs within the [`SiLibrary`] built by
/// [`build_library`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct H264Sis {
    /// 4×4 Sum of Absolute Transformed Differences.
    pub satd_4x4: SiId,
    /// 4×4 forward integer transform.
    pub dct_4x4: SiId,
    /// 4×4 Hadamard transform of the luma DC coefficients.
    pub ht_4x4: SiId,
    /// 2×2 Hadamard transform of the chroma DC coefficients.
    pub ht_2x2: SiId,
    /// 4×4 Sum of Absolute Differences (integer-pixel ME).
    pub sad_4x4: SiId,
}

/// Software-Molecule latencies, in cycles (Fig. 11 "Opt. SW" column; the
/// HT_2x2 and SAD values follow the same optimised-software scaling).
pub mod sw_cycles {
    /// SATD_4x4 optimised software implementation.
    pub const SATD_4X4: u64 = 544;
    /// DCT_4x4 optimised software implementation.
    pub const DCT_4X4: u64 = 488;
    /// HT_4x4 optimised software implementation.
    pub const HT_4X4: u64 = 298;
    /// HT_2x2 optimised software implementation.
    pub const HT_2X2: u64 = 60;
    /// SAD_4x4 optimised software implementation.
    pub const SAD_4X4: u64 = 400;
}

/// One Table 2 column: Atom instance counts (QuadSub, Pack, Transform,
/// SATD) and the execution latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Entry {
    /// QuadSub instances.
    pub quad_sub: u32,
    /// Pack instances.
    pub pack: u32,
    /// Transform instances.
    pub transform: u32,
    /// SATD instances.
    pub satd: u32,
    /// Latency in cycles.
    pub cycles: u64,
}

impl Table2Entry {
    const fn new(quad_sub: u32, pack: u32, transform: u32, satd: u32, cycles: u64) -> Self {
        Table2Entry {
            quad_sub,
            pack,
            transform,
            satd,
            cycles,
        }
    }

    /// The entry's Atom vector as a platform Molecule.
    #[must_use]
    pub fn molecule(&self) -> Molecule {
        Molecule::from_counts([self.quad_sub, self.pack, self.transform, self.satd])
    }
}

/// HT_2x2: a single-Atom SI ("constitutes only one Atom").
pub const HT_2X2_MOLECULES: [Table2Entry; 1] = [Table2Entry::new(0, 0, 1, 0, 5)];

/// HT_4x4: 4 Transform- plus 4 Pack-executions, parallelised 1/2/4 ways.
pub const HT_4X4_MOLECULES: [Table2Entry; 6] = [
    Table2Entry::new(0, 1, 1, 0, 22),
    Table2Entry::new(0, 1, 2, 0, 17),
    Table2Entry::new(0, 2, 1, 0, 17),
    Table2Entry::new(0, 2, 2, 0, 12),
    Table2Entry::new(0, 2, 4, 0, 11),
    Table2Entry::new(0, 4, 4, 0, 8),
];

/// DCT_4x4: Pack-heavy (16-bit storage pattern both ways) Transform SI.
pub const DCT_4X4_MOLECULES: [Table2Entry; 8] = [
    Table2Entry::new(0, 1, 1, 0, 24),
    Table2Entry::new(0, 2, 1, 0, 23),
    Table2Entry::new(0, 1, 2, 0, 19),
    Table2Entry::new(0, 2, 2, 0, 18),
    Table2Entry::new(0, 4, 2, 0, 15),
    Table2Entry::new(0, 1, 4, 0, 12),
    Table2Entry::new(0, 2, 4, 0, 12),
    Table2Entry::new(0, 4, 4, 0, 9),
];

/// SATD_4x4: the Fig. 8 chain QuadSub → Pack → Transform → SATD; minimum
/// one Atom of each kind.
pub const SATD_4X4_MOLECULES: [Table2Entry; 15] = [
    Table2Entry::new(1, 1, 1, 1, 24),
    Table2Entry::new(1, 1, 2, 1, 22),
    Table2Entry::new(1, 2, 1, 1, 22),
    Table2Entry::new(1, 2, 2, 1, 20),
    Table2Entry::new(2, 2, 2, 1, 18),
    Table2Entry::new(1, 2, 2, 2, 18),
    Table2Entry::new(2, 2, 2, 2, 17),
    Table2Entry::new(2, 2, 4, 2, 15),
    Table2Entry::new(2, 4, 2, 2, 15),
    Table2Entry::new(2, 4, 4, 2, 14),
    Table2Entry::new(4, 4, 2, 2, 14),
    Table2Entry::new(2, 2, 4, 4, 14),
    Table2Entry::new(4, 4, 4, 2, 13),
    Table2Entry::new(2, 4, 4, 4, 13),
    Table2Entry::new(4, 4, 4, 4, 12),
];

/// SAD_4x4: "QuadSub and SATD can also be combined to form an SI that can
/// execute the SAD operation used in Integer-Pixel Motion Estimation".
pub const SAD_4X4_MOLECULES: [Table2Entry; 3] = [
    Table2Entry::new(1, 0, 0, 1, 16),
    Table2Entry::new(2, 0, 0, 2, 10),
    Table2Entry::new(4, 0, 0, 4, 8),
];

fn build_si(name: &str, sw: u64, entries: &[Table2Entry]) -> SpecialInstruction {
    SpecialInstruction::new(
        name,
        sw,
        entries
            .iter()
            .map(|e| MoleculeImpl::new(e.molecule(), e.cycles))
            .collect(),
    )
    .expect("table data is valid by construction")
}

/// Builds the case-study [`SiLibrary`] and the id handles.
///
/// # Examples
///
/// ```
/// use rispp_h264::si_library::{build_library, sw_cycles};
/// use rispp_core::molecule::Molecule;
///
/// let (lib, sis) = build_library();
/// let satd = lib.get(sis.satd_4x4);
/// assert_eq!(satd.sw_cycles(), sw_cycles::SATD_4X4);
/// // The minimal Molecule needs one Atom of each kind and runs in 24
/// // cycles — >22× faster than software (Fig. 11).
/// assert_eq!(satd.minimal().molecule, Molecule::from_counts([1, 1, 1, 1]));
/// assert!(satd.sw_cycles() / satd.minimal().cycles >= 22);
/// ```
#[must_use]
pub fn build_library() -> (SiLibrary, H264Sis) {
    let mut lib = SiLibrary::new(ATOM_KINDS);
    let satd_4x4 = lib
        .insert(build_si(
            "SATD_4x4",
            sw_cycles::SATD_4X4,
            &SATD_4X4_MOLECULES,
        ))
        .expect("width matches");
    let dct_4x4 = lib
        .insert(build_si("DCT_4x4", sw_cycles::DCT_4X4, &DCT_4X4_MOLECULES))
        .expect("width matches");
    let ht_4x4 = lib
        .insert(build_si("HT_4x4", sw_cycles::HT_4X4, &HT_4X4_MOLECULES))
        .expect("width matches");
    let ht_2x2 = lib
        .insert(build_si("HT_2x2", sw_cycles::HT_2X2, &HT_2X2_MOLECULES))
        .expect("width matches");
    let sad_4x4 = lib
        .insert(build_si("SAD_4x4", sw_cycles::SAD_4X4, &SAD_4X4_MOLECULES))
        .expect("width matches");
    (
        lib,
        H264Sis {
            satd_4x4,
            dct_4x4,
            ht_4x4,
            ht_2x2,
            sad_4x4,
        },
    )
}

/// All Table 2 groups as `(SI name, entries)`, for the table harness.
#[must_use]
pub fn table2_groups() -> [(&'static str, &'static [Table2Entry]); 4] {
    [
        ("HT_2x2", &HT_2X2_MOLECULES[..]),
        ("HT_4x4", &HT_4X4_MOLECULES[..]),
        ("DCT_4x4", &DCT_4X4_MOLECULES[..]),
        ("SATD_4x4", &SATD_4X4_MOLECULES[..]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_cycle_multisets_reproduced() {
        // Paper Table 2, cycles row: 30 values.
        let expect_ht2: Vec<u64> = vec![5];
        let expect_ht4: Vec<u64> = vec![22, 17, 17, 12, 11, 8];
        let expect_dct: Vec<u64> = vec![24, 23, 19, 15, 18, 12, 12, 9];
        let expect_satd: Vec<u64> =
            vec![24, 22, 22, 20, 18, 18, 17, 15, 14, 15, 14, 14, 13, 13, 12];
        let sorted = |mut v: Vec<u64>| {
            v.sort_unstable();
            v
        };
        let cycles = |entries: &[Table2Entry]| entries.iter().map(|e| e.cycles).collect::<Vec<_>>();
        assert_eq!(sorted(cycles(&HT_2X2_MOLECULES)), sorted(expect_ht2));
        assert_eq!(sorted(cycles(&HT_4X4_MOLECULES)), sorted(expect_ht4));
        assert_eq!(sorted(cycles(&DCT_4X4_MOLECULES)), sorted(expect_dct));
        assert_eq!(sorted(cycles(&SATD_4X4_MOLECULES)), sorted(expect_satd));
    }

    #[test]
    fn thirty_hardware_molecules_total() {
        let total: usize = table2_groups().iter().map(|(_, e)| e.len()).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn dominating_molecules_are_never_slower() {
        // A Molecule with at least as many Atoms of every kind must not be
        // slower — otherwise the run-time "gradual upgrade" could regress.
        for (name, entries) in table2_groups() {
            for a in entries {
                for b in entries {
                    if b.molecule().le(&a.molecule()) {
                        assert!(
                            a.cycles <= b.cycles,
                            "{name}: {:?} dominates {:?} but is slower",
                            a,
                            b
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn satd_minimum_is_one_of_each_kind() {
        let (lib, sis) = build_library();
        let minimal = lib.get(sis.satd_4x4).minimal();
        assert_eq!(minimal.molecule, Molecule::from_counts([1, 1, 1, 1]));
        assert_eq!(minimal.cycles, 24);
    }

    #[test]
    fn ht_2x2_single_atom() {
        let (lib, sis) = build_library();
        let m = lib.get(sis.ht_2x2).minimal();
        assert_eq!(m.molecule.determinant(), 1);
        assert_eq!(m.cycles, 5);
    }

    #[test]
    fn hardware_speedup_exceeds_22x() {
        // Fig. 11: "SIs with minimum Atom requirements are more than 22
        // times faster than the optimized software implementation" — true
        // of the fastest Molecules.
        let (lib, sis) = build_library();
        for si in [sis.satd_4x4, sis.dct_4x4] {
            let def = lib.get(si);
            let speedup = def.sw_cycles() as f64 / def.fastest().cycles as f64;
            assert!(speedup > 22.0, "{}: {speedup}", def.name());
        }
    }

    #[test]
    fn four_atoms_run_every_transform_si() {
        // The prototype's 4 ACs hold one Atom of each kind, and all four
        // transform SIs execute in hardware (Fig. 2: three SIs share the
        // same set of Atoms).
        let (lib, sis) = build_library();
        let loaded = Molecule::from_counts([1, 1, 1, 1]);
        assert_eq!(lib.get(sis.satd_4x4).exec_cycles(&loaded), 24);
        assert_eq!(lib.get(sis.dct_4x4).exec_cycles(&loaded), 24);
        assert_eq!(lib.get(sis.ht_4x4).exec_cycles(&loaded), 22);
        assert_eq!(lib.get(sis.ht_2x2).exec_cycles(&loaded), 5);
    }

    #[test]
    fn fig13_pareto_staircase_spans_4_to_16_atoms() {
        use rispp_core::pareto::{latency_staircase, TradeOffPoint};
        let pts: Vec<TradeOffPoint> = SATD_4X4_MOLECULES
            .iter()
            .map(|e| TradeOffPoint::new(e.molecule().determinant(), e.cycles))
            .collect();
        let stairs = latency_staircase(&pts, 18);
        assert_eq!(stairs[3], None);
        assert_eq!(stairs[4], Some(24));
        assert_eq!(stairs[16], Some(12));
        assert_eq!(stairs[18], Some(12));
    }

    #[test]
    fn sad_uses_only_quadsub_and_satd() {
        for e in &SAD_4X4_MOLECULES {
            assert_eq!(e.pack, 0);
            assert_eq!(e.transform, 0);
            assert!(e.quad_sub > 0 && e.satd > 0);
        }
    }

    #[test]
    fn atom_set_matches_handles() {
        let atoms = atom_set();
        let h = H264Atoms::default();
        assert_eq!(atoms.name(h.quad_sub), "QuadSub");
        assert_eq!(atoms.name(h.pack), "Pack");
        assert_eq!(atoms.name(h.transform), "Transform");
        assert_eq!(atoms.name(h.satd), "SATD");
    }
}
