//! Entropy coding of quantised coefficients: zig-zag scan, run-level
//! conversion and Exp-Golomb codes into a real bitstream.
//!
//! This closes the TQ stage of the paper's Fig. 1 phase model: after
//! transform and quantisation, coefficients are scanned, run-length
//! converted and written with the (universal) Exp-Golomb codes H.264 uses
//! for most syntax elements. Bit counts from this module drive the
//! bitrate-vs-QP behaviour of the encoder.

use crate::block::Block4x4;

/// The 4×4 zig-zag scan order of H.264 (frame coding).
pub const ZIGZAG_4X4: [(usize, usize); 16] = [
    (0, 0),
    (0, 1),
    (1, 0),
    (2, 0),
    (1, 1),
    (0, 2),
    (0, 3),
    (1, 2),
    (2, 1),
    (3, 0),
    (3, 1),
    (2, 2),
    (1, 3),
    (2, 3),
    (3, 2),
    (3, 3),
];

/// Scans a block into the 16-coefficient zig-zag sequence.
#[must_use]
pub fn zigzag_scan(block: &Block4x4) -> [i32; 16] {
    let mut out = [0i32; 16];
    for (i, &(r, c)) in ZIGZAG_4X4.iter().enumerate() {
        out[i] = block[r][c];
    }
    out
}

/// Reassembles a block from a zig-zag sequence (inverse of
/// [`zigzag_scan`]).
#[must_use]
pub fn zigzag_unscan(seq: &[i32; 16]) -> Block4x4 {
    let mut out = [[0i32; 4]; 4];
    for (i, &(r, c)) in ZIGZAG_4X4.iter().enumerate() {
        out[r][c] = seq[i];
    }
    out
}

/// A `(run, level)` pair: `run` zeros followed by a non-zero `level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLevel {
    /// Number of zero coefficients preceding the level.
    pub run: u8,
    /// The non-zero coefficient value.
    pub level: i32,
}

/// Converts a zig-zag sequence into `(run, level)` pairs (trailing zeros
/// are implicit).
#[must_use]
pub fn run_level_encode(seq: &[i32; 16]) -> Vec<RunLevel> {
    let mut out = Vec::new();
    let mut run = 0u8;
    for &v in seq {
        if v == 0 {
            run += 1;
        } else {
            out.push(RunLevel { run, level: v });
            run = 0;
        }
    }
    out
}

/// Expands `(run, level)` pairs back into a 16-coefficient sequence.
///
/// # Panics
///
/// Panics if the pairs describe more than 16 coefficients.
#[must_use]
pub fn run_level_decode(pairs: &[RunLevel]) -> [i32; 16] {
    let mut out = [0i32; 16];
    let mut pos = 0usize;
    for p in pairs {
        pos += usize::from(p.run);
        assert!(pos < 16, "run/level sequence overflows the block");
        out[pos] = p.level;
        pos += 1;
    }
    out
}

/// A most-significant-bit-first bit writer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the trailing partial byte (0..8).
    partial: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the `count` low bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn put_bits(&mut self, value: u32, count: u8) {
        assert!(count <= 32, "at most 32 bits at a time");
        for i in (0..count).rev() {
            let bit = (value >> i) & 1;
            if self.partial == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= (bit as u8) << (7 - self.partial);
            self.partial = (self.partial + 1) % 8;
        }
    }

    /// Appends an unsigned Exp-Golomb code `ue(v)`.
    pub fn put_ue(&mut self, v: u32) {
        let x = v + 1;
        let bits = 32 - x.leading_zeros() as u8; // position of the MSB
        self.put_bits(0, bits - 1); // leading zeros
        self.put_bits(x, bits);
    }

    /// Appends a signed Exp-Golomb code `se(v)` (H.264 mapping:
    /// v>0 → 2v−1, v≤0 → −2v).
    pub fn put_se(&mut self, v: i32) {
        let mapped = if v > 0 {
            (2 * v - 1) as u32
        } else {
            (-2 * (v as i64)) as u32
        };
        self.put_ue(mapped);
    }

    /// Total bits written.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        if self.partial == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + usize::from(self.partial)
        }
    }

    /// The written bytes (last byte zero-padded).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the writer, returning the byte buffer.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// A matching MSB-first bit reader.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over a byte buffer.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit; `None` at the end of the buffer.
    pub fn bit(&mut self) -> Option<u32> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - self.pos % 8)) & 1;
        self.pos += 1;
        Some(u32::from(bit))
    }

    /// Reads `count` bits MSB-first.
    pub fn bits(&mut self, count: u8) -> Option<u32> {
        let mut v = 0u32;
        for _ in 0..count {
            v = (v << 1) | self.bit()?;
        }
        Some(v)
    }

    /// Reads an unsigned Exp-Golomb code.
    pub fn ue(&mut self) -> Option<u32> {
        let mut zeros = 0u8;
        while self.bit()? == 0 {
            zeros += 1;
            if zeros > 31 {
                return None; // malformed
            }
        }
        let rest = self.bits(zeros)?;
        Some((1u32 << zeros) + rest - 1)
    }

    /// Reads a signed Exp-Golomb code.
    pub fn se(&mut self) -> Option<i32> {
        let v = self.ue()?;
        Some(if v % 2 == 1 {
            v.div_ceil(2) as i32
        } else {
            -((v / 2) as i32)
        })
    }
}

/// Encodes one quantised block: coefficient count `ue`, then per pair
/// `ue(run)` + `se(level)`. Returns the bit count written.
pub fn encode_block(writer: &mut BitWriter, levels: &Block4x4) -> usize {
    let before = writer.bit_len();
    let pairs = run_level_encode(&zigzag_scan(levels));
    writer.put_ue(pairs.len() as u32);
    for p in &pairs {
        writer.put_ue(u32::from(p.run));
        writer.put_se(p.level);
    }
    writer.bit_len() - before
}

/// Decodes one block written by [`encode_block`].
pub fn decode_block(reader: &mut BitReader<'_>) -> Option<Block4x4> {
    let n = reader.ue()?;
    let mut pairs = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let run = reader.ue()?;
        let level = reader.se()?;
        if level == 0 || run > 15 {
            return None; // malformed stream
        }
        pairs.push(RunLevel {
            run: run as u8,
            level,
        });
    }
    let total: usize = pairs.iter().map(|p| usize::from(p.run) + 1).sum();
    if total > 16 {
        return None;
    }
    Some(zigzag_unscan(&run_level_decode(&pairs)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrips() {
        let mut b = [[0i32; 4]; 4];
        for (r, row) in b.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = (r * 4 + c) as i32;
            }
        }
        assert_eq!(zigzag_unscan(&zigzag_scan(&b)), b);
    }

    #[test]
    fn zigzag_orders_low_frequencies_first() {
        let mut b = [[0i32; 4]; 4];
        b[0][0] = 9; // DC
        b[3][3] = 7; // highest frequency
        let seq = zigzag_scan(&b);
        assert_eq!(seq[0], 9);
        assert_eq!(seq[15], 7);
    }

    #[test]
    fn run_level_roundtrips() {
        let seq = [0, 5, 0, 0, -3, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 2];
        let pairs = run_level_encode(&seq);
        assert_eq!(
            pairs,
            vec![
                RunLevel { run: 1, level: 5 },
                RunLevel { run: 2, level: -3 },
                RunLevel { run: 3, level: 1 },
                RunLevel { run: 6, level: 2 },
            ]
        );
        assert_eq!(run_level_decode(&pairs), seq);
    }

    #[test]
    fn exp_golomb_roundtrips() {
        let mut w = BitWriter::new();
        for v in 0..200u32 {
            w.put_ue(v);
        }
        for v in -100..100i32 {
            w.put_se(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for v in 0..200u32 {
            assert_eq!(r.ue(), Some(v));
        }
        for v in -100..100i32 {
            assert_eq!(r.se(), Some(v));
        }
    }

    #[test]
    fn exp_golomb_code_lengths() {
        // ue(0) = "1" (1 bit); ue(1) = "010" (3); ue(7) = 7 bits.
        let len = |v: u32| {
            let mut w = BitWriter::new();
            w.put_ue(v);
            w.bit_len()
        };
        assert_eq!(len(0), 1);
        assert_eq!(len(1), 3);
        assert_eq!(len(2), 3);
        assert_eq!(len(3), 5);
        assert_eq!(len(7), 7);
    }

    #[test]
    fn block_codec_roundtrips() {
        let block = [[17, -2, 0, 0], [3, 0, 0, 1], [0, 0, 0, 0], [-1, 0, 0, 0]];
        let mut w = BitWriter::new();
        let bits = encode_block(&mut w, &block);
        assert!(bits > 0);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(decode_block(&mut r), Some(block));
    }

    #[test]
    fn empty_block_is_one_symbol() {
        let mut w = BitWriter::new();
        let bits = encode_block(&mut w, &[[0; 4]; 4]);
        assert_eq!(bits, 1); // ue(0)
    }

    #[test]
    fn sparser_blocks_cost_fewer_bits() {
        let dense = [[3i32; 4]; 4];
        let mut sparse = [[0i32; 4]; 4];
        sparse[0][0] = 3;
        let cost = |b: &Block4x4| {
            let mut w = BitWriter::new();
            encode_block(&mut w, b)
        };
        assert!(cost(&sparse) < cost(&dense));
    }

    #[test]
    fn malformed_stream_is_rejected() {
        // A stream claiming 16 pairs but ending early.
        let mut w = BitWriter::new();
        w.put_ue(16);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(decode_block(&mut r), None);
    }

    #[test]
    fn bit_writer_packs_msb_first() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_bits(0b1, 1);
        assert_eq!(w.bit_len(), 4);
        assert_eq!(w.as_bytes(), &[0b1011_0000]);
    }
}
