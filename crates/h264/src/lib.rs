//! # rispp-h264 — the H.264 case-study substrate
//!
//! The paper evaluates RISPP with an ITU-T H.264 video encoder. This crate
//! builds that workload from scratch:
//!
//! * bit-exact pixel kernels every Molecule level is functionally
//!   equivalent to — the 4×4 integer DCT, 4×4/2×2 Hadamard transforms
//!   ([`transform`]), SATD/SAD cost metrics ([`satd`]), H.264 scalar
//!   quantisation ([`quant`]), intra prediction ([`intra`]), full-search
//!   motion estimation ([`me`]) and the in-loop deblocking filter
//!   ([`deblock`]);
//! * the Special-Instruction library of the case study — the paper's
//!   Table 2 Molecules over the QuadSub/Pack/Transform/SATD Atoms
//!   ([`si_library`]);
//! * a deterministic synthetic video source with real inter-frame motion
//!   ([`video`]);
//! * the Fig. 7 encoding flow with SI invocation accounting and the
//!   Fig. 12 cycle model ([`encoder`]).
//!
//! # Examples
//!
//! ```
//! use rispp_h264::encoder::{encode_frame, EncoderConfig};
//! use rispp_h264::video::SyntheticVideo;
//!
//! let mut video = SyntheticVideo::new(32, 32, 42);
//! let reference = video.next_frame();
//! let current = video.next_frame();
//! let result = encode_frame(&current, &reference, &EncoderConfig::default());
//! // Fig. 7 fixes the SI mix: 256 SATD per macroblock.
//! assert_eq!(result.counts.satd_4x4, 256 * current.macroblocks() as u64);
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod cavlc;
pub mod color;
pub mod deblock;
pub mod decoder;
pub mod encoder;
pub mod entropy;
pub mod interp;
pub mod intra;
pub mod intra16;
pub mod me;
pub mod quant;
pub mod rate;
pub mod satd;
pub mod si_library;
pub mod transform;
pub mod video;

pub use block::{Block4x4, Frame, Plane};
pub use encoder::{encode_frame, EncoderConfig, SiInvocationCounts};
pub use si_library::{atom_set, build_library, H264Atoms, H264Sis};
pub use video::SyntheticVideo;
