//! The test-application flow of the paper's Fig. 7, on real pixels.
//!
//! Per 16×16 macroblock: for each of the 16 luma 4×4 sub-blocks, the SATD
//! is calculated for **16 candidate** predictions; the candidate with the
//! minimum SATD is chosen and forwarded to the DCT. In the worst case the
//! Quality Manager switches to Intra-MB injection. After the 16 DCTs one
//! 4×4 Hadamard transform processes the 16 DC coefficients. Chroma (Cr and
//! Cb, 8×8 each) needs 2 × 4 DCT calls plus one 2×2 Hadamard transform per
//! component — and no SATD, since ME operates on luma only.
//!
//! That fixes the SI mix per macroblock at **256 SATD_4x4 + 24 DCT_4x4 +
//! 1 HT_4x4 + 2 HT_2x2**, which is what Figs. 11–13 are built on.
//!
//! ## Cycle accounting (Fig. 12 calibration)
//!
//! Whole-encoder cycles per macroblock are
//! `PLAIN_CYCLES_PER_MB + Σ count·latency (+ dispatch overhead per
//! hardware SI)`. Two constants are calibrated once against the paper's
//! "Allover performance" bars (Opt. SW = 201,065 cycles; 4/5/6 Atoms =
//! 60,244 / 59,135 / 58,287):
//!
//! * [`PLAIN_CYCLES_PER_MB`] = 49,671 — the non-SI control/memory code
//!   around the kernels, chosen so the software total matches exactly;
//! * [`HW_DISPATCH_OVERHEAD`] = 12 cycles per hardware SI invocation
//!   (operand marshalling into the AC data path), which brings the 4/5/6
//!   Atom totals within 1 % of the published bars.

use rispp_core::molecule::Molecule;
use rispp_core::si::SiLibrary;

use crate::block::{Block2x2, Block4x4, Frame, Plane};
use crate::cavlc::{encode_cavlc_block, CavlcContext};
use crate::entropy::{encode_block, BitWriter};
use crate::intra::{predict4x4_full, IntraMode4x4, INTRA_MODES_4X4};
use crate::me::full_search_4x4;
use crate::quant::{dequantize4x4, nonzero_count, quantize4x4};
use crate::satd::{residual4x4, satd4x4};
use crate::si_library::H264Sis;
use crate::transform::{forward_dct4x4, hadamard2x2, hadamard4x4, inverse_dct4x4};

/// Non-SI cycles per macroblock (see module docs).
pub const PLAIN_CYCLES_PER_MB: u64 = 49_671;

/// Dispatch overhead per hardware SI invocation, in cycles.
pub const HW_DISPATCH_OVERHEAD: u64 = 12;

/// SATD candidates evaluated per 4×4 sub-block (Fig. 7).
pub const CANDIDATES_PER_SUBBLOCK: usize = 16;

/// SI invocation counts accumulated by the encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiInvocationCounts {
    /// SATD_4x4 invocations.
    pub satd_4x4: u64,
    /// DCT_4x4 invocations.
    pub dct_4x4: u64,
    /// HT_4x4 invocations.
    pub ht_4x4: u64,
    /// HT_2x2 invocations.
    pub ht_2x2: u64,
    /// SAD_4x4 invocations (integer-pixel ME; 0 unless
    /// [`EncoderConfig::me_search_range`] is set).
    pub sad_4x4: u64,
}

impl SiInvocationCounts {
    /// The fixed per-macroblock mix of the Fig. 7 flow (without the
    /// optional integer-pixel ME pre-pass).
    #[must_use]
    pub fn per_macroblock() -> Self {
        SiInvocationCounts {
            satd_4x4: 256,
            dct_4x4: 24,
            ht_4x4: 1,
            ht_2x2: 2,
            sad_4x4: 0,
        }
    }

    /// Total SI invocations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.satd_4x4 + self.dct_4x4 + self.ht_4x4 + self.ht_2x2 + self.sad_4x4
    }

    /// Component-wise sum.
    #[must_use]
    pub fn add(&self, other: &SiInvocationCounts) -> SiInvocationCounts {
        SiInvocationCounts {
            satd_4x4: self.satd_4x4 + other.satd_4x4,
            dct_4x4: self.dct_4x4 + other.dct_4x4,
            ht_4x4: self.ht_4x4 + other.ht_4x4,
            ht_2x2: self.ht_2x2 + other.ht_2x2,
            sad_4x4: self.sad_4x4 + other.sad_4x4,
        }
    }
}

/// Residual entropy-coding backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EntropyCoder {
    /// Plain Exp-Golomb run-level coding (simple, robust).
    #[default]
    ExpGolomb,
    /// CAVLC-structured coding (context-adaptive; see [`crate::cavlc`]).
    /// Contexts reset at macroblock boundaries, like slice boundaries in
    /// the standard.
    Cavlc,
}

/// Encoder settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderConfig {
    /// Quantisation parameter (0..=51).
    pub qp: u8,
    /// SATD cost above which the Quality Manager injects an intra MB.
    pub intra_threshold: u32,
    /// Residual entropy-coding backend.
    pub entropy: EntropyCoder,
    /// Optional integer-pixel ME pre-pass (the SAD SI): when set, every
    /// sub-block first runs a full search over `±range` and the SATD
    /// candidate grid centres on the found motion vector. Adds
    /// `(2·range+1)²` SAD invocations per sub-block.
    pub me_search_range: Option<u8>,
    /// Run the in-loop deblocking filter (the LF stage of Fig. 1) over the
    /// reconstructed luma after each frame.
    pub deblock: bool,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            qp: 28,
            intra_threshold: 2_000,
            entropy: EntropyCoder::ExpGolomb,
            me_search_range: None,
            deblock: false,
        }
    }
}

/// Outcome of encoding one macroblock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroblockResult {
    /// SI invocations performed.
    pub counts: SiInvocationCounts,
    /// Total best-candidate SATD cost over the 16 sub-blocks.
    pub total_cost: u64,
    /// Non-zero quantised luma levels (coding workload proxy).
    pub coded_levels: usize,
    /// Whether the Quality Manager chose intra injection.
    pub intra: bool,
    /// Sum of squared reconstruction errors over the luma MB.
    pub luma_sse: u64,
    /// Entropy-coded size of the macroblock (header + coefficients), in
    /// bits.
    pub bits: usize,
    /// Header portion of `bits` (mode flag and motion vectors).
    pub header_bits: usize,
}

/// Encodes the macroblock at MB coordinates `(mb_x, mb_y)` of `current`
/// against `reference`, writing the reconstructed luma into `recon`.
///
/// # Panics
///
/// Panics if the macroblock does not lie inside the frame.
#[must_use]
pub fn encode_macroblock(
    current: &Frame,
    reference: &Frame,
    recon: &mut Plane,
    mb_x: usize,
    mb_y: usize,
    config: &EncoderConfig,
) -> MacroblockResult {
    let mut writer = BitWriter::new();
    encode_macroblock_into(&mut writer, current, reference, recon, mb_x, mb_y, config)
}

/// [`encode_macroblock`] variant appending to an existing bitstream —
/// used by [`encode_frame`] so the whole frame forms one decodable stream
/// (see [`crate::decoder`]).
///
/// # Panics
///
/// Panics if the macroblock does not lie inside the frame.
#[must_use]
pub fn encode_macroblock_into(
    writer: &mut BitWriter,
    current: &Frame,
    reference: &Frame,
    recon: &mut Plane,
    mb_x: usize,
    mb_y: usize,
    config: &EncoderConfig,
) -> MacroblockResult {
    let bx = mb_x * 16;
    let by = mb_y * 16;
    assert!(
        bx + 16 <= current.width() && by + 16 <= current.height(),
        "macroblock outside frame"
    );
    let mut counts = SiInvocationCounts::default();
    let mut total_cost = 0u64;
    let mut coded_levels = 0usize;
    let mut luma_sse = 0u64;
    let mut dc_coeffs: Block4x4 = [[0i32; 4]; 4];
    let mut luma_totals = [[None::<u8>; 4]; 4];
    let start_bits = writer.bit_len();

    // --- Luma: 16 sub-blocks of 4×4 (Fig. 7 main loop). ---
    // (x, y, original block, best prediction, chosen displacement)
    type SubBlockChoice = (usize, usize, Block4x4, Block4x4, (i32, i32));
    let mut inter_cost_probe = 0u64;
    let mut sub_results: Vec<SubBlockChoice> = Vec::with_capacity(16);
    for sb in 0..16 {
        let sx = bx + (sb % 4) * 4;
        let sy = by + (sb / 4) * 4;
        let orig = current.y.block4x4(sx as isize, sy as isize);

        // Optional integer-pixel ME pre-pass (the SAD SI of the paper):
        // centres the SATD candidate grid on the best integer vector.
        let (cx, cy) = match config.me_search_range {
            Some(range) => {
                let res = full_search_4x4(&current.y, &reference.y, sx, sy, range);
                counts.sad_4x4 += u64::from(res.evaluated);
                (isize::from(res.mv.dx), isize::from(res.mv.dy))
            }
            None => (0, 0),
        };

        // 16 SATD candidates: a 4×4 displacement grid around the search
        // centre (co-located block when ME is disabled).
        let mut best_pred = reference.y.block4x4(sx as isize + cx, sy as isize + cy);
        let mut best_disp = (cx as i32, cy as i32);
        let mut best_cost = u32::MAX;
        for ci in 0..CANDIDATES_PER_SUBBLOCK {
            let dx = cx + (ci % 4) as isize - 2;
            let dy = cy + (ci / 4) as isize - 2;
            let pred = reference.y.block4x4(sx as isize + dx, sy as isize + dy);
            let cost = satd4x4(&orig, &pred);
            counts.satd_4x4 += 1;
            if cost < best_cost {
                best_cost = cost;
                best_pred = pred;
                best_disp = (dx as i32, dy as i32);
            }
        }
        inter_cost_probe += u64::from(best_cost);
        total_cost += u64::from(best_cost);
        sub_results.push((sx, sy, orig, best_pred, best_disp));
    }

    // Quality-Manager decision: worst case → intra MB injection.
    let intra = inter_cost_probe > u64::from(config.intra_threshold) * 16;

    // --- Header: mode flag plus the chosen motion vectors (what makes
    // the stream decodable). Intra mode numbers are signalled per
    // sub-block inline, below, because the mode decision depends on the
    // progressively reconstructed neighbours. ---
    writer.put_bits(u32::from(intra), 1);
    if !intra {
        for &(_, _, _, _, (dx, dy)) in &sub_results {
            writer.put_se(dx);
            writer.put_se(dy);
        }
    }
    let mut header_bits = writer.bit_len() - start_bits;

    for (sx, sy, orig, mut pred, _) in sub_results {
        if intra {
            // Mode decision over all nine intra 4×4 predictors, by SATD
            // against the reconstructed neighbours (9 more SATD SI
            // invocations — honest accounting for intra macroblocks).
            let mut best_mode = IntraMode4x4::Dc;
            let mut best_cost = u32::MAX;
            for mode in INTRA_MODES_4X4 {
                let cand = predict4x4_full(recon, sx, sy, mode);
                let cost = satd4x4(&orig, &cand);
                counts.satd_4x4 += 1;
                if cost < best_cost {
                    best_cost = cost;
                    best_mode = mode;
                    pred = cand;
                }
            }
            writer.put_bits(u32::from(best_mode.number()), 4);
            header_bits += 4;
        }
        let residual = residual4x4(&orig, &pred);
        let coeffs = forward_dct4x4(&residual);
        counts.dct_4x4 += 1;
        let levels = quantize4x4(&coeffs, config.qp);
        coded_levels += nonzero_count(&levels);
        let (bxr, byr) = ((sx - bx) / 4, (sy - by) / 4);
        match config.entropy {
            EntropyCoder::ExpGolomb => {
                encode_block(writer, &levels);
            }
            EntropyCoder::Cavlc => {
                let ctx = CavlcContext {
                    left_total: if bxr > 0 {
                        luma_totals[byr][bxr - 1]
                    } else {
                        None
                    },
                    top_total: if byr > 0 {
                        luma_totals[byr - 1][bxr]
                    } else {
                        None
                    },
                };
                let (_, total) = encode_cavlc_block(writer, &levels, ctx);
                luma_totals[byr][bxr] = Some(total);
            }
        }
        // Reconstruction: dequantise, inverse transform, add prediction.
        let deq = dequantize4x4(&levels, config.qp);
        let rec_res = inverse_dct4x4(&deq);
        for r in 0..4 {
            for c in 0..4 {
                let value = (pred[r][c] + rec_res[r][c]).clamp(0, 255);
                recon.set_sample(sx + c, sy + r, value as u8);
                let err = i64::from(orig[r][c]) - i64::from(value);
                luma_sse += (err * err) as u64;
            }
        }
        // DC coefficient for the luma Hadamard stage.
        let idx = ((sy - by) / 4) * 4 + (sx - bx) / 4;
        dc_coeffs[idx / 4][idx % 4] = coeffs[0][0];
    }

    // One 4×4 Hadamard over the 16 DC coefficients.
    let _dc_transformed = hadamard4x4(&dc_coeffs, true);
    counts.ht_4x4 += 1;

    // --- Chroma: Cr and Cb, 8×8 each → 4 DCT calls + 1 HT_2x2 per
    // component (no SATD: ME is luma-only). ---
    for plane_pair in [(&current.cb, &reference.cb), (&current.cr, &reference.cr)] {
        let (cur, refp) = plane_pair;
        let cx = mb_x * 8;
        let cy = mb_y * 8;
        let mut chroma_dc: Block2x2 = [[0i32; 2]; 2];
        let mut chroma_totals = [[None::<u8>; 2]; 2];
        for blk in 0..4 {
            let sx = cx + (blk % 2) * 4;
            let sy = cy + (blk / 2) * 4;
            let orig = cur.block4x4(sx as isize, sy as isize);
            let pred = refp.block4x4(sx as isize, sy as isize);
            let coeffs = forward_dct4x4(&residual4x4(&orig, &pred));
            counts.dct_4x4 += 1;
            let levels = quantize4x4(&coeffs, config.qp);
            coded_levels += nonzero_count(&levels);
            match config.entropy {
                EntropyCoder::ExpGolomb => {
                    encode_block(writer, &levels);
                }
                EntropyCoder::Cavlc => {
                    let (bxr, byr) = (blk % 2, blk / 2);
                    let ctx = CavlcContext {
                        left_total: if bxr > 0 {
                            chroma_totals[byr][bxr - 1]
                        } else {
                            None
                        },
                        top_total: if byr > 0 {
                            chroma_totals[byr - 1][bxr]
                        } else {
                            None
                        },
                    };
                    let (_, total) = encode_cavlc_block(writer, &levels, ctx);
                    chroma_totals[byr][bxr] = Some(total);
                }
            }
            chroma_dc[blk / 2][blk % 2] = coeffs[0][0];
        }
        let _dc2 = hadamard2x2(&chroma_dc);
        counts.ht_2x2 += 1;
    }

    MacroblockResult {
        counts,
        total_cost,
        coded_levels,
        intra,
        luma_sse,
        bits: writer.bit_len() - start_bits,
        header_bits,
    }
}

/// Outcome of encoding a whole frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameResult {
    /// Summed SI invocations.
    pub counts: SiInvocationCounts,
    /// Reconstructed luma plane (after in-loop filtering by the caller,
    /// if desired).
    pub recon: Plane,
    /// Macroblocks that used intra injection.
    pub intra_macroblocks: usize,
    /// Luma PSNR in dB against the source.
    pub luma_psnr: f64,
    /// Entropy-coded size of the frame (headers + coefficients), in bits.
    pub bits: usize,
    /// The decodable frame bitstream (see [`crate::decoder`]).
    pub stream: Vec<u8>,
}

/// Encodes every macroblock of `current` against `reference`.
#[must_use]
pub fn encode_frame(current: &Frame, reference: &Frame, config: &EncoderConfig) -> FrameResult {
    let mbs_x = current.width() / 16;
    let mbs_y = current.height() / 16;
    let mut recon = Plane::filled(current.width(), current.height(), 128);
    let mut counts = SiInvocationCounts::default();
    let mut intra_macroblocks = 0;
    let mut sse = 0u64;
    let mut bits = 0usize;
    let mut writer = BitWriter::new();
    for my in 0..mbs_y {
        for mx in 0..mbs_x {
            let r =
                encode_macroblock_into(&mut writer, current, reference, &mut recon, mx, my, config);
            counts = counts.add(&r.counts);
            if r.intra {
                intra_macroblocks += 1;
            }
            sse += r.luma_sse;
            bits += r.bits;
        }
    }
    if config.deblock {
        crate::deblock::deblock_plane(&mut recon, config.qp);
    }
    let n = (current.width() * current.height()) as f64;
    let mse = sse as f64 / n;
    let luma_psnr = if mse > 0.0 {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    } else {
        f64::INFINITY
    };
    FrameResult {
        counts,
        recon,
        intra_macroblocks,
        luma_psnr,
        bits,
        stream: writer.into_bytes(),
    }
}

/// Whole-encoder cycles for one macroblock's SI mix, given the loaded
/// Atoms (the Fig. 12 model; see module docs for the calibration).
#[must_use]
pub fn macroblock_cycles(
    counts: &SiInvocationCounts,
    lib: &SiLibrary,
    sis: &H264Sis,
    loaded: &Molecule,
) -> u64 {
    let cost = |si, n: u64| {
        let def = lib.get(si);
        let hw = def.best_available(loaded);
        let per = hw.map_or(def.sw_cycles(), |m| m.cycles + HW_DISPATCH_OVERHEAD);
        n * per
    };
    PLAIN_CYCLES_PER_MB
        + cost(sis.satd_4x4, counts.satd_4x4)
        + cost(sis.dct_4x4, counts.dct_4x4)
        + cost(sis.ht_4x4, counts.ht_4x4)
        + cost(sis.ht_2x2, counts.ht_2x2)
        + cost(sis.sad_4x4, counts.sad_4x4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::si_library::build_library;
    use crate::video::SyntheticVideo;

    fn two_frames() -> (Frame, Frame) {
        let mut v = SyntheticVideo::new(32, 32, 11);
        let f0 = v.next_frame();
        let f1 = v.next_frame();
        (f0, f1)
    }

    #[test]
    fn per_macroblock_si_mix_matches_fig7() {
        let (f0, f1) = two_frames();
        let mut recon = Plane::filled(32, 32, 128);
        let r = encode_macroblock(&f1, &f0, &mut recon, 0, 0, &EncoderConfig::default());
        assert_eq!(r.counts, SiInvocationCounts::per_macroblock());
        assert_eq!(r.counts.satd_4x4, 256);
        assert_eq!(r.counts.dct_4x4, 24);
        assert_eq!(r.counts.ht_4x4, 1);
        assert_eq!(r.counts.ht_2x2, 2);
    }

    #[test]
    fn frame_counts_scale_with_macroblocks() {
        let (f0, f1) = two_frames();
        let r = encode_frame(&f1, &f0, &EncoderConfig::default());
        let mbs = f1.macroblocks() as u64;
        assert_eq!(r.counts.satd_4x4, 256 * mbs);
        assert_eq!(r.counts.dct_4x4, 24 * mbs);
    }

    #[test]
    fn reconstruction_quality_is_reasonable() {
        let (f0, f1) = two_frames();
        let r = encode_frame(
            &f1,
            &f0,
            &EncoderConfig {
                qp: 20,
                ..Default::default()
            },
        );
        assert!(r.luma_psnr > 30.0, "PSNR {}", r.luma_psnr);
    }

    #[test]
    fn lower_qp_means_higher_quality() {
        let (f0, f1) = two_frames();
        let hi = encode_frame(
            &f1,
            &f0,
            &EncoderConfig {
                qp: 12,
                ..Default::default()
            },
        );
        let lo = encode_frame(
            &f1,
            &f0,
            &EncoderConfig {
                qp: 44,
                ..Default::default()
            },
        );
        assert!(hi.luma_psnr > lo.luma_psnr);
    }

    #[test]
    fn static_scene_never_triggers_intra() {
        let (f0, _) = two_frames();
        let r = encode_frame(&f0, &f0, &EncoderConfig::default());
        assert_eq!(r.intra_macroblocks, 0);
    }

    #[test]
    fn scene_cut_triggers_intra_injection() {
        let mut a = SyntheticVideo::new(32, 32, 1);
        let mut b = SyntheticVideo::new(32, 32, 999);
        let f0 = a.next_frame();
        // A frame from an unrelated sequence with a harsh threshold.
        let f1 = b.next_frame();
        let config = EncoderConfig {
            intra_threshold: 10,
            ..Default::default()
        };
        let r = encode_frame(&f1, &f0, &config);
        assert!(r.intra_macroblocks > 0);
    }

    #[test]
    fn me_prepass_adds_sad_invocations() {
        let (f0, f1) = two_frames();
        let mut recon = Plane::filled(32, 32, 128);
        let config = EncoderConfig {
            me_search_range: Some(2),
            ..Default::default()
        };
        let r = encode_macroblock(&f1, &f0, &mut recon, 0, 0, &config);
        // 16 sub-blocks × (2·2+1)² candidates.
        assert_eq!(r.counts.sad_4x4, 16 * 25);
        // The transform mix is unchanged.
        assert_eq!(r.counts.satd_4x4, 256);
        assert_eq!(r.counts.dct_4x4, 24);
    }

    #[test]
    fn me_prepass_never_worsens_prediction_cost() {
        let mut v = SyntheticVideo::new(64, 64, 5);
        let f0 = v.next_frame();
        let f1 = v.next_frame();
        let coefficient_bits = |config: &EncoderConfig| {
            let mut recon = Plane::filled(64, 64, 128);
            let mut total = 0usize;
            for my in 0..4 {
                for mx in 0..4 {
                    let r = encode_macroblock(&f1, &f0, &mut recon, mx, my, config);
                    total += r.bits - r.header_bits;
                }
            }
            total
        };
        let plain = coefficient_bits(&EncoderConfig::default());
        let with_me = coefficient_bits(&EncoderConfig {
            me_search_range: Some(4),
            ..Default::default()
        });
        // Wider search can only find equal-or-better predictions, which
        // shows up as fewer (or equal) coded coefficient bits (headers
        // excluded: longer vectors legitimately cost more header bits).
        assert!(with_me <= plain, "{with_me} > {plain}");
    }

    #[test]
    fn deblocking_changes_the_reconstruction() {
        let (f0, f1) = two_frames();
        let coarse = EncoderConfig {
            qp: 46,
            ..Default::default()
        };
        let plain = encode_frame(&f1, &f0, &coarse);
        let filtered = encode_frame(
            &f1,
            &f0,
            &EncoderConfig {
                deblock: true,
                ..coarse
            },
        );
        // At a coarse QP the blocky reconstruction has filterable edges.
        assert_ne!(plain.recon, filtered.recon);
        // The coefficient payload is untouched (LF is post-reconstruction).
        assert_eq!(plain.bits, filtered.bits);
    }

    #[test]
    fn higher_qp_reduces_bitrate() {
        let (f0, f1) = two_frames();
        let fine = encode_frame(
            &f1,
            &f0,
            &EncoderConfig {
                qp: 12,
                ..Default::default()
            },
        );
        let coarse = encode_frame(
            &f1,
            &f0,
            &EncoderConfig {
                qp: 44,
                ..Default::default()
            },
        );
        assert!(coarse.bits < fine.bits, "{} !< {}", coarse.bits, fine.bits);
        assert!(fine.bits > 0);
    }

    #[test]
    fn fig12_software_total_reproduced() {
        // Opt. SW: 201,065 cycles per macroblock (exact by calibration).
        let (lib, sis) = build_library();
        let counts = SiInvocationCounts::per_macroblock();
        let nothing = Molecule::zero(4);
        assert_eq!(macroblock_cycles(&counts, &lib, &sis, &nothing), 201_065);
    }

    #[test]
    fn fig12_hw_totals_within_one_percent() {
        let (lib, sis) = build_library();
        let counts = SiInvocationCounts::per_macroblock();
        // The meta-molecules the run-time selector settles on for 4/5/6
        // Atom Containers (QuadSub, Pack, Transform, SATD).
        let cases = [
            (Molecule::from_counts([1, 1, 1, 1]), 60_244.0),
            (Molecule::from_counts([1, 1, 2, 1]), 59_135.0),
            (Molecule::from_counts([1, 2, 2, 1]), 58_287.0),
        ];
        for (loaded, paper) in cases {
            let got = macroblock_cycles(&counts, &lib, &sis, &loaded) as f64;
            let rel = (got - paper).abs() / paper;
            assert!(rel < 0.01, "loaded {loaded}: got {got}, paper {paper}");
        }
    }

    #[test]
    fn fig12_speedup_exceeds_3x() {
        let (lib, sis) = build_library();
        let counts = SiInvocationCounts::per_macroblock();
        let sw = macroblock_cycles(&counts, &lib, &sis, &Molecule::zero(4));
        let hw = macroblock_cycles(&counts, &lib, &sis, &Molecule::from_counts([1, 1, 1, 1]));
        let speedup = sw as f64 / hw as f64;
        assert!(speedup > 3.0, "speedup {speedup}"); // paper: >300 %
    }
}
