//! Pixel and coefficient block types used by the H.264 kernels.

/// A 4×4 block of samples or coefficients, row-major.
pub type Block4x4 = [[i32; 4]; 4];

/// A 2×2 block (chroma DC coefficients).
pub type Block2x2 = [[i32; 2]; 2];

/// One 8-bit sample plane (luma or chroma) with explicit dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plane {
    /// Width in samples.
    pub width: usize,
    /// Height in samples.
    pub height: usize,
    data: Vec<u8>,
}

impl Plane {
    /// Creates a plane filled with `value`.
    #[must_use]
    pub fn filled(width: usize, height: usize, value: u8) -> Self {
        Plane {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Creates a plane from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    #[must_use]
    pub fn from_data(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), width * height, "plane size mismatch");
        Plane {
            width,
            height,
            data,
        }
    }

    /// Sample at `(x, y)`; coordinates are clamped to the plane borders
    /// (H.264 unrestricted motion-vector padding).
    #[must_use]
    pub fn sample(&self, x: isize, y: isize) -> u8 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Writes a sample; out-of-range coordinates panic.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is outside the plane.
    pub fn set_sample(&mut self, x: usize, y: usize, value: u8) {
        assert!(x < self.width && y < self.height, "sample out of plane");
        self.data[y * self.width + x] = value;
    }

    /// Extracts a 4×4 block at `(x, y)` (top-left corner), clamping at the
    /// borders.
    #[must_use]
    pub fn block4x4(&self, x: isize, y: isize) -> Block4x4 {
        let mut out = [[0i32; 4]; 4];
        for (r, row) in out.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = i32::from(self.sample(x + c as isize, y + r as isize));
            }
        }
        out
    }

    /// Raw sample storage.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw sample storage.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// A YCbCr 4:2:0 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Luma plane (full resolution).
    pub y: Plane,
    /// Blue-difference chroma plane (half resolution).
    pub cb: Plane,
    /// Red-difference chroma plane (half resolution).
    pub cr: Plane,
}

impl Frame {
    /// Creates a uniform grey frame.
    ///
    /// # Panics
    ///
    /// Panics unless width and height are multiples of 16 (whole
    /// macroblocks, as the encoder requires).
    #[must_use]
    pub fn grey(width: usize, height: usize) -> Self {
        assert_eq!(width % 16, 0, "width must be a multiple of 16");
        assert_eq!(height % 16, 0, "height must be a multiple of 16");
        Frame {
            y: Plane::filled(width, height, 128),
            cb: Plane::filled(width / 2, height / 2, 128),
            cr: Plane::filled(width / 2, height / 2, 128),
        }
    }

    /// Frame width in luma samples.
    #[must_use]
    pub fn width(&self) -> usize {
        self.y.width
    }

    /// Frame height in luma samples.
    #[must_use]
    pub fn height(&self) -> usize {
        self.y.height
    }

    /// Number of 16×16 macroblocks.
    #[must_use]
    pub fn macroblocks(&self) -> usize {
        (self.width() / 16) * (self.height() / 16)
    }
}

/// Sum over all entries of a 4×4 block after applying `f`.
#[must_use]
pub fn block_sum(block: &Block4x4, f: impl Fn(i32) -> i64) -> i64 {
    block.iter().flatten().map(|&v| f(v)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_clamps_at_borders() {
        let mut p = Plane::filled(4, 4, 0);
        p.set_sample(0, 0, 7);
        p.set_sample(3, 3, 9);
        assert_eq!(p.sample(-5, -5), 7);
        assert_eq!(p.sample(10, 10), 9);
    }

    #[test]
    fn block_extraction_reads_row_major() {
        let data: Vec<u8> = (0..16).collect();
        let p = Plane::from_data(4, 4, data);
        let b = p.block4x4(0, 0);
        assert_eq!(b[0], [0, 1, 2, 3]);
        assert_eq!(b[3], [12, 13, 14, 15]);
    }

    #[test]
    fn frame_counts_macroblocks() {
        let f = Frame::grey(64, 32);
        assert_eq!(f.macroblocks(), 8);
        assert_eq!(f.cb.width, 32);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn odd_frame_rejected() {
        let _ = Frame::grey(60, 32);
    }

    #[test]
    fn block_sum_applies_function() {
        let b: Block4x4 = [[1, -2, 3, -4]; 4];
        assert_eq!(block_sum(&b, |v| i64::from(v.abs())), 40);
    }
}
