//! CAVLC-structured residual coding.
//!
//! H.264's baseline entropy coder (Context-Adaptive Variable-Length
//! Coding) beats plain universal codes by exploiting three structural
//! facts about quantised 4×4 residuals: (1) the number of coefficients in
//! a block correlates with its neighbours (context adaptivity), (2) the
//! last few non-zero coefficients are almost always ±1 ("trailing ones"),
//! and (3) level magnitudes grow towards the DC end, so the level-code
//! suffix length escalates adaptively.
//!
//! This module implements that structure faithfully — syntax element for
//! syntax element: `coeff_token` (context-adaptive), trailing-one signs,
//! levels with the standard's adaptive `suffixLength` escalation,
//! `total_zeros` and `run_before`. The individual VLC code *tables* are
//! replaced by systematically constructed prefix codes (documented
//! substitution: the published tables are pages of constants; the
//! adaptive structure, not the table entries, is what this reproduction
//! exercises). Streams are self-consistent: [`decode_cavlc_block`]
//! inverts [`encode_cavlc_block`] exactly.

use crate::block::Block4x4;
use crate::entropy::{zigzag_scan, zigzag_unscan, BitReader, BitWriter};

/// Coding context: the predicted coefficient count `nC`, derived from the
/// already-coded left and top neighbour blocks (their average, as in the
/// standard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CavlcContext {
    /// Total coefficients of the left neighbour block, if coded.
    pub left_total: Option<u8>,
    /// Total coefficients of the top neighbour block, if coded.
    pub top_total: Option<u8>,
}

impl CavlcContext {
    /// The predicted coefficient count `nC`.
    #[must_use]
    pub fn nc(&self) -> u8 {
        match (self.left_total, self.top_total) {
            (Some(l), Some(t)) => (l + t).div_ceil(2),
            (Some(x), None) | (None, Some(x)) => x,
            (None, None) => 0,
        }
    }
}

/// `coeff_token` table choice by context, mirroring the standard's four
/// regimes (nC < 2, < 4, < 8, ≥ 8).
fn token_regime(nc: u8) -> u8 {
    match nc {
        0..=1 => 0,
        2..=3 => 1,
        4..=7 => 2,
        _ => 3,
    }
}

/// Likelihood-ordered (total_coeffs, trailing_ones) table for one context
/// regime: combinations whose `total` is close to the regime's expected
/// coefficient count come first (and thus get the shortest codes), and
/// within one `total` more trailing ones are likelier. Both sides derive
/// the same table deterministically — the systematic replacement for the
/// standard's printed VLC tables.
fn token_table(regime: u8) -> Vec<(u8, u8)> {
    let expected = i32::from(regime) * 4; // regimes expect 0, 4, 8 coeffs
    let mut entries: Vec<(u8, u8)> = (0..=16u8)
        .flat_map(|total| (0..=3.min(total)).map(move |t1s| (total, t1s)))
        .collect();
    entries.sort_by_key(|&(total, t1s)| {
        (
            (i32::from(total) - expected).abs(),
            total,
            std::cmp::Reverse(t1s),
        )
    });
    entries
}

/// Writes the joint (total_coeffs, trailing_ones) symbol; regime 3 uses a
/// fixed 7-bit code like the standard's FLC for nC ≥ 8.
fn put_coeff_token(w: &mut BitWriter, nc: u8, total: u8, t1s: u8) {
    debug_assert!(total <= 16 && t1s <= 3.min(total));
    match token_regime(nc) {
        3 => w.put_bits(u32::from(total) * 4 + u32::from(t1s), 7),
        regime => {
            let table = token_table(regime);
            let index = table
                .iter()
                .position(|&e| e == (total, t1s))
                .expect("table enumerates all combinations");
            w.put_ue(index as u32);
        }
    }
}

fn read_coeff_token(r: &mut BitReader<'_>, nc: u8) -> Option<(u8, u8)> {
    match token_regime(nc) {
        3 => {
            let symbol = r.bits(7)?;
            let total = (symbol / 4) as u8;
            let t1s = (symbol % 4) as u8;
            if total > 16 || t1s > 3.min(total) {
                return None;
            }
            Some((total, t1s))
        }
        regime => {
            let index = r.ue()? as usize;
            token_table(regime).get(index).copied()
        }
    }
}

/// Writes one level with the standard's prefix/suffix scheme and returns
/// the updated `suffix_length`.
fn put_level(w: &mut BitWriter, level: i32, suffix_length: u32) -> u32 {
    debug_assert!(level != 0);
    // Map signed level to code: positive → even, negative → odd.
    let abs = level.unsigned_abs();
    let code = (abs - 1) * 2 + u32::from(level < 0);
    let prefix = code >> suffix_length;
    // Unary prefix (capped escape like the standard's prefix 15 escape).
    if prefix < 15 {
        w.put_bits(0, prefix as u8); // `prefix` zeros
        w.put_bits(1, 1);
        if suffix_length > 0 {
            w.put_bits(code & ((1 << suffix_length) - 1), suffix_length as u8);
        }
    } else {
        // Escape: 15 zeros, marker, then a 20-bit fixed code.
        w.put_bits(0, 15);
        w.put_bits(1, 1);
        w.put_bits(code, 20);
    }
    // Adaptive escalation: larger levels widen the suffix (standard rule:
    // increase when |level| > 3 << (suffixLength − 1)).
    let threshold = if suffix_length == 0 {
        3
    } else {
        3u32 << (suffix_length - 1)
    };
    if abs > threshold && suffix_length < 6 {
        suffix_length + 1
    } else {
        suffix_length
    }
}

fn read_level(r: &mut BitReader<'_>, suffix_length: u32) -> Option<(i32, u32)> {
    let mut prefix = 0u32;
    while r.bit()? == 0 {
        prefix += 1;
        if prefix > 15 {
            return None;
        }
    }
    let code = if prefix < 15 {
        let suffix = if suffix_length > 0 {
            r.bits(suffix_length as u8)?
        } else {
            0
        };
        (prefix << suffix_length) | suffix
    } else {
        r.bits(20)?
    };
    let abs = code / 2 + 1;
    let level = if code.is_multiple_of(2) {
        abs as i32
    } else {
        -(abs as i32)
    };
    let threshold = if suffix_length == 0 {
        3
    } else {
        3u32 << (suffix_length - 1)
    };
    let next = if abs > threshold && suffix_length < 6 {
        suffix_length + 1
    } else {
        suffix_length
    };
    Some((level, next))
}

/// Encodes one quantised 4×4 block with the CAVLC structure; returns the
/// bit count and the block's `total_coeffs` (the context for its right
/// and bottom neighbours).
pub fn encode_cavlc_block(w: &mut BitWriter, levels: &Block4x4, ctx: CavlcContext) -> (usize, u8) {
    let before = w.bit_len();
    let seq = zigzag_scan(levels);
    // Gather non-zero coefficients, last (highest-frequency) first, as
    // CAVLC codes them in reverse scan order.
    let nonzero: Vec<(usize, i32)> = seq
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v != 0)
        .map(|(i, &v)| (i, v))
        .collect();
    let total = nonzero.len() as u8;

    // Trailing ones: up to three ±1s at the high-frequency end.
    let mut t1s = 0u8;
    for &(_, v) in nonzero.iter().rev().take(3) {
        if v.abs() == 1 {
            t1s += 1;
        } else {
            break;
        }
    }

    put_coeff_token(w, ctx.nc(), total, t1s);
    if total == 0 {
        return (w.bit_len() - before, 0);
    }

    // Signs of the trailing ones (1 = negative), high frequency first.
    for &(_, v) in nonzero.iter().rev().take(usize::from(t1s)) {
        w.put_bits(u32::from(v < 0), 1);
    }

    // Remaining levels, high frequency first, with adaptive suffixes.
    // (The standard starts with suffixLength 1 when total > 10 and fewer
    // than 3 trailing ones.)
    let mut suffix_length = u32::from(total > 10 && t1s < 3);
    for &(_, v) in nonzero.iter().rev().skip(usize::from(t1s)) {
        suffix_length = put_level(w, v, suffix_length);
    }

    // total_zeros: zeros interleaved before the last coefficient.
    let last_index = nonzero.last().expect("total > 0").0;
    let total_zeros = (last_index + 1) as u32 - u32::from(total);
    w.put_ue(total_zeros);

    // run_before for each coefficient (reverse order, except the first in
    // scan order which absorbs the remainder).
    let mut zeros_left = total_zeros;
    for window in nonzero.windows(2).rev() {
        if zeros_left == 0 {
            break;
        }
        let run = (window[1].0 - window[0].0 - 1) as u32;
        w.put_ue(run);
        zeros_left -= run;
    }
    (w.bit_len() - before, total)
}

/// Decodes one block written by [`encode_cavlc_block`]; returns the block
/// and its `total_coeffs` context value.
pub fn decode_cavlc_block(r: &mut BitReader<'_>, ctx: CavlcContext) -> Option<(Block4x4, u8)> {
    let (total, t1s) = read_coeff_token(r, ctx.nc())?;
    if total == 0 {
        return Some(([[0; 4]; 4], 0));
    }
    // Levels, high frequency first.
    let mut levels_rev: Vec<i32> = Vec::with_capacity(usize::from(total));
    for _ in 0..t1s {
        let negative = r.bit()? == 1;
        levels_rev.push(if negative { -1 } else { 1 });
    }
    let mut suffix_length = u32::from(total > 10 && t1s < 3);
    for _ in t1s..total {
        let (level, next) = read_level(r, suffix_length)?;
        suffix_length = next;
        levels_rev.push(level);
    }
    let total_zeros = r.ue()?;
    if u32::from(total) + total_zeros > 16 {
        return None;
    }
    // Runs, matching the encoder's reverse traversal.
    let mut runs_rev: Vec<u32> = Vec::with_capacity(usize::from(total) - 1);
    let mut zeros_left = total_zeros;
    for _ in 0..usize::from(total) - 1 {
        if zeros_left == 0 {
            runs_rev.push(0);
            continue;
        }
        let run = r.ue()?;
        if run > zeros_left {
            return None;
        }
        zeros_left -= run;
        runs_rev.push(run);
    }

    // Rebuild the scan sequence: the first coefficient (scan order) sits
    // after the remaining zeros.
    let mut seq = [0i32; 16];
    let mut pos = zeros_left as usize;
    // levels_rev is high-frequency-first; runs_rev[i] is the gap before
    // levels_rev[i] (between it and the next-lower-frequency coeff).
    let levels_scan: Vec<i32> = levels_rev.iter().rev().copied().collect();
    let runs_scan: Vec<u32> = runs_rev.iter().rev().copied().collect();
    for (i, &level) in levels_scan.iter().enumerate() {
        if pos > 15 {
            return None;
        }
        seq[pos] = level;
        pos += 1;
        if i < runs_scan.len() {
            pos += runs_scan[i] as usize;
        }
    }
    Some((zigzag_unscan(&seq), total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::quantize4x4;
    use crate::transform::forward_dct4x4;

    fn roundtrip(levels: &Block4x4, ctx: CavlcContext) -> (usize, u8) {
        let mut w = BitWriter::new();
        let (bits, total) = encode_cavlc_block(&mut w, levels, ctx);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let (decoded, total2) = decode_cavlc_block(&mut r, ctx).expect("decodes");
        assert_eq!(&decoded, levels, "roundtrip mismatch");
        assert_eq!(total, total2);
        (bits, total)
    }

    #[test]
    fn empty_block_roundtrips_cheaply() {
        let (bits, total) = roundtrip(&[[0; 4]; 4], CavlcContext::default());
        assert_eq!(total, 0);
        assert!(bits <= 3, "{bits} bits for an empty block");
    }

    #[test]
    fn typical_residual_roundtrips() {
        let block = [[9, -3, 1, 0], [2, 1, 0, 0], [-1, 0, 0, 0], [0, 0, 0, 0]];
        roundtrip(&block, CavlcContext::default());
        roundtrip(
            &block,
            CavlcContext {
                left_total: Some(6),
                top_total: Some(2),
            },
        );
    }

    #[test]
    fn dense_and_large_levels_roundtrip() {
        let mut block = [[0i32; 4]; 4];
        for (r, row) in block.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = ((r * 4 + c) as i32 - 8) * 37; // up to ±296
            }
        }
        roundtrip(&block, CavlcContext::default());
    }

    #[test]
    fn huge_levels_take_the_escape_path() {
        let mut block = [[0i32; 4]; 4];
        block[0][0] = 200_000;
        block[1][1] = -150_000;
        roundtrip(&block, CavlcContext::default());
    }

    #[test]
    fn every_context_regime_roundtrips() {
        let block = [[5, 1, 0, 0], [-1, 0, 0, 0], [0, 0, 0, 0], [0, 0, 0, 0]];
        for nc in [0u8, 2, 5, 9] {
            let ctx = CavlcContext {
                left_total: Some(nc),
                top_total: Some(nc),
            };
            roundtrip(&block, ctx);
        }
    }

    #[test]
    fn context_prediction_averages_neighbours() {
        let ctx = CavlcContext {
            left_total: Some(4),
            top_total: Some(7),
        };
        assert_eq!(ctx.nc(), 6); // (4 + 7 + 1) / 2
        assert_eq!(CavlcContext::default().nc(), 0);
        assert_eq!(
            CavlcContext {
                left_total: Some(9),
                top_total: None
            }
            .nc(),
            9
        );
    }

    #[test]
    fn matched_context_codes_shorter() {
        // A sparse block in the sparse-expectation regime (nC = 0) costs
        // fewer token bits than in the dense-expectation regime.
        let sparse = {
            let mut b = [[0i32; 4]; 4];
            b[0][0] = 1;
            b
        };
        let cost = |nc: u8| {
            let mut w = BitWriter::new();
            let ctx = CavlcContext {
                left_total: Some(nc),
                top_total: Some(nc),
            };
            encode_cavlc_block(&mut w, &sparse, ctx).0
        };
        assert!(cost(0) < cost(5), "{} !< {}", cost(0), cost(5));
    }

    #[test]
    fn trailing_ones_are_one_bit_each() {
        // Three trailing ±1s after the token cost exactly 3 sign bits —
        // much cheaper than three coded levels.
        let t1_block = {
            let mut b = [[0i32; 4]; 4];
            b[0][0] = 1;
            b[0][1] = -1;
            b[1][0] = 1;
            b
        };
        let level_block = {
            let mut b = [[0i32; 4]; 4];
            b[0][0] = 4;
            b[0][1] = -4;
            b[1][0] = 4;
            b
        };
        let cost = |b: &Block4x4| {
            let mut w = BitWriter::new();
            encode_cavlc_block(&mut w, b, CavlcContext::default()).0
        };
        assert!(cost(&t1_block) < cost(&level_block));
    }

    #[test]
    fn real_quantised_residuals_roundtrip() {
        // Drive the whole transform/quant pipeline and round-trip every
        // produced block at several QPs.
        for qp in [8u8, 20, 32] {
            for seed in 0..20i32 {
                let mut px = [[0i32; 4]; 4];
                for (r, row) in px.iter_mut().enumerate() {
                    for (c, v) in row.iter_mut().enumerate() {
                        *v = ((seed * 37 + r as i32 * 13 + c as i32 * 7) % 61) - 30;
                    }
                }
                let levels = quantize4x4(&forward_dct4x4(&px), qp);
                roundtrip(&levels, CavlcContext::default());
            }
        }
    }
}
