//! Intra prediction (the "Intra MB injection" the Quality Manager can
//! switch to in the paper's Fig. 7 flow).

use crate::block::{Block4x4, Plane};

/// Intra 4×4 prediction modes (a representative subset of the nine H.264
/// modes: the three that dominate selection frequency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntraMode {
    /// Mean of the available neighbours (mode 2).
    Dc,
    /// Copy the row above (mode 0).
    Vertical,
    /// Copy the column to the left (mode 1).
    Horizontal,
}

/// All supported modes, in H.264 signalling preference order.
pub const INTRA_MODES: [IntraMode; 3] = [IntraMode::Dc, IntraMode::Vertical, IntraMode::Horizontal];

/// Predicts a 4×4 block at `(x, y)` from its reconstructed neighbours in
/// `plane`.
///
/// Border handling follows the standard's availability fallback: samples
/// outside the plane clamp to the edge, and the DC of a block in the
/// top-left corner degrades to 128.
#[must_use]
pub fn predict4x4(plane: &Plane, x: usize, y: usize, mode: IntraMode) -> Block4x4 {
    let xi = x as isize;
    let yi = y as isize;
    let mut out = [[0i32; 4]; 4];
    match mode {
        IntraMode::Dc => {
            let have_top = y > 0;
            let have_left = x > 0;
            let dc = if have_top || have_left {
                let mut sum = 0u32;
                let mut n = 0u32;
                if have_top {
                    for c in 0..4 {
                        sum += u32::from(plane.sample(xi + c, yi - 1));
                    }
                    n += 4;
                }
                if have_left {
                    for r in 0..4 {
                        sum += u32::from(plane.sample(xi - 1, yi + r));
                    }
                    n += 4;
                }
                ((sum + n / 2) / n) as i32
            } else {
                128
            };
            out = [[dc; 4]; 4];
        }
        IntraMode::Vertical => {
            for (r, row) in out.iter_mut().enumerate() {
                let _ = r;
                for (c, v) in row.iter_mut().enumerate() {
                    *v = i32::from(plane.sample(xi + c as isize, yi - 1));
                }
            }
        }
        IntraMode::Horizontal => {
            for (r, row) in out.iter_mut().enumerate() {
                let left = i32::from(plane.sample(xi - 1, yi + r as isize));
                for v in row.iter_mut() {
                    *v = left;
                }
            }
        }
    }
    out
}

/// The full nine intra 4×4 prediction modes of H.264 (mode numbers as in
/// the standard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntraMode4x4 {
    /// Mode 0 — vertical.
    Vertical,
    /// Mode 1 — horizontal.
    Horizontal,
    /// Mode 2 — DC.
    Dc,
    /// Mode 3 — diagonal down-left.
    DiagonalDownLeft,
    /// Mode 4 — diagonal down-right.
    DiagonalDownRight,
    /// Mode 5 — vertical-right.
    VerticalRight,
    /// Mode 6 — horizontal-down.
    HorizontalDown,
    /// Mode 7 — vertical-left.
    VerticalLeft,
    /// Mode 8 — horizontal-up.
    HorizontalUp,
}

/// All nine modes in standard numbering order.
pub const INTRA_MODES_4X4: [IntraMode4x4; 9] = [
    IntraMode4x4::Vertical,
    IntraMode4x4::Horizontal,
    IntraMode4x4::Dc,
    IntraMode4x4::DiagonalDownLeft,
    IntraMode4x4::DiagonalDownRight,
    IntraMode4x4::VerticalRight,
    IntraMode4x4::HorizontalDown,
    IntraMode4x4::VerticalLeft,
    IntraMode4x4::HorizontalUp,
];

impl IntraMode4x4 {
    /// Standard mode number (0..=8).
    #[must_use]
    pub fn number(self) -> u8 {
        INTRA_MODES_4X4
            .iter()
            .position(|&m| m == self)
            .expect("mode is in the table") as u8
    }

    /// Mode from its standard number.
    #[must_use]
    pub fn from_number(n: u8) -> Option<Self> {
        INTRA_MODES_4X4.get(usize::from(n)).copied()
    }
}

/// Reference samples of a 4×4 block: `top[0..8]` are `p[x, −1]`
/// (including the four top-right samples), `left[0..4]` are `p[−1, y]`,
/// `corner` is `p[−1, −1]`. Samples outside the plane clamp to the edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Neighbours {
    top: [i32; 8],
    left: [i32; 4],
    corner: i32,
}

fn neighbours(plane: &Plane, x: usize, y: usize) -> Neighbours {
    let xi = x as isize;
    let yi = y as isize;
    let mut top = [0i32; 8];
    for (i, t) in top.iter_mut().enumerate() {
        *t = i32::from(plane.sample(xi + i as isize, yi - 1));
    }
    let mut left = [0i32; 4];
    for (i, l) in left.iter_mut().enumerate() {
        *l = i32::from(plane.sample(xi - 1, yi + i as isize));
    }
    Neighbours {
        top,
        left,
        corner: i32::from(plane.sample(xi - 1, yi - 1)),
    }
}

fn avg2(a: i32, b: i32) -> i32 {
    (a + b + 1) >> 1
}

fn avg3(a: i32, b: i32, c: i32) -> i32 {
    (a + 2 * b + c + 2) >> 2
}

/// Predicts a 4×4 block with any of the nine standard modes.
///
/// The geometry follows H.264 §8.3.1.2; unavailable neighbours clamp to
/// the plane border (this simulator's availability model), and the DC of
/// the top-left corner block degrades to 128 as in [`predict4x4`].
#[must_use]
pub fn predict4x4_full(plane: &Plane, x: usize, y: usize, mode: IntraMode4x4) -> Block4x4 {
    use IntraMode4x4::*;
    match mode {
        Vertical => return predict4x4(plane, x, y, IntraMode::Vertical),
        Horizontal => return predict4x4(plane, x, y, IntraMode::Horizontal),
        Dc => return predict4x4(plane, x, y, IntraMode::Dc),
        _ => {}
    }
    let n = neighbours(plane, x, y);
    let t = &n.top;
    let l = &n.left;
    let c = n.corner;
    let mut out = [[0i32; 4]; 4];
    for (yy, row) in out.iter_mut().enumerate() {
        for (xx, v) in row.iter_mut().enumerate() {
            *v = match mode {
                DiagonalDownLeft => {
                    if xx == 3 && yy == 3 {
                        avg3(t[6], t[7], t[7])
                    } else {
                        avg3(t[xx + yy], t[xx + yy + 1], t[(xx + yy + 2).min(7)])
                    }
                }
                DiagonalDownRight => match xx.cmp(&yy) {
                    std::cmp::Ordering::Greater => avg3(
                        if xx - yy >= 2 { t[xx - yy - 2] } else { c },
                        if xx - yy >= 1 { t[xx - yy - 1] } else { c },
                        t[xx - yy],
                    ),
                    std::cmp::Ordering::Less => avg3(
                        if yy - xx >= 2 { l[yy - xx - 2] } else { c },
                        if yy - xx >= 1 { l[yy - xx - 1] } else { c },
                        l[yy - xx],
                    ),
                    std::cmp::Ordering::Equal => avg3(t[0], c, l[0]),
                },
                VerticalRight => {
                    let z = 2 * xx as i32 - yy as i32;
                    if z >= 0 && z % 2 == 0 {
                        let i = xx - yy / 2;
                        if i >= 1 {
                            avg2(t[i - 1], t[i])
                        } else {
                            avg2(c, t[0])
                        }
                    } else if z >= 0 {
                        let i = xx - yy / 2;
                        avg3(
                            if i >= 2 { t[i - 2] } else { c },
                            if i >= 1 { t[i - 1] } else { c },
                            t[i],
                        )
                    } else if z == -1 {
                        avg3(l[0], c, t[0])
                    } else {
                        avg3(
                            l[yy - 2 * xx - 1],
                            if yy >= 2 * xx + 2 {
                                l[yy - 2 * xx - 2]
                            } else {
                                c
                            },
                            if yy >= 2 * xx + 3 {
                                l[yy - 2 * xx - 3]
                            } else {
                                c
                            },
                        )
                    }
                }
                HorizontalDown => {
                    let z = 2 * yy as i32 - xx as i32;
                    if z >= 0 && z % 2 == 0 {
                        let i = yy - xx / 2;
                        if i >= 1 {
                            avg2(l[i - 1], l[i])
                        } else {
                            avg2(c, l[0])
                        }
                    } else if z >= 0 {
                        let i = yy - xx / 2;
                        avg3(
                            if i >= 2 { l[i - 2] } else { c },
                            if i >= 1 { l[i - 1] } else { c },
                            l[i],
                        )
                    } else if z == -1 {
                        avg3(t[0], c, l[0])
                    } else {
                        avg3(
                            t[xx - 2 * yy - 1],
                            if xx >= 2 * yy + 2 {
                                t[xx - 2 * yy - 2]
                            } else {
                                c
                            },
                            if xx >= 2 * yy + 3 {
                                t[xx - 2 * yy - 3]
                            } else {
                                c
                            },
                        )
                    }
                }
                VerticalLeft => {
                    let i = xx + yy / 2;
                    if yy % 2 == 0 {
                        avg2(t[i], t[(i + 1).min(7)])
                    } else {
                        avg3(t[i], t[(i + 1).min(7)], t[(i + 2).min(7)])
                    }
                }
                HorizontalUp => {
                    let z = xx + 2 * yy;
                    if z >= 5 {
                        l[3]
                    } else if z % 2 == 0 {
                        avg2(l[yy + xx / 2], l[(yy + xx / 2 + 1).min(3)])
                    } else {
                        avg3(
                            l[yy + xx / 2],
                            l[(yy + xx / 2 + 1).min(3)],
                            l[(yy + xx / 2 + 2).min(3)],
                        )
                    }
                }
                Vertical | Horizontal | Dc => unreachable!("handled above"),
            };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_with_border() -> Plane {
        // 8×8 plane: top row = 10, left column = 50, rest = 0.
        let mut p = Plane::filled(8, 8, 0);
        for x in 0..8 {
            p.set_sample(x, 0, 10);
        }
        for y in 0..8 {
            p.set_sample(0, y, 50);
        }
        p
    }

    #[test]
    fn vertical_copies_top_row() {
        let p = plane_with_border();
        let b = predict4x4(&p, 4, 1, IntraMode::Vertical);
        assert_eq!(b, [[10; 4]; 4]);
    }

    #[test]
    fn horizontal_copies_left_column() {
        let p = plane_with_border();
        let b = predict4x4(&p, 1, 4, IntraMode::Horizontal);
        assert_eq!(b, [[50; 4]; 4]);
    }

    #[test]
    fn dc_averages_both_borders() {
        let p = plane_with_border();
        let b = predict4x4(&p, 1, 1, IntraMode::Dc);
        // top neighbours are row 0 → 10s; left neighbours column 0 → 50s.
        assert_eq!(b[0][0], 30);
    }

    #[test]
    fn corner_dc_defaults_to_mid_grey() {
        let p = plane_with_border();
        let b = predict4x4(&p, 0, 0, IntraMode::Dc);
        assert_eq!(b, [[128; 4]; 4]);
    }

    #[test]
    fn modes_cover_constant_plane_exactly() {
        let p = Plane::filled(8, 8, 77);
        for mode in INTRA_MODES {
            if mode == IntraMode::Dc {
                continue; // corner DC would be 128
            }
            let b = predict4x4(&p, 4, 4, mode);
            assert_eq!(b, [[77; 4]; 4], "{mode:?}");
        }
    }

    #[test]
    fn all_nine_modes_cover_constant_plane() {
        // Every directional predictor is an average of border samples, so
        // a constant border must yield a constant prediction.
        let p = Plane::filled(16, 16, 93);
        for mode in INTRA_MODES_4X4 {
            let b = predict4x4_full(&p, 8, 8, mode);
            assert_eq!(b, [[93; 4]; 4], "{mode:?}");
        }
    }

    #[test]
    fn mode_numbers_roundtrip() {
        for (n, &mode) in INTRA_MODES_4X4.iter().enumerate() {
            assert_eq!(mode.number(), n as u8);
            assert_eq!(IntraMode4x4::from_number(n as u8), Some(mode));
        }
        assert_eq!(IntraMode4x4::from_number(9), None);
    }

    #[test]
    fn diagonal_down_left_follows_the_top_row() {
        // Top row carries a ramp; DDL propagates it along the ↙ diagonal,
        // so pred[x][y] only depends on x + y.
        let mut p = Plane::filled(16, 16, 0);
        for x in 0..16 {
            for y in 0..16 {
                p.set_sample(x, y, (x * 8) as u8);
            }
        }
        let b = predict4x4_full(&p, 4, 4, IntraMode4x4::DiagonalDownLeft);
        for y1 in 0..4 {
            for x1 in 0..4 {
                for y2 in 0..4 {
                    for x2 in 0..4 {
                        if x1 + y1 == x2 + y2 && x1 + y1 < 6 {
                            assert_eq!(
                                b[y1][x1],
                                b[y2][x2],
                                "anti-diagonal {} not constant",
                                x1 + y1
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn horizontal_up_saturates_to_last_left_sample() {
        let mut p = Plane::filled(8, 8, 10);
        p.set_sample(3, 7, 200); // left neighbour of (4, 7): l[3]
        let b = predict4x4_full(&p, 4, 4, IntraMode4x4::HorizontalUp);
        // Bottom-right region (z = x + 2y >= 5) copies l[3].
        assert_eq!(b[3][3], 200);
        assert_eq!(b[3][0], 200); // z = 6
    }

    #[test]
    fn directional_modes_differ_on_structured_content() {
        // On a diagonal edge the nine modes produce distinct predictions
        // (at least several of them), which is what makes mode selection
        // worthwhile.
        let mut p = Plane::filled(16, 16, 0);
        for x in 0..16usize {
            for y in 0..16usize {
                let v = if x > y { 220 } else { 30 };
                p.set_sample(x, y, v);
            }
        }
        let preds: Vec<Block4x4> = INTRA_MODES_4X4
            .iter()
            .map(|&m| predict4x4_full(&p, 8, 8, m))
            .collect();
        let distinct = preds
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        assert!(distinct >= 5, "only {distinct} distinct predictions");
    }
}
