//! Cost metrics of motion estimation: SAD and the 4×4 Sum of Absolute
//! Transformed Differences (the paper's SATD_4x4 SI).
//!
//! SATD_4x4 chains the QuadSub, Pack, Transform and SATD Atoms (paper
//! Fig. 8): the residual is formed (QuadSub), packed two 16-bit values per
//! 32-bit register (Pack — which is why the kernels stay within 16-bit
//! range), Hadamard-transformed (Transform) and absolute-summed (SATD).

use crate::block::Block4x4;
use crate::transform::hadamard4x4;

/// Element-wise difference of two 4×4 blocks (the QuadSub Atom's job).
#[must_use]
pub fn residual4x4(original: &Block4x4, prediction: &Block4x4) -> Block4x4 {
    let mut out = [[0i32; 4]; 4];
    for r in 0..4 {
        for c in 0..4 {
            out[r][c] = original[r][c] - prediction[r][c];
        }
    }
    out
}

/// Sum of absolute differences of two 4×4 blocks.
#[must_use]
pub fn sad4x4(original: &Block4x4, prediction: &Block4x4) -> u32 {
    let mut acc = 0u32;
    for r in 0..4 {
        for c in 0..4 {
            acc += original[r][c].abs_diff(prediction[r][c]);
        }
    }
    acc
}

/// 4×4 Sum of Absolute Transformed Differences: Hadamard-transform the
/// residual, sum the magnitudes, halve (the standard normalisation that
/// keeps SATD comparable with SAD).
#[must_use]
pub fn satd4x4(original: &Block4x4, prediction: &Block4x4) -> u32 {
    let diff = residual4x4(original, prediction);
    let t = hadamard4x4(&diff, false);
    let sum: i64 = t.iter().flatten().map(|&v| i64::from(v.abs())).sum();
    ((sum + 1) / 2) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(f: impl Fn(usize, usize) -> i32) -> Block4x4 {
        let mut b = [[0i32; 4]; 4];
        for (r, row) in b.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = f(r, c);
            }
        }
        b
    }

    #[test]
    fn identical_blocks_have_zero_cost() {
        let b = block(|r, c| (r * 7 + c * 3) as i32);
        assert_eq!(sad4x4(&b, &b), 0);
        assert_eq!(satd4x4(&b, &b), 0);
    }

    #[test]
    fn sad_counts_absolute_differences() {
        let a = block(|_, _| 10);
        let b = block(|_, _| 7);
        assert_eq!(sad4x4(&a, &b), 48);
        assert_eq!(sad4x4(&b, &a), 48);
    }

    #[test]
    fn satd_of_dc_offset() {
        // A uniform difference d transforms to a single DC coefficient
        // 16·d; SATD = 16·d / 2 = 8·d.
        let a = block(|_, _| 9);
        let b = block(|_, _| 4);
        assert_eq!(satd4x4(&a, &b), 40);
    }

    #[test]
    fn satd_penalises_structured_noise_less_than_sad_suggests() {
        // High-frequency noise concentrates into few Hadamard coefficients:
        // SATD and SAD rank candidates differently, which is why ME uses
        // SATD for sub-pel refinement.
        let orig = block(|r, c| if (r + c) % 2 == 0 { 12 } else { -12 });
        let flat = block(|_, _| 0);
        let sad = sad4x4(&orig, &flat);
        let satd = satd4x4(&orig, &flat);
        assert_eq!(sad, 192);
        assert_eq!(satd, 96); // single Hadamard coefficient of 192, halved
    }

    #[test]
    fn residual_is_antisymmetric() {
        let a = block(|r, c| (r + 2 * c) as i32);
        let b = block(|r, c| (3 * r + c) as i32);
        let ab = residual4x4(&a, &b);
        let ba = residual4x4(&b, &a);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(ab[r][c], -ba[r][c]);
            }
        }
    }

    #[test]
    fn satd_triangle_like_bound() {
        // SATD(a, b) ≤ 8 · Σ|a−b| (Hadamard magnifies by at most 16 per
        // axis pair, halved). A loose sanity bound that any correct
        // implementation satisfies.
        let a = block(|r, c| (r * c) as i32);
        let b = block(|r, c| (r + c) as i32);
        assert!(satd4x4(&a, &b) <= 8 * sad4x4(&a, &b));
    }
}
