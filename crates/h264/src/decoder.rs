//! The decoder for the encoder's frame bitstream.
//!
//! H.264 decoding reuses the same Atoms as encoding — the Transform Atom
//! serves the inverse transform, Pack the coefficient unpacking — which
//! is exactly why the rotating instruction set pays off across the
//! encode/decode halves of the paper's "Multimedia TV" motivation. This
//! decoder mirrors [`crate::encoder`] exactly: per macroblock it reads
//! the mode flag and motion vectors, entropy-decodes the 24 coefficient
//! blocks, dequantises, inverse-transforms and adds the prediction.
//!
//! The defining invariant (pinned by tests): the decoder's luma
//! reconstruction is **bit-exact** with the encoder's.

use crate::block::{Block4x4, Frame, Plane};
use crate::cavlc::{decode_cavlc_block, CavlcContext};
use crate::encoder::{EncoderConfig, EntropyCoder, SiInvocationCounts};
use crate::entropy::{decode_block, BitReader};
use crate::intra::{predict4x4_full, IntraMode4x4};
use crate::quant::dequantize4x4;
use crate::transform::inverse_dct4x4;

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedFrame {
    /// Reconstructed luma.
    pub luma: Plane,
    /// Reconstructed blue-difference chroma.
    pub cb: Plane,
    /// Reconstructed red-difference chroma.
    pub cr: Plane,
    /// SI invocations a RISPP decoder would issue (DCT here means the
    /// inverse transform on the same Transform Atoms).
    pub counts: SiInvocationCounts,
}

/// Decoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The bitstream ended early or contained malformed codes.
    Malformed {
        /// Macroblock index at which decoding failed.
        macroblock: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Malformed { macroblock } => {
                write!(f, "malformed bitstream at macroblock {macroblock}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

fn add_residual(plane: &mut Plane, pred: &Block4x4, res: &Block4x4, x: usize, y: usize) {
    for r in 0..4 {
        for c in 0..4 {
            let v = (pred[r][c] + res[r][c]).clamp(0, 255);
            plane.set_sample(x + c, y + r, v as u8);
        }
    }
}

/// Decodes one frame produced by
/// [`encode_frame`](crate::encoder::encode_frame) against the same
/// reference frame and configuration.
///
/// # Errors
///
/// Returns [`DecodeError::Malformed`] when the stream is truncated or
/// contains invalid codes.
pub fn decode_frame(
    stream: &[u8],
    reference: &Frame,
    config: &EncoderConfig,
) -> Result<DecodedFrame, DecodeError> {
    let width = reference.width();
    let height = reference.height();
    let mut luma = Plane::filled(width, height, 128);
    let mut cb = Plane::filled(width / 2, height / 2, 128);
    let mut cr = Plane::filled(width / 2, height / 2, 128);
    let mut counts = SiInvocationCounts::default();
    let mut reader = BitReader::new(stream);

    let mbs_x = width / 16;
    let mbs_y = height / 16;
    let mut mb_index = 0usize;
    for mb_y in 0..mbs_y {
        for mb_x in 0..mbs_x {
            decode_macroblock(
                &mut reader,
                reference,
                &mut luma,
                &mut cb,
                &mut cr,
                mb_x,
                mb_y,
                config,
                &mut counts,
            )
            .ok_or(DecodeError::Malformed {
                macroblock: mb_index,
            })?;
            mb_index += 1;
        }
    }
    if config.deblock {
        crate::deblock::deblock_plane(&mut luma, config.qp);
    }
    Ok(DecodedFrame {
        luma,
        cb,
        cr,
        counts,
    })
}

#[allow(clippy::too_many_arguments)]
fn decode_macroblock(
    reader: &mut BitReader<'_>,
    reference: &Frame,
    luma: &mut Plane,
    cb: &mut Plane,
    cr: &mut Plane,
    mb_x: usize,
    mb_y: usize,
    config: &EncoderConfig,
    counts: &mut SiInvocationCounts,
) -> Option<()> {
    let bx = mb_x * 16;
    let by = mb_y * 16;

    // Header: mode flag + motion vectors.
    let intra = reader.bit()? == 1;
    let mut motion = [(0i32, 0i32); 16];
    if !intra {
        for m in &mut motion {
            m.0 = reader.se()?;
            m.1 = reader.se()?;
        }
    }

    // Luma: 16 sub-blocks.
    let mut luma_totals = [[None::<u8>; 4]; 4];
    for (sb, &(dx, dy)) in motion.iter().enumerate() {
        let sx = bx + (sb % 4) * 4;
        let sy = by + (sb / 4) * 4;
        let pred = if intra {
            let mode_number = reader.bits(4)? as u8;
            let mode = IntraMode4x4::from_number(mode_number)?;
            predict4x4_full(luma, sx, sy, mode)
        } else {
            reference
                .y
                .block4x4(sx as isize + dx as isize, sy as isize + dy as isize)
        };
        let levels = match config.entropy {
            EntropyCoder::ExpGolomb => decode_block(reader)?,
            EntropyCoder::Cavlc => {
                let (bxr, byr) = (sb % 4, sb / 4);
                let ctx = CavlcContext {
                    left_total: if bxr > 0 {
                        luma_totals[byr][bxr - 1]
                    } else {
                        None
                    },
                    top_total: if byr > 0 {
                        luma_totals[byr - 1][bxr]
                    } else {
                        None
                    },
                };
                let (levels, total) = decode_cavlc_block(reader, ctx)?;
                luma_totals[byr][bxr] = Some(total);
                levels
            }
        };
        let res = inverse_dct4x4(&dequantize4x4(&levels, config.qp));
        counts.dct_4x4 += 1; // inverse transform on the Transform Atoms
        add_residual(luma, &pred, &res, sx, sy);
    }

    // Chroma: Cb then Cr, 4 blocks each, co-located prediction.
    for (plane, refp) in [(&mut *cb, &reference.cb), (&mut *cr, &reference.cr)] {
        let cx = mb_x * 8;
        let cy = mb_y * 8;
        let mut chroma_totals = [[None::<u8>; 2]; 2];
        for blk in 0..4 {
            let sx = cx + (blk % 2) * 4;
            let sy = cy + (blk / 2) * 4;
            let pred = refp.block4x4(sx as isize, sy as isize);
            let levels = match config.entropy {
                EntropyCoder::ExpGolomb => decode_block(reader)?,
                EntropyCoder::Cavlc => {
                    let (bxr, byr) = (blk % 2, blk / 2);
                    let ctx = CavlcContext {
                        left_total: if bxr > 0 {
                            chroma_totals[byr][bxr - 1]
                        } else {
                            None
                        },
                        top_total: if byr > 0 {
                            chroma_totals[byr - 1][bxr]
                        } else {
                            None
                        },
                    };
                    let (levels, total) = decode_cavlc_block(reader, ctx)?;
                    chroma_totals[byr][bxr] = Some(total);
                    levels
                }
            };
            let res = inverse_dct4x4(&dequantize4x4(&levels, config.qp));
            counts.dct_4x4 += 1;
            add_residual(plane, &pred, &res, sx, sy);
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encode_frame;
    use crate::video::SyntheticVideo;

    fn frames() -> (Frame, Frame) {
        let mut v = SyntheticVideo::new(48, 48, 77);
        (v.next_frame(), v.next_frame())
    }

    #[test]
    fn decoder_matches_encoder_reconstruction_exactly() {
        let (f0, f1) = frames();
        for qp in [12u8, 28, 40] {
            let config = EncoderConfig {
                qp,
                ..Default::default()
            };
            let enc = encode_frame(&f1, &f0, &config);
            let dec = decode_frame(&enc.stream, &f0, &config).expect("valid stream");
            assert_eq!(dec.luma, enc.recon, "luma mismatch at qp {qp}");
        }
    }

    #[test]
    fn cavlc_streams_roundtrip_and_are_smaller() {
        use crate::encoder::EntropyCoder;
        let (f0, f1) = frames();
        let base = EncoderConfig {
            qp: 24,
            ..Default::default()
        };
        let cavlc = EncoderConfig {
            entropy: EntropyCoder::Cavlc,
            ..base
        };
        let enc_eg = encode_frame(&f1, &f0, &base);
        let enc_cv = encode_frame(&f1, &f0, &cavlc);
        // Identical reconstruction (entropy coding is lossless) …
        assert_eq!(enc_eg.recon, enc_cv.recon);
        // … both decode bit-exactly …
        let dec = decode_frame(&enc_cv.stream, &f0, &cavlc).expect("cavlc decodes");
        assert_eq!(dec.luma, enc_cv.recon);
        // … and the context-adaptive coder compresses better on typical
        // residuals.
        assert!(
            enc_cv.bits < enc_eg.bits,
            "cavlc {} !< exp-golomb {}",
            enc_cv.bits,
            enc_eg.bits
        );
    }

    #[test]
    fn cavlc_intra_streams_roundtrip() {
        use crate::encoder::EntropyCoder;
        let mut a = SyntheticVideo::new(48, 48, 1);
        let mut b = SyntheticVideo::new(48, 48, 999);
        let f0 = a.next_frame();
        let f1 = b.next_frame();
        let config = EncoderConfig {
            entropy: EntropyCoder::Cavlc,
            intra_threshold: 10,
            ..Default::default()
        };
        let enc = encode_frame(&f1, &f0, &config);
        assert!(enc.intra_macroblocks > 0);
        let dec = decode_frame(&enc.stream, &f0, &config).expect("decodes");
        assert_eq!(dec.luma, enc.recon);
    }

    #[test]
    fn decoder_matches_with_motion_estimation() {
        let (f0, f1) = frames();
        let config = EncoderConfig {
            me_search_range: Some(3),
            ..Default::default()
        };
        let enc = encode_frame(&f1, &f0, &config);
        let dec = decode_frame(&enc.stream, &f0, &config).expect("valid stream");
        assert_eq!(dec.luma, enc.recon);
    }

    #[test]
    fn decoder_matches_with_intra_injection() {
        // An unrelated reference forces intra macroblocks.
        let mut a = SyntheticVideo::new(48, 48, 1);
        let mut b = SyntheticVideo::new(48, 48, 999);
        let f0 = a.next_frame();
        let f1 = b.next_frame();
        let config = EncoderConfig {
            intra_threshold: 10,
            ..Default::default()
        };
        let enc = encode_frame(&f1, &f0, &config);
        assert!(enc.intra_macroblocks > 0, "test premise: intra MBs exist");
        let dec = decode_frame(&enc.stream, &f0, &config).expect("valid stream");
        assert_eq!(dec.luma, enc.recon);
    }

    #[test]
    fn decoder_matches_with_deblocking() {
        let (f0, f1) = frames();
        let config = EncoderConfig {
            qp: 44,
            deblock: true,
            ..Default::default()
        };
        let enc = encode_frame(&f1, &f0, &config);
        let dec = decode_frame(&enc.stream, &f0, &config).expect("valid stream");
        assert_eq!(dec.luma, enc.recon);
    }

    #[test]
    fn decoded_chroma_is_faithful() {
        let (f0, f1) = frames();
        let config = EncoderConfig {
            qp: 16,
            ..Default::default()
        };
        let enc = encode_frame(&f1, &f0, &config);
        let dec = decode_frame(&enc.stream, &f0, &config).expect("valid stream");
        // Chroma reconstruction tracks the source closely at low QP.
        let sse: u64 = dec
            .cb
            .data()
            .iter()
            .zip(f1.cb.data())
            .map(|(&a, &b)| {
                let d = i64::from(a) - i64::from(b);
                (d * d) as u64
            })
            .sum();
        let mse = sse as f64 / dec.cb.data().len() as f64;
        assert!(mse < 16.0, "chroma MSE {mse}");
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let (f0, f1) = frames();
        let config = EncoderConfig::default();
        let enc = encode_frame(&f1, &f0, &config);
        let cut = &enc.stream[..enc.stream.len() / 2];
        assert!(matches!(
            decode_frame(cut, &f0, &config),
            Err(DecodeError::Malformed { .. })
        ));
    }

    #[test]
    fn decoder_si_workload_is_the_inverse_transform_mix() {
        let (f0, f1) = frames();
        let config = EncoderConfig::default();
        let enc = encode_frame(&f1, &f0, &config);
        let dec = decode_frame(&enc.stream, &f0, &config).expect("valid stream");
        // 24 inverse transforms per MB (16 luma + 8 chroma), no SATD.
        let mbs = f1.macroblocks() as u64;
        assert_eq!(dec.counts.dct_4x4, 24 * mbs);
        assert_eq!(dec.counts.satd_4x4, 0);
    }
}
