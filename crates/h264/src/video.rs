//! Synthetic video generation: deterministic, motion-rich test content
//! standing in for the paper's camera sequences (see DESIGN.md §2 —
//! the SI mix per macroblock is what the experiments depend on, and the
//! generator provides content with genuine inter-frame motion so ME, MC,
//! TQ and LF all do real work).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::block::{Frame, Plane};

/// Deterministic synthetic video source.
///
/// Each frame is a diagonal gradient plus a bright moving square plus
/// low-amplitude noise; the square translates by a constant velocity per
/// frame, giving full-search ME a recoverable motion field.
#[derive(Debug, Clone)]
pub struct SyntheticVideo {
    width: usize,
    height: usize,
    rng: StdRng,
    frame_index: u64,
}

impl SyntheticVideo {
    /// Creates a source with the given luma dimensions (multiples of 16).
    ///
    /// # Panics
    ///
    /// Panics unless width and height are multiples of 16.
    #[must_use]
    pub fn new(width: usize, height: usize, seed: u64) -> Self {
        assert_eq!(width % 16, 0, "width must be a multiple of 16");
        assert_eq!(height % 16, 0, "height must be a multiple of 16");
        SyntheticVideo {
            width,
            height,
            rng: StdRng::seed_from_u64(seed),
            frame_index: 0,
        }
    }

    /// Generates the next frame.
    pub fn next_frame(&mut self) -> Frame {
        let t = self.frame_index;
        self.frame_index += 1;
        let w = self.width;
        let h = self.height;
        // Object position advances 2 px/frame horizontally, 1 px/frame
        // vertically, wrapping inside the frame.
        let ox = (8 + 2 * t as usize) % (w.saturating_sub(16).max(1));
        let oy = (8 + t as usize) % (h.saturating_sub(16).max(1));

        let mut y = Plane::filled(w, h, 0);
        for yy in 0..h {
            for xx in 0..w {
                let gradient = ((xx + yy + t as usize) % 160) as i32 + 40;
                let object = if xx >= ox && xx < ox + 16 && yy >= oy && yy < oy + 16 {
                    60
                } else {
                    0
                };
                let noise = self.rng.gen_range(-2i32..=2);
                let v = (gradient + object + noise).clamp(0, 255) as u8;
                y.set_sample(xx, yy, v);
            }
        }
        let mut cb = Plane::filled(w / 2, h / 2, 128);
        let mut cr = Plane::filled(w / 2, h / 2, 128);
        for yy in 0..h / 2 {
            for xx in 0..w / 2 {
                let v = (120 + ((xx * 2 + t as usize) % 16)) as u8;
                cb.set_sample(xx, yy, v);
                cr.set_sample(xx, yy, 255 - v);
            }
        }
        Frame { y, cb, cr }
    }

    /// Number of frames generated so far.
    #[must_use]
    pub fn frames_generated(&self) -> u64 {
        self.frame_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::me::full_search_4x4;

    #[test]
    fn frames_are_deterministic_per_seed() {
        let mut a = SyntheticVideo::new(32, 32, 7);
        let mut b = SyntheticVideo::new(32, 32, 7);
        assert_eq!(a.next_frame(), b.next_frame());
        assert_eq!(a.next_frame(), b.next_frame());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SyntheticVideo::new(32, 32, 1);
        let mut b = SyntheticVideo::new(32, 32, 2);
        assert_ne!(a.next_frame(), b.next_frame());
    }

    #[test]
    fn consecutive_frames_have_recoverable_motion() {
        let mut v = SyntheticVideo::new(64, 64, 3);
        let f0 = v.next_frame();
        let f1 = v.next_frame();
        // Global gradient drifts by (−1, −1)-ish; block search should find
        // low-cost matches everywhere.
        let res = full_search_4x4(&f1.y, &f0.y, 24, 24, 4);
        assert!(res.cost < 120, "residual cost {} too high", res.cost);
    }

    #[test]
    fn chroma_is_half_resolution() {
        let mut v = SyntheticVideo::new(48, 32, 0);
        let f = v.next_frame();
        assert_eq!(f.cb.width, 24);
        assert_eq!(f.cr.height, 16);
    }
}
