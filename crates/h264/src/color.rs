//! Colour-space conversion: BT.601 studio-range RGB ↔ YCbCr with 4:2:0
//! chroma subsampling — how camera pixels become the [`Frame`]s the
//! encoder consumes, using the standard integer approximations.

use crate::block::{Frame, Plane};

/// An interleaved 8-bit RGB image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RgbImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// `width × height × 3` bytes, row-major RGB.
    pub data: Vec<u8>,
}

impl RgbImage {
    /// Creates a solid-colour image.
    #[must_use]
    pub fn filled(width: usize, height: usize, rgb: [u8; 3]) -> Self {
        let mut data = Vec::with_capacity(width * height * 3);
        for _ in 0..width * height {
            data.extend_from_slice(&rgb);
        }
        RgbImage {
            width,
            height,
            data,
        }
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn pixel(&self, x: usize, y: usize) -> [u8; 3] {
        let i = (y * self.width + x) * 3;
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Writes a pixel.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set_pixel(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        let i = (y * self.width + x) * 3;
        self.data[i..i + 3].copy_from_slice(&rgb);
    }
}

/// BT.601 RGB → (Y, Cb, Cr), studio range (Y ∈ 16..=235).
#[must_use]
pub fn rgb_to_ycbcr(r: u8, g: u8, b: u8) -> (u8, u8, u8) {
    let (r, g, b) = (i32::from(r), i32::from(g), i32::from(b));
    let y = ((66 * r + 129 * g + 25 * b + 128) >> 8) + 16;
    let cb = ((-38 * r - 74 * g + 112 * b + 128) >> 8) + 128;
    let cr = ((112 * r - 94 * g - 18 * b + 128) >> 8) + 128;
    (
        y.clamp(0, 255) as u8,
        cb.clamp(0, 255) as u8,
        cr.clamp(0, 255) as u8,
    )
}

/// BT.601 (Y, Cb, Cr) → RGB, studio range.
#[must_use]
pub fn ycbcr_to_rgb(y: u8, cb: u8, cr: u8) -> (u8, u8, u8) {
    let c = i32::from(y) - 16;
    let d = i32::from(cb) - 128;
    let e = i32::from(cr) - 128;
    let r = (298 * c + 409 * e + 128) >> 8;
    let g = (298 * c - 100 * d - 208 * e + 128) >> 8;
    let b = (298 * c + 516 * d + 128) >> 8;
    (
        r.clamp(0, 255) as u8,
        g.clamp(0, 255) as u8,
        b.clamp(0, 255) as u8,
    )
}

/// Converts an RGB image to a 4:2:0 [`Frame`], averaging each 2×2 chroma
/// quad.
///
/// # Panics
///
/// Panics unless the dimensions are multiples of 16 (whole macroblocks).
#[must_use]
pub fn rgb_to_frame(image: &RgbImage) -> Frame {
    assert_eq!(image.width % 16, 0, "width must be a multiple of 16");
    assert_eq!(image.height % 16, 0, "height must be a multiple of 16");
    let mut frame = Frame::grey(image.width, image.height);
    for y in 0..image.height {
        for x in 0..image.width {
            let [r, g, b] = image.pixel(x, y);
            let (yy, _, _) = rgb_to_ycbcr(r, g, b);
            frame.y.set_sample(x, y, yy);
        }
    }
    for cy in 0..image.height / 2 {
        for cx in 0..image.width / 2 {
            let mut cb_sum = 0u32;
            let mut cr_sum = 0u32;
            for (dx, dy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
                let [r, g, b] = image.pixel(cx * 2 + dx, cy * 2 + dy);
                let (_, cb, cr) = rgb_to_ycbcr(r, g, b);
                cb_sum += u32::from(cb);
                cr_sum += u32::from(cr);
            }
            frame.cb.set_sample(cx, cy, ((cb_sum + 2) / 4) as u8);
            frame.cr.set_sample(cx, cy, ((cr_sum + 2) / 4) as u8);
        }
    }
    frame
}

/// Converts a 4:2:0 [`Frame`] back to RGB (nearest-neighbour chroma
/// upsampling).
#[must_use]
pub fn frame_to_rgb(frame: &Frame) -> RgbImage {
    let (w, h) = (frame.width(), frame.height());
    let mut image = RgbImage::filled(w, h, [0, 0, 0]);
    let sample = |p: &Plane, x: usize, y: usize| p.sample(x as isize, y as isize);
    for y in 0..h {
        for x in 0..w {
            let (r, g, b) = ycbcr_to_rgb(
                sample(&frame.y, x, y),
                sample(&frame.cb, x / 2, y / 2),
                sample(&frame.cr, x / 2, y / 2),
            );
            image.set_pixel(x, y, [r, g, b]);
        }
    }
    image
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grey_is_chroma_neutral() {
        for v in [0u8, 64, 128, 200, 255] {
            let (_, cb, cr) = rgb_to_ycbcr(v, v, v);
            assert!(cb.abs_diff(128) <= 1, "cb {cb} for grey {v}");
            assert!(cr.abs_diff(128) <= 1, "cr {cr} for grey {v}");
        }
    }

    #[test]
    fn primaries_land_in_the_right_quadrants() {
        let (_, cb_r, cr_r) = rgb_to_ycbcr(255, 0, 0);
        assert!(cr_r > 200 && cb_r < 128, "red: cb {cb_r} cr {cr_r}");
        let (_, cb_b, cr_b) = rgb_to_ycbcr(0, 0, 255);
        assert!(cb_b > 200 && cr_b < 128, "blue: cb {cb_b} cr {cr_b}");
        let (y_w, _, _) = rgb_to_ycbcr(255, 255, 255);
        assert!(y_w >= 234, "white luma {y_w}");
        let (y_k, _, _) = rgb_to_ycbcr(0, 0, 0);
        assert_eq!(y_k, 16);
    }

    #[test]
    fn pixel_roundtrip_is_tight() {
        for r in (0..=255u16).step_by(37) {
            for g in (0..=255u16).step_by(41) {
                for b in (0..=255u16).step_by(43) {
                    let (y, cb, cr) = rgb_to_ycbcr(r as u8, g as u8, b as u8);
                    let (r2, g2, b2) = ycbcr_to_rgb(y, cb, cr);
                    assert!(
                        (i32::from(r2) - i32::from(r)).abs() <= 3
                            && (i32::from(g2) - i32::from(g)).abs() <= 3
                            && (i32::from(b2) - i32::from(b)).abs() <= 3,
                        "({r},{g},{b}) -> ({r2},{g2},{b2})"
                    );
                }
            }
        }
    }

    #[test]
    fn frame_roundtrip_on_smooth_content() {
        // Chroma subsampling loses detail on sharp edges but not on
        // smooth gradients.
        let mut image = RgbImage::filled(32, 32, [0, 0, 0]);
        for y in 0..32 {
            for x in 0..32 {
                image.set_pixel(x, y, [(x * 8) as u8, (y * 8) as u8, 120]);
            }
        }
        let frame = rgb_to_frame(&image);
        let back = frame_to_rgb(&frame);
        let mut max_err = 0i32;
        for y in 0..32 {
            for x in 0..32 {
                let a = image.pixel(x, y);
                let b = back.pixel(x, y);
                for i in 0..3 {
                    max_err = max_err.max((i32::from(a[i]) - i32::from(b[i])).abs());
                }
            }
        }
        assert!(max_err <= 8, "max channel error {max_err}");
    }

    #[test]
    fn chroma_is_averaged_over_quads() {
        // Alternating red/blue columns: the 2×2 chroma quad averages out.
        let mut image = RgbImage::filled(32, 32, [0, 0, 0]);
        for y in 0..32 {
            for x in 0..32 {
                let rgb = if x % 2 == 0 { [255, 0, 0] } else { [0, 0, 255] };
                image.set_pixel(x, y, rgb);
            }
        }
        let frame = rgb_to_frame(&image);
        // Averaged chroma sits strictly between the pure-red and
        // pure-blue values (red: cb 90/cr 239; blue: cb 240/cr 111).
        let cb = frame.cb.sample(8, 8);
        let cr = frame.cr.sample(8, 8);
        assert!((120..=210).contains(&cb), "cb {cb}");
        assert!((141..=209).contains(&cr), "cr {cr}");
    }

    #[test]
    fn converted_frames_feed_the_encoder() {
        use crate::encoder::{encode_frame, EncoderConfig};
        let reference = rgb_to_frame(&RgbImage::filled(32, 32, [90, 140, 60]));
        let mut image = RgbImage::filled(32, 32, [90, 140, 60]);
        for y in 8..16 {
            for x in 8..24 {
                image.set_pixel(x, y, [200, 40, 40]);
            }
        }
        let current = rgb_to_frame(&image);
        let result = encode_frame(&current, &reference, &EncoderConfig::default());
        assert!(result.luma_psnr > 30.0);
        assert!(result.bits > 0);
    }
}
