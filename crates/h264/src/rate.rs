//! Frame-level rate control: a proportional QP controller steering the
//! encoder towards a target bitrate (the knob the paper's Quality
//! Manager turns when the "30 frames … at high video quality" schedule
//! of the Multimedia TV workload gets tight).

use crate::encoder::EncoderConfig;

/// A proportional frame-level rate controller.
///
/// After each frame, [`RateController::update`] compares the produced
/// bits against the per-frame budget and nudges QP by up to
/// `max_step` — coarser quantisation when over budget, finer when under.
///
/// # Examples
///
/// ```
/// use rispp_h264::rate::RateController;
///
/// let mut rc = RateController::new(4_000, 28);
/// let qp0 = rc.qp();
/// rc.update(9_000); // frame came out far too big
/// assert!(rc.qp() > qp0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RateController {
    target_bits: usize,
    qp: u8,
    max_step: u8,
}

impl RateController {
    /// Creates a controller with a per-frame bit budget and a starting QP.
    ///
    /// # Panics
    ///
    /// Panics if `target_bits` is 0 or `initial_qp > 51`.
    #[must_use]
    pub fn new(target_bits: usize, initial_qp: u8) -> Self {
        assert!(target_bits > 0, "target bitrate must be positive");
        assert!(initial_qp <= 51, "H.264 QP range is 0..=51");
        RateController {
            target_bits,
            qp: initial_qp,
            max_step: 4,
        }
    }

    /// The QP to encode the next frame with.
    #[must_use]
    pub fn qp(&self) -> u8 {
        self.qp
    }

    /// The per-frame bit budget.
    #[must_use]
    pub fn target_bits(&self) -> usize {
        self.target_bits
    }

    /// An [`EncoderConfig`] carrying the controller's current QP.
    #[must_use]
    pub fn config(&self, base: &EncoderConfig) -> EncoderConfig {
        EncoderConfig {
            qp: self.qp,
            ..*base
        }
    }

    /// Feeds back the bits the last frame actually produced and adapts QP
    /// proportionally to the (log) overshoot, clamped to `max_step` per
    /// frame and the 0..=51 QP range. Returns the new QP.
    pub fn update(&mut self, actual_bits: usize) -> u8 {
        let ratio = actual_bits.max(1) as f64 / self.target_bits as f64;
        // ~3 QP per doubling of bitrate: half the classic 6-per-doubling
        // rule of thumb, traded for loop stability on small frames.
        let step = (3.0 * ratio.log2()).round();
        let step = step.clamp(-f64::from(self.max_step), f64::from(self.max_step)) as i16;
        self.qp = (i16::from(self.qp) + step).clamp(0, 51) as u8;
        self.qp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encode_frame;
    use crate::video::SyntheticVideo;

    #[test]
    fn overshoot_raises_qp_and_undershoot_lowers_it() {
        let mut rc = RateController::new(1_000, 30);
        rc.update(4_000);
        assert!(rc.qp() > 30);
        let mut rc = RateController::new(1_000, 30);
        rc.update(200);
        assert!(rc.qp() < 30);
    }

    #[test]
    fn exact_budget_holds_qp() {
        let mut rc = RateController::new(1_000, 30);
        assert_eq!(rc.update(1_000), 30);
    }

    #[test]
    fn steps_are_clamped() {
        let mut rc = RateController::new(1_000, 30);
        rc.update(1_000_000); // absurd overshoot
        assert_eq!(rc.qp(), 34); // one max_step, not a jump to 51
        let mut rc = RateController::new(1_000_000, 30);
        rc.update(1);
        assert_eq!(rc.qp(), 26);
    }

    #[test]
    fn qp_saturates_at_range_ends() {
        let mut rc = RateController::new(1, 50);
        for _ in 0..5 {
            rc.update(100_000);
        }
        assert_eq!(rc.qp(), 51);
        let mut rc = RateController::new(1_000_000, 2);
        for _ in 0..5 {
            rc.update(1);
        }
        assert_eq!(rc.qp(), 0);
    }

    #[test]
    fn closed_loop_converges_to_the_budget() {
        // Encode 24 frames with feedback; the later frames must land near
        // the budget while the PSNR stays sensible.
        let mut video = SyntheticVideo::new(64, 48, 5);
        let mut reference = video.next_frame();
        let target = 6_000usize;
        let mut rc = RateController::new(target, 40); // start far too coarse
        let base = EncoderConfig::default();
        let mut tail = Vec::new();
        for frame in 0..24 {
            let current = video.next_frame();
            let enc = encode_frame(&current, &reference, &rc.config(&base));
            if frame >= 16 {
                tail.push(enc.bits);
            }
            rc.update(enc.bits);
            let mut next_ref = current.clone();
            next_ref.y = enc.recon.clone();
            reference = next_ref;
        }
        // The steady state (mean of the last 8 frames) lands near the
        // budget despite frame-to-frame noise.
        let mean = tail.iter().sum::<usize>() as f64 / tail.len() as f64;
        let rel = (mean - target as f64).abs() / target as f64;
        assert!(rel < 0.5, "steady state {mean:.0} bits for target {target}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_target_rejected() {
        let _ = RateController::new(0, 28);
    }
}
