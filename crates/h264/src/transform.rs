//! The three transforms of the H.264 codec that share the Transform Atom
//! (paper Fig. 9): the 4×4 integer DCT approximation, the 4×4 Hadamard
//! transform (luma DC), and the 2×2 Hadamard transform (chroma DC).
//!
//! The Atom's data path implements the common add/subtract butterfly; the
//! `DCT`/`HT` control signals merely switch the shift elements in and out.
//! These software kernels are bit-exact with the H.264 reference
//! formulation, which is what makes every Molecule of a transform SI
//! functionally interchangeable with the software Molecule.

use crate::block::{Block2x2, Block4x4};

/// Forward 4×4 integer transform of H.264 (`Cf · X · Cfᵀ` with
/// `Cf = [[1,1,1,1],[2,1,-1,-2],[1,-1,-1,1],[1,-2,2,-1]]`).
#[must_use]
pub fn forward_dct4x4(block: &Block4x4) -> Block4x4 {
    let mut tmp = [[0i32; 4]; 4];
    // Horizontal butterflies (rows).
    for i in 0..4 {
        let [a, b, c, d] = block[i];
        let s0 = a + d;
        let s1 = b + c;
        let s2 = b - c;
        let s3 = a - d;
        tmp[i] = [s0 + s1, 2 * s3 + s2, s0 - s1, s3 - 2 * s2];
    }
    // Vertical butterflies (columns).
    let mut out = [[0i32; 4]; 4];
    for j in 0..4 {
        let (a, b, c, d) = (tmp[0][j], tmp[1][j], tmp[2][j], tmp[3][j]);
        let s0 = a + d;
        let s1 = b + c;
        let s2 = b - c;
        let s3 = a - d;
        out[0][j] = s0 + s1;
        out[1][j] = 2 * s3 + s2;
        out[2][j] = s0 - s1;
        out[3][j] = s3 - 2 * s2;
    }
    out
}

/// Inverse 4×4 integer transform (`Ci = [[1,1,1,1],[1,½,-½,-1],
/// [1,-1,-1,1],[½,-1,1,-½]]`, with the final `(x + 32) >> 6` rounding of
/// the standard).
///
/// Composed with [`forward_dct4x4`], the round trip satisfies
/// `inverse(forward(x) · 64) / 64 ≈ x`; the standard folds the scaling
/// into quantisation, and [`crate::quant`] does the same here.
#[must_use]
pub fn inverse_dct4x4(coeffs: &Block4x4) -> Block4x4 {
    let mut tmp = [[0i32; 4]; 4];
    for i in 0..4 {
        let [a, b, c, d] = coeffs[i];
        let e0 = a + c;
        let e1 = a - c;
        let e2 = (b >> 1) - d;
        let e3 = b + (d >> 1);
        tmp[i] = [e0 + e3, e1 + e2, e1 - e2, e0 - e3];
    }
    let mut out = [[0i32; 4]; 4];
    for j in 0..4 {
        let (a, b, c, d) = (tmp[0][j], tmp[1][j], tmp[2][j], tmp[3][j]);
        let e0 = a + c;
        let e1 = a - c;
        let e2 = (b >> 1) - d;
        let e3 = b + (d >> 1);
        out[0][j] = (e0 + e3 + 32) >> 6;
        out[1][j] = (e1 + e2 + 32) >> 6;
        out[2][j] = (e1 - e2 + 32) >> 6;
        out[3][j] = (e0 - e3 + 32) >> 6;
    }
    out
}

/// 4×4 Hadamard transform (H · X · Hᵀ, H = ±1 butterfly), as used on the
/// 16 luma DC coefficients and inside SATD. The H.264 luma-DC variant
/// halves the result with rounding; pass `halve = true` for that variant.
#[must_use]
pub fn hadamard4x4(block: &Block4x4, halve: bool) -> Block4x4 {
    let mut tmp = [[0i32; 4]; 4];
    for i in 0..4 {
        let [a, b, c, d] = block[i];
        let s0 = a + d;
        let s1 = b + c;
        let s2 = b - c;
        let s3 = a - d;
        tmp[i] = [s0 + s1, s3 + s2, s0 - s1, s3 - s2];
    }
    let mut out = [[0i32; 4]; 4];
    for j in 0..4 {
        let (a, b, c, d) = (tmp[0][j], tmp[1][j], tmp[2][j], tmp[3][j]);
        let s0 = a + d;
        let s1 = b + c;
        let s2 = b - c;
        let s3 = a - d;
        let vals = [s0 + s1, s3 + s2, s0 - s1, s3 - s2];
        for (i, &v) in vals.iter().enumerate() {
            out[i][j] = if halve { (v + 1) >> 1 } else { v };
        }
    }
    out
}

/// 2×2 Hadamard transform of the four chroma DC coefficients.
#[must_use]
pub fn hadamard2x2(block: &Block2x2) -> Block2x2 {
    let [[a, b], [c, d]] = *block;
    [
        [a + b + c + d, a - b + c - d],
        [a + b - c - d, a - b - c + d],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Block4x4 {
        let mut b = [[0i32; 4]; 4];
        for (r, row) in b.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = (r * 4 + c) as i32 - 8;
            }
        }
        b
    }

    #[test]
    fn dct_of_flat_block_is_pure_dc() {
        let b = [[3i32; 4]; 4];
        let t = forward_dct4x4(&b);
        assert_eq!(t[0][0], 3 * 16); // DC gain is 16
        for (i, row) in t.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if (i, j) != (0, 0) {
                    assert_eq!(v, 0, "AC coefficient ({i},{j}) nonzero");
                }
            }
        }
    }

    #[test]
    fn dct_roundtrip_through_quantiser_reconstructs() {
        // Cf and Ci are not mutually inverse on their own: the standard
        // folds the per-position norm correction into the quantiser's
        // M/V tables. The full forward → quant → dequant → inverse chain
        // at a low QP reconstructs within ±2.
        use crate::quant::{dequantize4x4, quantize4x4};
        let x = ramp();
        let z = inverse_dct4x4(&dequantize4x4(&quantize4x4(&forward_dct4x4(&x), 4), 4));
        for (zr, xr) in z.iter().zip(&x) {
            for (zv, xv) in zr.iter().zip(xr) {
                assert!((zv - xv).abs() <= 2, "round trip {zv} vs {xv}");
            }
        }
    }

    #[test]
    fn inverse_of_scaled_dc_is_flat() {
        // A pure DC coefficient reconstructs to a flat block: the inverse
        // spreads it uniformly, so 1024 → (1024 + 32) >> 6 = 16 everywhere.
        let mut y = [[0i32; 4]; 4];
        y[0][0] = 1024;
        let z = inverse_dct4x4(&y);
        assert_eq!(z, [[16; 4]; 4]);
    }

    #[test]
    fn hadamard_is_self_inverse_up_to_scale() {
        let x = ramp();
        let y = hadamard4x4(&x, false);
        let z = hadamard4x4(&y, false);
        for (zr, xr) in z.iter().zip(&x) {
            for (zv, xv) in zr.iter().zip(xr) {
                assert_eq!(*zv, 16 * xv); // H·H = 4I per axis
            }
        }
    }

    #[test]
    fn hadamard_dc_gain() {
        let b = [[1i32; 4]; 4];
        let t = hadamard4x4(&b, false);
        assert_eq!(t[0][0], 16);
        let th = hadamard4x4(&b, true);
        assert_eq!(th[0][0], 8);
    }

    #[test]
    fn hadamard2x2_matches_matrix_form() {
        let b: Block2x2 = [[1, 2], [3, 4]];
        let t = hadamard2x2(&b);
        assert_eq!(t, [[10, -2], [-4, 0]]);
        // Self-inverse up to factor 4.
        let back = hadamard2x2(&t);
        assert_eq!(back, [[4, 8], [12, 16]]);
    }

    #[test]
    fn transforms_share_butterfly_structure() {
        // The paper's Fig. 9 point: DCT and HT differ only in the shift
        // elements. On inputs where the shifts do not matter (b == c and
        // a == d per row/column), DCT and HT agree.
        let x = [[5, 2, 2, 5]; 4];
        let dct = forward_dct4x4(&x);
        let ht = hadamard4x4(&x, false);
        assert_eq!(dct, ht);
    }
}
