//! Property tests on the H.264 kernels: transform linearity, metric
//! axioms of SAD/SATD, quantiser monotonicity, and entropy-codec
//! round-trips on arbitrary blocks.

use proptest::prelude::*;
use rispp_h264::block::Block4x4;
use rispp_h264::entropy::{decode_block, encode_block, BitReader, BitWriter};
use rispp_h264::quant::{dequantize4x4, nonzero_count, quantize4x4};
use rispp_h264::satd::{residual4x4, sad4x4, satd4x4};
use rispp_h264::transform::{forward_dct4x4, hadamard4x4, inverse_dct4x4};

fn block(range: std::ops::Range<i32>) -> impl Strategy<Value = Block4x4> {
    proptest::array::uniform4(proptest::array::uniform4(range))
}

fn pixel_block() -> impl Strategy<Value = Block4x4> {
    block(0..256)
}

proptest! {
    // --- transforms ---

    #[test]
    fn dct_is_linear(a in block(-256..256), b in block(-256..256)) {
        let mut sum = [[0i32; 4]; 4];
        for r in 0..4 {
            for c in 0..4 {
                sum[r][c] = a[r][c] + b[r][c];
            }
        }
        let ta = forward_dct4x4(&a);
        let tb = forward_dct4x4(&b);
        let ts = forward_dct4x4(&sum);
        for r in 0..4 {
            for c in 0..4 {
                prop_assert_eq!(ts[r][c], ta[r][c] + tb[r][c]);
            }
        }
    }

    #[test]
    fn dct_dc_is_sixteen_times_mean_sum(a in block(-128..128)) {
        let t = forward_dct4x4(&a);
        let sum: i32 = a.iter().flatten().sum();
        prop_assert_eq!(t[0][0], sum);
    }

    #[test]
    fn hadamard_energy_is_scaled(a in block(-128..128)) {
        // Parseval for the ±1 Hadamard: Σ T² = 16 · Σ x².
        let t = hadamard4x4(&a, false);
        let ein: i64 = a.iter().flatten().map(|&v| i64::from(v) * i64::from(v)).sum();
        let eout: i64 = t.iter().flatten().map(|&v| i64::from(v) * i64::from(v)).sum();
        prop_assert_eq!(eout, 16 * ein);
    }

    #[test]
    fn quant_dequant_inverse_roundtrip_bounded(a in pixel_block()) {
        // Residuals in pixel range survive the full QP-8 pipeline within
        // a small tolerance.
        let mut residual = a;
        for row in &mut residual {
            for v in row {
                *v -= 128;
            }
        }
        let coeffs = forward_dct4x4(&residual);
        let rec = inverse_dct4x4(&dequantize4x4(&quantize4x4(&coeffs, 8), 8));
        for r in 0..4 {
            for c in 0..4 {
                prop_assert!((rec[r][c] - residual[r][c]).abs() <= 4,
                    "({r},{c}): {} vs {}", rec[r][c], residual[r][c]);
            }
        }
    }

    #[test]
    fn higher_qp_never_more_coefficients(a in pixel_block(), qp1 in 0u8..44) {
        let coeffs = forward_dct4x4(&a);
        let low = nonzero_count(&quantize4x4(&coeffs, qp1));
        let high = nonzero_count(&quantize4x4(&coeffs, qp1 + 8));
        prop_assert!(high <= low);
    }

    // --- cost metrics ---

    #[test]
    fn sad_is_a_metric(a in pixel_block(), b in pixel_block(), c in pixel_block()) {
        prop_assert_eq!(sad4x4(&a, &b), sad4x4(&b, &a));
        prop_assert_eq!(sad4x4(&a, &a), 0);
        prop_assert!(sad4x4(&a, &c) <= sad4x4(&a, &b) + sad4x4(&b, &c));
    }

    #[test]
    fn satd_is_symmetric_and_faithful(a in pixel_block(), b in pixel_block()) {
        prop_assert_eq!(satd4x4(&a, &b), satd4x4(&b, &a));
        // Zero iff identical (Hadamard is invertible).
        prop_assert_eq!(satd4x4(&a, &b) == 0, a == b);
    }

    #[test]
    fn residual_plus_prediction_restores(a in pixel_block(), b in pixel_block()) {
        let r = residual4x4(&a, &b);
        for i in 0..4 {
            for j in 0..4 {
                prop_assert_eq!(b[i][j] + r[i][j], a[i][j]);
            }
        }
    }

    // --- entropy coding ---

    #[test]
    fn block_codec_roundtrips(levels in block(-512..512)) {
        let mut w = BitWriter::new();
        encode_block(&mut w, &levels);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        prop_assert_eq!(decode_block(&mut r), Some(levels));
    }

    #[test]
    fn ue_se_roundtrip(values in proptest::collection::vec(-5000i32..5000, 1..50)) {
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_se(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(r.se(), Some(v));
        }
    }

    #[test]
    fn cavlc_roundtrips_arbitrary_blocks(
        levels in block(-2000..2000),
        left in proptest::option::of(0u8..17),
        top in proptest::option::of(0u8..17),
    ) {
        use rispp_h264::cavlc::{decode_cavlc_block, encode_cavlc_block, CavlcContext};
        let ctx = CavlcContext { left_total: left, top_total: top };
        let mut w = BitWriter::new();
        let (_, total) = encode_cavlc_block(&mut w, &levels, ctx);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let (decoded, total2) = decode_cavlc_block(&mut r, ctx).expect("self-consistent");
        prop_assert_eq!(decoded, levels);
        prop_assert_eq!(total, total2);
    }

    #[test]
    fn cavlc_decoder_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        nc in 0u8..17,
    ) {
        use rispp_h264::cavlc::{decode_cavlc_block, CavlcContext};
        let ctx = CavlcContext { left_total: Some(nc), top_total: Some(nc) };
        let mut r = BitReader::new(&bytes);
        // Must either decode something or reject; never panic.
        let _ = decode_cavlc_block(&mut r, ctx);
    }

    #[test]
    fn frame_decoder_never_panics_on_corruption(
        flips in proptest::collection::vec((0usize..10_000, 0u8..8), 1..12),
    ) {
        use rispp_h264::decoder::decode_frame;
        use rispp_h264::encoder::{encode_frame, EncoderConfig};
        use rispp_h264::video::SyntheticVideo;
        let mut v = SyntheticVideo::new(32, 32, 3);
        let f0 = v.next_frame();
        let f1 = v.next_frame();
        let config = EncoderConfig::default();
        let enc = encode_frame(&f1, &f0, &config);
        let mut stream = enc.stream.clone();
        for (pos, bit) in flips {
            let i = pos % stream.len();
            stream[i] ^= 1 << bit;
        }
        // Corrupted streams must decode to *something* or be rejected —
        // never panic.
        let _ = decode_frame(&stream, &f0, &config);
    }

    #[test]
    fn bit_length_counts_exactly(chunks in proptest::collection::vec((0u32..1024, 1u8..11), 0..20)) {
        let mut w = BitWriter::new();
        let mut expect = 0usize;
        for &(v, n) in &chunks {
            w.put_bits(v & ((1 << n) - 1), n);
            expect += usize::from(n);
        }
        prop_assert_eq!(w.bit_len(), expect);
        prop_assert_eq!(w.as_bytes().len(), expect.div_ceil(8));
    }
}
