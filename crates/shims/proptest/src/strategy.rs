//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// Maximum retries for `prop_filter` before the test run is aborted; keeps
/// an over-restrictive predicate from looping forever.
const FILTER_MAX_RETRIES: u32 = 10_000;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds every generated value into `f` and draws from the strategy
    /// it returns — the dependent-generation combinator (e.g. a width
    /// first, then vectors of that width).
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `pred` and redraws.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe subset of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the whole domain of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_MAX_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected {FILTER_MAX_RETRIES} candidates in a row",
            self.reason
        );
    }
}

/// Strategy wrapping a plain generation closure (used by `prop_compose!`).
pub struct FnStrategy<F>(F);

impl<T, F: Fn(&mut TestRng) -> T> FnStrategy<F> {
    /// Wraps `f` as a strategy.
    pub fn new(f: F) -> Self {
        FnStrategy(f)
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed strategies (used by `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Creates a union; panics when `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.usize_below(self.0.len());
        self.0[arm].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $via:ident),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.$via(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if end < <$t>::MAX {
                    rng.$via(start..end + 1)
                } else {
                    rng.$via(start..end)
                }
            }
        }
    )*};
}

impl_range_strategy!(
    u8 => int_range_u8,
    u16 => int_range_u16,
    u32 => int_range_u32,
    u64 => int_range_u64,
    usize => int_range_usize
);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + draw) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        #[allow(clippy::cast_possible_truncation)]
        let v = (f64::from(self.start)..f64::from(self.end)).generate(rng) as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Length distribution for [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max - self.size.min;
        let len = self.size.min + if span == 0 { 0 } else { rng.usize_below(span) };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// See [`crate::array`].
pub struct ArrayStrategy<S, const N: usize> {
    pub(crate) element: S,
}

impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

/// See [`crate::option::of`].
pub struct OptionStrategy<S> {
    pub(crate) element: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.usize_below(4) == 0 {
            None
        } else {
            Some(self.element.generate(rng))
        }
    }
}
