//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the proptest 1.x API its property tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_filter`, range / tuple /
//! collection / array / option strategies, and the `proptest!`,
//! `prop_compose!`, `prop_oneof!`, `prop_assert!` and `prop_assert_eq!`
//! macros. Each test runs a configurable number of random cases from a
//! deterministic per-test seed.
//!
//! Deliberate simplifications versus upstream: no shrinking (a failing
//! case panics with the assertion message directly), no failure
//! persistence, and a fixed seed derived from the test name instead of an
//! entropy source — so failures are always reproducible by re-running the
//! test.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Fixed-size array strategies (`proptest::array::uniform4`).
pub mod array {
    use crate::strategy::{ArrayStrategy, Strategy};

    /// Strategy for `[T; 2]` with independent elements.
    pub fn uniform2<S: Strategy>(element: S) -> ArrayStrategy<S, 2> {
        ArrayStrategy { element }
    }

    /// Strategy for `[T; 3]` with independent elements.
    pub fn uniform3<S: Strategy>(element: S) -> ArrayStrategy<S, 3> {
        ArrayStrategy { element }
    }

    /// Strategy for `[T; 4]` with independent elements.
    pub fn uniform4<S: Strategy>(element: S) -> ArrayStrategy<S, 4> {
        ArrayStrategy { element }
    }
}

/// `Option<T>` strategies (`proptest::option::of`).
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// Strategy producing `None` about a quarter of the time and `Some`
    /// of the inner strategy otherwise.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy { element }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines a function returning a composite strategy, mirroring
/// `proptest::prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident $params:tt
     ($($arg:pat in $strategy:expr),+ $(,)?)
     -> $ret:ty $body:block) => {
        $(#[$meta])* $vis fn $name $params -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |runner_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, runner_rng);)+
                $body
            })
        }
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        0u32..10
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(v in small(), w in 5u64..=6) {
            prop_assert!(v < 10);
            prop_assert!(w == 5 || w == 6);
        }

        #[test]
        fn maps_and_filters_apply(
            v in small().prop_map(|x| x * 2).prop_filter("nonzero", |&x| x > 0),
            xs in crate::collection::vec(0u8..4, 1..5),
        ) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(v > 0);
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 4));
        }

        #[test]
        fn oneof_unions_arms(v in prop_oneof![Just(1usize), Just(2), 10usize..12]) {
            prop_assert!(v == 1 || v == 2 || v == 10 || v == 11);
        }

        #[test]
        fn arrays_options_tuples(
            grid in crate::array::uniform4(0i32..4),
            opt in crate::option::of(0u8..3),
            (a, b) in (0u32..4, 100u32..104),
        ) {
            prop_assert!(grid.iter().all(|&v| v < 4));
            if let Some(x) = opt {
                prop_assert!(x < 3);
            }
            prop_assert!(a < 4 && (100..104).contains(&b));
        }
    }

    prop_compose! {
        fn pair()(a in 0u32..5, b in 10u32..15) -> (u32, u32) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn composed_strategies_work((a, b) in pair()) {
            prop_assert!(a < 5 && (10..15).contains(&b));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u32..100, 3..8);
        let mut r1 = TestRng::deterministic("x");
        let mut r2 = TestRng::deterministic("x");
        for _ in 0..16 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }
}
