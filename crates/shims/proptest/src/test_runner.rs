//! Test configuration and the deterministic RNG backing the shim.

/// Runtime knobs for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator used for case generation (SplitMix64).
///
/// Seeded from the test's name so every run of a given test draws the
/// same cases, which replaces upstream proptest's failure persistence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded by hashing `name` (FNV-1a).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound`; panics when `bound` is zero.
    pub fn usize_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample below zero");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 mantissa bits.
    #[allow(clippy::cast_precision_loss)]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

macro_rules! impl_int_range {
    ($($fn_name:ident => $t:ty),*) => {$(
        impl TestRng {
            /// Uniform draw from a half-open range; panics when empty.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            pub fn $fn_name(&mut self, range: core::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = u128::from(range.end - range.start);
                let draw = (u128::from(self.next_u64()) % span) as $t;
                range.start + draw
            }
        }
    )*};
}

impl_int_range!(
    int_range_u8 => u8,
    int_range_u16 => u16,
    int_range_u32 => u32,
    int_range_u64 => u64
);

impl TestRng {
    /// Uniform draw from a half-open `usize` range; panics when empty.
    pub fn int_range_usize(&mut self, range: core::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "cannot sample empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }
}
