//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal wall-clock harness exposing the criterion 0.5 API its benches
//! use: [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. No statistics, plots, or baselines — each
//! benchmark is timed over a fixed batch of iterations and reported as a
//! mean time per iteration on stdout.
//!
//! `cargo test` runs `harness = false` bench binaries with `--test`; in
//! that mode every benchmark body executes exactly once as a smoke test.

use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each benchmark function.
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    fn from_args() -> Self {
        // Under `cargo test`, bench binaries receive `--test`; under
        // `cargo bench`, criterion-style filters/flags may follow. Only
        // `--test` changes behaviour here.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_iters: DEFAULT_SAMPLE_ITERS,
        }
    }
}

const DEFAULT_SAMPLE_ITERS: u64 = 100;

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_iters: u64,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes statistical sample counts; here it scales the
    /// measured iteration batch proportionally (default 100).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_iters = (n as u64).max(1);
        self
    }

    /// Times `f` and prints the mean time per iteration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: if self.criterion.test_mode {
                1
            } else {
                self.sample_iters
            },
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if self.criterion.test_mode {
            println!("{}/{id}: ok (test mode)", self.name);
        } else {
            let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iters.max(1));
            println!(
                "{}/{id}: {per_iter} ns/iter (n={})",
                self.name, bencher.iters
            );
        }
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op shim).
    pub fn finish(&mut self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording total wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        self.elapsed = measure(self.iters, &mut routine);
    }
}

/// Times `iters` black-boxed runs of `routine`, returning total wall
/// time. The measurement core behind [`Bencher::iter`], exposed for
/// harnesses that need the duration programmatically (upstream criterion
/// offers `iter_custom`; this is the shim's equivalent).
pub fn measure<R, F: FnMut() -> R>(iters: u64, mut routine: F) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(routine());
    }
    start.elapsed()
}

/// Bundles benchmark functions under one name, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::__new_from_args();
            $($group(&mut criterion);)+
        }
    };
}

impl Criterion {
    /// Macro plumbing for `criterion_main!`; not public API.
    #[doc(hidden)]
    #[must_use]
    pub fn __new_from_args() -> Self {
        Criterion::from_args()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_function(format!("fmt/{}", 2), |b| b.iter(|| 2 + 2));
        group.finish();
    }

    #[test]
    fn harness_runs_benchmarks() {
        let mut criterion = Criterion { test_mode: true };
        sample_bench(&mut criterion);
    }
}
