//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small part of `rand` 0.8 it actually uses: a deterministic seeded
//! generator ([`rngs::StdRng`]) plus [`Rng::gen_range`] over integer and
//! float ranges. The generator is xoshiro256++ seeded through SplitMix64 —
//! high-quality and fully reproducible, which is all the simulation
//! harnesses need. It is **not** the upstream `StdRng` stream, and none of
//! it is cryptographically secure.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                // Guard the half-open invariant against rounding.
                if v as $t >= self.end { self.start } else { v as $t }
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen_range(0.0..1.0f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_int_range_is_covered() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
