//! The reconfigurable fabric: Atom Containers plus a single
//! reconfiguration port that serialises rotations.
//!
//! The model captures exactly the properties the RISPP algorithms depend
//! on: (1) a rotation takes `bitstream / rate` wall-clock time, (2) only
//! one rotation can be in flight at a time (one SelectMap port), (3) a
//! container's previous Atom stays usable until its overwrite *starts*,
//! and (4) a loading container is unusable until the rotation completes.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use rispp_core::atom::{AtomKind, AtomSet};
use rispp_core::molecule::Molecule;
use rispp_obs::{Event, ProfHandle, SinkHandle};

use crate::catalog::AtomCatalog;
use crate::clock::Clock;
use crate::container::{AtomContainer, ContainerId, ContainerState};
use crate::fault::FaultPlan;

/// Errors produced by fabric operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FabricError {
    /// The container index is out of range.
    UnknownContainer(ContainerId),
    /// The Atom kind is not in the platform catalog.
    UnknownKind(AtomKind),
    /// The container already has a rotation queued or in flight.
    RotationPending(ContainerId),
    /// Time went backwards in `advance_to`.
    TimeReversal {
        /// Current fabric time.
        now: u64,
        /// Requested (earlier) time.
        requested: u64,
    },
    /// The container is permanently out of service and rejects rotations.
    ContainerQuarantined(ContainerId),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::UnknownContainer(c) => write!(f, "unknown atom container {c}"),
            FabricError::UnknownKind(k) => write!(f, "unknown atom kind {k}"),
            FabricError::RotationPending(c) => {
                write!(f, "rotation already pending for container {c}")
            }
            FabricError::TimeReversal { now, requested } => {
                write!(
                    f,
                    "cannot advance fabric from cycle {now} back to {requested}"
                )
            }
            FabricError::ContainerQuarantined(c) => {
                write!(f, "atom container {c} is quarantined")
            }
        }
    }
}

impl Error for FabricError {}

/// Timeline events emitted by the fabric, for traces and the Fig. 6
/// scenario reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricEvent {
    /// A rotation left the queue and began writing the container.
    RotationStarted {
        /// Target container.
        container: ContainerId,
        /// Atom being written.
        kind: AtomKind,
        /// Start cycle.
        at: u64,
    },
    /// A rotation completed; the Atom is now usable.
    RotationCompleted {
        /// Target container.
        container: ContainerId,
        /// Atom now loaded.
        kind: AtomKind,
        /// Completion cycle.
        at: u64,
    },
    /// A rotation reached its completion cycle but the bitstream failed
    /// CRC verification: the container holds no usable Atom, the port is
    /// free again. Injected by a [`FaultPlan`].
    RotationFailed {
        /// Target container.
        container: ContainerId,
        /// Atom whose bitstream failed to load.
        kind: AtomKind,
        /// Cycle of the failed completion.
        at: u64,
    },
    /// The reconfiguration port stalled; the in-flight rotation makes no
    /// progress until `until`. Injected by a [`FaultPlan`].
    PortStalled {
        /// Cycle at which the stall began.
        at: u64,
        /// Cycle at which the transfer resumes.
        until: u64,
    },
    /// A container was diagnosed permanently bad and taken out of
    /// service. Injected by a [`FaultPlan`].
    ContainerQuarantined {
        /// The container taken out of service.
        container: ContainerId,
        /// Cycle of the diagnosis.
        at: u64,
    },
    /// A transient fault (single-event upset) destroyed the Atom a
    /// container held; the container is empty but serviceable again.
    /// Injected by a [`FaultPlan`].
    ContainerFaulted {
        /// The container that lost its Atom.
        container: ContainerId,
        /// The Atom that was lost.
        kind: AtomKind,
        /// Cycle of the upset.
        at: u64,
    },
}

impl FabricEvent {
    /// Cycle at which the event occurred.
    #[must_use]
    pub fn at(&self) -> u64 {
        match *self {
            FabricEvent::RotationStarted { at, .. }
            | FabricEvent::RotationCompleted { at, .. }
            | FabricEvent::RotationFailed { at, .. }
            | FabricEvent::PortStalled { at, .. }
            | FabricEvent::ContainerQuarantined { at, .. }
            | FabricEvent::ContainerFaulted { at, .. } => at,
        }
    }
}

/// Bookkeeping for the rotation currently occupying the port.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InFlightRotation {
    container: ContainerId,
    kind: AtomKind,
    /// Zero-based start-order sequence number (CRC failures key on it).
    seq: u64,
    /// Completion cycle, stall-adjusted.
    done_at: u64,
    /// Stall announcements not yet emitted: `(begins_at, until)`.
    stalls: VecDeque<(u64, u64)>,
}

/// The reconfigurable fabric simulator.
///
/// # Examples
///
/// ```
/// use rispp_core::atom::{AtomKind, AtomSet};
/// use rispp_fabric::catalog::{table1_profiles, AtomCatalog};
/// use rispp_fabric::container::ContainerId;
/// use rispp_fabric::fabric::Fabric;
///
/// let atoms = AtomSet::from_names(["Transform", "SATD", "Pack", "QuadSub"]);
/// let catalog = AtomCatalog::new(table1_profiles().to_vec());
/// let mut fabric = Fabric::new(atoms, catalog, 4);
///
/// fabric.request_rotation(ContainerId(0), AtomKind(0))?;
/// let done = fabric.next_completion().expect("one rotation in flight");
/// fabric.advance_to(done)?;
/// assert_eq!(fabric.loaded_molecule().count(AtomKind(0)), 1);
/// # Ok::<(), rispp_fabric::fabric::FabricError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fabric {
    atoms: AtomSet,
    catalog: AtomCatalog,
    clock: Clock,
    containers: Vec<AtomContainer>,
    /// FIFO of requested-but-not-started rotations.
    queue: VecDeque<(ContainerId, AtomKind)>,
    /// The in-flight rotation, if any.
    in_flight: Option<InFlightRotation>,
    events: Vec<FabricEvent>,
    /// The fault schedule ([`FaultPlan::none`] by default).
    faults: FaultPlan,
    /// Transient faults not yet injected, sorted by cycle.
    pending_transients: VecDeque<(u64, ContainerId)>,
    /// Start-order sequence number of the next rotation.
    rotation_seq: u64,
    /// Structured-event sink (disabled by default). Cloning the fabric
    /// shares the sink, since handles are reference-counted.
    sink: SinkHandle,
    /// Host-side wall-clock profiler (disabled by default); times
    /// [`Fabric::advance_to`] as the `fabric_advance` phase.
    prof: ProfHandle,
}

impl Fabric {
    /// Creates a fabric with `containers` Atom Containers at the default
    /// 100 MHz clock.
    ///
    /// # Panics
    ///
    /// Panics if the catalog does not cover the atom set (name-for-name).
    #[must_use]
    pub fn new(atoms: AtomSet, catalog: AtomCatalog, containers: usize) -> Self {
        Self::with_clock(atoms, catalog, containers, Clock::default())
    }

    /// Creates a fabric with an explicit clock.
    ///
    /// # Panics
    ///
    /// Panics if the catalog does not cover the atom set (name-for-name).
    #[must_use]
    pub fn with_clock(
        atoms: AtomSet,
        catalog: AtomCatalog,
        containers: usize,
        clock: Clock,
    ) -> Self {
        assert!(
            catalog.matches(&atoms),
            "atom catalog must be index-aligned with the atom set"
        );
        Fabric {
            atoms,
            catalog,
            clock,
            containers: vec![AtomContainer::new(); containers],
            queue: VecDeque::new(),
            in_flight: None,
            events: Vec::new(),
            faults: FaultPlan::none(),
            pending_transients: VecDeque::new(),
            rotation_seq: 0,
            sink: SinkHandle::null(),
            prof: ProfHandle::null(),
        }
    }

    /// Installs a deterministic fault schedule (chainable). The plan is
    /// normalized on installation; transient faults scheduled before the
    /// current cycle are dropped.
    #[must_use]
    pub fn with_faults(mut self, mut plan: FaultPlan) -> Self {
        plan.normalize();
        let now = self.clock.now();
        self.pending_transients = plan
            .transient_faults
            .iter()
            .copied()
            .filter(|&(at, _)| at >= now)
            .collect();
        self.faults = plan;
        self
    }

    /// The installed fault schedule (empty by default).
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The platform Atom set.
    #[must_use]
    pub fn atoms(&self) -> &AtomSet {
        &self.atoms
    }

    /// The Atom hardware catalog.
    #[must_use]
    pub fn catalog(&self) -> &AtomCatalog {
        &self.catalog
    }

    /// The simulation clock — the single source of simulated time for the
    /// whole platform (manager and engine re-expose this same instance).
    #[must_use]
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Current fabric time, in cycles (shorthand for `clock().now()`).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Installs a structured-event sink; the fabric emits
    /// [`Event::RotationStarted`] / [`Event::RotationCompleted`] into it.
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    /// The installed structured-event sink (disabled by default).
    #[must_use]
    pub fn sink(&self) -> &SinkHandle {
        &self.sink
    }

    /// Installs a host-side wall-clock profiler; the fabric records its
    /// `advance_to` host cost under the `fabric_advance` phase.
    pub fn set_profiler(&mut self, prof: ProfHandle) {
        self.prof = prof;
    }

    /// The installed host-side profiler (disabled by default).
    #[must_use]
    pub fn profiler(&self) -> &ProfHandle {
        &self.prof
    }

    /// Number of Atom Containers.
    #[must_use]
    pub fn num_containers(&self) -> usize {
        self.containers.len()
    }

    /// Number of containers still in service (not quarantined) — the
    /// capacity a scheduler can actually count on.
    #[must_use]
    pub fn usable_containers(&self) -> usize {
        self.containers
            .iter()
            .filter(|c| !c.is_quarantined())
            .count()
    }

    /// Read access to one container.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn container(&self, id: ContainerId) -> &AtomContainer {
        &self.containers[id.index()]
    }

    /// Iterates `(id, container)` pairs.
    pub fn iter_containers(&self) -> impl Iterator<Item = (ContainerId, &AtomContainer)> {
        self.containers
            .iter()
            .enumerate()
            .map(|(i, c)| (ContainerId(i), c))
    }

    /// Re-allocates a container to a task tag.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::UnknownContainer`] for an out-of-range id.
    pub fn set_owner(&mut self, id: ContainerId, owner: Option<u32>) -> Result<(), FabricError> {
        self.containers
            .get_mut(id.index())
            .ok_or(FabricError::UnknownContainer(id))?
            .set_owner(owner);
        Ok(())
    }

    /// Records that the Atoms of `used` were exercised at the current time
    /// (for LRU-style replacement decisions). For each kind, the
    /// most-recently-loaded containers are touched first.
    pub fn touch_atoms(&mut self, used: &Molecule) {
        let now = self.clock.now();
        for (kind, count) in used.iter_nonzero() {
            let mut remaining = count;
            for c in self.containers.iter_mut() {
                if remaining == 0 {
                    break;
                }
                if c.loaded_kind() == Some(kind) {
                    c.touch(now);
                    remaining -= 1;
                }
            }
        }
    }

    /// The Meta-Molecule of all *usable* (fully loaded) Atoms.
    #[must_use]
    pub fn loaded_molecule(&self) -> Molecule {
        Molecule::from_pairs(
            self.atoms.len(),
            self.containers
                .iter()
                .filter_map(|c| c.loaded_kind().map(|k| (k, 1))),
        )
    }

    /// The Meta-Molecule that will be loaded once all queued and in-flight
    /// rotations complete (loaded Atoms not scheduled for overwrite, plus
    /// every rotation target).
    #[must_use]
    pub fn committed_molecule(&self) -> Molecule {
        let pending_overwrite: Vec<usize> = self.queue.iter().map(|&(c, _)| c.index()).collect();
        let mut pairs: Vec<(AtomKind, u32)> = Vec::new();
        for (i, c) in self.containers.iter().enumerate() {
            match c.state() {
                ContainerState::Loaded { kind } if !pending_overwrite.contains(&i) => {
                    pairs.push((kind, 1));
                }
                ContainerState::Loading { kind, .. } => pairs.push((kind, 1)),
                _ => {}
            }
        }
        pairs.extend(self.queue.iter().map(|&(_, k)| (k, 1)));
        Molecule::from_pairs(self.atoms.len(), pairs)
    }

    /// Returns `true` when neither a rotation is in flight nor queued.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_none() && self.queue.is_empty()
    }

    /// Completion cycle of the in-flight rotation, if any
    /// (stall-adjusted).
    #[must_use]
    pub fn next_completion(&self) -> Option<u64> {
        self.in_flight.as_ref().map(|r| r.done_at)
    }

    /// Cycle by which *all* currently queued rotations will have
    /// completed, accounting for scheduled port stalls.
    #[must_use]
    pub fn all_rotations_done_at(&self) -> Option<u64> {
        let mut t = self.next_completion()?;
        for &(_, kind) in &self.queue {
            let duration = self.catalog.rotation_cycles(kind, &self.clock);
            t = self.stalled_finish(t, duration).0;
        }
        Some(t)
    }

    /// Computes when a transfer of `duration` cycles starting at `start`
    /// finishes under the plan's stall windows, and which stall
    /// intervals it crosses (`(begins_at, until)` pairs).
    fn stalled_finish(&self, start: u64, duration: u64) -> (u64, Vec<(u64, u64)>) {
        let mut t = start;
        let mut remaining = duration;
        let mut crossed = Vec::new();
        for w in &self.faults.stall_windows {
            if w.until <= t {
                continue;
            }
            let begin = w.from.max(t);
            if begin >= t + remaining {
                break;
            }
            remaining -= begin - t;
            crossed.push((begin, w.until));
            t = w.until;
        }
        (t + remaining, crossed)
    }

    /// Requests a rotation writing `kind` into container `id`.
    ///
    /// The request queues behind the single reconfiguration port. Until the
    /// write starts, the container's previous Atom (if any) stays usable.
    ///
    /// # Errors
    ///
    /// * [`FabricError::UnknownContainer`] / [`FabricError::UnknownKind`]
    ///   for out-of-range arguments;
    /// * [`FabricError::RotationPending`] when the container already has a
    ///   queued or in-flight rotation;
    /// * [`FabricError::ContainerQuarantined`] when the container is
    ///   permanently out of service.
    pub fn request_rotation(&mut self, id: ContainerId, kind: AtomKind) -> Result<(), FabricError> {
        if id.index() >= self.containers.len() {
            return Err(FabricError::UnknownContainer(id));
        }
        if kind.index() >= self.atoms.len() {
            return Err(FabricError::UnknownKind(kind));
        }
        if self.containers[id.index()].is_quarantined() {
            return Err(FabricError::ContainerQuarantined(id));
        }
        let pending = self.in_flight.as_ref().is_some_and(|r| r.container == id)
            || self.queue.iter().any(|&(c, _)| c == id);
        if pending {
            return Err(FabricError::RotationPending(id));
        }
        self.queue.push_back((id, kind));
        self.pump(self.clock.now());
        Ok(())
    }

    /// Requests a rotation and tags the container with its owning task in
    /// one operation — the command-application surface the run-time
    /// decision layer goes through, so a planned rotation and its
    /// ownership can never be applied half-way.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Fabric::request_rotation`]; on error the
    /// container's owner tag is left untouched.
    pub fn request_rotation_for(
        &mut self,
        id: ContainerId,
        kind: AtomKind,
        owner: Option<u32>,
    ) -> Result<(), FabricError> {
        self.request_rotation(id, kind)?;
        self.set_owner(id, owner)
    }

    /// Cancels a queued (not yet started) rotation. Returns `true` if a
    /// request was removed.
    pub fn cancel_pending(&mut self, id: ContainerId) -> bool {
        let before = self.queue.len();
        self.queue.retain(|&(c, _)| c != id);
        before != self.queue.len()
    }

    /// Cancels every queued (not yet started) rotation and returns how
    /// many were removed. The in-flight rotation, if any, continues — the
    /// SelectMap port cannot abort a partial bitstream write.
    pub fn cancel_all_pending(&mut self) -> usize {
        let n = self.queue.len();
        self.queue.clear();
        n
    }

    /// The queued (not yet started) rotations in FIFO order.
    #[must_use]
    pub fn pending_rotations(&self) -> Vec<(ContainerId, AtomKind)> {
        self.queue.iter().copied().collect()
    }

    /// Number of queued (not yet started) rotations, without
    /// materialising them — the hot-path check for "would
    /// cancel-and-reissue be a no-op?".
    #[must_use]
    pub fn pending_rotation_count(&self) -> usize {
        self.queue.len()
    }

    /// Advances fabric time to `t`, completing and starting rotations, and
    /// returns the events that occurred in `(now, t]` in order.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::TimeReversal`] when `t` is in the past.
    pub fn advance_to(&mut self, t: u64) -> Result<Vec<FabricEvent>, FabricError> {
        let _scope = self.prof.scope(rispp_obs::phase::FABRIC_ADVANCE);
        let now = self.clock.now();
        if t < now {
            return Err(FabricError::TimeReversal { now, requested: t });
        }
        self.pump(t);
        self.clock.advance_to(t);
        Ok(std::mem::take(&mut self.events))
    }

    /// Processes stalls, faults, completions and queue starts in
    /// chronological order with horizon `t`, so the emitted event stream
    /// stays time-ordered even when fault injection interleaves with the
    /// rotation pipeline.
    fn pump(&mut self, t: u64) {
        loop {
            // Port idle: the only way a request lingers here is that it
            // was just enqueued (request_rotation pumps immediately), so
            // it starts at the current time.
            if self.in_flight.is_none() {
                if let Some((id, kind)) = self.queue.pop_front() {
                    let at = self.clock.now();
                    self.start_rotation(id, kind, at);
                    continue;
                }
            }
            // The earliest due occurrence within the horizon. On equal
            // cycles: transient fault, then stall announcement, then
            // completion (a fault at the completion cycle still hits the
            // *old* world; the completion then overwrites it).
            const TRANSIENT: u8 = 0;
            const STALL: u8 = 1;
            const DONE: u8 = 2;
            let mut next: Option<(u64, u8)> = None;
            let mut consider = |at: u64, what: u8| {
                if at <= t && next.is_none_or(|(b, _)| at < b) {
                    next = Some((at, what));
                }
            };
            if let Some(&(at, _)) = self.pending_transients.front() {
                consider(at, TRANSIENT);
            }
            if let Some(r) = &self.in_flight {
                if let Some(&(begins_at, _)) = r.stalls.front() {
                    consider(begins_at, STALL);
                }
                consider(r.done_at, DONE);
            }
            match next {
                Some((_, TRANSIENT)) => self.inject_transient(),
                Some((_, STALL)) => self.announce_stall(),
                Some((_, DONE)) => self.finish_in_flight(),
                _ => break,
            }
        }
    }

    /// Injects the next pending transient fault: a loaded container loses
    /// its Atom (no effect on empty/loading/quarantined containers).
    fn inject_transient(&mut self) {
        let (at, id) = self
            .pending_transients
            .pop_front()
            .expect("caller checked a transient is due");
        if let ContainerState::Loaded { kind } = self.containers[id.index()].state() {
            self.containers[id.index()].set_state(ContainerState::Empty);
            self.events.push(FabricEvent::ContainerFaulted {
                container: id,
                kind,
                at,
            });
            self.sink.emit_with(at, || Event::ContainerEvicted {
                container: id.index() as u32,
                kind,
            });
        }
    }

    /// Announces the next stall of the in-flight rotation.
    fn announce_stall(&mut self) {
        let r = self
            .in_flight
            .as_mut()
            .expect("caller checked a stall is due");
        let (begins_at, until) = r.stalls.pop_front().expect("stall is due");
        self.events.push(FabricEvent::PortStalled {
            at: begins_at,
            until,
        });
        self.sink
            .emit_with(begins_at, || Event::PortStalled { until });
    }

    /// Completes (or fails) the in-flight rotation and starts the next
    /// queued one at the cycle the port frees.
    fn finish_in_flight(&mut self) {
        let r = self
            .in_flight
            .take()
            .expect("caller checked a completion is due");
        let (id, kind, at) = (r.container, r.kind, r.done_at);
        let bad = self.faults.bad_containers.contains(&id);
        let crc = self.faults.crc_failures.contains(&r.seq);
        if bad || crc {
            // The transfer consumed the port for its full duration, but
            // verification failed: no Atom materialises, no
            // ContainerLoaded is emitted (the previous Atom was already
            // evicted when the overwrite started, so occupancy pairing
            // is preserved).
            self.events.push(FabricEvent::RotationFailed {
                container: id,
                kind,
                at,
            });
            self.sink.emit_with(at, || Event::RotationFailed {
                container: id.index() as u32,
                kind,
            });
            if bad {
                self.containers[id.index()].set_state(ContainerState::Quarantined);
                self.events
                    .push(FabricEvent::ContainerQuarantined { container: id, at });
                self.sink.emit_with(at, || Event::ContainerQuarantined {
                    container: id.index() as u32,
                });
            } else {
                self.containers[id.index()].set_state(ContainerState::Empty);
            }
        } else {
            self.containers[id.index()].set_state(ContainerState::Loaded { kind });
            self.events.push(FabricEvent::RotationCompleted {
                container: id,
                kind,
                at,
            });
            self.sink.emit_with(at, || Event::RotationCompleted {
                container: id.index() as u32,
                kind,
            });
            // The Atom is usable from this cycle on: occupancy becomes
            // observable from the event stream alone.
            self.sink.emit_with(at, || Event::ContainerLoaded {
                container: id.index() as u32,
                kind,
            });
        }
        // The port frees at `at`; queued loads may start.
        if let Some((next_id, next_kind)) = self.queue.pop_front() {
            self.start_rotation(next_id, next_kind, at);
        }
    }

    fn start_rotation(&mut self, id: ContainerId, kind: AtomKind, at: u64) {
        // An overwrite destroys the previous Atom the moment the bitstream
        // write starts — announce the eviction before the rotation itself.
        if let ContainerState::Loaded { kind: old } = self.containers[id.index()].state() {
            self.sink.emit_with(at, || Event::ContainerEvicted {
                container: id.index() as u32,
                kind: old,
            });
        }
        let duration = self.catalog.rotation_cycles(kind, &self.clock);
        let (done_at, stalls) = self.stalled_finish(at, duration);
        self.containers[id.index()].set_state(ContainerState::Loading { kind, done_at });
        self.events.push(FabricEvent::RotationStarted {
            container: id,
            kind,
            at,
        });
        self.sink.emit_with(at, || Event::RotationStarted {
            container: id.index() as u32,
            kind,
        });
        self.in_flight = Some(InFlightRotation {
            container: id,
            kind,
            seq: self.rotation_seq,
            done_at,
            stalls: stalls.into(),
        });
        self.rotation_seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::table1_profiles;

    fn fabric(containers: usize) -> Fabric {
        let atoms = AtomSet::from_names(["Transform", "SATD", "Pack", "QuadSub"]);
        let catalog = AtomCatalog::new(table1_profiles().to_vec());
        Fabric::new(atoms, catalog, containers)
    }

    #[test]
    fn single_rotation_completes_after_rotation_time() {
        let mut f = fabric(2);
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        let done = f.next_completion().unwrap();
        // Transform: 857.63 µs ≈ 85 763 cycles at 100 MHz.
        assert!((85_000..87_000).contains(&done));
        let events = f.advance_to(done).unwrap();
        assert_eq!(events.len(), 2); // started + completed
        assert_eq!(f.loaded_molecule(), Molecule::from_counts([1, 0, 0, 0]));
        assert!(f.is_idle());
    }

    #[test]
    fn rotations_serialize_through_one_port() {
        let mut f = fabric(2);
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.request_rotation(ContainerId(1), AtomKind(1)).unwrap();
        let first_done = f.next_completion().unwrap();
        let events = f.advance_to(first_done).unwrap();
        // Second rotation starts exactly when the first completes.
        assert!(events.iter().any(|e| matches!(
            e,
            FabricEvent::RotationStarted { container: ContainerId(1), at, .. } if *at == first_done
        )));
        assert_eq!(f.loaded_molecule().determinant(), 1);
        let all_done = f.next_completion().unwrap();
        f.advance_to(all_done).unwrap();
        assert_eq!(f.loaded_molecule().determinant(), 2);
    }

    #[test]
    fn old_atom_usable_until_overwrite_starts() {
        let mut f = fabric(1);
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.advance_to(f.next_completion().unwrap()).unwrap();
        assert_eq!(f.loaded_molecule().count(AtomKind(0)), 1);
        // Overwrite with a different kind: usable old atom disappears as
        // soon as the rotation starts (the port is free, so immediately).
        f.request_rotation(ContainerId(0), AtomKind(2)).unwrap();
        assert_eq!(f.loaded_molecule().determinant(), 0);
        f.advance_to(f.next_completion().unwrap()).unwrap();
        assert_eq!(f.loaded_molecule().count(AtomKind(2)), 1);
    }

    #[test]
    fn queued_overwrite_keeps_old_atom_until_start() {
        let mut f = fabric(2);
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.advance_to(f.next_completion().unwrap()).unwrap();
        // Start a long rotation on AC1, then queue an overwrite of AC0.
        f.request_rotation(ContainerId(1), AtomKind(2)).unwrap();
        f.request_rotation(ContainerId(0), AtomKind(3)).unwrap();
        // AC0's Transform is still usable while the port works on AC1.
        assert_eq!(f.loaded_molecule().count(AtomKind(0)), 1);
        let t1 = f.next_completion().unwrap();
        f.advance_to(t1).unwrap();
        // Now the overwrite of AC0 started: Transform gone, Pack loaded.
        assert_eq!(f.loaded_molecule().count(AtomKind(0)), 0);
        assert_eq!(f.loaded_molecule().count(AtomKind(2)), 1);
    }

    #[test]
    fn committed_molecule_includes_queue() {
        let mut f = fabric(3);
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.request_rotation(ContainerId(1), AtomKind(1)).unwrap();
        f.request_rotation(ContainerId(2), AtomKind(1)).unwrap();
        assert_eq!(f.committed_molecule(), Molecule::from_counts([1, 2, 0, 0]));
        assert_eq!(f.loaded_molecule().determinant(), 0);
    }

    #[test]
    fn duplicate_request_rejected() {
        let mut f = fabric(2);
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        assert_eq!(
            f.request_rotation(ContainerId(0), AtomKind(1)),
            Err(FabricError::RotationPending(ContainerId(0)))
        );
    }

    #[test]
    fn out_of_range_arguments_rejected() {
        let mut f = fabric(1);
        assert!(matches!(
            f.request_rotation(ContainerId(5), AtomKind(0)),
            Err(FabricError::UnknownContainer(_))
        ));
        assert!(matches!(
            f.request_rotation(ContainerId(0), AtomKind(9)),
            Err(FabricError::UnknownKind(_))
        ));
    }

    #[test]
    fn time_reversal_rejected() {
        let mut f = fabric(1);
        f.advance_to(100).unwrap();
        assert!(matches!(
            f.advance_to(50),
            Err(FabricError::TimeReversal { .. })
        ));
    }

    #[test]
    fn cancel_pending_removes_queued_only() {
        let mut f = fabric(2);
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.request_rotation(ContainerId(1), AtomKind(1)).unwrap();
        assert!(f.cancel_pending(ContainerId(1)));
        assert!(!f.cancel_pending(ContainerId(0))); // already in flight
        f.advance_to(f.next_completion().unwrap()).unwrap();
        assert!(f.is_idle());
        assert_eq!(f.loaded_molecule().determinant(), 1);
    }

    #[test]
    fn all_rotations_done_at_accumulates_queue() {
        let mut f = fabric(3);
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.request_rotation(ContainerId(1), AtomKind(0)).unwrap();
        let single = f.next_completion().unwrap();
        let all = f.all_rotations_done_at().unwrap();
        assert_eq!(all, 2 * single);
    }

    #[test]
    fn touch_atoms_updates_lru_metadata() {
        let mut f = fabric(2);
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.request_rotation(ContainerId(1), AtomKind(1)).unwrap();
        let t = f.all_rotations_done_at().unwrap();
        f.advance_to(t + 10).unwrap();
        f.touch_atoms(&Molecule::from_counts([1, 0, 0, 0]));
        assert_eq!(f.container(ContainerId(0)).last_used(), t + 10);
        assert_eq!(f.container(ContainerId(1)).last_used(), 0);
    }

    #[test]
    fn owner_reallocation() {
        let mut f = fabric(1);
        f.set_owner(ContainerId(0), Some(7)).unwrap();
        assert_eq!(f.container(ContainerId(0)).owner(), Some(7));
        assert!(f.set_owner(ContainerId(3), None).is_err());
    }

    #[test]
    fn sink_receives_rotation_events_at_source() {
        use rispp_obs::TimelineSink;
        use std::cell::RefCell;
        use std::rc::Rc;

        let timeline = Rc::new(RefCell::new(TimelineSink::new()));
        let mut f = fabric(2);
        f.set_sink(SinkHandle::shared(timeline.clone()));
        assert!(f.sink().is_enabled());

        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.request_rotation(ContainerId(1), AtomKind(1)).unwrap();
        let first_done = f.next_completion().unwrap();
        let all_done = f.all_rotations_done_at().unwrap();
        f.advance_to(all_done).unwrap();

        let tl = timeline.borrow();
        let records = tl.timeline().entries();
        // start(0) @0, done(0)+load(0) @first_done, start(1) @first_done,
        // done(1)+load(1) @all_done. Fresh containers: no evictions.
        assert_eq!(records.len(), 6);
        assert_eq!(
            records[0].event,
            Event::RotationStarted {
                container: 0,
                kind: AtomKind(0)
            }
        );
        assert_eq!(records[1].at, first_done);
        assert_eq!(
            records[2].event,
            Event::ContainerLoaded {
                container: 0,
                kind: AtomKind(0)
            }
        );
        assert_eq!(
            records[3].event,
            Event::RotationStarted {
                container: 1,
                kind: AtomKind(1)
            }
        );
        assert_eq!(records[3].at, first_done);
        assert_eq!(
            records[4].event,
            Event::RotationCompleted {
                container: 1,
                kind: AtomKind(1)
            }
        );
        assert_eq!(records[4].at, all_done);
        assert_eq!(
            records[5].event,
            Event::ContainerLoaded {
                container: 1,
                kind: AtomKind(1)
            }
        );
    }

    #[test]
    fn crc_failure_leaves_container_empty_and_frees_port() {
        use crate::fault::FaultPlan;
        let mut f = fabric(2).with_faults(FaultPlan {
            crc_failures: vec![0],
            ..FaultPlan::default()
        });
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.request_rotation(ContainerId(1), AtomKind(1)).unwrap();
        let first_done = f.next_completion().unwrap();
        let events = f.advance_to(first_done).unwrap();
        // Rotation 0 fails; the port frees on time and rotation 1 starts.
        assert!(events.iter().any(|e| matches!(
            e,
            FabricEvent::RotationFailed { container: ContainerId(0), at, .. } if *at == first_done
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            FabricEvent::RotationStarted { container: ContainerId(1), at, .. } if *at == first_done
        )));
        assert_eq!(f.container(ContainerId(0)).state(), ContainerState::Empty);
        // The retry is a fresh sequence number and succeeds.
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.advance_to(f.all_rotations_done_at().unwrap()).unwrap();
        assert_eq!(f.loaded_molecule(), Molecule::from_counts([1, 1, 0, 0]));
    }

    #[test]
    fn bad_container_is_quarantined_and_rejects_retries() {
        use crate::fault::FaultPlan;
        let mut f = fabric(2).with_faults(FaultPlan {
            bad_containers: vec![ContainerId(0)],
            ..FaultPlan::default()
        });
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        let done = f.next_completion().unwrap();
        let events = f.advance_to(done).unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, FabricEvent::RotationFailed { .. })));
        assert!(events.iter().any(|e| matches!(
            e,
            FabricEvent::ContainerQuarantined {
                container: ContainerId(0),
                ..
            }
        )));
        assert!(f.container(ContainerId(0)).is_quarantined());
        assert_eq!(f.usable_containers(), 1);
        assert_eq!(
            f.request_rotation(ContainerId(0), AtomKind(0)),
            Err(FabricError::ContainerQuarantined(ContainerId(0)))
        );
        // The healthy container still works.
        f.request_rotation(ContainerId(1), AtomKind(1)).unwrap();
        f.advance_to(f.next_completion().unwrap()).unwrap();
        assert_eq!(f.loaded_molecule().count(AtomKind(1)), 1);
    }

    #[test]
    fn stall_window_delays_completion_and_is_announced() {
        use crate::fault::{FaultPlan, StallWindow};
        let mut clean = fabric(1);
        clean.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        let nominal = clean.next_completion().unwrap();

        let mut f = fabric(1).with_faults(FaultPlan {
            stall_windows: vec![StallWindow {
                from: 1_000,
                until: 6_000,
            }],
            ..FaultPlan::default()
        });
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        let done = f.next_completion().unwrap();
        assert_eq!(done, nominal + 5_000);
        let events = f.advance_to(done).unwrap();
        assert!(events.iter().any(|e| matches!(
            e,
            FabricEvent::PortStalled {
                at: 1_000,
                until: 6_000
            }
        )));
        assert_eq!(f.loaded_molecule().count(AtomKind(0)), 1);
        // Events stay chronologically ordered.
        let times: Vec<u64> = events.iter().map(FabricEvent::at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn stall_before_start_does_not_delay() {
        use crate::fault::{FaultPlan, StallWindow};
        let mut f = fabric(1).with_faults(FaultPlan {
            stall_windows: vec![StallWindow { from: 0, until: 50 }],
            ..FaultPlan::default()
        });
        f.advance_to(100).unwrap();
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        let events = f.advance_to(f.next_completion().unwrap()).unwrap();
        assert!(!events
            .iter()
            .any(|e| matches!(e, FabricEvent::PortStalled { .. })));
    }

    #[test]
    fn all_rotations_done_at_accounts_for_stalls() {
        use crate::fault::{FaultPlan, StallWindow};
        let mut f = fabric(2).with_faults(FaultPlan {
            stall_windows: vec![StallWindow {
                from: 100_000,
                until: 120_000,
            }],
            ..FaultPlan::default()
        });
        // Two ~85k-cycle rotations: the second crosses the stall window.
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.request_rotation(ContainerId(1), AtomKind(0)).unwrap();
        let predicted = f.all_rotations_done_at().unwrap();
        let events = f.advance_to(predicted).unwrap();
        let last_done = events
            .iter()
            .filter_map(|e| match e {
                FabricEvent::RotationCompleted { at, .. } => Some(*at),
                _ => None,
            })
            .max()
            .unwrap();
        assert_eq!(last_done, predicted);
        assert!(predicted > 2 * 85_000 + 19_000);
    }

    #[test]
    fn transient_fault_evicts_loaded_atom_only() {
        use crate::fault::FaultPlan;
        let mut f = fabric(2).with_faults(FaultPlan {
            // One upset while AC0 is still loading (no effect), one after
            // it loaded (evicts), one on the never-used AC1 (no effect).
            transient_faults: vec![
                (10, ContainerId(0)),
                (200_000, ContainerId(0)),
                (200_001, ContainerId(1)),
            ],
            ..FaultPlan::default()
        });
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.advance_to(f.next_completion().unwrap()).unwrap();
        assert_eq!(f.loaded_molecule().count(AtomKind(0)), 1);
        let events = f.advance_to(300_000).unwrap();
        assert_eq!(
            events,
            vec![FabricEvent::ContainerFaulted {
                container: ContainerId(0),
                kind: AtomKind(0),
                at: 200_000,
            }]
        );
        assert_eq!(f.loaded_molecule().determinant(), 0);
        assert_eq!(f.container(ContainerId(0)).state(), ContainerState::Empty);
        // The container is serviceable again.
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.advance_to(f.next_completion().unwrap()).unwrap();
        assert_eq!(f.loaded_molecule().count(AtomKind(0)), 1);
    }

    #[test]
    fn faulty_run_keeps_occupancy_events_paired() {
        use crate::fault::{FaultPlan, StallWindow};
        use rispp_obs::TimelineSink;
        use std::cell::RefCell;
        use std::rc::Rc;

        let timeline = Rc::new(RefCell::new(TimelineSink::new()));
        let mut f = fabric(2).with_faults(FaultPlan {
            crc_failures: vec![1],
            stall_windows: vec![StallWindow {
                from: 40_000,
                until: 45_000,
            }],
            transient_faults: vec![(400_000, ContainerId(0))],
            bad_containers: vec![ContainerId(1)],
        });
        f.set_sink(SinkHandle::shared(timeline.clone()));

        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.request_rotation(ContainerId(1), AtomKind(1)).unwrap();
        f.advance_to(500_000).unwrap();
        f.request_rotation(ContainerId(0), AtomKind(2)).unwrap();
        f.advance_to(700_000).unwrap();

        // Per container: Loaded and Evicted strictly alternate, starting
        // with Loaded.
        let tl = timeline.borrow();
        for container in 0..2u32 {
            let mut loaded = false;
            for r in tl.timeline().entries() {
                match r.event {
                    Event::ContainerLoaded { container: c, .. } if c == container => {
                        assert!(!loaded, "AC{container} loaded twice");
                        loaded = true;
                    }
                    Event::ContainerEvicted { container: c, .. } if c == container => {
                        assert!(loaded, "AC{container} evicted while empty");
                        loaded = false;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn cancelled_queued_overwrites_leave_occupancy_untouched() {
        use rispp_obs::TimelineSink;
        use std::cell::RefCell;
        use std::rc::Rc;

        // A queued (not yet started) overwrite has emitted nothing: the
        // eviction only fires when the bitstream write begins. Cancelling
        // it must therefore leave the occupancy stream strictly paired
        // and the loaded Atom in place.
        let timeline = Rc::new(RefCell::new(TimelineSink::new()));
        let mut f = fabric(3);
        f.set_sink(SinkHandle::shared(timeline.clone()));

        // Load AC0, then occupy the port with a long rotation on AC1 and
        // queue an overwrite of AC0 behind it.
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.advance_to(f.next_completion().unwrap()).unwrap();
        f.request_rotation(ContainerId(1), AtomKind(1)).unwrap();
        f.request_rotation(ContainerId(0), AtomKind(2)).unwrap();
        assert_eq!(f.pending_rotations(), vec![(ContainerId(0), AtomKind(2))]);

        assert!(f.cancel_pending(ContainerId(0)));
        f.advance_to(f.all_rotations_done_at().unwrap()).unwrap();

        // AC0 kept its Atom; no eviction was ever emitted for it.
        assert_eq!(f.container(ContainerId(0)).loaded_kind(), Some(AtomKind(0)));
        let tl = timeline.borrow();
        assert!(!tl
            .timeline()
            .entries()
            .iter()
            .any(|r| matches!(r.event, Event::ContainerEvicted { container: 0, .. })));
        drop(tl);

        // Same through cancel_all_pending: queue another overwrite of AC0
        // behind a fresh in-flight rotation, clear the whole queue.
        f.request_rotation(ContainerId(2), AtomKind(3)).unwrap();
        f.request_rotation(ContainerId(0), AtomKind(1)).unwrap();
        assert_eq!(f.cancel_all_pending(), 1);
        f.advance_to(f.all_rotations_done_at().unwrap()).unwrap();
        assert_eq!(f.container(ContainerId(0)).loaded_kind(), Some(AtomKind(0)));

        // The full stream still alternates Loaded/Evicted per container.
        let tl = timeline.borrow();
        for container in 0..3u32 {
            let mut loaded = false;
            for r in tl.timeline().entries() {
                match r.event {
                    Event::ContainerLoaded { container: c, .. } if c == container => {
                        assert!(!loaded, "AC{container} loaded twice");
                        loaded = true;
                    }
                    Event::ContainerEvicted { container: c, .. } if c == container => {
                        assert!(loaded, "AC{container} evicted while empty");
                        loaded = false;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn overwrite_emits_eviction_before_rotation_start() {
        use rispp_obs::TimelineSink;
        use std::cell::RefCell;
        use std::rc::Rc;

        let timeline = Rc::new(RefCell::new(TimelineSink::new()));
        let mut f = fabric(1);
        f.set_sink(SinkHandle::shared(timeline.clone()));

        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.advance_to(f.next_completion().unwrap()).unwrap();
        let overwrite_at = f.now();
        f.request_rotation(ContainerId(0), AtomKind(2)).unwrap();

        let tl = timeline.borrow();
        let records = tl.timeline().entries();
        // start(0), done(0), load(0), evict(0), start(0 again).
        assert_eq!(records.len(), 5);
        assert_eq!(
            records[3].event,
            Event::ContainerEvicted {
                container: 0,
                kind: AtomKind(0)
            }
        );
        assert_eq!(records[3].at, overwrite_at);
        assert_eq!(
            records[4].event,
            Event::RotationStarted {
                container: 0,
                kind: AtomKind(2)
            }
        );
    }
}
