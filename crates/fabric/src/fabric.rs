//! The reconfigurable fabric: Atom Containers plus a single
//! reconfiguration port that serialises rotations.
//!
//! The model captures exactly the properties the RISPP algorithms depend
//! on: (1) a rotation takes `bitstream / rate` wall-clock time, (2) only
//! one rotation can be in flight at a time (one SelectMap port), (3) a
//! container's previous Atom stays usable until its overwrite *starts*,
//! and (4) a loading container is unusable until the rotation completes.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use rispp_core::atom::{AtomKind, AtomSet};
use rispp_core::molecule::Molecule;
use rispp_obs::{Event, SinkHandle};

use crate::catalog::AtomCatalog;
use crate::clock::Clock;
use crate::container::{AtomContainer, ContainerId, ContainerState};

/// Errors produced by fabric operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FabricError {
    /// The container index is out of range.
    UnknownContainer(ContainerId),
    /// The Atom kind is not in the platform catalog.
    UnknownKind(AtomKind),
    /// The container already has a rotation queued or in flight.
    RotationPending(ContainerId),
    /// Time went backwards in `advance_to`.
    TimeReversal {
        /// Current fabric time.
        now: u64,
        /// Requested (earlier) time.
        requested: u64,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::UnknownContainer(c) => write!(f, "unknown atom container {c}"),
            FabricError::UnknownKind(k) => write!(f, "unknown atom kind {k}"),
            FabricError::RotationPending(c) => {
                write!(f, "rotation already pending for container {c}")
            }
            FabricError::TimeReversal { now, requested } => {
                write!(
                    f,
                    "cannot advance fabric from cycle {now} back to {requested}"
                )
            }
        }
    }
}

impl Error for FabricError {}

/// Timeline events emitted by the fabric, for traces and the Fig. 6
/// scenario reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricEvent {
    /// A rotation left the queue and began writing the container.
    RotationStarted {
        /// Target container.
        container: ContainerId,
        /// Atom being written.
        kind: AtomKind,
        /// Start cycle.
        at: u64,
    },
    /// A rotation completed; the Atom is now usable.
    RotationCompleted {
        /// Target container.
        container: ContainerId,
        /// Atom now loaded.
        kind: AtomKind,
        /// Completion cycle.
        at: u64,
    },
}

impl FabricEvent {
    /// Cycle at which the event occurred.
    #[must_use]
    pub fn at(&self) -> u64 {
        match *self {
            FabricEvent::RotationStarted { at, .. } | FabricEvent::RotationCompleted { at, .. } => {
                at
            }
        }
    }
}

/// The reconfigurable fabric simulator.
///
/// # Examples
///
/// ```
/// use rispp_core::atom::{AtomKind, AtomSet};
/// use rispp_fabric::catalog::{table1_profiles, AtomCatalog};
/// use rispp_fabric::container::ContainerId;
/// use rispp_fabric::fabric::Fabric;
///
/// let atoms = AtomSet::from_names(["Transform", "SATD", "Pack", "QuadSub"]);
/// let catalog = AtomCatalog::new(table1_profiles().to_vec());
/// let mut fabric = Fabric::new(atoms, catalog, 4);
///
/// fabric.request_rotation(ContainerId(0), AtomKind(0))?;
/// let done = fabric.next_completion().expect("one rotation in flight");
/// fabric.advance_to(done)?;
/// assert_eq!(fabric.loaded_molecule().count(AtomKind(0)), 1);
/// # Ok::<(), rispp_fabric::fabric::FabricError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fabric {
    atoms: AtomSet,
    catalog: AtomCatalog,
    clock: Clock,
    containers: Vec<AtomContainer>,
    /// FIFO of requested-but-not-started rotations.
    queue: VecDeque<(ContainerId, AtomKind)>,
    /// Container with the in-flight rotation, if any.
    in_flight: Option<ContainerId>,
    events: Vec<FabricEvent>,
    /// Structured-event sink (disabled by default). Cloning the fabric
    /// shares the sink, since handles are reference-counted.
    sink: SinkHandle,
}

impl Fabric {
    /// Creates a fabric with `containers` Atom Containers at the default
    /// 100 MHz clock.
    ///
    /// # Panics
    ///
    /// Panics if the catalog does not cover the atom set (name-for-name).
    #[must_use]
    pub fn new(atoms: AtomSet, catalog: AtomCatalog, containers: usize) -> Self {
        Self::with_clock(atoms, catalog, containers, Clock::default())
    }

    /// Creates a fabric with an explicit clock.
    ///
    /// # Panics
    ///
    /// Panics if the catalog does not cover the atom set (name-for-name).
    #[must_use]
    pub fn with_clock(
        atoms: AtomSet,
        catalog: AtomCatalog,
        containers: usize,
        clock: Clock,
    ) -> Self {
        assert!(
            catalog.matches(&atoms),
            "atom catalog must be index-aligned with the atom set"
        );
        Fabric {
            atoms,
            catalog,
            clock,
            containers: vec![AtomContainer::new(); containers],
            queue: VecDeque::new(),
            in_flight: None,
            events: Vec::new(),
            sink: SinkHandle::null(),
        }
    }

    /// The platform Atom set.
    #[must_use]
    pub fn atoms(&self) -> &AtomSet {
        &self.atoms
    }

    /// The Atom hardware catalog.
    #[must_use]
    pub fn catalog(&self) -> &AtomCatalog {
        &self.catalog
    }

    /// The simulation clock — the single source of simulated time for the
    /// whole platform (manager and engine re-expose this same instance).
    #[must_use]
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Current fabric time, in cycles (shorthand for `clock().now()`).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Installs a structured-event sink; the fabric emits
    /// [`Event::RotationStarted`] / [`Event::RotationCompleted`] into it.
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    /// The installed structured-event sink (disabled by default).
    #[must_use]
    pub fn sink(&self) -> &SinkHandle {
        &self.sink
    }

    /// Number of Atom Containers.
    #[must_use]
    pub fn num_containers(&self) -> usize {
        self.containers.len()
    }

    /// Read access to one container.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn container(&self, id: ContainerId) -> &AtomContainer {
        &self.containers[id.index()]
    }

    /// Iterates `(id, container)` pairs.
    pub fn iter_containers(&self) -> impl Iterator<Item = (ContainerId, &AtomContainer)> {
        self.containers
            .iter()
            .enumerate()
            .map(|(i, c)| (ContainerId(i), c))
    }

    /// Re-allocates a container to a task tag.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::UnknownContainer`] for an out-of-range id.
    pub fn set_owner(&mut self, id: ContainerId, owner: Option<u32>) -> Result<(), FabricError> {
        self.containers
            .get_mut(id.index())
            .ok_or(FabricError::UnknownContainer(id))?
            .set_owner(owner);
        Ok(())
    }

    /// Records that the Atoms of `used` were exercised at the current time
    /// (for LRU-style replacement decisions). For each kind, the
    /// most-recently-loaded containers are touched first.
    pub fn touch_atoms(&mut self, used: &Molecule) {
        let now = self.clock.now();
        for (kind, count) in used.iter_nonzero() {
            let mut remaining = count;
            for c in self.containers.iter_mut() {
                if remaining == 0 {
                    break;
                }
                if c.loaded_kind() == Some(kind) {
                    c.touch(now);
                    remaining -= 1;
                }
            }
        }
    }

    /// The Meta-Molecule of all *usable* (fully loaded) Atoms.
    #[must_use]
    pub fn loaded_molecule(&self) -> Molecule {
        Molecule::from_pairs(
            self.atoms.len(),
            self.containers
                .iter()
                .filter_map(|c| c.loaded_kind().map(|k| (k, 1))),
        )
    }

    /// The Meta-Molecule that will be loaded once all queued and in-flight
    /// rotations complete (loaded Atoms not scheduled for overwrite, plus
    /// every rotation target).
    #[must_use]
    pub fn committed_molecule(&self) -> Molecule {
        let pending_overwrite: Vec<usize> = self.queue.iter().map(|&(c, _)| c.index()).collect();
        let mut pairs: Vec<(AtomKind, u32)> = Vec::new();
        for (i, c) in self.containers.iter().enumerate() {
            match c.state() {
                ContainerState::Loaded { kind } if !pending_overwrite.contains(&i) => {
                    pairs.push((kind, 1));
                }
                ContainerState::Loading { kind, .. } => pairs.push((kind, 1)),
                _ => {}
            }
        }
        pairs.extend(self.queue.iter().map(|&(_, k)| (k, 1)));
        Molecule::from_pairs(self.atoms.len(), pairs)
    }

    /// Returns `true` when neither a rotation is in flight nor queued.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_none() && self.queue.is_empty()
    }

    /// Completion cycle of the in-flight rotation, if any.
    #[must_use]
    pub fn next_completion(&self) -> Option<u64> {
        let id = self.in_flight?;
        match self.containers[id.index()].state() {
            ContainerState::Loading { done_at, .. } => Some(done_at),
            _ => None,
        }
    }

    /// Cycle by which *all* currently queued rotations will have completed.
    #[must_use]
    pub fn all_rotations_done_at(&self) -> Option<u64> {
        let mut t = self.next_completion()?;
        for &(_, kind) in &self.queue {
            t += self.catalog.rotation_cycles(kind, &self.clock);
        }
        Some(t)
    }

    /// Requests a rotation writing `kind` into container `id`.
    ///
    /// The request queues behind the single reconfiguration port. Until the
    /// write starts, the container's previous Atom (if any) stays usable.
    ///
    /// # Errors
    ///
    /// * [`FabricError::UnknownContainer`] / [`FabricError::UnknownKind`]
    ///   for out-of-range arguments;
    /// * [`FabricError::RotationPending`] when the container already has a
    ///   queued or in-flight rotation.
    pub fn request_rotation(&mut self, id: ContainerId, kind: AtomKind) -> Result<(), FabricError> {
        if id.index() >= self.containers.len() {
            return Err(FabricError::UnknownContainer(id));
        }
        if kind.index() >= self.atoms.len() {
            return Err(FabricError::UnknownKind(kind));
        }
        let pending = self.in_flight == Some(id) || self.queue.iter().any(|&(c, _)| c == id);
        if pending {
            return Err(FabricError::RotationPending(id));
        }
        self.queue.push_back((id, kind));
        self.pump(self.clock.now());
        Ok(())
    }

    /// Cancels a queued (not yet started) rotation. Returns `true` if a
    /// request was removed.
    pub fn cancel_pending(&mut self, id: ContainerId) -> bool {
        let before = self.queue.len();
        self.queue.retain(|&(c, _)| c != id);
        before != self.queue.len()
    }

    /// Cancels every queued (not yet started) rotation and returns how
    /// many were removed. The in-flight rotation, if any, continues — the
    /// SelectMap port cannot abort a partial bitstream write.
    pub fn cancel_all_pending(&mut self) -> usize {
        let n = self.queue.len();
        self.queue.clear();
        n
    }

    /// The queued (not yet started) rotations in FIFO order.
    #[must_use]
    pub fn pending_rotations(&self) -> Vec<(ContainerId, AtomKind)> {
        self.queue.iter().copied().collect()
    }

    /// Advances fabric time to `t`, completing and starting rotations, and
    /// returns the events that occurred in `(now, t]` in order.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::TimeReversal`] when `t` is in the past.
    pub fn advance_to(&mut self, t: u64) -> Result<Vec<FabricEvent>, FabricError> {
        let now = self.clock.now();
        if t < now {
            return Err(FabricError::TimeReversal { now, requested: t });
        }
        self.pump(t);
        self.clock.advance_to(t);
        Ok(std::mem::take(&mut self.events))
    }

    /// Processes completions and queue starts with horizon `t`.
    fn pump(&mut self, t: u64) {
        loop {
            // Complete the in-flight rotation if it finishes within the
            // horizon.
            if let Some(id) = self.in_flight {
                let ContainerState::Loading { kind, done_at } = self.containers[id.index()].state()
                else {
                    unreachable!("in-flight container must be loading");
                };
                if done_at <= t {
                    self.containers[id.index()].set_state(ContainerState::Loaded { kind });
                    self.events.push(FabricEvent::RotationCompleted {
                        container: id,
                        kind,
                        at: done_at,
                    });
                    self.sink.emit_with(done_at, || Event::RotationCompleted {
                        container: id.index() as u32,
                        kind,
                    });
                    // The Atom is usable from this cycle on: occupancy
                    // becomes observable from the event stream alone.
                    self.sink.emit_with(done_at, || Event::ContainerLoaded {
                        container: id.index() as u32,
                        kind,
                    });
                    self.in_flight = None;
                    // The port frees at `done_at`; queued loads may start.
                    if let Some((next_id, next_kind)) = self.queue.pop_front() {
                        self.start_rotation(next_id, next_kind, done_at);
                    }
                    continue;
                }
                break; // still in flight past the horizon
            }
            // Port idle: the only way a request lingers here is that it was
            // just enqueued (request_rotation pumps immediately), so it
            // starts at the current time.
            match self.queue.pop_front() {
                Some((id, kind)) => {
                    let at = self.clock.now();
                    self.start_rotation(id, kind, at);
                }
                None => break,
            }
        }
    }

    fn start_rotation(&mut self, id: ContainerId, kind: AtomKind, at: u64) {
        // An overwrite destroys the previous Atom the moment the bitstream
        // write starts — announce the eviction before the rotation itself.
        if let ContainerState::Loaded { kind: old } = self.containers[id.index()].state() {
            self.sink.emit_with(at, || Event::ContainerEvicted {
                container: id.index() as u32,
                kind: old,
            });
        }
        let duration = self.catalog.rotation_cycles(kind, &self.clock);
        self.containers[id.index()].set_state(ContainerState::Loading {
            kind,
            done_at: at + duration,
        });
        self.events.push(FabricEvent::RotationStarted {
            container: id,
            kind,
            at,
        });
        self.sink.emit_with(at, || Event::RotationStarted {
            container: id.index() as u32,
            kind,
        });
        self.in_flight = Some(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::table1_profiles;

    fn fabric(containers: usize) -> Fabric {
        let atoms = AtomSet::from_names(["Transform", "SATD", "Pack", "QuadSub"]);
        let catalog = AtomCatalog::new(table1_profiles().to_vec());
        Fabric::new(atoms, catalog, containers)
    }

    #[test]
    fn single_rotation_completes_after_rotation_time() {
        let mut f = fabric(2);
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        let done = f.next_completion().unwrap();
        // Transform: 857.63 µs ≈ 85 763 cycles at 100 MHz.
        assert!((85_000..87_000).contains(&done));
        let events = f.advance_to(done).unwrap();
        assert_eq!(events.len(), 2); // started + completed
        assert_eq!(f.loaded_molecule(), Molecule::from_counts([1, 0, 0, 0]));
        assert!(f.is_idle());
    }

    #[test]
    fn rotations_serialize_through_one_port() {
        let mut f = fabric(2);
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.request_rotation(ContainerId(1), AtomKind(1)).unwrap();
        let first_done = f.next_completion().unwrap();
        let events = f.advance_to(first_done).unwrap();
        // Second rotation starts exactly when the first completes.
        assert!(events.iter().any(|e| matches!(
            e,
            FabricEvent::RotationStarted { container: ContainerId(1), at, .. } if *at == first_done
        )));
        assert_eq!(f.loaded_molecule().determinant(), 1);
        let all_done = f.next_completion().unwrap();
        f.advance_to(all_done).unwrap();
        assert_eq!(f.loaded_molecule().determinant(), 2);
    }

    #[test]
    fn old_atom_usable_until_overwrite_starts() {
        let mut f = fabric(1);
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.advance_to(f.next_completion().unwrap()).unwrap();
        assert_eq!(f.loaded_molecule().count(AtomKind(0)), 1);
        // Overwrite with a different kind: usable old atom disappears as
        // soon as the rotation starts (the port is free, so immediately).
        f.request_rotation(ContainerId(0), AtomKind(2)).unwrap();
        assert_eq!(f.loaded_molecule().determinant(), 0);
        f.advance_to(f.next_completion().unwrap()).unwrap();
        assert_eq!(f.loaded_molecule().count(AtomKind(2)), 1);
    }

    #[test]
    fn queued_overwrite_keeps_old_atom_until_start() {
        let mut f = fabric(2);
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.advance_to(f.next_completion().unwrap()).unwrap();
        // Start a long rotation on AC1, then queue an overwrite of AC0.
        f.request_rotation(ContainerId(1), AtomKind(2)).unwrap();
        f.request_rotation(ContainerId(0), AtomKind(3)).unwrap();
        // AC0's Transform is still usable while the port works on AC1.
        assert_eq!(f.loaded_molecule().count(AtomKind(0)), 1);
        let t1 = f.next_completion().unwrap();
        f.advance_to(t1).unwrap();
        // Now the overwrite of AC0 started: Transform gone, Pack loaded.
        assert_eq!(f.loaded_molecule().count(AtomKind(0)), 0);
        assert_eq!(f.loaded_molecule().count(AtomKind(2)), 1);
    }

    #[test]
    fn committed_molecule_includes_queue() {
        let mut f = fabric(3);
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.request_rotation(ContainerId(1), AtomKind(1)).unwrap();
        f.request_rotation(ContainerId(2), AtomKind(1)).unwrap();
        assert_eq!(f.committed_molecule(), Molecule::from_counts([1, 2, 0, 0]));
        assert_eq!(f.loaded_molecule().determinant(), 0);
    }

    #[test]
    fn duplicate_request_rejected() {
        let mut f = fabric(2);
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        assert_eq!(
            f.request_rotation(ContainerId(0), AtomKind(1)),
            Err(FabricError::RotationPending(ContainerId(0)))
        );
    }

    #[test]
    fn out_of_range_arguments_rejected() {
        let mut f = fabric(1);
        assert!(matches!(
            f.request_rotation(ContainerId(5), AtomKind(0)),
            Err(FabricError::UnknownContainer(_))
        ));
        assert!(matches!(
            f.request_rotation(ContainerId(0), AtomKind(9)),
            Err(FabricError::UnknownKind(_))
        ));
    }

    #[test]
    fn time_reversal_rejected() {
        let mut f = fabric(1);
        f.advance_to(100).unwrap();
        assert!(matches!(
            f.advance_to(50),
            Err(FabricError::TimeReversal { .. })
        ));
    }

    #[test]
    fn cancel_pending_removes_queued_only() {
        let mut f = fabric(2);
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.request_rotation(ContainerId(1), AtomKind(1)).unwrap();
        assert!(f.cancel_pending(ContainerId(1)));
        assert!(!f.cancel_pending(ContainerId(0))); // already in flight
        f.advance_to(f.next_completion().unwrap()).unwrap();
        assert!(f.is_idle());
        assert_eq!(f.loaded_molecule().determinant(), 1);
    }

    #[test]
    fn all_rotations_done_at_accumulates_queue() {
        let mut f = fabric(3);
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.request_rotation(ContainerId(1), AtomKind(0)).unwrap();
        let single = f.next_completion().unwrap();
        let all = f.all_rotations_done_at().unwrap();
        assert_eq!(all, 2 * single);
    }

    #[test]
    fn touch_atoms_updates_lru_metadata() {
        let mut f = fabric(2);
        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.request_rotation(ContainerId(1), AtomKind(1)).unwrap();
        let t = f.all_rotations_done_at().unwrap();
        f.advance_to(t + 10).unwrap();
        f.touch_atoms(&Molecule::from_counts([1, 0, 0, 0]));
        assert_eq!(f.container(ContainerId(0)).last_used(), t + 10);
        assert_eq!(f.container(ContainerId(1)).last_used(), 0);
    }

    #[test]
    fn owner_reallocation() {
        let mut f = fabric(1);
        f.set_owner(ContainerId(0), Some(7)).unwrap();
        assert_eq!(f.container(ContainerId(0)).owner(), Some(7));
        assert!(f.set_owner(ContainerId(3), None).is_err());
    }

    #[test]
    fn sink_receives_rotation_events_at_source() {
        use rispp_obs::TimelineSink;
        use std::cell::RefCell;
        use std::rc::Rc;

        let timeline = Rc::new(RefCell::new(TimelineSink::new()));
        let mut f = fabric(2);
        f.set_sink(SinkHandle::shared(timeline.clone()));
        assert!(f.sink().is_enabled());

        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.request_rotation(ContainerId(1), AtomKind(1)).unwrap();
        let first_done = f.next_completion().unwrap();
        let all_done = f.all_rotations_done_at().unwrap();
        f.advance_to(all_done).unwrap();

        let tl = timeline.borrow();
        let records = tl.timeline().entries();
        // start(0) @0, done(0)+load(0) @first_done, start(1) @first_done,
        // done(1)+load(1) @all_done. Fresh containers: no evictions.
        assert_eq!(records.len(), 6);
        assert_eq!(
            records[0].event,
            Event::RotationStarted {
                container: 0,
                kind: AtomKind(0)
            }
        );
        assert_eq!(records[1].at, first_done);
        assert_eq!(
            records[2].event,
            Event::ContainerLoaded {
                container: 0,
                kind: AtomKind(0)
            }
        );
        assert_eq!(
            records[3].event,
            Event::RotationStarted {
                container: 1,
                kind: AtomKind(1)
            }
        );
        assert_eq!(records[3].at, first_done);
        assert_eq!(
            records[4].event,
            Event::RotationCompleted {
                container: 1,
                kind: AtomKind(1)
            }
        );
        assert_eq!(records[4].at, all_done);
        assert_eq!(
            records[5].event,
            Event::ContainerLoaded {
                container: 1,
                kind: AtomKind(1)
            }
        );
    }

    #[test]
    fn overwrite_emits_eviction_before_rotation_start() {
        use rispp_obs::TimelineSink;
        use std::cell::RefCell;
        use std::rc::Rc;

        let timeline = Rc::new(RefCell::new(TimelineSink::new()));
        let mut f = fabric(1);
        f.set_sink(SinkHandle::shared(timeline.clone()));

        f.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        f.advance_to(f.next_completion().unwrap()).unwrap();
        let overwrite_at = f.now();
        f.request_rotation(ContainerId(0), AtomKind(2)).unwrap();

        let tl = timeline.borrow();
        let records = tl.timeline().entries();
        // start(0), done(0), load(0), evict(0), start(0 again).
        assert_eq!(records.len(), 5);
        assert_eq!(
            records[3].event,
            Event::ContainerEvicted {
                container: 0,
                kind: AtomKind(0)
            }
        );
        assert_eq!(records[3].at, overwrite_at);
        assert_eq!(
            records[4].event,
            Event::RotationStarted {
                container: 0,
                kind: AtomKind(2)
            }
        );
    }
}
