//! Deterministic fault injection for the fabric.
//!
//! A [`FaultPlan`] is a *schedule* of faults fixed before the run starts:
//! given the same plan and the same request sequence, the fabric produces
//! the same event stream, so every chaos run is replayable. The taxonomy
//! covers the failure modes of real partial-reconfiguration flows:
//!
//! * **CRC failures** — a bitstream transfer completes but fails
//!   verification; the container ends up empty and the rotation must be
//!   retried. Keyed by *rotation sequence number* (the order rotations
//!   start), so a retry is a fresh rotation that may succeed.
//! * **Port stalls** — wall-clock windows during which the single
//!   SelectMap port makes no progress; in-flight transfers stretch.
//! * **Transient container faults** — a single-event upset at a given
//!   cycle evicts whatever Atom the container holds at that moment.
//! * **Bad containers** — permanently broken regions: the first rotation
//!   targeting one fails and the container is quarantined for good.
//!
//! Plans serialize to a compact text form (see [`FaultPlan::from_str`])
//! so a failing chaos run can be reproduced from its report alone.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::container::ContainerId;

/// A half-open window `[from, until)` during which the reconfiguration
/// port makes no progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallWindow {
    /// First stalled cycle.
    pub from: u64,
    /// First cycle after the stall (exclusive).
    pub until: u64,
}

/// A deterministic, serializable schedule of fabric faults.
///
/// Construct one directly, derive one from a seed with
/// [`FaultPlan::seeded`], or parse the compact text form with
/// [`str::parse`]. Install it with
/// [`Fabric::with_faults`](crate::Fabric::with_faults).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Rotation sequence numbers (0-based, in start order) whose
    /// bitstream fails CRC verification at completion.
    pub crc_failures: Vec<u64>,
    /// Windows during which the reconfiguration port stalls.
    pub stall_windows: Vec<StallWindow>,
    /// `(cycle, container)` single-event upsets: at `cycle` the container
    /// loses its loaded Atom (no effect while loading or empty).
    pub transient_faults: Vec<(u64, ContainerId)>,
    /// Containers that are permanently broken: their first completed
    /// rotation fails and quarantines them.
    pub bad_containers: Vec<ContainerId>,
}

/// SplitMix64: the minimal deterministic generator, good enough for
/// scattering fault times and avoiding an RNG dependency in this crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan that injects nothing (the fault-free fabric).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crc_failures.is_empty()
            && self.stall_windows.is_empty()
            && self.transient_faults.is_empty()
            && self.bad_containers.is_empty()
    }

    /// Derives a reproducible plan from a seed: a handful of CRC
    /// failures among the first rotations, one or two port-stall
    /// windows, up to two transient container faults inside
    /// `horizon_cycles`, and (for seeds where the low bit of a draw is
    /// set, when more than two containers exist) one permanently bad
    /// container. Same arguments, same plan.
    #[must_use]
    pub fn seeded(seed: u64, containers: usize, horizon_cycles: u64) -> Self {
        let mut s = seed;
        let horizon = horizon_cycles.max(16);
        let mut plan = FaultPlan::default();

        let crc_count = 1 + (splitmix64(&mut s) % 3);
        for _ in 0..crc_count {
            plan.crc_failures.push(splitmix64(&mut s) % 24);
        }
        plan.crc_failures.sort_unstable();
        plan.crc_failures.dedup();

        let stall_count = 1 + (splitmix64(&mut s) % 2);
        for _ in 0..stall_count {
            let from = splitmix64(&mut s) % horizon;
            let len = 1 + (splitmix64(&mut s) % (horizon / 16).max(1));
            plan.stall_windows.push(StallWindow {
                from,
                until: from.saturating_add(len),
            });
        }

        if containers > 0 {
            let transient_count = splitmix64(&mut s) % 3;
            for _ in 0..transient_count {
                let at = splitmix64(&mut s) % horizon;
                let container = ContainerId((splitmix64(&mut s) % containers as u64) as usize);
                plan.transient_faults.push((at, container));
            }
        }

        if containers > 2 && splitmix64(&mut s) & 1 == 1 {
            plan.bad_containers.push(ContainerId(
                (splitmix64(&mut s) % containers as u64) as usize,
            ));
        }

        plan.normalize();
        plan
    }

    /// Sorts, merges and dedups the schedule so injection order is
    /// well-defined regardless of how the plan was assembled. Called by
    /// the fabric when the plan is installed.
    pub fn normalize(&mut self) {
        self.crc_failures.sort_unstable();
        self.crc_failures.dedup();
        self.stall_windows.retain(|w| w.until > w.from);
        self.stall_windows.sort_by_key(|w| (w.from, w.until));
        // Merge overlapping / adjacent stall windows.
        let mut merged: Vec<StallWindow> = Vec::with_capacity(self.stall_windows.len());
        for w in self.stall_windows.drain(..) {
            match merged.last_mut() {
                Some(last) if w.from <= last.until => last.until = last.until.max(w.until),
                _ => merged.push(w),
            }
        }
        self.stall_windows = merged;
        self.transient_faults
            .sort_unstable_by_key(|&(at, c)| (at, c));
        self.transient_faults.dedup();
        self.bad_containers.sort_unstable();
        self.bad_containers.dedup();
    }
}

impl fmt::Display for FaultPlan {
    /// The compact text form parsed by [`FaultPlan::from_str`]; the
    /// empty plan prints as `none`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("none");
        }
        let mut sections: Vec<String> = Vec::new();
        if !self.crc_failures.is_empty() {
            let seqs: Vec<String> = self.crc_failures.iter().map(u64::to_string).collect();
            sections.push(format!("crc={}", seqs.join(",")));
        }
        if !self.stall_windows.is_empty() {
            let windows: Vec<String> = self
                .stall_windows
                .iter()
                .map(|w| format!("{}..{}", w.from, w.until))
                .collect();
            sections.push(format!("stall={}", windows.join(",")));
        }
        if !self.transient_faults.is_empty() {
            let faults: Vec<String> = self
                .transient_faults
                .iter()
                .map(|(at, c)| format!("{at}@{}", c.index()))
                .collect();
            sections.push(format!("transient={}", faults.join(",")));
        }
        if !self.bad_containers.is_empty() {
            let bad: Vec<String> = self
                .bad_containers
                .iter()
                .map(|c| c.index().to_string())
                .collect();
            sections.push(format!("bad={}", bad.join(",")));
        }
        f.write_str(&sections.join(";"))
    }
}

/// A malformed [`FaultPlan`] text form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanParseError {
    /// What was wrong with the input.
    pub message: String,
}

impl fmt::Display for FaultPlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed fault plan: {}", self.message)
    }
}

impl Error for FaultPlanParseError {}

fn parse_err(message: impl Into<String>) -> FaultPlanParseError {
    FaultPlanParseError {
        message: message.into(),
    }
}

impl FromStr for FaultPlan {
    type Err = FaultPlanParseError;

    /// Parses the compact text form, e.g.
    /// `crc=3,17;stall=1000..5000;transient=12000@2;bad=4` — sections are
    /// `;`-separated, each optional; `none` (or the empty string) is the
    /// empty plan.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "none" {
            return Ok(FaultPlan::default());
        }
        let mut plan = FaultPlan::default();
        for section in s.split(';') {
            let (key, body) = section
                .split_once('=')
                .ok_or_else(|| parse_err(format!("section {section:?} has no '='")))?;
            match key {
                "crc" => {
                    for item in body.split(',') {
                        let seq: u64 = item
                            .parse()
                            .map_err(|_| parse_err(format!("bad crc seq {item:?}")))?;
                        plan.crc_failures.push(seq);
                    }
                }
                "stall" => {
                    for item in body.split(',') {
                        let (from, until) = item
                            .split_once("..")
                            .ok_or_else(|| parse_err(format!("stall {item:?} has no '..'")))?;
                        let from: u64 = from
                            .parse()
                            .map_err(|_| parse_err(format!("bad stall start {from:?}")))?;
                        let until: u64 = until
                            .parse()
                            .map_err(|_| parse_err(format!("bad stall end {until:?}")))?;
                        if until <= from {
                            return Err(parse_err(format!("empty stall window {item:?}")));
                        }
                        plan.stall_windows.push(StallWindow { from, until });
                    }
                }
                "transient" => {
                    for item in body.split(',') {
                        let (at, container) = item
                            .split_once('@')
                            .ok_or_else(|| parse_err(format!("transient {item:?} has no '@'")))?;
                        let at: u64 = at
                            .parse()
                            .map_err(|_| parse_err(format!("bad transient cycle {at:?}")))?;
                        let container: usize = container
                            .parse()
                            .map_err(|_| parse_err(format!("bad container {container:?}")))?;
                        plan.transient_faults.push((at, ContainerId(container)));
                    }
                }
                "bad" => {
                    for item in body.split(',') {
                        let container: usize = item
                            .parse()
                            .map_err(|_| parse_err(format!("bad container {item:?}")))?;
                        plan.bad_containers.push(ContainerId(container));
                    }
                }
                other => return Err(parse_err(format!("unknown section {other:?}"))),
            }
        }
        plan.normalize();
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_round_trips_as_none() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.to_string(), "none");
        assert_eq!("none".parse::<FaultPlan>().unwrap(), plan);
        assert_eq!("".parse::<FaultPlan>().unwrap(), plan);
    }

    #[test]
    fn full_plan_round_trips_through_text() {
        let plan = FaultPlan {
            crc_failures: vec![3, 17],
            stall_windows: vec![
                StallWindow {
                    from: 1_000,
                    until: 5_000,
                },
                StallWindow {
                    from: 80_000,
                    until: 90_000,
                },
            ],
            transient_faults: vec![(12_000, ContainerId(2))],
            bad_containers: vec![ContainerId(4)],
        };
        let text = plan.to_string();
        assert_eq!(
            text,
            "crc=3,17;stall=1000..5000,80000..90000;transient=12000@2;bad=4"
        );
        assert_eq!(text.parse::<FaultPlan>().unwrap(), plan);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_round_trip() {
        for seed in 0..64u64 {
            let a = FaultPlan::seeded(seed, 6, 2_000_000);
            let b = FaultPlan::seeded(seed, 6, 2_000_000);
            assert_eq!(a, b);
            assert!(!a.crc_failures.is_empty());
            assert!(!a.stall_windows.is_empty());
            assert_eq!(
                a.to_string().parse::<FaultPlan>().unwrap(),
                a,
                "seed {seed}"
            );
        }
        assert_ne!(
            FaultPlan::seeded(1, 6, 2_000_000),
            FaultPlan::seeded(2, 6, 2_000_000)
        );
    }

    #[test]
    fn normalize_merges_overlapping_stalls() {
        let mut plan = FaultPlan {
            stall_windows: vec![
                StallWindow {
                    from: 50,
                    until: 70,
                },
                StallWindow {
                    from: 10,
                    until: 30,
                },
                StallWindow {
                    from: 20,
                    until: 55,
                },
                StallWindow {
                    from: 90,
                    until: 90,
                }, // empty, dropped
            ],
            ..FaultPlan::default()
        };
        plan.normalize();
        assert_eq!(
            plan.stall_windows,
            vec![StallWindow {
                from: 10,
                until: 70
            }]
        );
    }

    #[test]
    fn malformed_plans_are_rejected() {
        for bad in [
            "crc",
            "crc=x",
            "stall=5..3",
            "stall=5",
            "transient=9",
            "transient=a@1",
            "wat=1",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "accepted {bad:?}");
        }
    }
}
