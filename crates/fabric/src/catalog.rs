//! Hardware characteristics of Atoms (the paper's Table 1) and the
//! reconfiguration-interface model.
//!
//! The prototype loads Atom bitstreams through the Virtex-II SelectMap
//! interface. All four measured (bitstream size, rotation time) pairs of
//! Table 1 give the same effective transfer rate of 69.2 MB/s (e.g.
//! 59 353 B / 857.63 µs), so the model derives rotation time from bitstream
//! size at that rate — which also reproduces the paper's observation that
//! the AC covering an embedded BlockRAM row (Pack) has a noticeably larger
//! bitstream and therefore rotation time, despite moderate logic
//! utilisation.

use crate::clock::Clock;
use rispp_core::atom::{AtomKind, AtomSet};

/// Effective SelectMap transfer rate implied by Table 1, in bytes/second.
pub const SELECTMAP_RATE_BYTES_PER_SEC: f64 = 69.2e6;

/// Slices per Atom Container in the prototype (full FPGA height, 4 CLB
/// columns on the XC2V3000).
pub const CONTAINER_SLICES: u32 = 1024;

/// 4-input LUTs per Atom Container.
pub const CONTAINER_LUTS: u32 = 2048;

/// Synthesis/implementation characteristics of one Atom kind.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomHwProfile {
    /// Human-readable Atom name (matches the platform [`AtomSet`]).
    pub name: String,
    /// Occupied slices.
    pub slices: u32,
    /// Occupied 4-input LUTs.
    pub luts: u32,
    /// Partial bitstream size in bytes.
    pub bitstream_bytes: u64,
}

impl AtomHwProfile {
    /// Creates a profile.
    #[must_use]
    pub fn new<S: Into<String>>(name: S, slices: u32, luts: u32, bitstream_bytes: u64) -> Self {
        AtomHwProfile {
            name: name.into(),
            slices,
            luts,
            bitstream_bytes,
        }
    }

    /// Container logic utilisation as a fraction of [`CONTAINER_LUTS`]
    /// (Table 1's utilisation column is LUT-based: e.g. SATD 808/2048 =
    /// 39.5 %).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        f64::from(self.luts) / f64::from(CONTAINER_LUTS)
    }

    /// Rotation (reconfiguration) time in microseconds at a given transfer
    /// rate.
    #[must_use]
    pub fn rotation_time_us(&self, rate_bytes_per_sec: f64) -> f64 {
        self.bitstream_bytes as f64 / rate_bytes_per_sec * 1e6
    }
}

/// Catalog of per-Atom hardware profiles, indexed like the platform
/// [`AtomSet`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AtomCatalog {
    profiles: Vec<AtomHwProfile>,
    rate_bytes_per_sec: f64,
}

impl AtomCatalog {
    /// Creates a catalog from per-kind profiles (index-aligned with the
    /// platform [`AtomSet`]) at the default SelectMap rate.
    #[must_use]
    pub fn new(profiles: Vec<AtomHwProfile>) -> Self {
        AtomCatalog {
            profiles,
            rate_bytes_per_sec: SELECTMAP_RATE_BYTES_PER_SEC,
        }
    }

    /// Overrides the reconfiguration transfer rate (e.g. to explore faster
    /// memory bandwidth, from which the paper says the concept "would
    /// directly profit").
    #[must_use]
    pub fn with_rate(mut self, rate_bytes_per_sec: f64) -> Self {
        assert!(rate_bytes_per_sec > 0.0, "transfer rate must be positive");
        self.rate_bytes_per_sec = rate_bytes_per_sec;
        self
    }

    /// Reconfiguration transfer rate in bytes/second.
    #[must_use]
    pub fn rate_bytes_per_sec(&self) -> f64 {
        self.rate_bytes_per_sec
    }

    /// Number of profiled Atom kinds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Returns `true` when the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Profile of one Atom kind.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is out of range.
    #[must_use]
    pub fn profile(&self, kind: AtomKind) -> &AtomHwProfile {
        &self.profiles[kind.index()]
    }

    /// Rotation time of one Atom in microseconds.
    #[must_use]
    pub fn rotation_time_us(&self, kind: AtomKind) -> f64 {
        self.profile(kind).rotation_time_us(self.rate_bytes_per_sec)
    }

    /// Rotation time of one Atom in core cycles under `clock`.
    #[must_use]
    pub fn rotation_cycles(&self, kind: AtomKind, clock: &Clock) -> u64 {
        clock.us_to_cycles(self.rotation_time_us(kind))
    }

    /// Iterates `(kind, profile)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AtomKind, &AtomHwProfile)> {
        self.profiles
            .iter()
            .enumerate()
            .map(|(i, p)| (AtomKind(i), p))
    }

    /// Checks that the catalog names align with an [`AtomSet`].
    #[must_use]
    pub fn matches(&self, atoms: &AtomSet) -> bool {
        self.len() == atoms.len()
            && self
                .iter()
                .all(|(kind, profile)| atoms.name(kind) == profile.name)
    }
}

/// The four measured Atom profiles of the paper's Table 1, in the order
/// Transform, SATD, Pack, QuadSub.
///
/// # Examples
///
/// ```
/// use rispp_fabric::catalog::{table1_profiles, SELECTMAP_RATE_BYTES_PER_SEC};
///
/// let transform = &table1_profiles()[0];
/// let t = transform.rotation_time_us(SELECTMAP_RATE_BYTES_PER_SEC);
/// assert!((t - 857.63).abs() < 1.0); // Table 1: 857.63 µs
/// ```
#[must_use]
pub fn table1_profiles() -> [AtomHwProfile; 4] {
    [
        AtomHwProfile::new("Transform", 517, 1034, 59_353),
        AtomHwProfile::new("SATD", 407, 808, 58_141),
        AtomHwProfile::new("Pack", 406, 812, 65_713),
        AtomHwProfile::new("QuadSub", 352, 700, 58_745),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rotation_times_reproduced() {
        // Paper Table 1: rotation time [µs] per Atom.
        let expected = [857.63, 840.11, 949.53, 848.84];
        for (profile, want) in table1_profiles().iter().zip(expected) {
            let got = profile.rotation_time_us(SELECTMAP_RATE_BYTES_PER_SEC);
            assert!(
                (got - want).abs() / want < 0.005,
                "{}: got {got:.2} µs, want {want:.2} µs",
                profile.name
            );
        }
    }

    #[test]
    fn table1_utilizations_reproduced() {
        // Paper Table 1: utilisation 50.5 %, 39.5 %, 39.7 %, 34.2 %.
        let expected = [0.505, 0.395, 0.397, 0.342];
        for (profile, want) in table1_profiles().iter().zip(expected) {
            assert!(
                (profile.utilization() - want).abs() < 0.005,
                "{}: utilization {}",
                profile.name,
                profile.utilization()
            );
        }
    }

    #[test]
    fn pack_has_biggest_bitstream() {
        // The AC loaded with Pack covers a BlockRAM row → biggest bitstream
        // and rotation time despite moderate logic utilisation.
        let profiles = table1_profiles();
        let pack = profiles.iter().find(|p| p.name == "Pack").unwrap();
        assert!(profiles
            .iter()
            .all(|p| p.bitstream_bytes <= pack.bitstream_bytes));
        assert!(pack.utilization() < 0.5);
    }

    #[test]
    fn rotation_cycles_uses_clock() {
        let catalog = AtomCatalog::new(table1_profiles().to_vec());
        let clock = Clock::default();
        let cycles = catalog.rotation_cycles(AtomKind(0), &clock);
        // ~857.63 µs at 100 MHz ≈ 85 763 cycles.
        assert!((85_000..87_000).contains(&cycles), "cycles = {cycles}");
    }

    #[test]
    fn faster_rate_shrinks_rotation() {
        let catalog = AtomCatalog::new(table1_profiles().to_vec());
        let fast = catalog
            .clone()
            .with_rate(2.0 * SELECTMAP_RATE_BYTES_PER_SEC);
        let k = AtomKind(2);
        assert!(fast.rotation_time_us(k) < catalog.rotation_time_us(k) / 1.9);
    }

    #[test]
    fn matches_checks_names() {
        let catalog = AtomCatalog::new(table1_profiles().to_vec());
        let good = AtomSet::from_names(["Transform", "SATD", "Pack", "QuadSub"]);
        let bad = AtomSet::from_names(["Transform", "Pack", "SATD", "QuadSub"]);
        assert!(catalog.matches(&good));
        assert!(!catalog.matches(&bad));
    }
}
