//! Time base: the platform's single simulated clock, plus conversion
//! between wall-clock microseconds (the unit of the paper's Table 1
//! rotation times) and core-processor cycles (the unit of Molecule
//! latencies and of the simulation).

/// The platform clock: current simulated time plus µs ↔ cycle conversion.
///
/// The paper's prototype runs a DLX soft core on a Virtex-II; we model it
/// at 100 MHz (see `DESIGN.md` §6), which puts one ~850 µs rotation at
/// ~85 000 core cycles — three to four orders of magnitude above a single
/// SI execution, exactly the regime that makes forecasting necessary.
///
/// The clock is the one source of simulated time. The
/// [`Fabric`](crate::fabric::Fabric) owns it and drives it forward via
/// `advance_to`; the run-time manager and the simulation engine expose the
/// same instance read-only, so "now" can never disagree between layers.
///
/// # Examples
///
/// ```
/// use rispp_fabric::clock::Clock;
///
/// let clock = Clock::default();
/// assert_eq!(clock.hz(), 100_000_000);
/// assert_eq!(clock.now(), 0);
/// assert_eq!(clock.us_to_cycles(857.63), 85_763);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clock {
    hz: u64,
    now: u64,
}

impl Clock {
    /// The default modelling frequency, 100 MHz.
    pub const DEFAULT_HZ: u64 = 100_000_000;

    /// Creates a clock with a custom frequency.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    #[must_use]
    pub fn new(hz: u64) -> Self {
        assert!(hz > 0, "clock frequency must be positive");
        Clock { hz, now: 0 }
    }

    /// Clock frequency in Hertz.
    #[must_use]
    pub fn hz(&self) -> u64 {
        self.hz
    }

    /// Current simulated time, in cycles since reset.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the clock to cycle `t`.
    ///
    /// Normally driven by the fabric (which validates time monotonicity and
    /// reports `FabricError::TimeReversal` to callers first).
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: u64) {
        assert!(
            t >= self.now,
            "clock cannot run backwards ({} -> {t})",
            self.now
        );
        self.now = t;
    }

    /// Converts a duration in microseconds to cycles (rounded to nearest).
    #[must_use]
    pub fn us_to_cycles(&self, us: f64) -> u64 {
        (us * self.hz as f64 / 1e6).round() as u64
    }

    /// Converts a cycle count to microseconds.
    #[must_use]
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 * 1e6 / self.hz as f64
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new(Self::DEFAULT_HZ)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_stable() {
        let clock = Clock::default();
        for us in [1.0, 857.63, 949.53, 10_000.0] {
            let cycles = clock.us_to_cycles(us);
            assert!((clock.cycles_to_us(cycles) - us).abs() < 0.01);
        }
    }

    #[test]
    fn custom_frequency() {
        let clock = Clock::new(50_000_000);
        assert_eq!(clock.us_to_cycles(1.0), 50);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_hz_rejected() {
        let _ = Clock::new(0);
    }

    #[test]
    fn advance_is_monotone() {
        let mut clock = Clock::default();
        assert_eq!(clock.now(), 0);
        clock.advance_to(100);
        clock.advance_to(100);
        assert_eq!(clock.now(), 100);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_rejects_time_reversal() {
        let mut clock = Clock::default();
        clock.advance_to(100);
        clock.advance_to(50);
    }
}
