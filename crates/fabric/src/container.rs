//! Atom Containers: the partially reconfigurable regions holding Atoms.

use std::fmt;

use rispp_core::atom::AtomKind;

/// Index of an Atom Container on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContainerId(pub usize);

impl ContainerId {
    /// Returns the dense index of this container.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AC{}", self.0)
    }
}

/// Occupancy state of one Atom Container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    /// The container holds no Atom.
    Empty,
    /// A rotation is writing `kind` into the container; until `done_at` the
    /// container is unusable (its previous content is already gone).
    Loading {
        /// Atom being written.
        kind: AtomKind,
        /// Cycle at which the rotation completes.
        done_at: u64,
    },
    /// The container holds a usable Atom.
    Loaded {
        /// Atom held.
        kind: AtomKind,
    },
    /// The container is permanently out of service (a rotation into it
    /// failed and diagnostics flagged the region as bad). It never holds
    /// a usable Atom again and rejects further rotations.
    Quarantined,
}

/// One Atom Container with replacement-policy metadata.
///
/// The `owner` tag implements the paper's Fig. 6 semantics: containers are
/// *allocated* to tasks, but a loaded Atom stays usable by any task as long
/// as it physically remains in the container ("they still contain the
/// Atoms needed to implement that SI and they share the available HW
/// resources").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomContainer {
    state: ContainerState,
    owner: Option<u32>,
    last_used: u64,
}

impl AtomContainer {
    /// A fresh, empty, unowned container.
    #[must_use]
    pub fn new() -> Self {
        AtomContainer {
            state: ContainerState::Empty,
            owner: None,
            last_used: 0,
        }
    }

    /// Current occupancy state.
    #[must_use]
    pub fn state(&self) -> ContainerState {
        self.state
    }

    pub(crate) fn set_state(&mut self, state: ContainerState) {
        self.state = state;
    }

    /// The usable Atom, if one is fully loaded.
    #[must_use]
    pub fn loaded_kind(&self) -> Option<AtomKind> {
        match self.state {
            ContainerState::Loaded { kind } => Some(kind),
            _ => None,
        }
    }

    /// Returns `true` while a rotation is in flight for this container.
    #[must_use]
    pub fn is_loading(&self) -> bool {
        matches!(self.state, ContainerState::Loading { .. })
    }

    /// Returns `true` once the container is permanently out of service.
    #[must_use]
    pub fn is_quarantined(&self) -> bool {
        matches!(self.state, ContainerState::Quarantined)
    }

    /// Task tag of the current allocation, if any.
    #[must_use]
    pub fn owner(&self) -> Option<u32> {
        self.owner
    }

    /// Re-allocates the container to a task (or to none).
    pub fn set_owner(&mut self, owner: Option<u32>) {
        self.owner = owner;
    }

    /// Cycle of the most recent use of the contained Atom.
    #[must_use]
    pub fn last_used(&self) -> u64 {
        self.last_used
    }

    /// Records a use of the contained Atom at cycle `now`.
    pub fn touch(&mut self, now: u64) {
        self.last_used = self.last_used.max(now);
    }
}

impl Default for AtomContainer {
    fn default() -> Self {
        AtomContainer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_container_is_empty() {
        let c = AtomContainer::new();
        assert_eq!(c.state(), ContainerState::Empty);
        assert_eq!(c.loaded_kind(), None);
        assert!(!c.is_loading());
        assert_eq!(c.owner(), None);
    }

    #[test]
    fn loading_hides_the_atom() {
        let mut c = AtomContainer::new();
        c.set_state(ContainerState::Loading {
            kind: AtomKind(1),
            done_at: 100,
        });
        assert!(c.is_loading());
        assert_eq!(c.loaded_kind(), None);
        c.set_state(ContainerState::Loaded { kind: AtomKind(1) });
        assert_eq!(c.loaded_kind(), Some(AtomKind(1)));
    }

    #[test]
    fn touch_is_monotone() {
        let mut c = AtomContainer::new();
        c.touch(50);
        c.touch(20);
        assert_eq!(c.last_used(), 50);
    }

    #[test]
    fn quarantine_is_not_usable_and_not_loading() {
        let mut c = AtomContainer::new();
        c.set_state(ContainerState::Quarantined);
        assert!(c.is_quarantined());
        assert!(!c.is_loading());
        assert_eq!(c.loaded_kind(), None);
    }

    #[test]
    fn display_of_container_id() {
        assert_eq!(ContainerId(3).to_string(), "AC3");
    }
}
