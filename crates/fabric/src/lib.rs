//! # rispp-fabric — reconfigurable-fabric substrate for RISPP
//!
//! The paper prototypes RISPP on a Xilinx XC2V3000 with four partially
//! reconfigurable *Atom Containers* (ACs) attached to the core's execution
//! data paths and loaded through the SelectMap interface. This crate
//! replaces that hardware with a simulator that preserves the properties
//! the RISPP algorithms actually depend on:
//!
//! * per-Atom bitstream sizes and reconfiguration times (Table 1, exactly
//!   reproduced — see [`catalog`]);
//! * a **single** reconfiguration port serialising rotations;
//! * ACs whose previous Atom remains usable until the overwrite starts and
//!   which are unusable while loading;
//! * µs ↔ cycle conversion under a fixed core clock ([`clock`]).
//!
//! # Examples
//!
//! ```
//! use rispp_core::atom::{AtomKind, AtomSet};
//! use rispp_fabric::{AtomCatalog, ContainerId, Fabric};
//! use rispp_fabric::catalog::table1_profiles;
//!
//! let atoms = AtomSet::from_names(["Transform", "SATD", "Pack", "QuadSub"]);
//! let mut fabric = Fabric::new(atoms, AtomCatalog::new(table1_profiles().to_vec()), 4);
//!
//! // Rotate a Transform Atom into AC0 and wait for completion.
//! fabric.request_rotation(ContainerId(0), AtomKind(0))?;
//! let done = fabric.next_completion().expect("rotation in flight");
//! fabric.advance_to(done)?;
//! assert_eq!(fabric.loaded_molecule().count(AtomKind(0)), 1);
//! # Ok::<(), rispp_fabric::FabricError>(())
//! ```

#![warn(missing_docs)]
// Deprecated shims elsewhere in the workspace exist for external callers
// only; the fabric substrate itself must never consume them.
#![deny(deprecated)]

pub mod catalog;
pub mod clock;
pub mod container;
pub mod fabric;
pub mod fault;

pub use catalog::{AtomCatalog, AtomHwProfile};
pub use clock::Clock;
pub use container::{AtomContainer, ContainerId, ContainerState};
pub use fabric::{Fabric, FabricError, FabricEvent};
pub use fault::{FaultPlan, FaultPlanParseError, StallWindow};
