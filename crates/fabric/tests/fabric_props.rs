//! Property tests on the fabric: conservation of Atoms, single-port
//! serialisation, and time consistency under arbitrary request/advance
//! interleavings.

use proptest::prelude::*;
use rispp_core::atom::{AtomKind, AtomSet};
use rispp_fabric::catalog::{AtomCatalog, AtomHwProfile};
use rispp_fabric::container::ContainerId;
use rispp_fabric::fabric::{Fabric, FabricError, FabricEvent};

const KINDS: usize = 3;

fn make_fabric(containers: usize) -> Fabric {
    let names = ["X", "Y", "Z"];
    let atoms = AtomSet::from_names(names);
    let catalog = AtomCatalog::new(
        names
            .iter()
            .enumerate()
            .map(|(i, n)| AtomHwProfile::new(*n, 100, 200, 3_000 + 1_000 * i as u64))
            .collect(),
    );
    Fabric::new(atoms, catalog, containers)
}

/// One fuzzing action against the fabric.
#[derive(Debug, Clone, Copy)]
enum Action {
    Request { container: usize, kind: usize },
    Advance { delta: u64 },
    Cancel { container: usize },
}

fn action(containers: usize) -> impl Strategy<Value = Action> {
    let c = containers.max(1);
    prop_oneof![
        (0..c, 0..KINDS).prop_map(|(container, kind)| Action::Request { container, kind }),
        (1u64..100_000).prop_map(|delta| Action::Advance { delta }),
        (0..c).prop_map(|container| Action::Cancel { container }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any action sequence: loaded + loading + queued never exceeds
    /// the container count, and loaded atoms never exceed it either.
    #[test]
    fn capacity_is_conserved(
        containers in 1usize..5,
        actions in proptest::collection::vec(action(4), 1..40),
    ) {
        let mut fabric = make_fabric(containers);
        for a in actions {
            match a {
                Action::Request { container, kind } => {
                    if container < containers {
                        let _ = fabric.request_rotation(
                            ContainerId(container),
                            AtomKind(kind),
                        );
                    }
                }
                Action::Advance { delta } => {
                    let t = fabric.now() + delta;
                    fabric.advance_to(t).unwrap();
                }
                Action::Cancel { container } => {
                    let _ = fabric.cancel_pending(ContainerId(container));
                }
            }
            prop_assert!(
                fabric.loaded_molecule().determinant() as usize <= containers
            );
            prop_assert!(
                fabric.committed_molecule().determinant() as usize <= containers
            );
        }
    }

    /// Rotation events alternate start → complete per container, and the
    /// port never runs two rotations concurrently.
    #[test]
    fn port_serialises_rotations(
        containers in 1usize..5,
        actions in proptest::collection::vec(action(4), 1..40),
    ) {
        let mut fabric = make_fabric(containers);
        let mut events: Vec<FabricEvent> = Vec::new();
        for a in actions {
            match a {
                Action::Request { container, kind } => {
                    if container < containers {
                        let _ = fabric.request_rotation(
                            ContainerId(container),
                            AtomKind(kind),
                        );
                    }
                }
                Action::Advance { delta } => {
                    let t = fabric.now() + delta;
                    events.extend(fabric.advance_to(t).unwrap());
                }
                Action::Cancel { container } => {
                    let _ = fabric.cancel_pending(ContainerId(container));
                }
            }
        }
        // Drain the rest.
        while let Some(t) = fabric.next_completion() {
            events.extend(fabric.advance_to(t).unwrap());
        }
        // Starts and completions alternate globally (single port): every
        // start is followed by its completion before the next start.
        let mut in_flight: Option<ContainerId> = None;
        let mut last_time = 0u64;
        for e in &events {
            prop_assert!(e.at() >= last_time, "events out of order");
            last_time = e.at();
            match *e {
                FabricEvent::RotationStarted { container, .. } => {
                    prop_assert!(in_flight.is_none(), "two rotations in flight");
                    in_flight = Some(container);
                }
                FabricEvent::RotationCompleted { container, .. }
                | FabricEvent::RotationFailed { container, .. } => {
                    prop_assert_eq!(in_flight, Some(container));
                    in_flight = None;
                }
                FabricEvent::PortStalled { .. }
                | FabricEvent::ContainerQuarantined { .. }
                | FabricEvent::ContainerFaulted { .. } => {}
            }
        }
    }

    /// `all_rotations_done_at` is a correct upper bound: advancing there
    /// leaves the fabric idle with everything loaded.
    #[test]
    fn all_done_estimate_is_exact(
        containers in 1usize..5,
        kinds in proptest::collection::vec(0usize..KINDS, 1..5),
    ) {
        let mut fabric = make_fabric(containers);
        let mut expected = 0u32;
        for (i, &k) in kinds.iter().enumerate() {
            let c = ContainerId(i % containers);
            if fabric.request_rotation(c, AtomKind(k)).is_ok() {
                expected += 1;
            }
        }
        if let Some(done) = fabric.all_rotations_done_at() {
            fabric.advance_to(done).unwrap();
            prop_assert!(fabric.is_idle());
            prop_assert_eq!(fabric.loaded_molecule().determinant(), expected.min(containers as u32));
        }
    }

    /// Time never goes backwards; advancing to the current time is a
    /// no-op that produces no events.
    #[test]
    fn advance_is_monotone_and_idempotent(delta in 1u64..1_000_000) {
        let mut fabric = make_fabric(2);
        fabric.request_rotation(ContainerId(0), AtomKind(0)).unwrap();
        fabric.advance_to(delta).unwrap();
        let again = fabric.advance_to(delta).unwrap();
        prop_assert!(again.is_empty());
        let earlier = fabric.advance_to(delta.saturating_sub(1));
        let ok = matches!(earlier, Err(FabricError::TimeReversal { .. }) | Ok(_));
        prop_assert!(ok);
    }
}
