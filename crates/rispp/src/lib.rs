//! # RISPP — Rotating Instruction Set Processing Platform
//!
//! A from-scratch Rust reproduction of *"RISPP: Rotating Instruction Set
//! Processing Platform"* (Lars Bauer, Muhammad Shafique, Simon Kramer,
//! Jörg Henkel — DAC 2007).
//!
//! RISPP is an extensible embedded processor whose *Special Instructions*
//! (SIs) are not frozen in silicon: each SI is composed of reusable
//! elementary data paths (**Atoms**), a concrete implementation is a
//! **Molecule**, and Atoms are *rotated* in and out of reconfigurable Atom
//! Containers at run time, guided by compile-time-inserted forecast
//! points. Every SI also has a software Molecule, so execution upgrades
//! gradually from software through ever faster hardware Molecules.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `rispp-core` | Molecule lattice, SIs, FDF, selection algorithms |
//! | [`fabric`] | `rispp-fabric` | Atom Containers, bitstreams, rotation port |
//! | [`mod@cfg`] | `rispp-cfg` | BB graphs, profiling, SCC, forecast-point insertion |
//! | [`h264`] | `rispp-h264` | pixel kernels, Table 2 SI library, Fig. 7 encoder |
//! | [`rt`] | `rispp-rt` | the run-time manager (monitor / select / schedule) |
//! | [`sim`] | `rispp-sim` | multi-task engine, the Fig. 6 scenario |
//! | [`obs`] | `rispp-obs` | structured events, sinks, timelines, JSONL export |
//! | [`baseline`] | `rispp-baseline` | extensible-processor & software baselines, GE model |
//!
//! # Quickstart
//!
//! ```
//! use rispp::prelude::*;
//!
//! // The H.264 case-study platform: 4 Atom kinds, 4 Atom Containers.
//! let (library, sis) = rispp::h264::build_library();
//! let fabric = rispp::sim::h264_fabric(4);
//! let mut manager = RisppManager::builder(library, fabric).build();
//!
//! // A forecast point fires: SATD_4x4 will be needed soon and often.
//! manager.forecast(0, ForecastValue::new(sis.satd_4x4, 1.0, 400_000.0, 300.0));
//!
//! // Until rotations finish, the SI executes in software (544 cycles) …
//! assert_eq!(manager.execute_si(0, sis.satd_4x4).cycles, 544);
//!
//! // … and in hardware afterwards (24 cycles with the minimal Molecule).
//! let done = manager.all_rotations_done_at().expect("rotations queued");
//! manager.advance_to(done)?;
//! assert!(manager.execute_si(0, sis.satd_4x4).cycles <= 24);
//! # Ok::<(), rispp::fabric::FabricError>(())
//! ```

#![warn(missing_docs)]

/// The formal Atom/Molecule model and the selection/forecast algorithms.
pub use rispp_core as core;

/// The reconfigurable-fabric simulator.
pub use rispp_fabric as fabric;

/// Compile-time basic-block analysis and forecast-point insertion.
pub use rispp_cfg as cfg;

/// The H.264 case-study substrate.
pub use rispp_h264 as h264;

/// The run-time manager.
pub use rispp_rt as rt;

/// The multi-task simulator and the Fig. 6 scenario.
pub use rispp_sim as sim;

/// Structured run-time events, sinks and timelines.
pub use rispp_obs as obs;

/// Comparison baselines (ASIP, pure software) and the GE area model.
pub use rispp_baseline as baseline;

/// The most common types in one import.
pub mod prelude {
    pub use rispp_baseline::{AreaModel, ExtensibleProcessor, SoftwareProcessor};
    pub use rispp_cfg::{BasicBlock, BlockId, Cfg, ForecastPoint, Profile};
    pub use rispp_core::{
        AtomKind, AtomSet, FdfParams, ForecastValue, Molecule, MoleculeImpl, SiId, SiLibrary,
        SpecialInstruction,
    };
    pub use rispp_fabric::{AtomCatalog, Clock, ContainerId, Fabric};
    pub use rispp_h264::{EncoderConfig, Frame, SyntheticVideo};
    pub use rispp_obs::{
        BinaryReader, BinarySink, CountersSink, Event, HostProfile, JsonlSink, MetricsSink,
        MetricsSummary, NullSink, ProfHandle, Profiler, SinkHandle, SpanBuilder, StreamDecoder,
        Timeline, TimelineSink,
    };
    pub use rispp_rt::{ManagerBuilder, RisppManager, TaskId};
    pub use rispp_sim::{
        derive_shard_seed, run_fleet, Engine, FleetAggregate, FleetConfig, FleetOutcome, Op,
        Scenario, ScenarioFactory, ShardOutcome, ShardSpec, SinkSpec, StressTotals, Task,
    };
}
