//! # rispp-cfg — compile-time analysis substrate for RISPP
//!
//! The RISPP compile-time flow (paper §4) inserts *Forecast points* (FCs)
//! into an application's basic-block graph so the run-time system can start
//! rotations milliseconds before an SI is needed. This crate implements
//! that flow from scratch:
//!
//! * [`graph`] — basic blocks, edges, SI usages;
//! * [`profile`] — block/edge execution counts, explicit or from
//!   random-walk simulation;
//! * [`scc`] — Tarjan's strongly-connected-components decomposition;
//! * [`analysis`] — reach probability, expected execution count and
//!   temporal distance per block, solved hierarchically over the SCC
//!   condensation (the paper's recursive Li/Hauck extension);
//! * [`forecast_points`] — FC candidate determination via the Forecast
//!   Decision Function, per-block trimming (Fig. 5) and placement on the
//!   transposed graph;
//! * [`aes`] — the synthetic AES application of Fig. 3;
//! * [`dot`] — Graphviz export with profile/SI/FC annotations.
//!
//! # Examples
//!
//! ```
//! use rispp_cfg::aes::{build_aes, AesSis};
//! use rispp_cfg::analysis::SiUsageAnalysis;
//!
//! let sis = AesSis::default();
//! let (cfg, profile, blocks) = build_aes(sis, 100);
//! let analysis = SiUsageAnalysis::compute(&cfg, &profile, sis.sub_shift, |b| {
//!     cfg.block(b).plain_cycles as f64
//! });
//! // The encryption loop makes SubBytes executions near-certain.
//! assert!(analysis.probability[blocks.entry.index()] > 0.99);
//! ```

#![warn(missing_docs)]

pub mod aes;
pub mod analysis;
pub mod dominators;
pub mod dot;
pub mod fc_blocks;
pub mod forecast_points;
pub mod graph;
pub mod paths;
pub mod profile;
pub mod scc;

pub use analysis::SiUsageAnalysis;
pub use dominators::{natural_loops, DominatorTree, NaturalLoop};
pub use fc_blocks::{group_into_fc_blocks, FcBlock};
pub use forecast_points::{insert_forecast_points, ForecastPoint};
pub use graph::{BasicBlock, BlockId, Cfg};
pub use paths::PathNumbering;
pub use profile::Profile;
pub use scc::SccDecomposition;
