//! Graphviz DOT export of annotated BB graphs (the rendering behind the
//! paper's Fig. 3: profiling colour-coding, SI usages, FC candidates).

use std::fmt::Write as _;

use crate::forecast_points::ForecastPoint;
use crate::graph::Cfg;
use crate::profile::Profile;

/// Renders the CFG as a DOT digraph.
///
/// * Fill colour encodes the profiled execution count (white → red).
/// * Blocks using SIs get a double border ("usage of Special
///   Instructions").
/// * Blocks carrying forecast points get a bold blue border ("candidates
///   for Forecast Points").
///
/// # Examples
///
/// ```
/// use rispp_cfg::aes::{build_aes, AesSis};
/// use rispp_cfg::dot::to_dot;
///
/// let (cfg, profile, _) = build_aes(AesSis::default(), 10);
/// let dot = to_dot(&cfg, &profile, &[]);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("key_schedule"));
/// ```
#[must_use]
pub fn to_dot(cfg: &Cfg, profile: &Profile, forecast_points: &[ForecastPoint]) -> String {
    let max_count = cfg
        .ids()
        .map(|b| profile.block_count(b))
        .max()
        .unwrap_or(1)
        .max(1);
    let mut out = String::from("digraph cfg {\n  node [shape=box, style=filled];\n");
    for (id, block) in cfg.iter() {
        let heat = profile.block_count(id) as f64 / max_count as f64;
        // White (cold) to red (hot), matching the paper's profiling
        // colour-coding.
        let g_b = (255.0 * (1.0 - heat)) as u8;
        let fill = format!("#ff{g_b:02x}{g_b:02x}");
        let uses_si = !block.si_uses.is_empty();
        let is_fc = forecast_points.iter().any(|f| f.block == id);
        let mut attrs = format!(
            "label=\"{}\\n{} visits\", fillcolor=\"{}\"",
            block.name,
            profile.block_count(id),
            fill
        );
        if uses_si {
            attrs.push_str(", peripheries=2");
        }
        if is_fc {
            attrs.push_str(", color=blue, penwidth=3");
        }
        let _ = writeln!(out, "  {} [{}];", id, attrs);
    }
    for from in cfg.ids() {
        for (i, &to) in cfg.successors(from).iter().enumerate() {
            let _ = writeln!(
                out,
                "  {from} -> {to} [label=\"{:.0}%\"];",
                100.0 * profile.edge_probability(from, i)
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::{build_aes, AesSis};
    use crate::graph::BlockId;
    use rispp_core::si::SiId;

    #[test]
    fn dot_contains_all_blocks_and_edges() {
        let (cfg, profile, _) = build_aes(AesSis::default(), 5);
        let dot = to_dot(&cfg, &profile, &[]);
        for (_, block) in cfg.iter() {
            assert!(dot.contains(&block.name), "missing {}", block.name);
        }
        assert!(dot.matches("->").count() >= 9);
    }

    #[test]
    fn forecast_points_are_highlighted() {
        let (cfg, profile, blocks) = build_aes(AesSis::default(), 5);
        let fc = ForecastPoint {
            block: blocks.key_schedule,
            si: SiId(0),
            probability: 1.0,
            distance: 1000.0,
            expected_executions: 40.0,
        };
        let dot = to_dot(&cfg, &profile, &[fc]);
        assert!(dot.contains("penwidth=3"));
    }

    #[test]
    fn si_blocks_get_double_border() {
        let (cfg, profile, _) = build_aes(AesSis::default(), 5);
        let dot = to_dot(&cfg, &profile, &[]);
        assert!(dot.contains("peripheries=2"));
    }

    #[test]
    fn hot_blocks_are_red() {
        let (cfg, profile, blocks) = build_aes(AesSis::default(), 100);
        let dot = to_dot(&cfg, &profile, &[]);
        // The hottest block (round stages) should be pure red.
        assert!(dot.contains("#ff0000"));
        let _ = blocks;
        let _: BlockId = cfg.entry();
    }
}
