//! A synthetic AES-shaped application (the paper's Fig. 3 example).
//!
//! Fig. 3 shows the BB graph of an AES application "automatically
//! generated from our tool-chain", with profiling colour-coding, the blocks
//! using SIs, and the computed FC candidates. The real binary is not
//! available; this module builds a CFG with the same control structure —
//! key schedule, a ten-round encryption loop whose round blocks use SIs,
//! a conditional final round, and an output block — plus the matching
//! deterministic profile.

use rispp_core::si::SiId;

use crate::graph::{BasicBlock, BlockId, Cfg};
use crate::profile::Profile;

/// SI ids used by the synthetic AES application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AesSis {
    /// Combined SubBytes + ShiftRows SI.
    pub sub_shift: SiId,
    /// MixColumns SI.
    pub mix_columns: SiId,
    /// AddRoundKey SI.
    pub add_key: SiId,
}

impl Default for AesSis {
    fn default() -> Self {
        AesSis {
            sub_shift: SiId(0),
            mix_columns: SiId(1),
            add_key: SiId(2),
        }
    }
}

/// Named handles into the generated AES graph (for tests and examples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AesBlocks {
    /// Program entry / argument handling.
    pub entry: BlockId,
    /// Key expansion (long, runs once).
    pub key_schedule: BlockId,
    /// Per-block loop head.
    pub block_loop: BlockId,
    /// Round-loop head.
    pub round_head: BlockId,
    /// SubBytes + ShiftRows round stage.
    pub sub_shift: BlockId,
    /// MixColumns round stage (skipped in the final round).
    pub mix_columns: BlockId,
    /// AddRoundKey round stage.
    pub add_key: BlockId,
    /// Final round (no MixColumns).
    pub final_round: BlockId,
    /// Output / exit block.
    pub output: BlockId,
}

/// Builds the AES-shaped CFG together with a deterministic profile for
/// encrypting `data_blocks` 16-byte blocks (10 rounds each, as in
/// AES-128).
#[must_use]
pub fn build_aes(sis: AesSis, data_blocks: u64) -> (Cfg, Profile, AesBlocks) {
    assert!(data_blocks > 0, "need at least one data block");
    let mut cfg = Cfg::new();
    let entry = cfg.add_block(BasicBlock::plain("entry", 200));
    let key_schedule = cfg.add_block(BasicBlock::plain("key_schedule", 5_000));
    let block_loop = cfg.add_block(BasicBlock::plain("block_loop", 40));
    let round_head = cfg.add_block(BasicBlock::plain("round_head", 12));
    let sub_shift = cfg.add_block(BasicBlock::with_si(
        "sub_shift",
        20,
        vec![(sis.sub_shift, 4)],
    ));
    let mix_columns = cfg.add_block(BasicBlock::with_si(
        "mix_columns",
        16,
        vec![(sis.mix_columns, 4)],
    ));
    let add_key = cfg.add_block(BasicBlock::with_si("add_key", 8, vec![(sis.add_key, 1)]));
    let final_round = cfg.add_block(BasicBlock::with_si(
        "final_round",
        24,
        vec![(sis.sub_shift, 4), (sis.add_key, 1)],
    ));
    let output = cfg.add_block(BasicBlock::plain("output", 300));

    cfg.add_edge(entry, key_schedule);
    cfg.add_edge(key_schedule, block_loop);
    cfg.add_edge(block_loop, round_head);
    cfg.add_edge(round_head, sub_shift); // normal round
    cfg.add_edge(round_head, final_round); // last round
    cfg.add_edge(sub_shift, mix_columns);
    cfg.add_edge(mix_columns, add_key);
    cfg.add_edge(add_key, round_head); // next round
    cfg.add_edge(final_round, block_loop); // next data block
    cfg.add_edge(block_loop, output); // all blocks done

    // Deterministic profile for `data_blocks` blocks × 10 rounds:
    // round_head is visited 10× per block (9 normal rounds + final).
    let n = data_blocks;
    let normal = 9 * n;
    let profile = Profile::from_edge_counts(
        &cfg,
        vec![
            vec![1],         // entry -> key_schedule
            vec![1],         // key_schedule -> block_loop
            vec![n, 1],      // block_loop -> round_head (n), -> output (1)
            vec![normal, n], // round_head -> sub_shift, -> final_round
            vec![normal],    // sub_shift -> mix_columns
            vec![normal],    // mix_columns -> add_key
            vec![normal],    // add_key -> round_head
            vec![n],         // final_round -> block_loop
            vec![],          // output is the exit
        ],
    );
    (
        cfg,
        profile,
        AesBlocks {
            entry,
            key_schedule,
            block_loop,
            round_head,
            sub_shift,
            mix_columns,
            add_key,
            final_round,
            output,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SiUsageAnalysis;

    #[test]
    fn profile_counts_match_aes_structure() {
        let sis = AesSis::default();
        let (cfg, profile, blocks) = build_aes(sis, 100);
        assert_eq!(profile.block_count(blocks.round_head), 1000);
        assert_eq!(profile.block_count(blocks.sub_shift), 900);
        assert_eq!(profile.block_count(blocks.final_round), 100);
        assert_eq!(profile.block_count(blocks.output), 1);
        let _ = cfg;
    }

    #[test]
    fn sub_shift_probability_is_high_in_loop() {
        let sis = AesSis::default();
        let (cfg, profile, blocks) = build_aes(sis, 100);
        let a = SiUsageAnalysis::compute(&cfg, &profile, sis.sub_shift, |b| {
            cfg.block(b).plain_cycles as f64
        });
        // From the entry the probability of reaching SubBytes is ~1 (both
        // normal and final rounds use it).
        assert!(a.probability[blocks.entry.index()] > 0.99);
        // Expected executions: 4 SIs × (900 + 100 final) visits / 1 entry.
        assert!(a.expected_executions[blocks.entry.index()] > 3000.0);
    }

    #[test]
    fn mix_columns_unreachable_from_final_round() {
        let sis = AesSis::default();
        let (cfg, profile, blocks) = build_aes(sis, 10);
        let a = SiUsageAnalysis::compute(&cfg, &profile, sis.mix_columns, |b| {
            cfg.block(b).plain_cycles as f64
        });
        // From the final round, MixColumns can only execute via the next
        // data block; the probability is below 1 (last block exits).
        let p = a.probability[blocks.final_round.index()];
        assert!(p < 1.0 && p > 0.5, "p = {p}");
    }
}
