//! Dominator analysis and natural-loop detection.
//!
//! The forecast-placement pass works on chains of candidates leading to an
//! SI usage; dominator information makes those chains precise: an FC
//! placed on a block that *dominates* the SI usage is guaranteed to fire
//! on every path to it (probability 1 of the FC preceding the usage).
//! Natural loops identify the "hot spot" regions whose headers are the
//! classic anchors for forecasts — the paper's SCC segmentation footnote
//! ("e.g. loops or subroutine calls") made explicit.
//!
//! The implementation is the Cooper–Harvey–Kennedy iterative algorithm on
//! the reverse-post-order numbering.

use crate::graph::{BlockId, Cfg};

/// Immediate-dominator tree of a CFG (rooted at the entry block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominatorTree {
    /// `idom[b]` — immediate dominator of `b`; the entry maps to itself.
    /// Unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    /// Reverse post order used during computation (reachable blocks only).
    rpo: Vec<BlockId>,
}

impl DominatorTree {
    /// Computes dominators for all blocks reachable from the entry.
    #[must_use]
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.len();
        let entry = cfg.entry();
        // Depth-first post-order (iterative).
        let mut visited = vec![false; n];
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        visited[entry.index()] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = cfg.successors(b);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.iter().rev().copied().collect();
        let mut order = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            order[b.index()] = i;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.predecessors(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &order, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DominatorTree { idom, rpo }
    }

    /// Immediate dominator of `b` (`None` for unreachable blocks; the
    /// entry's immediate dominator is itself).
    #[must_use]
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Returns `true` when `a` dominates `b` (every path from the entry to
    /// `b` passes through `a`). A block dominates itself.
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(parent) if parent != cur => cur = parent,
                _ => return false,
            }
        }
    }

    /// Reverse post order of the reachable blocks.
    #[must_use]
    pub fn reverse_post_order(&self) -> &[BlockId] {
        &self.rpo
    }
}

fn intersect(idom: &[Option<BlockId>], order: &[usize], mut a: BlockId, mut b: BlockId) -> BlockId {
    while a != b {
        while order[a.index()] > order[b.index()] {
            a = idom[a.index()].expect("processed in RPO");
        }
        while order[b.index()] > order[a.index()] {
            b = idom[b.index()].expect("processed in RPO");
        }
    }
    a
}

/// A natural loop: a back edge `tail → header` where the header dominates
/// the tail, plus the set of blocks in the loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// Loop header (the back-edge target).
    pub header: BlockId,
    /// The back-edge source.
    pub tail: BlockId,
    /// All blocks of the loop, including the header.
    pub body: Vec<BlockId>,
}

/// Finds all natural loops of a CFG.
#[must_use]
pub fn natural_loops(cfg: &Cfg, dom: &DominatorTree) -> Vec<NaturalLoop> {
    let mut loops = Vec::new();
    for tail in cfg.ids() {
        for &header in cfg.successors(tail) {
            if dom.idom(tail).is_some() && dom.dominates(header, tail) {
                // Collect the loop body: header + everything reaching the
                // tail without passing through the header.
                let mut body = vec![header];
                let mut stack = vec![tail];
                let mut in_body = vec![false; cfg.len()];
                in_body[header.index()] = true;
                while let Some(b) = stack.pop() {
                    if in_body[b.index()] {
                        continue;
                    }
                    in_body[b.index()] = true;
                    body.push(b);
                    for &p in cfg.predecessors(b) {
                        stack.push(p);
                    }
                }
                body.sort_unstable();
                loops.push(NaturalLoop { header, tail, body });
            }
        }
    }
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::{build_aes, AesSis};
    use crate::graph::BasicBlock;

    fn diamond_with_loop() -> Cfg {
        // 0 -> 1 -> 2 -> 1 (loop), 2 -> 3; 0 -> 3 bypass.
        let mut cfg = Cfg::new();
        let a = cfg.add_block(BasicBlock::plain("a", 1));
        let b = cfg.add_block(BasicBlock::plain("b", 1));
        let c = cfg.add_block(BasicBlock::plain("c", 1));
        let d = cfg.add_block(BasicBlock::plain("d", 1));
        cfg.add_edge(a, b);
        cfg.add_edge(b, c);
        cfg.add_edge(c, b);
        cfg.add_edge(c, d);
        cfg.add_edge(a, d);
        cfg
    }

    #[test]
    fn entry_dominates_everything() {
        let cfg = diamond_with_loop();
        let dom = DominatorTree::compute(&cfg);
        for b in cfg.ids() {
            assert!(dom.dominates(cfg.entry(), b));
        }
    }

    #[test]
    fn bypass_breaks_dominance() {
        let cfg = diamond_with_loop();
        let dom = DominatorTree::compute(&cfg);
        // b does not dominate d (the a->d bypass), but b dominates c.
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(dom.dominates(BlockId(1), BlockId(2)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(1)));
    }

    #[test]
    fn self_domination() {
        let cfg = diamond_with_loop();
        let dom = DominatorTree::compute(&cfg);
        for b in cfg.ids() {
            assert!(dom.dominates(b, b));
        }
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut cfg = diamond_with_loop();
        let orphan = cfg.add_block(BasicBlock::plain("orphan", 1));
        let dom = DominatorTree::compute(&cfg);
        assert_eq!(dom.idom(orphan), None);
        assert!(!dom.dominates(cfg.entry(), orphan));
    }

    #[test]
    fn natural_loop_detected() {
        let cfg = diamond_with_loop();
        let dom = DominatorTree::compute(&cfg);
        let loops = natural_loops(&cfg, &dom);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, BlockId(1));
        assert_eq!(loops[0].tail, BlockId(2));
        assert_eq!(loops[0].body, vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn aes_has_round_and_block_loops() {
        let (cfg, _, blocks) = build_aes(AesSis::default(), 8);
        let dom = DominatorTree::compute(&cfg);
        let loops = natural_loops(&cfg, &dom);
        // The round loop (header round_head) and the data-block loop
        // (header block_loop).
        assert!(loops.iter().any(|l| l.header == blocks.round_head));
        assert!(loops.iter().any(|l| l.header == blocks.block_loop));
        // The round loop nests inside the block loop.
        let block_loop = loops
            .iter()
            .find(|l| l.header == blocks.block_loop)
            .unwrap();
        assert!(block_loop.body.contains(&blocks.round_head));
    }

    #[test]
    fn rpo_starts_at_entry() {
        let cfg = diamond_with_loop();
        let dom = DominatorTree::compute(&cfg);
        assert_eq!(dom.reverse_post_order()[0], cfg.entry());
        assert_eq!(dom.reverse_post_order().len(), 4);
    }
}
