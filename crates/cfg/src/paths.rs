//! Ball–Larus path profiling: unique, compact numbering of the acyclic
//! paths through a BB graph.
//!
//! Edge profiles (what [`crate::profile`] collects) cannot distinguish
//! *correlated* branches — exactly the information that sharpens the
//! reach-probability estimates behind forecast candidates. The classic
//! remedy is Ball–Larus numbering: every acyclic entry→exit path gets a
//! unique integer in `0..num_paths`, so one counter per executed path
//! reconstructs the full path spectrum. Back edges (detected by DFS) are
//! excluded, as in the original scheme where they terminate and restart
//! path regions.

use crate::graph::{BlockId, Cfg};

/// Ball–Larus path numbering of a CFG's acyclic (forward-edge) skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathNumbering {
    /// `num_paths[b]`: number of distinct forward paths from `b` to any
    /// exit (0 for blocks unreachable from the entry).
    num_paths: Vec<u64>,
    /// `edge_values[b][i]`: the Ball–Larus increment of the `i`-th
    /// outgoing edge of `b`; `None` marks a back edge.
    edge_values: Vec<Vec<Option<u64>>>,
}

impl PathNumbering {
    /// Computes the numbering. Back edges are identified by an iterative
    /// DFS from the entry (an edge closing a cycle on the current DFS
    /// stack).
    #[must_use]
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.len();
        let mut is_back: Vec<Vec<bool>> = cfg
            .ids()
            .map(|b| vec![false; cfg.successors(b).len()])
            .collect();
        // Iterative DFS with colour marking: 0 = white, 1 = on stack,
        // 2 = done.
        let mut colour = vec![0u8; n];
        if n > 0 {
            let entry = cfg.entry();
            let mut stack: Vec<(usize, usize)> = vec![(entry.index(), 0)];
            colour[entry.index()] = 1;
            while let Some(&mut (v, ref mut pos)) = stack.last_mut() {
                let succs = cfg.successors(BlockId(v));
                if *pos < succs.len() {
                    let i = *pos;
                    *pos += 1;
                    let w = succs[i].index();
                    match colour[w] {
                        0 => {
                            colour[w] = 1;
                            stack.push((w, 0));
                        }
                        1 => is_back[v][i] = true, // closes a cycle
                        _ => {}
                    }
                } else {
                    colour[v] = 2;
                    stack.pop();
                }
            }
        }

        // Reverse topological order of the forward-edge DAG: repeated
        // relaxation is overkill; a post-order over forward edges works.
        let mut order: Vec<usize> = Vec::with_capacity(n);
        {
            let mut visited = vec![false; n];
            for root in 0..n {
                if visited[root] || colour[root] == 0 {
                    continue; // unreachable blocks keep num_paths = 0
                }
                let mut stack = vec![(root, 0usize)];
                visited[root] = true;
                while let Some(&mut (v, ref mut pos)) = stack.last_mut() {
                    let succs = cfg.successors(BlockId(v));
                    // Advance to the next forward, unvisited successor.
                    let mut pushed = false;
                    while *pos < succs.len() {
                        let i = *pos;
                        *pos += 1;
                        let w = succs[i].index();
                        if !is_back[v][i] && !visited[w] {
                            visited[w] = true;
                            stack.push((w, 0));
                            pushed = true;
                            break;
                        }
                    }
                    if !pushed {
                        order.push(v);
                        stack.pop();
                    }
                }
            }
        }

        let mut num_paths = vec![0u64; n];
        let mut edge_values: Vec<Vec<Option<u64>>> = cfg
            .ids()
            .map(|b| vec![None; cfg.successors(b).len()])
            .collect();
        for &v in &order {
            let succs = cfg.successors(BlockId(v));
            let forward: Vec<usize> = (0..succs.len()).filter(|&i| !is_back[v][i]).collect();
            if forward.is_empty() {
                num_paths[v] = 1; // exit of the acyclic skeleton
                continue;
            }
            // Parallel edges to the same target are one path choice (a
            // path is a block sequence): they share one increment.
            let mut acc = 0u64;
            let mut seen: Vec<(usize, u64)> = Vec::new(); // (target, value)
            for &i in &forward {
                let w = succs[i].index();
                if let Some(&(_, value)) = seen.iter().find(|&&(t, _)| t == w) {
                    edge_values[v][i] = Some(value);
                    continue;
                }
                edge_values[v][i] = Some(acc);
                seen.push((w, acc));
                acc += num_paths[w];
            }
            num_paths[v] = acc;
        }

        PathNumbering {
            num_paths,
            edge_values,
        }
    }

    /// Number of distinct forward paths from `b` to an exit.
    #[must_use]
    pub fn num_paths(&self, b: BlockId) -> u64 {
        self.num_paths[b.index()]
    }

    /// The increment of the `i`-th outgoing edge of `b`, or `None` for a
    /// back edge.
    #[must_use]
    pub fn edge_value(&self, b: BlockId, i: usize) -> Option<u64> {
        self.edge_values[b.index()][i]
    }

    /// Returns `true` when the `i`-th outgoing edge of `b` is a back
    /// edge.
    #[must_use]
    pub fn is_back_edge(&self, b: BlockId, i: usize) -> bool {
        self.edge_values[b.index()][i].is_none()
    }

    /// Decodes path id `id` starting at `from` back into its block
    /// sequence (the Ball–Larus regeneration algorithm). Returns `None`
    /// for out-of-range ids.
    #[must_use]
    pub fn decode(&self, cfg: &Cfg, from: BlockId, id: u64) -> Option<Vec<BlockId>> {
        if id >= self.num_paths(from) {
            return None;
        }
        let mut path = vec![from];
        let mut at = from;
        let mut remaining = id;
        loop {
            let succs = cfg.successors(at);
            // Pick the forward edge with the largest increment ≤ remaining.
            let mut chosen: Option<(usize, u64)> = None;
            for i in 0..succs.len() {
                if let Some(v) = self.edge_value(at, i) {
                    if v <= remaining && chosen.is_none_or(|(_, cv)| v > cv) {
                        chosen = Some((i, v));
                    }
                }
            }
            match chosen {
                Some((i, v)) => {
                    remaining -= v;
                    at = succs[i];
                    path.push(at);
                }
                None => return (remaining == 0).then_some(path),
            }
        }
    }

    /// Encodes a block sequence into its path id: the sum of the edge
    /// increments along it. Returns `None` if the sequence uses a back
    /// edge or a non-edge.
    #[must_use]
    pub fn encode(&self, cfg: &Cfg, path: &[BlockId]) -> Option<u64> {
        let mut id = 0u64;
        for pair in path.windows(2) {
            let i = cfg.successors(pair[0]).iter().position(|&s| s == pair[1])?;
            id += self.edge_value(pair[0], i)?;
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::{build_aes, AesSis};
    use crate::graph::BasicBlock;

    fn diamond() -> Cfg {
        let mut cfg = Cfg::new();
        let a = cfg.add_block(BasicBlock::plain("a", 1));
        let b = cfg.add_block(BasicBlock::plain("b", 1));
        let c = cfg.add_block(BasicBlock::plain("c", 1));
        let d = cfg.add_block(BasicBlock::plain("d", 1));
        cfg.add_edge(a, b);
        cfg.add_edge(a, c);
        cfg.add_edge(b, d);
        cfg.add_edge(c, d);
        cfg
    }

    #[test]
    fn diamond_has_two_paths() {
        let cfg = diamond();
        let pn = PathNumbering::compute(&cfg);
        assert_eq!(pn.num_paths(BlockId(0)), 2);
        assert_eq!(pn.num_paths(BlockId(3)), 1);
    }

    #[test]
    fn path_ids_are_a_bijection() {
        let cfg = diamond();
        let pn = PathNumbering::compute(&cfg);
        let entry = cfg.entry();
        let mut seen = std::collections::BTreeSet::new();
        for id in 0..pn.num_paths(entry) {
            let path = pn.decode(&cfg, entry, id).expect("valid id");
            assert_eq!(pn.encode(&cfg, &path), Some(id));
            assert!(seen.insert(path));
        }
        assert!(pn.decode(&cfg, entry, pn.num_paths(entry)).is_none());
    }

    #[test]
    fn nested_diamonds_multiply() {
        // Two diamonds in sequence: 2 × 2 = 4 paths.
        let mut cfg = Cfg::new();
        let ids: Vec<BlockId> = (0..7)
            .map(|i| cfg.add_block(BasicBlock::plain(format!("b{i}"), 1)))
            .collect();
        cfg.add_edge(ids[0], ids[1]);
        cfg.add_edge(ids[0], ids[2]);
        cfg.add_edge(ids[1], ids[3]);
        cfg.add_edge(ids[2], ids[3]);
        cfg.add_edge(ids[3], ids[4]);
        cfg.add_edge(ids[3], ids[5]);
        cfg.add_edge(ids[4], ids[6]);
        cfg.add_edge(ids[5], ids[6]);
        let pn = PathNumbering::compute(&cfg);
        assert_eq!(pn.num_paths(ids[0]), 4);
        // All four ids decode to distinct paths through both diamonds.
        let paths: Vec<_> = (0..4)
            .map(|id| pn.decode(&cfg, ids[0], id).unwrap())
            .collect();
        assert_eq!(
            paths
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            4
        );
    }

    #[test]
    fn back_edges_are_excluded() {
        let mut cfg = Cfg::new();
        let a = cfg.add_block(BasicBlock::plain("a", 1));
        let b = cfg.add_block(BasicBlock::plain("b", 1));
        let c = cfg.add_block(BasicBlock::plain("c", 1));
        cfg.add_edge(a, b);
        cfg.add_edge(b, b); // self loop: back edge
        cfg.add_edge(b, c);
        let pn = PathNumbering::compute(&cfg);
        assert!(pn.is_back_edge(b, 0));
        assert!(!pn.is_back_edge(b, 1));
        assert_eq!(pn.num_paths(a), 1);
    }

    #[test]
    fn aes_skeleton_path_count() {
        let (cfg, _, blocks) = build_aes(AesSis::default(), 4);
        let pn = PathNumbering::compute(&cfg);
        // Acyclic skeleton: entry → key_schedule → block_loop →
        // {output | round_head → {normal round | final_round …}}.
        let n = pn.num_paths(cfg.entry());
        assert!(n >= 2, "paths = {n}");
        // Every id decodes and re-encodes to itself.
        for id in 0..n {
            let p = pn.decode(&cfg, cfg.entry(), id).unwrap();
            assert_eq!(pn.encode(&cfg, &p), Some(id));
        }
        // The loop back edges are excluded.
        let round_to_head = cfg
            .successors(blocks.add_key)
            .iter()
            .position(|&s| s == blocks.round_head)
            .unwrap();
        assert!(pn.is_back_edge(blocks.add_key, round_to_head));
    }

    #[test]
    fn unreachable_blocks_have_zero_paths() {
        let mut cfg = diamond();
        let orphan = cfg.add_block(BasicBlock::plain("orphan", 1));
        let pn = PathNumbering::compute(&cfg);
        assert_eq!(pn.num_paths(orphan), 0);
    }
}
