//! Inserting Forecast points (FCs) at compile time (paper §4).
//!
//! The three-step scheme:
//!
//! 1. for each SI type, determine the set of basic blocks that are *FC
//!    candidates* (the FDF compares the required execution count against
//!    the profiled expectation);
//! 2. per basic block, remove candidates that are incompatible with the
//!    other candidates of the same block (Fig. 5 trimming on the SI
//!    representatives);
//! 3. choose actual FCs out of the candidates by a depth-first search on
//!    the transposed BB graph, so that each chain of candidates leading to
//!    an SI usage contributes the most upstream still-suitable candidate.

use rispp_core::forecast::FdfParams;
use rispp_core::molecule::Molecule;
use rispp_core::selection::trim_forecast_candidates;
use rispp_core::si::{SiId, SiLibrary};

use crate::analysis::SiUsageAnalysis;
use crate::graph::{BlockId, Cfg};
use crate::profile::Profile;

/// A forecast-point candidate or final forecast point.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastPoint {
    /// Block carrying the forecast.
    pub block: BlockId,
    /// Forecasted SI.
    pub si: SiId,
    /// Profiled probability of reaching an execution of the SI.
    pub probability: f64,
    /// Profiled temporal distance (cycles) until the usage.
    pub distance: f64,
    /// Profiled expected number of executions once reached.
    pub expected_executions: f64,
}

/// Step 1: FC candidates of one SI — every block whose profiled expected
/// execution count is at least the FDF requirement.
///
/// Blocks that use the SI themselves are excluded: rotation could never
/// complete before the usage (their temporal distance is 0).
#[must_use]
pub fn determine_candidates(
    cfg: &Cfg,
    analysis: &SiUsageAnalysis,
    si: SiId,
    fdf: &FdfParams,
) -> Vec<ForecastPoint> {
    let mut out = Vec::new();
    for b in cfg.ids() {
        if cfg.block(b).uses(si) {
            continue;
        }
        let p = analysis.probability[b.index()];
        let t = analysis.distance[b.index()];
        let e = analysis.expected_executions[b.index()];
        if p <= 0.0 || !t.is_finite() || t <= 0.0 {
            continue;
        }
        if e >= fdf.eval(p, t) {
            out.push(ForecastPoint {
                block: b,
                si,
                probability: p,
                distance: t,
                expected_executions: e,
            });
        }
    }
    out
}

/// Step 2: per-block trimming. For each block holding candidates of
/// several SIs, keep only a subset whose representative supremum fits the
/// available Atom Containers, dropping the SIs with the worst expected
/// speed-up per container (Fig. 5).
#[must_use]
pub fn trim_per_block(
    candidates: Vec<ForecastPoint>,
    lib: &SiLibrary,
    available_containers: u32,
) -> Vec<ForecastPoint> {
    let mut by_block: std::collections::BTreeMap<usize, Vec<ForecastPoint>> = Default::default();
    for c in candidates {
        by_block.entry(c.block.index()).or_default().push(c);
    }
    let mut out = Vec::new();
    for (_, fcs) in by_block {
        let reps: Vec<Molecule> = fcs.iter().map(|f| lib.get(f.si).representative()).collect();
        let speedups: Vec<f64> = fcs
            .iter()
            .map(|f| {
                let si = lib.get(f.si);
                si.sw_cycles() as f64 / si.fastest().cycles as f64
            })
            .collect();
        let trim = trim_forecast_candidates(&reps, &speedups, available_containers)
            .expect("library enforces one molecule width");
        for i in trim.kept {
            out.push(fcs[i].clone());
        }
    }
    out
}

/// Step 3: choose the final FCs by a depth-first search on the transposed
/// BB graph.
///
/// For each SI usage, the DFS walks backwards through the candidate blocks.
/// Along each backward path the *most upstream candidate that is still in
/// the FDF sweet spot* (distance within `[t_rot, far_onset · t_rot]`)
/// becomes the FC; when a path leaves the sweet spot (the next candidate is
/// too far), "the preceding FC Candidate is turned into an actual FC".
/// Candidates that are never the best of any path are dropped, which keeps
/// the number of run-time re-evaluations low.
#[must_use]
pub fn place_forecast_points(
    cfg: &Cfg,
    candidates: &[ForecastPoint],
    si: SiId,
    fdf: &FdfParams,
) -> Vec<ForecastPoint> {
    let transposed = cfg.transposed();
    let is_candidate: Vec<Option<&ForecastPoint>> = {
        let mut v = vec![None; cfg.len()];
        for c in candidates.iter().filter(|c| c.si == si) {
            v[c.block.index()] = Some(c);
        }
        v
    };
    let sweet = |d: f64| d >= fdf.t_rot && d <= fdf.far_onset * fdf.t_rot;

    let mut chosen = vec![false; cfg.len()];
    let mut visited = vec![false; cfg.len()];
    // DFS from every SI usage on the transposed graph; remember the best
    // candidate seen so far on the current path.
    for start in cfg.blocks_using(si) {
        let mut stack: Vec<(BlockId, Option<BlockId>)> = vec![(start, None)];
        while let Some((b, mut best)) = stack.pop() {
            if let Some(c) = is_candidate[b.index()] {
                if sweet(c.distance) {
                    // Still in the sweet spot: this more-upstream candidate
                    // supersedes the previous best of the path.
                    best = Some(b);
                } else if c.distance > fdf.far_onset * fdf.t_rot {
                    // Too far: finalise the preceding candidate and stop
                    // extending the path.
                    if let Some(p) = best {
                        chosen[p.index()] = true;
                    }
                    continue;
                }
                // (Too close: keep walking; an upstream candidate may work.)
            }
            let succs = transposed.successors(b);
            if succs.is_empty() {
                // Path ends (program entry): finalise the best candidate.
                if let Some(p) = best {
                    chosen[p.index()] = true;
                }
                continue;
            }
            let mut extended = false;
            for &up in succs {
                if !visited[up.index()] {
                    visited[up.index()] = true;
                    stack.push((up, best));
                    extended = true;
                }
            }
            if !extended {
                if let Some(p) = best {
                    chosen[p.index()] = true;
                }
            }
        }
    }

    candidates
        .iter()
        .filter(|c| c.si == si && chosen[c.block.index()])
        .cloned()
        .collect()
}

/// End-to-end pass: analysis → candidates → per-block trimming →
/// placement, for every SI in the library. Returns the final annotated
/// FCs ("annotated with the profiled probability, temporal distance, and
/// the expected number of executions as initial values for the online
/// phase").
#[must_use]
pub fn insert_forecast_points<F>(
    cfg: &Cfg,
    profile: &Profile,
    lib: &SiLibrary,
    fdf_of: F,
    available_containers: u32,
) -> Vec<ForecastPoint>
where
    F: Fn(SiId) -> FdfParams,
{
    let mut all_candidates = Vec::new();
    let mut fdfs = Vec::new();
    for si in lib.ids() {
        let fdf = fdf_of(si);
        let analysis = SiUsageAnalysis::compute(cfg, profile, si, |b| {
            let blk = cfg.block(b);
            blk.plain_cycles as f64
                + blk
                    .si_uses
                    .iter()
                    .map(|&(s, c)| u64::from(c) * lib.get(s).sw_cycles())
                    .sum::<u64>() as f64
        });
        all_candidates.extend(determine_candidates(cfg, &analysis, si, &fdf));
        fdfs.push(fdf);
    }
    let trimmed = trim_per_block(all_candidates, lib, available_containers);
    let mut placed = Vec::new();
    for si in lib.ids() {
        placed.extend(place_forecast_points(cfg, &trimmed, si, &fdfs[si.index()]));
    }
    placed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BasicBlock;
    use rispp_core::si::{MoleculeImpl, SpecialInstruction};

    fn fdf() -> FdfParams {
        // T_Rot = 1000 cycles, T_SW = 50, T_HW = 5, E_Rot → offset = 2.
        FdfParams::new(1000.0, 50.0, 5.0, 90.0, 1.0)
    }

    /// entry(4000 cycles) -> mid(500) -> hot loop using the SI.
    fn pipeline_cfg(loop_exit_pct: u64) -> (Cfg, Profile) {
        let mut cfg = Cfg::new();
        let entry = cfg.add_block(BasicBlock::plain("entry", 4000));
        let mid = cfg.add_block(BasicBlock::plain("mid", 500));
        let hot = cfg.add_block(BasicBlock::with_si("hot", 10, vec![(SiId(0), 1)]));
        let exit = cfg.add_block(BasicBlock::plain("exit", 1));
        cfg.add_edge(entry, mid);
        cfg.add_edge(mid, hot);
        cfg.add_edge(hot, hot);
        cfg.add_edge(hot, exit);
        let back = 100 - loop_exit_pct;
        let profile = Profile::from_edge_counts(
            &cfg,
            vec![vec![10], vec![10], vec![back, loop_exit_pct], vec![]],
        );
        (cfg, profile)
    }

    fn analysis(cfg: &Cfg, profile: &Profile) -> SiUsageAnalysis {
        SiUsageAnalysis::compute(cfg, profile, SiId(0), |b| cfg.block(b).plain_cycles as f64)
    }

    #[test]
    fn hot_loop_produces_candidates() {
        // 1 % exit probability → ~100 expected executions, far above the
        // FDF requirement for the well-placed `entry` block.
        let (cfg, profile) = pipeline_cfg(1);
        let a = analysis(&cfg, &profile);
        let cands = determine_candidates(&cfg, &a, SiId(0), &fdf());
        let blocks: Vec<BlockId> = cands.iter().map(|c| c.block).collect();
        assert!(blocks.contains(&BlockId(0)), "entry should be a candidate");
        assert!(blocks.contains(&BlockId(1)), "mid should be a candidate");
        // The SI block itself is never a candidate.
        assert!(!blocks.contains(&BlockId(2)));
    }

    #[test]
    fn cold_si_produces_no_candidates() {
        // 90 % exit probability → ~1.1 expected executions < offset 2.
        let (cfg, profile) = pipeline_cfg(90);
        let a = analysis(&cfg, &profile);
        let cands = determine_candidates(&cfg, &a, SiId(0), &fdf());
        assert!(cands.is_empty(), "got {cands:?}");
    }

    #[test]
    fn placement_prefers_upstream_candidate_in_sweet_spot() {
        let (cfg, profile) = pipeline_cfg(1);
        let a = analysis(&cfg, &profile);
        let cands = determine_candidates(&cfg, &a, SiId(0), &fdf());
        let placed = place_forecast_points(&cfg, &cands, SiId(0), &fdf());
        // entry's distance (4500) is within [1000, 10000]; mid's (500) is
        // too close. The DFS keeps the most upstream sweet-spot candidate.
        assert_eq!(placed.len(), 1);
        assert_eq!(placed[0].block, BlockId(0));
    }

    fn tiny_library() -> SiLibrary {
        let mut lib = SiLibrary::new(2);
        lib.insert(
            SpecialInstruction::new(
                "S0",
                50,
                vec![MoleculeImpl::new(Molecule::from_counts([1, 0]), 5)],
            )
            .unwrap(),
        )
        .unwrap();
        lib.insert(
            SpecialInstruction::new(
                "S1",
                40,
                vec![MoleculeImpl::new(Molecule::from_counts([0, 2]), 4)],
            )
            .unwrap(),
        )
        .unwrap();
        lib
    }

    #[test]
    fn trimming_drops_incompatible_candidate() {
        let lib = tiny_library();
        let mk = |si: usize| ForecastPoint {
            block: BlockId(0),
            si: SiId(si),
            probability: 1.0,
            distance: 2000.0,
            expected_executions: 50.0,
        };
        // Only 2 containers: sup of (1,0) and (0,2) needs 3.
        let trimmed = trim_per_block(vec![mk(0), mk(1)], &lib, 2);
        assert_eq!(trimmed.len(), 1);
        // S1 frees 2 containers per 10× speed-up vs S0's 1 per 10× —
        // trimming removes the worse relation (S1).
        assert_eq!(trimmed[0].si, SiId(0));
    }

    #[test]
    fn end_to_end_insertion() {
        let (cfg, profile) = pipeline_cfg(1);
        let lib = {
            let mut lib = SiLibrary::new(2);
            lib.insert(
                SpecialInstruction::new(
                    "S0",
                    50,
                    vec![MoleculeImpl::new(Molecule::from_counts([1, 1]), 5)],
                )
                .unwrap(),
            )
            .unwrap();
            lib
        };
        let fcs = insert_forecast_points(&cfg, &profile, &lib, |_| fdf(), 4);
        assert_eq!(fcs.len(), 1);
        assert_eq!(fcs[0].block, BlockId(0));
        assert!(fcs[0].expected_executions > 10.0);
        assert!(fcs[0].probability > 0.99);
    }
}
