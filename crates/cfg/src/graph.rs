//! Basic-block graphs: the compile-time view of an application.
//!
//! Forecast points are inserted "on the Base-Block (BB) level of the
//! application" (paper §4). A [`Cfg`] is a directed graph of
//! [`BasicBlock`]s; each block carries its plain-instruction cycle cost and
//! the Special Instructions it uses.

use std::fmt;

use rispp_core::si::SiId;

/// Index of a basic block within a [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub usize);

impl BlockId {
    /// Returns the dense index of this block.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// One basic block: straight-line code with optional SI usages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Human-readable label for diagnostics and DOT export.
    pub name: String,
    /// Cycle cost of the plain (non-SI) instructions of the block.
    pub plain_cycles: u64,
    /// SIs used by this block, with per-visit execution counts.
    pub si_uses: Vec<(SiId, u32)>,
}

impl BasicBlock {
    /// Creates a block without SI usages.
    #[must_use]
    pub fn plain<S: Into<String>>(name: S, plain_cycles: u64) -> Self {
        BasicBlock {
            name: name.into(),
            plain_cycles,
            si_uses: Vec::new(),
        }
    }

    /// Creates a block that uses SIs.
    #[must_use]
    pub fn with_si<S: Into<String>>(name: S, plain_cycles: u64, si_uses: Vec<(SiId, u32)>) -> Self {
        BasicBlock {
            name: name.into(),
            plain_cycles,
            si_uses,
        }
    }

    /// Per-visit execution count of one SI in this block.
    #[must_use]
    pub fn uses_of(&self, si: SiId) -> u32 {
        self.si_uses
            .iter()
            .filter(|&&(s, _)| s == si)
            .map(|&(_, c)| c)
            .sum()
    }

    /// Returns `true` if the block executes `si` at least once per visit.
    #[must_use]
    pub fn uses(&self, si: SiId) -> bool {
        self.uses_of(si) > 0
    }
}

/// A control-flow graph of basic blocks.
///
/// # Examples
///
/// ```
/// use rispp_cfg::graph::{BasicBlock, Cfg};
///
/// let mut cfg = Cfg::new();
/// let a = cfg.add_block(BasicBlock::plain("entry", 10));
/// let b = cfg.add_block(BasicBlock::plain("exit", 5));
/// cfg.add_edge(a, b);
/// assert_eq!(cfg.entry(), a);
/// assert_eq!(cfg.successors(a), &[b]);
/// assert_eq!(cfg.predecessors(b), &[a]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Creates an empty graph. The first added block becomes the entry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a block and returns its id.
    pub fn add_block(&mut self, block: BasicBlock) -> BlockId {
        self.blocks.push(block);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        BlockId(self.blocks.len() - 1)
    }

    /// Adds a directed edge. Parallel edges are allowed (they carry
    /// independent profile counts).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: BlockId, to: BlockId) {
        assert!(from.index() < self.blocks.len(), "edge source out of range");
        assert!(to.index() < self.blocks.len(), "edge target out of range");
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
    }

    /// Number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` for a graph without blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The entry block (the first one added).
    ///
    /// # Panics
    ///
    /// Panics on an empty graph.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        assert!(!self.blocks.is_empty(), "empty CFG has no entry");
        BlockId(0)
    }

    /// The block with a given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Successor blocks (in edge insertion order).
    #[must_use]
    pub fn successors(&self, id: BlockId) -> &[BlockId] {
        &self.succs[id.index()]
    }

    /// Predecessor blocks.
    #[must_use]
    pub fn predecessors(&self, id: BlockId) -> &[BlockId] {
        &self.preds[id.index()]
    }

    /// Iterates `(id, block)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i), b))
    }

    /// All block ids in order.
    pub fn ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(BlockId)
    }

    /// Blocks without successors (program exits).
    pub fn exits(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.ids().filter(|&b| self.successors(b).is_empty())
    }

    /// Blocks that use a given SI.
    pub fn blocks_using(&self, si: SiId) -> impl Iterator<Item = BlockId> + '_ {
        self.iter()
            .filter(move |(_, b)| b.uses(si))
            .map(|(id, _)| id)
    }

    /// The transposed graph (all edges reversed), used by the forecast
    /// placement pass.
    #[must_use]
    pub fn transposed(&self) -> Cfg {
        let mut t = Cfg::new();
        for b in &self.blocks {
            t.add_block(b.clone());
        }
        for (from, succs) in self.succs.iter().enumerate() {
            for &to in succs {
                t.add_edge(to, BlockId(from));
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Cfg {
        let mut cfg = Cfg::new();
        let a = cfg.add_block(BasicBlock::plain("a", 1));
        let b = cfg.add_block(BasicBlock::with_si("b", 2, vec![(SiId(0), 3)]));
        let c = cfg.add_block(BasicBlock::plain("c", 3));
        let d = cfg.add_block(BasicBlock::plain("d", 4));
        cfg.add_edge(a, b);
        cfg.add_edge(a, c);
        cfg.add_edge(b, d);
        cfg.add_edge(c, d);
        cfg
    }

    #[test]
    fn diamond_topology() {
        let cfg = diamond();
        assert_eq!(cfg.len(), 4);
        assert_eq!(cfg.successors(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.predecessors(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.exits().collect::<Vec<_>>(), vec![BlockId(3)]);
    }

    #[test]
    fn blocks_using_finds_si_blocks() {
        let cfg = diamond();
        assert_eq!(
            cfg.blocks_using(SiId(0)).collect::<Vec<_>>(),
            vec![BlockId(1)]
        );
        assert!(cfg.blocks_using(SiId(1)).next().is_none());
    }

    #[test]
    fn uses_of_sums_duplicates() {
        let b = BasicBlock::with_si("x", 0, vec![(SiId(1), 2), (SiId(1), 3), (SiId(0), 1)]);
        assert_eq!(b.uses_of(SiId(1)), 5);
        assert!(b.uses(SiId(0)));
        assert!(!b.uses(SiId(2)));
    }

    #[test]
    fn transposed_reverses_edges() {
        let cfg = diamond();
        let t = cfg.transposed();
        assert_eq!(t.successors(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert_eq!(t.successors(BlockId(0)).len(), 0);
        assert_eq!(t.successors(BlockId(1)), &[BlockId(0)]);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut cfg = Cfg::new();
        let a = cfg.add_block(BasicBlock::plain("a", 1));
        let b = cfg.add_block(BasicBlock::plain("b", 1));
        cfg.add_edge(a, b);
        cfg.add_edge(a, b);
        assert_eq!(cfg.successors(a).len(), 2);
    }

    #[test]
    #[should_panic(expected = "no entry")]
    fn empty_cfg_entry_panics() {
        let _ = Cfg::new().entry();
    }
}
