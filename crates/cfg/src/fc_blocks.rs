//! FC Blocks: forecast points of the same basic block, grouped (step 3 of
//! the paper's scheme — "choose FCs out of the FC Candidates and combine
//! them to FC Blocks, which will ease the run-time computation effort").
//!
//! At run time, an FC Block fires as *one* event: all its forecasts enter
//! the manager together and selection/rotation-scheduling run once for
//! the batch (see `RisppManager::forecast_block` in `rispp-rt`).

use rispp_core::forecast::ForecastValue;

use crate::forecast_points::ForecastPoint;
use crate::graph::BlockId;

/// All forecast points anchored to one basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct FcBlock {
    /// The carrying basic block.
    pub block: BlockId,
    /// The forecasts fired when the block executes.
    pub forecasts: Vec<ForecastPoint>,
}

impl FcBlock {
    /// Converts the group into the run-time forecast values a task
    /// announces when the block executes.
    #[must_use]
    pub fn to_forecast_values(&self) -> Vec<ForecastValue> {
        self.forecasts
            .iter()
            .map(|fc| {
                ForecastValue::new(fc.si, fc.probability, fc.distance, fc.expected_executions)
            })
            .collect()
    }

    /// Number of grouped forecasts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.forecasts.len()
    }

    /// Returns `true` for an empty group (never produced by
    /// [`group_into_fc_blocks`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.forecasts.is_empty()
    }
}

/// Groups placed forecast points by their carrying block, ordered by
/// block id.
#[must_use]
pub fn group_into_fc_blocks(fcs: &[ForecastPoint]) -> Vec<FcBlock> {
    let mut by_block: std::collections::BTreeMap<usize, Vec<ForecastPoint>> = Default::default();
    for fc in fcs {
        by_block
            .entry(fc.block.index())
            .or_default()
            .push(fc.clone());
    }
    by_block
        .into_iter()
        .map(|(block, forecasts)| FcBlock {
            block: BlockId(block),
            forecasts,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rispp_core::si::SiId;

    fn fc(block: usize, si: usize) -> ForecastPoint {
        ForecastPoint {
            block: BlockId(block),
            si: SiId(si),
            probability: 0.9,
            distance: 5_000.0,
            expected_executions: 40.0,
        }
    }

    #[test]
    fn grouping_collects_same_block_forecasts() {
        let fcs = [fc(3, 0), fc(1, 1), fc(3, 2), fc(1, 0)];
        let blocks = group_into_fc_blocks(&fcs);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].block, BlockId(1));
        assert_eq!(blocks[0].len(), 2);
        assert_eq!(blocks[1].block, BlockId(3));
        assert_eq!(blocks[1].len(), 2);
        assert!(!blocks[0].is_empty());
    }

    #[test]
    fn forecast_values_carry_annotations() {
        let blocks = group_into_fc_blocks(&[fc(0, 7)]);
        let values = blocks[0].to_forecast_values();
        assert_eq!(values.len(), 1);
        assert_eq!(values[0].si, SiId(7));
        assert!((values[0].probability - 0.9).abs() < 1e-12);
        assert!((values[0].distance - 5_000.0).abs() < 1e-12);
        assert!((values[0].expected_executions - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_yields_no_blocks() {
        assert!(group_into_fc_blocks(&[]).is_empty());
    }
}
