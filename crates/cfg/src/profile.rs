//! Execution profiles of a [`Cfg`]: block and edge
//! counts, and a simulated profiler.
//!
//! The paper's tool-chain obtains probability / temporal-distance /
//! execution-count measurements from profiling runs; here the same
//! information comes either from explicit counts (deterministic tests) or
//! from random-walk simulation of the application over its branch
//! propensities.

use rand::Rng;

use crate::graph::{BlockId, Cfg};

/// Block and edge execution counts for one CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    block_counts: Vec<u64>,
    /// Parallel to `cfg.successors(b)`: count per outgoing edge.
    edge_counts: Vec<Vec<u64>>,
}

impl Profile {
    /// An all-zero profile shaped like `cfg`.
    #[must_use]
    pub fn zeroed(cfg: &Cfg) -> Self {
        Profile {
            block_counts: vec![0; cfg.len()],
            edge_counts: cfg
                .ids()
                .map(|b| vec![0; cfg.successors(b).len()])
                .collect(),
        }
    }

    /// Builds a profile from explicit edge counts (`edge_counts[b][i]` is
    /// the count of the `i`-th outgoing edge of block `b`). Block counts
    /// are derived: entry gets the sum of its outgoing counts (or 1 for an
    /// exit-only entry), every other block the sum of its incoming counts.
    ///
    /// # Panics
    ///
    /// Panics if the shape does not match `cfg`.
    #[must_use]
    pub fn from_edge_counts(cfg: &Cfg, edge_counts: Vec<Vec<u64>>) -> Self {
        assert_eq!(edge_counts.len(), cfg.len(), "one count row per block");
        for b in cfg.ids() {
            assert_eq!(
                edge_counts[b.index()].len(),
                cfg.successors(b).len(),
                "one count per outgoing edge of {b}"
            );
        }
        let mut block_counts = vec![0u64; cfg.len()];
        for b in cfg.ids() {
            for (i, &to) in cfg.successors(b).iter().enumerate() {
                block_counts[to.index()] += edge_counts[b.index()][i];
            }
        }
        let entry = cfg.entry().index();
        let entry_out: u64 = edge_counts[entry].iter().sum();
        block_counts[entry] = block_counts[entry].max(entry_out).max(1);
        Profile {
            block_counts,
            edge_counts,
        }
    }

    /// Profiles the CFG by `runs` random walks from the entry, choosing
    /// successors according to `branch_weights` (same shape as the edge
    /// lists; uniform when a row is empty). Each walk stops at an exit or
    /// after `max_steps`.
    #[must_use]
    pub fn from_random_walks<R: Rng>(
        cfg: &Cfg,
        branch_weights: &[Vec<f64>],
        runs: u32,
        max_steps: u32,
        rng: &mut R,
    ) -> Self {
        assert_eq!(branch_weights.len(), cfg.len(), "one weight row per block");
        let mut profile = Profile::zeroed(cfg);
        for _ in 0..runs {
            let mut at = cfg.entry();
            profile.block_counts[at.index()] += 1;
            for _ in 0..max_steps {
                let succs = cfg.successors(at);
                if succs.is_empty() {
                    break;
                }
                let weights = &branch_weights[at.index()];
                let pick = if weights.len() == succs.len() {
                    pick_weighted(weights, rng)
                } else {
                    rng.gen_range(0..succs.len())
                };
                profile.edge_counts[at.index()][pick] += 1;
                at = succs[pick];
                profile.block_counts[at.index()] += 1;
            }
        }
        profile
    }

    /// Executions of a block over the whole profile.
    #[must_use]
    pub fn block_count(&self, b: BlockId) -> u64 {
        self.block_counts[b.index()]
    }

    /// Count of the `i`-th outgoing edge of `b`.
    #[must_use]
    pub fn edge_count(&self, b: BlockId, i: usize) -> u64 {
        self.edge_counts[b.index()][i]
    }

    /// Probability of taking the `i`-th outgoing edge of `b`, relative to
    /// all outgoing traffic of `b`. Falls back to a uniform split when `b`
    /// was never observed leaving.
    #[must_use]
    pub fn edge_probability(&self, b: BlockId, i: usize) -> f64 {
        let row = &self.edge_counts[b.index()];
        let total: u64 = row.iter().sum();
        if total == 0 {
            if row.is_empty() {
                0.0
            } else {
                1.0 / row.len() as f64
            }
        } else {
            row[i] as f64 / total as f64
        }
    }

    /// Records one block visit (used by online profilers).
    pub fn record_block(&mut self, b: BlockId) {
        self.block_counts[b.index()] += 1;
    }

    /// Records one traversal of the `i`-th outgoing edge of `b`.
    pub fn record_edge(&mut self, b: BlockId, i: usize) {
        self.edge_counts[b.index()][i] += 1;
    }
}

fn pick_weighted<R: Rng>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BasicBlock;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn branchy() -> Cfg {
        let mut cfg = Cfg::new();
        let a = cfg.add_block(BasicBlock::plain("a", 1));
        let b = cfg.add_block(BasicBlock::plain("b", 1));
        let c = cfg.add_block(BasicBlock::plain("c", 1));
        let d = cfg.add_block(BasicBlock::plain("d", 1));
        cfg.add_edge(a, b);
        cfg.add_edge(a, c);
        cfg.add_edge(b, d);
        cfg.add_edge(c, d);
        cfg
    }

    #[test]
    fn explicit_counts_derive_block_counts() {
        let cfg = branchy();
        let profile =
            Profile::from_edge_counts(&cfg, vec![vec![30, 70], vec![30], vec![70], vec![]]);
        assert_eq!(profile.block_count(BlockId(0)), 100);
        assert_eq!(profile.block_count(BlockId(1)), 30);
        assert_eq!(profile.block_count(BlockId(3)), 100);
        assert!((profile.edge_probability(BlockId(0), 1) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn unobserved_branch_splits_uniformly() {
        let cfg = branchy();
        let profile = Profile::zeroed(&cfg);
        assert!((profile.edge_probability(BlockId(0), 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_walks_follow_weights() {
        let cfg = branchy();
        let weights = vec![vec![0.2, 0.8], vec![1.0], vec![1.0], vec![]];
        let mut rng = StdRng::seed_from_u64(42);
        let profile = Profile::from_random_walks(&cfg, &weights, 10_000, 100, &mut rng);
        let p = profile.edge_probability(BlockId(0), 1);
        assert!((p - 0.8).abs() < 0.03, "observed branch probability {p}");
        // Every walk reaches the single exit.
        assert_eq!(profile.block_count(BlockId(3)), 10_000);
    }

    #[test]
    fn walk_terminates_in_loops() {
        let mut cfg = Cfg::new();
        let a = cfg.add_block(BasicBlock::plain("a", 1));
        cfg.add_edge(a, a); // infinite self-loop
        let mut rng = StdRng::seed_from_u64(1);
        let profile = Profile::from_random_walks(&cfg, &[vec![1.0]], 3, 50, &mut rng);
        assert_eq!(profile.block_count(a), 3 * 51);
    }

    #[test]
    fn record_accumulates() {
        let cfg = branchy();
        let mut profile = Profile::zeroed(&cfg);
        profile.record_block(BlockId(2));
        profile.record_edge(BlockId(0), 0);
        assert_eq!(profile.block_count(BlockId(2)), 1);
        assert_eq!(profile.edge_count(BlockId(0), 0), 1);
    }
}
