//! Reach probability, expected execution count, and temporal distance of
//! SI usages — the three profiling-derived measurements behind forecast
//! candidates (paper §4.1).
//!
//! The solver follows the paper's structure: the BB graph is segmented
//! into strongly connected components (Tarjan, [`crate::scc`]); components
//! are processed in reverse topological order so each acyclic component is
//! solved directly, like Li/Hauck's tree algorithm, while genuinely cyclic
//! components (loops, recursion) are solved by a local Gauss–Seidel
//! fixpoint — the "recursive addition to Li/Hauck needed for our more
//! fine-grained approach". The result is the exact solution of the
//! underlying absorbing-chain equations.

use rispp_core::si::SiId;

use crate::graph::{BlockId, Cfg};
use crate::profile::Profile;
use crate::scc::SccDecomposition;

/// Convergence threshold of the cyclic-component fixpoint.
const EPSILON: f64 = 1e-12;
/// Iteration cap per cyclic component (divergence guard for pathological
/// profiles, e.g. an exit-free loop with probability-1 back edges).
const MAX_ITERS: usize = 100_000;

/// Per-block analysis results for one SI.
#[derive(Debug, Clone, PartialEq)]
pub struct SiUsageAnalysis {
    /// `probability[b]`: probability that an execution of the SI is
    /// eventually reached from block `b` (1.0 for blocks using the SI).
    pub probability: Vec<f64>,
    /// `expected_executions[b]`: expected number of SI executions
    /// downstream of `b` (including `b`'s own uses).
    pub expected_executions: Vec<f64>,
    /// `distance[b]`: expected cycles from entering `b` until the first SI
    /// execution, conditioned on reaching one; 0 for blocks using the SI,
    /// `f64::INFINITY` where the SI is unreachable.
    pub distance: Vec<f64>,
}

impl SiUsageAnalysis {
    /// Analyses one SI over a profiled CFG.
    ///
    /// `block_cost(b)` is the expected cycle cost of one visit to `b`
    /// (plain cycles plus the cost of any SI usages at their current
    /// latency); it feeds the temporal-distance measurement.
    #[must_use]
    pub fn compute<F>(cfg: &Cfg, profile: &Profile, si: SiId, block_cost: F) -> Self
    where
        F: Fn(BlockId) -> f64,
    {
        let scc = SccDecomposition::compute(cfg);
        let probability = solve_probability(cfg, profile, si, &scc);
        let expected_executions = solve_executions(cfg, profile, si, &scc);
        let distance = solve_distance(cfg, profile, si, &scc, &probability, &block_cost);
        SiUsageAnalysis {
            probability,
            expected_executions,
            distance,
        }
    }
}

/// Probability of eventually reaching an execution of `si` from each block.
///
/// Blocks using the SI are absorbing with probability 1; all others solve
/// `p(b) = Σᵢ P(edge i) · p(succᵢ)`.
#[must_use]
pub fn solve_probability(
    cfg: &Cfg,
    profile: &Profile,
    si: SiId,
    scc: &SccDecomposition,
) -> Vec<f64> {
    let mut prob = vec![0.0; cfg.len()];
    for b in cfg.ids() {
        if cfg.block(b).uses(si) {
            prob[b.index()] = 1.0;
        }
    }
    solve_in_scc_order(cfg, scc, &mut prob, |b, values| {
        if cfg.block(b).uses(si) {
            return 1.0;
        }
        cfg.successors(b)
            .iter()
            .enumerate()
            .map(|(i, &s)| profile.edge_probability(b, i) * values[s.index()])
            .sum()
    });
    prob
}

/// Expected number of `si` executions downstream of each block (counting
/// the block's own uses).
///
/// `e(b) = uses(b) + Σᵢ P(edge i) · e(succᵢ)`. Loop back edges with
/// probability < 1 (any loop that exits in the profile) make this a
/// convergent geometric accumulation; an exit-free loop containing the SI
/// would diverge and is clamped at the iteration cap.
#[must_use]
pub fn solve_executions(
    cfg: &Cfg,
    profile: &Profile,
    si: SiId,
    scc: &SccDecomposition,
) -> Vec<f64> {
    let mut execs = vec![0.0; cfg.len()];
    solve_in_scc_order(cfg, scc, &mut execs, |b, values| {
        let own = f64::from(cfg.block(b).uses_of(si));
        own + cfg
            .successors(b)
            .iter()
            .enumerate()
            .map(|(i, &s)| profile.edge_probability(b, i) * values[s.index()])
            .sum::<f64>()
    });
    execs
}

/// Expected cycles from entering each block until the first `si` execution,
/// conditioned on reaching one.
///
/// For a block `b` not using the SI,
/// `d(b) = cost(b) + Σᵢ wᵢ · d(succᵢ)` with reach-conditioned weights
/// `wᵢ = P(edge i) · p(succᵢ) / p(b)`.
#[must_use]
pub fn solve_distance<F>(
    cfg: &Cfg,
    profile: &Profile,
    si: SiId,
    scc: &SccDecomposition,
    probability: &[f64],
    block_cost: &F,
) -> Vec<f64>
where
    F: Fn(BlockId) -> f64,
{
    let mut dist = vec![f64::INFINITY; cfg.len()];
    for b in cfg.ids() {
        if cfg.block(b).uses(si) {
            dist[b.index()] = 0.0;
        }
    }
    solve_in_scc_order(cfg, scc, &mut dist, |b, values| {
        if cfg.block(b).uses(si) {
            return 0.0;
        }
        let p_b = probability[b.index()];
        if p_b <= 0.0 {
            return f64::INFINITY;
        }
        let mut acc = block_cost(b);
        for (i, &s) in cfg.successors(b).iter().enumerate() {
            let w = profile.edge_probability(b, i) * probability[s.index()] / p_b;
            if w > 0.0 {
                let d = values[s.index()];
                if d.is_infinite() {
                    // Successor still at the fixpoint's initial value; the
                    // weight says it can reach the SI, so treat the missing
                    // estimate as 0 and let iteration refine it.
                    continue;
                }
                acc += w * d;
            }
        }
        acc
    });
    dist
}

/// Evaluates `recompute(b, values)` for every block, component by component
/// in reverse topological order. Acyclic components need a single
/// evaluation; cyclic ones iterate to a fixpoint.
fn solve_in_scc_order<F>(cfg: &Cfg, scc: &SccDecomposition, values: &mut [f64], recompute: F)
where
    F: Fn(BlockId, &[f64]) -> f64,
{
    for comp in scc.reverse_topological() {
        if !scc.is_cyclic(comp, cfg) {
            let b = scc.members(comp)[0];
            values[b.index()] = recompute(b, values);
            continue;
        }
        // Gauss–Seidel over the loop members; successors outside the
        // component are already final.
        for _ in 0..MAX_ITERS {
            let mut delta: f64 = 0.0;
            for &b in scc.members(comp) {
                let new = recompute(b, values);
                let old = values[b.index()];
                let d = if old.is_finite() && new.is_finite() {
                    (new - old).abs()
                } else if old.is_infinite() && new.is_infinite() {
                    0.0
                } else {
                    f64::INFINITY
                };
                delta = delta.max(d);
                values[b.index()] = new;
            }
            if delta < EPSILON {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BasicBlock;

    const SI: SiId = SiId(0);

    /// entry --0.3--> use(S) ; entry --0.7--> other -> exit
    fn branch_cfg() -> (Cfg, Profile) {
        let mut cfg = Cfg::new();
        let entry = cfg.add_block(BasicBlock::plain("entry", 10));
        let hit = cfg.add_block(BasicBlock::with_si("hit", 5, vec![(SI, 2)]));
        let miss = cfg.add_block(BasicBlock::plain("miss", 7));
        let exit = cfg.add_block(BasicBlock::plain("exit", 1));
        cfg.add_edge(entry, hit);
        cfg.add_edge(entry, miss);
        cfg.add_edge(hit, exit);
        cfg.add_edge(miss, exit);
        let profile =
            Profile::from_edge_counts(&cfg, vec![vec![30, 70], vec![30], vec![70], vec![]]);
        (cfg, profile)
    }

    #[test]
    fn branch_probability() {
        let (cfg, profile) = branch_cfg();
        let a = SiUsageAnalysis::compute(&cfg, &profile, SI, |b| cfg.block(b).plain_cycles as f64);
        assert!((a.probability[0] - 0.3).abs() < 1e-9);
        assert!((a.probability[1] - 1.0).abs() < 1e-9);
        assert!((a.probability[2] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn branch_expected_executions() {
        let (cfg, profile) = branch_cfg();
        let a = SiUsageAnalysis::compute(&cfg, &profile, SI, |_| 1.0);
        assert!((a.expected_executions[0] - 0.6).abs() < 1e-9); // 0.3 * 2
        assert!((a.expected_executions[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn branch_distance_is_conditional() {
        let (cfg, profile) = branch_cfg();
        let a = SiUsageAnalysis::compute(&cfg, &profile, SI, |b| cfg.block(b).plain_cycles as f64);
        // From entry, conditioned on the 30 % path: only entry's own cost.
        assert!((a.distance[0] - 10.0).abs() < 1e-9);
        assert_eq!(a.distance[1], 0.0);
        assert!(a.distance[2].is_infinite());
    }

    /// entry -> loop_head -> body(uses S) -> loop_head (90 %) / exit (10 %)
    fn loop_cfg() -> (Cfg, Profile) {
        let mut cfg = Cfg::new();
        let entry = cfg.add_block(BasicBlock::plain("entry", 4));
        let head = cfg.add_block(BasicBlock::plain("head", 2));
        let body = cfg.add_block(BasicBlock::with_si("body", 8, vec![(SI, 1)]));
        let exit = cfg.add_block(BasicBlock::plain("exit", 1));
        cfg.add_edge(entry, head);
        cfg.add_edge(head, body);
        cfg.add_edge(body, head);
        cfg.add_edge(body, exit);
        // body loops back 90 times, exits 10 times.
        let profile =
            Profile::from_edge_counts(&cfg, vec![vec![10], vec![100], vec![90, 10], vec![]]);
        (cfg, profile)
    }

    #[test]
    fn loop_probability_is_one() {
        let (cfg, profile) = loop_cfg();
        let a = SiUsageAnalysis::compute(&cfg, &profile, SI, |_| 1.0);
        assert!((a.probability[0] - 1.0).abs() < 1e-9);
        assert!((a.probability[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn loop_expected_executions_accumulate() {
        let (cfg, profile) = loop_cfg();
        let a = SiUsageAnalysis::compute(&cfg, &profile, SI, |_| 1.0);
        // Each body visit re-enters with probability 0.9: expected visits
        // from head = 1 / 0.1 = 10.
        assert!((a.expected_executions[1] - 10.0).abs() < 1e-6);
        assert!((a.expected_executions[0] - 10.0).abs() < 1e-6);
        // From inside the body: own use + 9 more expected.
        assert!((a.expected_executions[2] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn loop_distance_to_first_use() {
        let (cfg, profile) = loop_cfg();
        let a = SiUsageAnalysis::compute(&cfg, &profile, SI, |b| cfg.block(b).plain_cycles as f64);
        // head -> body is unconditional: distance(head) = 2.
        assert!((a.distance[1] - 2.0).abs() < 1e-9);
        assert!((a.distance[0] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_si_has_zero_probability_everywhere() {
        let (cfg, profile) = branch_cfg();
        let a = SiUsageAnalysis::compute(&cfg, &profile, SiId(42), |_| 1.0);
        assert!(a.probability.iter().all(|&p| p == 0.0));
        assert!(a.distance.iter().all(|d| d.is_infinite()));
        assert!(a.expected_executions.iter().all(|&e| e == 0.0));
    }

    /// Cross-validation: the SCC-ordered solver must agree with a naive
    /// global damped fixpoint on a nested-loop graph.
    #[test]
    fn scc_solver_matches_global_fixpoint() {
        let mut cfg = Cfg::new();
        let entry = cfg.add_block(BasicBlock::plain("entry", 1));
        let outer = cfg.add_block(BasicBlock::plain("outer", 2));
        let inner = cfg.add_block(BasicBlock::with_si("inner", 3, vec![(SI, 1)]));
        let cont = cfg.add_block(BasicBlock::plain("cont", 1));
        let exit = cfg.add_block(BasicBlock::plain("exit", 1));
        cfg.add_edge(entry, outer);
        cfg.add_edge(outer, inner);
        cfg.add_edge(inner, inner); // inner self loop
        cfg.add_edge(inner, cont);
        cfg.add_edge(cont, outer); // outer back edge
        cfg.add_edge(cont, exit);
        let profile = Profile::from_edge_counts(
            &cfg,
            vec![vec![5], vec![20], vec![60, 20], vec![15, 5], vec![]],
        );
        let scc = SccDecomposition::compute(&cfg);
        let fast = solve_executions(&cfg, &profile, SI, &scc);

        // Naive reference: Jacobi iteration over the whole graph.
        let mut slow = vec![0.0; cfg.len()];
        for _ in 0..100_000 {
            let prev = slow.clone();
            for b in cfg.ids() {
                let own = f64::from(cfg.block(b).uses_of(SI));
                slow[b.index()] = own
                    + cfg
                        .successors(b)
                        .iter()
                        .enumerate()
                        .map(|(i, &s)| profile.edge_probability(b, i) * prev[s.index()])
                        .sum::<f64>();
            }
            if slow.iter().zip(&prev).all(|(a, b)| (a - b).abs() < 1e-13) {
                break;
            }
        }
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f - s).abs() < 1e-6, "scc {f} vs naive {s}");
        }
    }
}
