//! Strongly connected components (Tarjan) and the condensation DAG.
//!
//! The paper's probability analysis "segments the BB graph into a tree of
//! strongly connected components (SCC), recursively calls itself to
//! compute the probability values of the SCCs and finally executes the
//! algorithm proposed by Li/Hauck to compute the probability in the
//! resulting tree". This module provides the segmentation; the hierarchical
//! solve lives in [`crate::analysis`].

use crate::graph::{BlockId, Cfg};

/// SCC decomposition of a [`Cfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccDecomposition {
    /// `component[b]` is the SCC index of block `b`. SCC indices are in
    /// *reverse topological order of discovery*: Tarjan emits sinks first,
    /// so iterating components `0..n` visits successors before
    /// predecessors.
    component: Vec<usize>,
    /// Members of each component.
    members: Vec<Vec<BlockId>>,
}

impl SccDecomposition {
    /// Runs Tarjan's algorithm (iterative, so deep graphs cannot overflow
    /// the call stack).
    #[must_use]
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.len();
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut component = vec![usize::MAX; n];
        let mut members: Vec<Vec<BlockId>> = Vec::new();
        let mut next_index = 0usize;

        // Explicit DFS state: (node, next-successor-position).
        let mut call_stack: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            call_stack.push((root, 0));
            index[root] = next_index;
            lowlink[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;

            while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
                let succs = cfg.successors(BlockId(v));
                if *pos < succs.len() {
                    let w = succs[*pos].index();
                    *pos += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call_stack.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(&(parent, _)) = call_stack.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component[w] = members.len();
                            comp.push(BlockId(w));
                            if w == v {
                                break;
                            }
                        }
                        members.push(comp);
                    }
                }
            }
        }
        SccDecomposition { component, members }
    }

    /// Number of components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` for an empty decomposition.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Component index of a block.
    #[must_use]
    pub fn component_of(&self, b: BlockId) -> usize {
        self.component[b.index()]
    }

    /// Members of one component.
    #[must_use]
    pub fn members(&self, comp: usize) -> &[BlockId] {
        &self.members[comp]
    }

    /// Returns `true` when the component is a genuine cycle: more than one
    /// member, or a single member with a self-edge.
    #[must_use]
    pub fn is_cyclic(&self, comp: usize, cfg: &Cfg) -> bool {
        let m = &self.members[comp];
        m.len() > 1 || cfg.successors(m[0]).contains(&m[0])
    }

    /// Component indices in topological order of the condensation DAG
    /// (predecessor components first). Tarjan emits components in reverse
    /// topological order, so this is simply `n-1, …, 0`.
    pub fn topological(&self) -> impl Iterator<Item = usize> {
        (0..self.members.len()).rev()
    }

    /// Component indices in *reverse* topological order (successor
    /// components first) — the processing order of the hierarchical
    /// probability solve.
    pub fn reverse_topological(&self) -> impl Iterator<Item = usize> {
        0..self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BasicBlock;

    fn cfg_with_loop() -> Cfg {
        // a -> b <-> c -> d, plus c -> b back edge forms SCC {b, c}.
        let mut cfg = Cfg::new();
        let a = cfg.add_block(BasicBlock::plain("a", 1));
        let b = cfg.add_block(BasicBlock::plain("b", 1));
        let c = cfg.add_block(BasicBlock::plain("c", 1));
        let d = cfg.add_block(BasicBlock::plain("d", 1));
        cfg.add_edge(a, b);
        cfg.add_edge(b, c);
        cfg.add_edge(c, b);
        cfg.add_edge(c, d);
        cfg
    }

    #[test]
    fn loop_collapses_into_one_component() {
        let cfg = cfg_with_loop();
        let scc = SccDecomposition::compute(&cfg);
        assert_eq!(scc.len(), 3);
        assert_eq!(scc.component_of(BlockId(1)), scc.component_of(BlockId(2)));
        assert_ne!(scc.component_of(BlockId(0)), scc.component_of(BlockId(1)));
        assert_ne!(scc.component_of(BlockId(3)), scc.component_of(BlockId(1)));
    }

    #[test]
    fn cyclicity_detection() {
        let cfg = cfg_with_loop();
        let scc = SccDecomposition::compute(&cfg);
        let loop_comp = scc.component_of(BlockId(1));
        assert!(scc.is_cyclic(loop_comp, &cfg));
        assert!(!scc.is_cyclic(scc.component_of(BlockId(0)), &cfg));
    }

    #[test]
    fn self_loop_is_cyclic() {
        let mut cfg = Cfg::new();
        let a = cfg.add_block(BasicBlock::plain("a", 1));
        cfg.add_edge(a, a);
        let scc = SccDecomposition::compute(&cfg);
        assert!(scc.is_cyclic(scc.component_of(a), &cfg));
    }

    #[test]
    fn topological_order_respects_edges() {
        let cfg = cfg_with_loop();
        let scc = SccDecomposition::compute(&cfg);
        let order: Vec<usize> = scc.topological().collect();
        // Each block's component must appear no later than its successors'.
        let pos = |comp: usize| order.iter().position(|&c| c == comp).unwrap();
        for b in cfg.ids() {
            for &s in cfg.successors(b) {
                let (cb, cs) = (scc.component_of(b), scc.component_of(s));
                if cb != cs {
                    assert!(pos(cb) < pos(cs), "component order violated");
                }
            }
        }
    }

    #[test]
    fn dag_has_singleton_components() {
        let mut cfg = Cfg::new();
        let a = cfg.add_block(BasicBlock::plain("a", 1));
        let b = cfg.add_block(BasicBlock::plain("b", 1));
        cfg.add_edge(a, b);
        let scc = SccDecomposition::compute(&cfg);
        assert_eq!(scc.len(), 2);
        for comp in 0..scc.len() {
            assert_eq!(scc.members(comp).len(), 1);
        }
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let mut cfg = Cfg::new();
        let mut prev = cfg.add_block(BasicBlock::plain("b0", 1));
        for i in 1..100_000 {
            let next = cfg.add_block(BasicBlock::plain(format!("b{i}"), 1));
            cfg.add_edge(prev, next);
            prev = next;
        }
        let scc = SccDecomposition::compute(&cfg);
        assert_eq!(scc.len(), 100_000);
    }
}
