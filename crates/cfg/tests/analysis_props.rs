//! Property tests on the CFG analyses: random graphs (DAGs plus random
//! back edges) must produce probabilities in [0, 1], consistent
//! distances, execution counts bounded below by direct uses, and
//! SCC/dominator/path-numbering invariants.

use proptest::prelude::*;
use rispp_cfg::analysis::SiUsageAnalysis;
use rispp_cfg::dominators::{natural_loops, DominatorTree};
use rispp_cfg::graph::{BasicBlock, BlockId, Cfg};
use rispp_cfg::paths::PathNumbering;
use rispp_cfg::profile::Profile;
use rispp_cfg::scc::SccDecomposition;
use rispp_core::si::SiId;

const SI: SiId = SiId(0);

/// A random CFG: a spine DAG with extra forward edges, optional back
/// edges, and SI uses sprinkled in; plus a consistent random profile.
fn random_cfg() -> impl Strategy<Value = (Cfg, Profile)> {
    (
        3usize..12,                                                 // blocks
        proptest::collection::vec((0usize..12, 0usize..12), 0..10), // extra edges
        proptest::collection::vec(0usize..12, 0..4),                // SI-using blocks
        proptest::collection::vec(1u64..50, 0..40),                 // edge counts
    )
        .prop_map(|(n, extra, uses, counts)| {
            let mut cfg = Cfg::new();
            let ids: Vec<BlockId> = (0..n)
                .map(|i| {
                    let si_uses = if uses.contains(&i) {
                        vec![(SI, 1 + (i as u32 % 3))]
                    } else {
                        vec![]
                    };
                    cfg.add_block(BasicBlock::with_si(
                        format!("b{i}"),
                        1 + (i as u64 * 7) % 40,
                        si_uses,
                    ))
                })
                .collect();
            // Spine: guarantees every block is reachable.
            for w in ids.windows(2) {
                cfg.add_edge(w[0], w[1]);
            }
            // Extra edges (any direction → loops possible).
            for &(a, b) in &extra {
                if a < n && b < n {
                    cfg.add_edge(ids[a], ids[b]);
                }
            }
            // Random, consistent profile counts per edge.
            let mut ci = counts.into_iter().cycle();
            let edge_counts: Vec<Vec<u64>> = cfg
                .ids()
                .map(|b| {
                    cfg.successors(b)
                        .iter()
                        .map(|_| ci.next().unwrap_or(1))
                        .collect()
                })
                .collect();
            let profile = Profile::from_edge_counts(&cfg, edge_counts);
            (cfg, profile)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn probabilities_are_probabilities((cfg, profile) in random_cfg()) {
        let a = SiUsageAnalysis::compute(&cfg, &profile, SI, |b| {
            cfg.block(b).plain_cycles as f64
        });
        for b in cfg.ids() {
            let p = a.probability[b.index()];
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&p), "p[{b}] = {p}");
            if cfg.block(b).uses(SI) {
                prop_assert!((p - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn distance_finite_iff_reachable((cfg, profile) in random_cfg()) {
        let a = SiUsageAnalysis::compute(&cfg, &profile, SI, |b| {
            cfg.block(b).plain_cycles as f64
        });
        for b in cfg.ids() {
            let p = a.probability[b.index()];
            let d = a.distance[b.index()];
            if p > 1e-9 {
                prop_assert!(d.is_finite(), "p[{b}] = {p} but d = {d}");
                prop_assert!(d >= -1e-9);
            } else {
                prop_assert!(d.is_infinite(), "p[{b}] = 0 but d = {d}");
            }
        }
    }

    #[test]
    fn executions_dominate_own_uses((cfg, profile) in random_cfg()) {
        let a = SiUsageAnalysis::compute(&cfg, &profile, SI, |_| 1.0);
        for b in cfg.ids() {
            let own = f64::from(cfg.block(b).uses_of(SI));
            prop_assert!(
                a.expected_executions[b.index()] >= own - 1e-6,
                "{b}: {} < {own}",
                a.expected_executions[b.index()]
            );
        }
    }

    #[test]
    fn scc_partitions_the_graph((cfg, _) in random_cfg()) {
        let scc = SccDecomposition::compute(&cfg);
        let mut seen = vec![false; cfg.len()];
        for comp in 0..scc.len() {
            for &b in scc.members(comp) {
                prop_assert!(!seen[b.index()], "block in two components");
                seen[b.index()] = true;
                prop_assert_eq!(scc.component_of(b), comp);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dominator_tree_is_consistent((cfg, _) in random_cfg()) {
        let dom = DominatorTree::compute(&cfg);
        let entry = cfg.entry();
        for b in cfg.ids() {
            if let Some(idom) = dom.idom(b) {
                // The immediate dominator dominates, and the entry
                // dominates everything reachable.
                prop_assert!(dom.dominates(idom, b));
                prop_assert!(dom.dominates(entry, b));
            }
        }
        // Natural loops: the header always dominates the whole body.
        for l in natural_loops(&cfg, &dom) {
            for &b in &l.body {
                prop_assert!(dom.dominates(l.header, b));
            }
        }
    }

    #[test]
    fn path_numbering_is_bijective((cfg, _) in random_cfg()) {
        let pn = PathNumbering::compute(&cfg);
        let entry = cfg.entry();
        let n = pn.num_paths(entry).min(64); // cap the enumeration
        let mut seen = std::collections::BTreeSet::new();
        for id in 0..n {
            let path = pn.decode(&cfg, entry, id);
            prop_assert!(path.is_some(), "id {id} of {n} undecodable");
            let path = path.unwrap();
            prop_assert_eq!(pn.encode(&cfg, &path), Some(id));
            prop_assert!(seen.insert(path));
        }
        prop_assert!(pn.decode(&cfg, entry, pn.num_paths(entry)).is_none());
    }
}
