//! Compact binary event transport: the low-overhead sibling of
//! [`crate::jsonl`].
//!
//! [`BinarySink`] serialises every event into a versioned, length-prefixed
//! binary stream with batched buffered writes; [`replay`] /
//! [`StreamDecoder`] / [`BinaryReader`] turn the stream back into the
//! identical [`Event`] values a [`Timeline`](crate::Timeline) would hold.
//! The format exists because JSONL costs hundreds of nanoseconds per
//! event (shortest-round-trip float formatting, field names, UTF-8) while
//! fleet-scale runs emit millions of events per second per shard — the
//! binary encoding writes a handful of bytes per event and amortises the
//! `write` syscall over a batch.
//!
//! ## Wire format
//!
//! The stream opens with a header: the 4-byte magic [`MAGIC`]
//! (`0x8B 'R' 'S' 'P'` — the lead byte is outside ASCII, so no JSONL
//! stream can ever alias it) followed by the schema version as a varint.
//! Decoders refuse versions newer than [`BIN_SCHEMA_VERSION`], mirroring
//! the JSONL header contract.
//!
//! Each record is length-prefixed: `varint(body_len)` then exactly
//! `body_len` body bytes. The body is `tag byte · zigzag-varint timestamp
//! delta · fields`:
//!
//! * integers are LEB128 varints (decoders accept padded, non-minimal
//!   forms — the encoder's fixed-layout fast path emits two-byte varints
//!   for some values under `0x80`);
//! * the timestamp is delta-encoded against the previous record's cycle
//!   (zigzag, so out-of-order timestamps still round-trip);
//! * `f64` fields are 8 little-endian bytes of [`f64::to_bits`]
//!   (bit-exact round-trip, NaN payloads included);
//! * booleans and `Option` discriminants fold into one flags byte;
//! * [`Molecule`] values are interned: a varint table index, where an
//!   index equal to the current table size introduces a new entry and is
//!   followed by its definition (`varint(len)` then `len` varint counts).
//!   Encoder and decoder grow the table in lockstep, so repeated
//!   Molecules (the overwhelmingly common case) cost one byte.
//!
//! Like [`JsonlSink`](crate::JsonlSink), an untouched sink writes
//! nothing — the header is emitted lazily with the first event.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use rispp_core::atom::AtomKind;
use rispp_core::molecule::Molecule;
use rispp_core::si::SiId;

use crate::event::{Event, Record, ReselectTrigger};
use crate::sink::EventSink;

/// Magic bytes opening every binary event stream. The first byte is
/// deliberately non-ASCII so no JSONL export (which starts with `{` or
/// whitespace) can ever be mistaken for a binary stream, and vice versa.
pub const MAGIC: [u8; 4] = [0x8B, b'R', b'S', b'P'];

/// Version of the binary schema this build writes (and the newest it
/// decodes). Streams carrying a newer version are refused, never
/// misread.
pub const BIN_SCHEMA_VERSION: u64 = 1;

/// Bytes buffered in a [`BinarySink`] before a batched write.
const FLUSH_THRESHOLD: usize = 8 * 1024;

/// Returns `true` when `prefix` starts with the binary magic — the
/// auto-detection probe `rispp_report` and `rispp_serve` use to pick a
/// decoder. Prefixes shorter than [`MAGIC`] return `false`.
#[must_use]
pub fn is_binary(prefix: &[u8]) -> bool {
    prefix.len() >= MAGIC.len() && prefix[..MAGIC.len()] == MAGIC
}

/// A malformed or unsupported binary stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinError {
    /// Byte offset (within the whole stream) of the record that failed.
    pub offset: u64,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "binary stream offset {}: {}", self.offset, self.message)
    }
}

impl Error for BinError {}

fn err(offset: u64, message: impl Into<String>) -> BinError {
    BinError {
        offset,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------
// Primitive encoders
// ---------------------------------------------------------------------

#[inline(always)]
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

#[inline(always)]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Event tags. The decoder refuses unknown tags, so adding a variant
/// means bumping [`BIN_SCHEMA_VERSION`].
mod tag {
    pub const ROTATION_STARTED: u8 = 0;
    pub const ROTATION_COMPLETED: u8 = 1;
    pub const ROTATION_FAILED: u8 = 2;
    pub const PORT_STALLED: u8 = 3;
    pub const CONTAINER_QUARANTINED: u8 = 4;
    pub const CONTAINER_LOADED: u8 = 5;
    pub const CONTAINER_EVICTED: u8 = 6;
    pub const SI_EXECUTED: u8 = 7;
    pub const FORECAST_UPDATED: u8 = 8;
    pub const FORECAST_RETRACTED: u8 = 9;
    pub const FC_OUTCOME: u8 = 10;
    pub const RESELECT: u8 = 11;
    pub const UPGRADE_STEP: u8 = 12;
}

/// High bit of the reselect trigger byte: set when the decision was
/// served from the selection cache. Trigger codes stay below 0x80, so
/// schema version 1 streams written before the cache existed decode
/// unchanged (bit clear ⇒ `cache_hit = false`).
const TRIGGER_CACHE_HIT: u8 = 0x80;

fn trigger_code(t: ReselectTrigger) -> u8 {
    match t {
        ReselectTrigger::Forecast => 0,
        ReselectTrigger::ForecastBlock => 1,
        ReselectTrigger::Retract => 2,
        ReselectTrigger::Observation => 3,
        ReselectTrigger::PowerMode => 4,
        ReselectTrigger::Fault => 5,
    }
}

fn trigger_from(code: u8) -> Option<ReselectTrigger> {
    Some(match code {
        0 => ReselectTrigger::Forecast,
        1 => ReselectTrigger::ForecastBlock,
        2 => ReselectTrigger::Retract,
        3 => ReselectTrigger::Observation,
        4 => ReselectTrigger::PowerMode,
        5 => ReselectTrigger::Fault,
        _ => return None,
    })
}

/// Fixed-size scratch buffer the hot encode path writes record bodies
/// into: one capacity check when the finished body is appended to the
/// output, instead of one per byte pushed into a `Vec`. The storage is
/// borrowed from the sink so it is zeroed once per stream, not once per
/// record.
///
/// 64 bytes hold the worst case of every body that does **not** inline a
/// new Molecule definition (largest: `SiExecuted` at 1 tag + 10 delta +
/// 1 flags + 5 task + 10 si + 10 cycles + 10 interned index = 47).
struct Cursor<'a> {
    bytes: &'a mut [u8; 64],
    len: usize,
}

impl<'a> Cursor<'a> {
    #[inline(always)]
    fn new(bytes: &'a mut [u8; 64]) -> Self {
        Cursor { bytes, len: 0 }
    }

    #[inline(always)]
    fn push(&mut self, b: u8) {
        self.bytes[self.len] = b;
        self.len += 1;
    }

    #[inline(always)]
    fn varint(&mut self, mut v: u64) {
        // One- and two-byte varints cover almost every field (ids,
        // cycle deltas, execution costs); unrolling them skips the
        // loop-carried length dependency.
        if v < 0x80 {
            self.push(v as u8);
            return;
        }
        if v < 0x4000 {
            self.bytes[self.len] = (v & 0x7F) as u8 | 0x80;
            self.bytes[self.len + 1] = (v >> 7) as u8;
            self.len += 2;
            return;
        }
        loop {
            let b = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.push(b);
                return;
            }
            self.push(b | 0x80);
        }
    }

    #[inline(always)]
    fn f64(&mut self, v: f64) {
        self.bytes[self.len..self.len + 8].copy_from_slice(&v.to_bits().to_le_bytes());
        self.len += 8;
    }
}

/// Looks up `molecule` in the intern table without inserting. `last_hit`
/// caches the previous match: consecutive events overwhelmingly repeat
/// one Molecule, so the common case is a single comparison, not a table
/// scan. `None` means this is a first sighting (the slow path interns
/// it).
#[inline]
fn find_molecule(table: &[Molecule], last_hit: &mut usize, molecule: &Molecule) -> Option<usize> {
    if let Some(m) = table.get(*last_hit) {
        if m == molecule {
            return Some(*last_hit);
        }
    }
    let idx = table.iter().position(|m| m == molecule)?;
    *last_hit = idx;
    Some(idx)
}

/// Appends one record (length prefix + body) to `buf`, updating the
/// encoder state (`last_at`, intern table, molecule cache).
///
/// Bodies are encoded into a fixed stack [`Cursor`] and appended with a
/// single-byte length prefix (a 64-byte cursor body always fits one
/// varint byte). The only records that cannot take this path are the
/// ones introducing a new Molecule to the intern table — once per unique
/// Molecule per stream — which divert to [`encode_molecule_record`].
#[inline(always)]
fn encode_record(
    buf: &mut Vec<u8>,
    scratch: &mut [u8; 64],
    table: &mut Vec<Molecule>,
    last_mol: &mut usize,
    last_at: &mut u64,
    at: u64,
    event: &Event,
) {
    let delta = zigzag(at.wrapping_sub(*last_at) as i64);
    *last_at = at;
    let mut c = Cursor::new(scratch);
    match event {
        Event::RotationStarted { container, kind } => {
            c.push(tag::ROTATION_STARTED);
            c.varint(delta);
            c.varint(u64::from(*container));
            c.varint(kind.index() as u64);
        }
        Event::RotationCompleted { container, kind } => {
            c.push(tag::ROTATION_COMPLETED);
            c.varint(delta);
            c.varint(u64::from(*container));
            c.varint(kind.index() as u64);
        }
        Event::RotationFailed { container, kind } => {
            c.push(tag::ROTATION_FAILED);
            c.varint(delta);
            c.varint(u64::from(*container));
            c.varint(kind.index() as u64);
        }
        Event::PortStalled { until } => {
            c.push(tag::PORT_STALLED);
            c.varint(delta);
            c.varint(*until);
        }
        Event::ContainerQuarantined { container } => {
            c.push(tag::CONTAINER_QUARANTINED);
            c.varint(delta);
            c.varint(u64::from(*container));
        }
        Event::ContainerLoaded { container, kind } => {
            c.push(tag::CONTAINER_LOADED);
            c.varint(delta);
            c.varint(u64::from(*container));
            c.varint(kind.index() as u64);
        }
        Event::ContainerEvicted { container, kind } => {
            c.push(tag::CONTAINER_EVICTED);
            c.varint(delta);
            c.varint(u64::from(*container));
            c.varint(kind.index() as u64);
        }
        Event::SiExecuted {
            task,
            si,
            hw,
            cycles,
            molecule,
        } => {
            let idx = match molecule {
                Some(m) => match find_molecule(table, last_mol, m) {
                    Some(idx) => Some(idx),
                    None => return encode_molecule_record(buf, table, last_mol, delta, event),
                },
                None => None,
            };
            let flags = u8::from(*hw) | (u8::from(idx.is_some()) << 1);
            let (t, s) = (u64::from(*task), si.index() as u64);
            let ix = idx.unwrap_or(0) as u64;
            // ~97% of captured executions fit a fixed layout with
            // two-byte varints for delta and cycles (LEB128 reads the
            // padded form back identically), assembled in registers and
            // appended with one constant-size copy. This is the hottest
            // record in every scenario, so it skips the Cursor entirely.
            if delta < 0x4000 && t < 0x80 && s < 0x80 && *cycles < 0x4000 && ix < 0x80 {
                let body_len = 8 + usize::from(idx.is_some());
                let rec = [
                    body_len as u8,
                    tag::SI_EXECUTED,
                    (delta & 0x7F) as u8 | 0x80,
                    (delta >> 7) as u8,
                    flags,
                    t as u8,
                    s as u8,
                    (*cycles & 0x7F) as u8 | 0x80,
                    (*cycles >> 7) as u8,
                    ix as u8,
                ];
                buf.extend_from_slice(&rec);
                buf.truncate(buf.len() + body_len - 9);
                return;
            }
            c.push(tag::SI_EXECUTED);
            c.varint(delta);
            c.push(flags);
            c.varint(t);
            c.varint(s);
            c.varint(*cycles);
            if let Some(idx) = idx {
                c.varint(idx as u64);
            }
        }
        Event::ForecastUpdated {
            task,
            si,
            probability,
            expected_executions,
        } => {
            c.push(tag::FORECAST_UPDATED);
            c.varint(delta);
            c.varint(u64::from(*task));
            c.varint(si.index() as u64);
            c.f64(*probability);
            c.f64(*expected_executions);
        }
        Event::ForecastRetracted { task, si } => {
            c.push(tag::FORECAST_RETRACTED);
            c.varint(delta);
            c.varint(u64::from(*task));
            c.varint(si.index() as u64);
        }
        Event::FcOutcome { task, si, reached } => {
            c.push(tag::FC_OUTCOME);
            c.varint(delta);
            c.push(u8::from(*reached));
            c.varint(u64::from(*task));
            c.varint(si.index() as u64);
        }
        Event::Reselect {
            trigger,
            duration_ns,
            cache_hit,
        } => {
            c.push(tag::RESELECT);
            c.varint(delta);
            let hit = if *cache_hit { TRIGGER_CACHE_HIT } else { 0 };
            c.push(trigger_code(*trigger) | hit);
            c.varint(*duration_ns);
        }
        Event::UpgradeStep {
            si,
            task,
            step,
            molecule,
        } => {
            let Some(idx) = find_molecule(table, last_mol, molecule) else {
                return encode_molecule_record(buf, table, last_mol, delta, event);
            };
            c.push(tag::UPGRADE_STEP);
            c.varint(delta);
            // 0 encodes `None`; `Some(t)` is carried as `t + 1`.
            c.varint(task.map_or(0, |t| u64::from(t) + 1));
            c.varint(si.index() as u64);
            c.varint(u64::from(*step));
            c.varint(idx as u64);
        }
    }
    buf.push(c.len as u8);
    // A fixed-size copy compiles to two register moves instead of a
    // memcpy call; typical bodies are 8–14 bytes, so over-copying 16 and
    // truncating wins. Longer bodies (float-carrying events) take the
    // plain copy.
    if c.len <= 16 {
        buf.extend_from_slice(&c.bytes[..16]);
        buf.truncate(buf.len() - (16 - c.len));
    } else {
        buf.extend_from_slice(&c.bytes[..c.len]);
    }
}

/// Interns `molecule` (known absent from the table) and encodes the
/// table reference with its inline definition.
fn put_new_molecule(body: &mut Vec<u8>, table: &mut Vec<Molecule>, molecule: &Molecule) {
    put_varint(body, table.len() as u64);
    let counts = molecule.as_slice();
    put_varint(body, counts.len() as u64);
    for &c in counts {
        put_varint(body, u64::from(c));
    }
    table.push(molecule.clone());
}

/// Cold path for the two molecule-carrying records when the Molecule is
/// new to the stream: the inline definition is unbounded, so the body is
/// built in a `Vec` and length-prefixed after the fact.
#[cold]
fn encode_molecule_record(
    buf: &mut Vec<u8>,
    table: &mut Vec<Molecule>,
    last_mol: &mut usize,
    delta: u64,
    event: &Event,
) {
    *last_mol = table.len();
    let mut body = Vec::with_capacity(64);
    match event {
        Event::SiExecuted {
            task,
            si,
            hw,
            cycles,
            molecule: Some(m),
        } => {
            body.push(tag::SI_EXECUTED);
            put_varint(&mut body, delta);
            body.push(u8::from(*hw) | 0b10);
            put_varint(&mut body, u64::from(*task));
            put_varint(&mut body, si.index() as u64);
            put_varint(&mut body, *cycles);
            put_new_molecule(&mut body, table, m);
        }
        Event::UpgradeStep {
            si,
            task,
            step,
            molecule,
        } => {
            body.push(tag::UPGRADE_STEP);
            put_varint(&mut body, delta);
            put_varint(&mut body, task.map_or(0, |t| u64::from(t) + 1));
            put_varint(&mut body, si.index() as u64);
            put_varint(&mut body, u64::from(*step));
            put_new_molecule(&mut body, table, molecule);
        }
        other => unreachable!("only molecule-introducing records divert here, not {other:?}"),
    }
    put_varint(buf, body.len() as u64);
    buf.extend_from_slice(&body);
}

// ---------------------------------------------------------------------
// BinarySink
// ---------------------------------------------------------------------

/// Sink serialising every event into the compact binary format, with
/// batched buffered writes (the underlying writer sees one `write` per
/// ~8 KiB of encoded events, not one per event).
///
/// Dropping the sink flushes best-effort; call [`BinarySink::flush`] or
/// [`BinarySink::into_inner`] to observe write errors.
#[derive(Debug)]
pub struct BinarySink<W: Write> {
    writer: Option<W>,
    buf: Vec<u8>,
    scratch: Box<[u8; 64]>,
    header_written: bool,
    last_at: u64,
    last_mol: usize,
    table: Vec<Molecule>,
}

impl<W: Write> BinarySink<W> {
    /// Wraps a writer (`Vec<u8>` for in-memory export, a file, …).
    pub fn new(writer: W) -> Self {
        BinarySink {
            writer: Some(writer),
            buf: Vec::with_capacity(FLUSH_THRESHOLD + 256),
            scratch: Box::new([0; 64]),
            header_written: false,
            last_at: 0,
            last_mol: 0,
            table: Vec::new(),
        }
    }

    /// Writes any buffered bytes through to the writer and flushes it.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn flush(&mut self) -> io::Result<()> {
        let writer = self
            .writer
            .as_mut()
            .expect("writer present until into_inner");
        if !self.buf.is_empty() {
            writer.write_all(&self.buf)?;
            self.buf.clear();
        }
        writer.flush()
    }

    /// Flushes and consumes the sink, returning the writer.
    ///
    /// # Panics
    ///
    /// Panics when the final flush fails, matching the severity of
    /// losing telemetry mid-export.
    #[must_use]
    pub fn into_inner(mut self) -> W {
        self.flush().expect("binary sink flush failed");
        self.writer.take().expect("writer present until into_inner")
    }
}

impl<W: Write> EventSink for BinarySink<W> {
    /// Serialises the event.
    ///
    /// I/O errors cannot be reported through the sink interface; they
    /// panic, matching [`JsonlSink`](crate::JsonlSink).
    fn emit(&mut self, at: u64, event: &Event) {
        if !self.header_written {
            self.header_written = true;
            self.buf.extend_from_slice(&MAGIC);
            put_varint(&mut self.buf, BIN_SCHEMA_VERSION);
        }
        encode_record(
            &mut self.buf,
            &mut self.scratch,
            &mut self.table,
            &mut self.last_mol,
            &mut self.last_at,
            at,
            event,
        );
        if self.buf.len() >= FLUSH_THRESHOLD {
            let writer = self
                .writer
                .as_mut()
                .expect("writer present until into_inner");
            writer
                .write_all(&self.buf)
                .expect("binary sink write failed");
            self.buf.clear();
        }
    }
}

impl<W: Write> Drop for BinarySink<W> {
    fn drop(&mut self) {
        // Best-effort: errors cannot propagate out of drop. Callers that
        // must observe them go through `flush`/`into_inner`.
        if let Some(writer) = self.writer.as_mut() {
            if !self.buf.is_empty() {
                let _ = writer.write_all(&self.buf);
                self.buf.clear();
            }
            let _ = writer.flush();
        }
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Reads primitives off a fully-buffered record body, where running out
/// of bytes is corruption (the length prefix promised them).
struct Body<'a> {
    bytes: &'a [u8],
    pos: usize,
    offset: u64,
}

impl Body<'_> {
    fn fail(&self, what: &str) -> BinError {
        err(self.offset, format!("truncated or malformed {what}"))
    }

    fn u8(&mut self, what: &str) -> Result<u8, BinError> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| self.fail(what))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self, what: &str) -> Result<u64, BinError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8(what)?;
            if shift == 63 && b > 1 {
                return Err(err(self.offset, format!("varint overflow in {what}")));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(err(self.offset, format!("varint overflow in {what}")));
            }
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, BinError> {
        u32::try_from(self.varint(what)?)
            .map_err(|_| err(self.offset, format!("{what} exceeds u32")))
    }

    fn index(&mut self, what: &str) -> Result<usize, BinError> {
        usize::try_from(self.varint(what)?)
            .map_err(|_| err(self.offset, format!("{what} exceeds usize")))
    }

    fn f64(&mut self, what: &str) -> Result<f64, BinError> {
        if self.bytes.len() - self.pos < 8 {
            return Err(self.fail(what));
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.bytes[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    fn molecule(&mut self, table: &mut Vec<Molecule>) -> Result<Molecule, BinError> {
        let idx = self.index("molecule index")?;
        match idx.cmp(&table.len()) {
            std::cmp::Ordering::Less => Ok(table[idx].clone()),
            std::cmp::Ordering::Equal => {
                let len = self.index("molecule length")?;
                let mut counts = Vec::with_capacity(len.min(64));
                for _ in 0..len {
                    counts.push(self.u32("molecule count")?);
                }
                let m: Molecule = counts.into_iter().collect();
                table.push(m.clone());
                Ok(m)
            }
            std::cmp::Ordering::Greater => Err(err(
                self.offset,
                format!(
                    "molecule index {idx} skips ahead of the intern table (len {})",
                    table.len()
                ),
            )),
        }
    }
}

/// Decodes one complete record body into an event, updating the decoder
/// state exactly as the encoder updated its own.
fn decode_body(
    body: &[u8],
    offset: u64,
    last_at: &mut u64,
    table: &mut Vec<Molecule>,
) -> Result<Record, BinError> {
    let mut b = Body {
        bytes: body,
        pos: 0,
        offset,
    };
    let tag = b.u8("record tag")?;
    let delta = unzigzag(b.varint("timestamp delta")?);
    let at = last_at.wrapping_add(delta as u64);
    *last_at = at;
    let event = match tag {
        tag::ROTATION_STARTED => Event::RotationStarted {
            container: b.u32("container")?,
            kind: AtomKind(b.index("kind")?),
        },
        tag::ROTATION_COMPLETED => Event::RotationCompleted {
            container: b.u32("container")?,
            kind: AtomKind(b.index("kind")?),
        },
        tag::ROTATION_FAILED => Event::RotationFailed {
            container: b.u32("container")?,
            kind: AtomKind(b.index("kind")?),
        },
        tag::PORT_STALLED => Event::PortStalled {
            until: b.varint("until")?,
        },
        tag::CONTAINER_QUARANTINED => Event::ContainerQuarantined {
            container: b.u32("container")?,
        },
        tag::CONTAINER_LOADED => Event::ContainerLoaded {
            container: b.u32("container")?,
            kind: AtomKind(b.index("kind")?),
        },
        tag::CONTAINER_EVICTED => Event::ContainerEvicted {
            container: b.u32("container")?,
            kind: AtomKind(b.index("kind")?),
        },
        tag::SI_EXECUTED => {
            let flags = b.u8("flags")?;
            if flags & !0b11 != 0 {
                return Err(err(offset, format!("unknown si_executed flags {flags:#x}")));
            }
            let task = b.u32("task")?;
            let si = SiId(b.index("si")?);
            let cycles = b.varint("cycles")?;
            let molecule = if flags & 0b10 != 0 {
                Some(b.molecule(table)?)
            } else {
                None
            };
            Event::SiExecuted {
                task,
                si,
                hw: flags & 0b01 != 0,
                cycles,
                molecule,
            }
        }
        tag::FORECAST_UPDATED => Event::ForecastUpdated {
            task: b.u32("task")?,
            si: SiId(b.index("si")?),
            probability: b.f64("probability")?,
            expected_executions: b.f64("expected_executions")?,
        },
        tag::FORECAST_RETRACTED => Event::ForecastRetracted {
            task: b.u32("task")?,
            si: SiId(b.index("si")?),
        },
        tag::FC_OUTCOME => {
            let reached = match b.u8("reached")? {
                0 => false,
                1 => true,
                other => return Err(err(offset, format!("malformed boolean {other:#x}"))),
            };
            Event::FcOutcome {
                task: b.u32("task")?,
                si: SiId(b.index("si")?),
                reached,
            }
        }
        tag::RESELECT => {
            let code = b.u8("trigger")?;
            let trigger = trigger_from(code & !TRIGGER_CACHE_HIT)
                .ok_or_else(|| err(offset, format!("unknown reselect trigger {code}")))?;
            Event::Reselect {
                trigger,
                duration_ns: b.varint("duration_ns")?,
                cache_hit: code & TRIGGER_CACHE_HIT != 0,
            }
        }
        tag::UPGRADE_STEP => {
            let task = match b.varint("task")? {
                0 => None,
                t => Some(u32::try_from(t - 1).map_err(|_| err(offset, "task exceeds u32"))?),
            };
            Event::UpgradeStep {
                task,
                si: SiId(b.index("si")?),
                step: b.u32("step")?,
                molecule: b.molecule(table)?,
            }
        }
        other => return Err(err(offset, format!("unknown event tag {other}"))),
    };
    if b.pos != body.len() {
        return Err(err(
            offset,
            format!("{} trailing bytes after record body", body.len() - b.pos),
        ));
    }
    Ok(Record { at, event })
}

/// Tries to read a varint at `bytes[pos..]`. `Ok(None)` means the buffer
/// ends mid-varint (feed more bytes); `Err` means the varint itself is
/// malformed.
fn peek_varint(
    bytes: &[u8],
    mut pos: usize,
    offset: u64,
) -> Result<Option<(u64, usize)>, BinError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&b) = bytes.get(pos) else {
            return Ok(None);
        };
        pos += 1;
        if shift == 63 && b > 1 {
            return Err(err(offset, "varint overflow in length prefix"));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(Some((v, pos)));
        }
        shift += 7;
        if shift > 63 {
            return Err(err(offset, "varint overflow in length prefix"));
        }
    }
}

/// Incremental decoder for a binary event stream: feed byte chunks as
/// they arrive (a growing file tail, a socket), pull complete records
/// out. Partial records stay buffered until the missing bytes arrive —
/// the primitive `rispp_serve` tails live logs with.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted periodically).
    start: usize,
    /// Absolute stream offset of `buf[start]`.
    offset: u64,
    header_done: bool,
    last_at: u64,
    table: Vec<Molecule>,
    /// A decode error is sticky: the stream state is unrecoverable.
    failed: bool,
}

impl StreamDecoder {
    /// Creates a decoder expecting a fresh stream (header first).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly-arrived bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes fully consumed so far (header + complete records).
    #[must_use]
    pub fn bytes_consumed(&self) -> u64 {
        self.offset
    }

    /// `true` once the stream header has been seen and validated.
    #[must_use]
    pub fn header_seen(&self) -> bool {
        self.header_done
    }

    /// Unconsumed bytes currently buffered (a partial record tail).
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    fn avail(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    fn consume(&mut self, n: usize) {
        self.start += n;
        self.offset += n as u64;
        // Compact once the dead prefix dominates, keeping feed() cheap.
        if self.start > 64 * 1024 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Decodes the next complete record, if its bytes have arrived.
    /// `Ok(None)` means "feed more bytes"; errors are sticky.
    ///
    /// # Errors
    ///
    /// Returns [`BinError`] for a bad magic, an unsupported schema
    /// version, or a malformed record.
    pub fn next_record(&mut self) -> Result<Option<Record>, BinError> {
        if self.failed {
            return Err(err(self.offset, "stream already failed"));
        }
        self.try_next().inspect_err(|_| self.failed = true)
    }

    fn try_next(&mut self) -> Result<Option<Record>, BinError> {
        if !self.header_done {
            let avail = self.avail();
            if avail.len() < MAGIC.len() {
                // Reject on the first wrong byte: callers probing a
                // JSONL stream should fail fast, not buffer forever.
                if !avail.is_empty() && avail != &MAGIC[..avail.len()] {
                    return Err(err(
                        self.offset,
                        "bad magic: not a RISPP binary event stream",
                    ));
                }
                return Ok(None);
            }
            if avail[..MAGIC.len()] != MAGIC {
                return Err(err(
                    self.offset,
                    "bad magic: not a RISPP binary event stream",
                ));
            }
            let Some((version, end)) = peek_varint(avail, MAGIC.len(), self.offset)? else {
                return Ok(None);
            };
            if version > BIN_SCHEMA_VERSION {
                return Err(err(
                    self.offset,
                    format!(
                        "unsupported bin schema_version {version} \
                         (this build decodes versions up to {BIN_SCHEMA_VERSION})"
                    ),
                ));
            }
            self.consume(end);
            self.header_done = true;
        }
        // Direct field borrows keep the body slice (`self.buf`) disjoint
        // from the decoder state (`self.last_at` / `self.table`).
        let avail = &self.buf[self.start..];
        let Some((len, body_start)) = peek_varint(avail, 0, self.offset)? else {
            return Ok(None);
        };
        let len =
            usize::try_from(len).map_err(|_| err(self.offset, "record length exceeds usize"))?;
        let Some(body) = avail.get(body_start..body_start + len) else {
            return Ok(None);
        };
        let record = decode_body(body, self.offset, &mut self.last_at, &mut self.table)?;
        self.consume(body_start + len);
        Ok(Some(record))
    }
}

/// Streaming reader over any [`Read`], yielding decoded records in
/// order. A truncated tail (bytes that never complete a record) or a
/// malformed record surfaces as an [`io::Error`] of kind
/// [`io::ErrorKind::InvalidData`].
#[derive(Debug)]
pub struct BinaryReader<R: Read> {
    reader: R,
    decoder: StreamDecoder,
    chunk: Vec<u8>,
    eof: bool,
    done: bool,
}

impl<R: Read> BinaryReader<R> {
    /// Wraps a reader positioned at the start of a binary stream.
    pub fn new(reader: R) -> Self {
        BinaryReader {
            reader,
            decoder: StreamDecoder::new(),
            chunk: vec![0u8; 64 * 1024],
            eof: false,
            done: false,
        }
    }
}

impl<R: Read> Iterator for BinaryReader<R> {
    type Item = io::Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            match self.decoder.next_record() {
                Ok(Some(record)) => return Some(Ok(record)),
                Ok(None) => {
                    if self.eof {
                        self.done = true;
                        if self.decoder.pending_bytes() > 0 {
                            let e = err(
                                self.decoder.bytes_consumed(),
                                format!(
                                    "stream truncated mid-record ({} dangling bytes)",
                                    self.decoder.pending_bytes()
                                ),
                            );
                            return Some(Err(io::Error::new(io::ErrorKind::InvalidData, e)));
                        }
                        return None;
                    }
                    match self.reader.read(&mut self.chunk) {
                        Ok(0) => self.eof = true,
                        Ok(n) => self.decoder.feed(&self.chunk[..n]),
                        Err(e) => {
                            if e.kind() == io::ErrorKind::Interrupted {
                                continue;
                            }
                            self.done = true;
                            return Some(Err(e));
                        }
                    }
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(io::Error::new(io::ErrorKind::InvalidData, e)));
                }
            }
        }
    }
}

/// Replays a complete in-memory binary stream into a sink. An empty
/// input replays zero events (the untouched-sink case); anything else
/// must carry a full header and whole records.
///
/// # Errors
///
/// Returns [`BinError`] for a bad magic, an unsupported schema version,
/// a malformed record, or a truncated tail.
pub fn replay<S: EventSink>(bytes: &[u8], sink: &mut S) -> Result<(), BinError> {
    let mut decoder = StreamDecoder::new();
    decoder.feed(bytes);
    while let Some(record) = decoder.next_record()? {
        sink.emit(record.at, &record.event);
    }
    if decoder.pending_bytes() > 0 {
        return Err(err(
            decoder.bytes_consumed(),
            format!(
                "stream truncated mid-record ({} dangling bytes)",
                decoder.pending_bytes()
            ),
        ));
    }
    Ok(())
}

/// Replays a binary stream from a reader into a sink, with the same
/// contract as [`replay`].
///
/// # Errors
///
/// Returns the underlying I/O error, or a [`BinError`] wrapped in
/// [`io::Error`] for a malformed or truncated stream.
pub fn replay_reader<R: Read, S: EventSink>(reader: R, sink: &mut S) -> io::Result<()> {
    for record in BinaryReader::new(reader) {
        let record = record?;
        sink.emit(record.at, &record.event);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonl;
    use crate::timeline::TimelineSink;

    fn all_events() -> Vec<Record> {
        vec![
            Record {
                at: 0,
                event: Event::ForecastUpdated {
                    task: 0,
                    si: SiId(2),
                    probability: 0.875,
                    expected_executions: 40.5,
                },
            },
            Record {
                at: 1,
                event: Event::Reselect {
                    trigger: ReselectTrigger::Forecast,
                    duration_ns: 12_345,
                    cache_hit: false,
                },
            },
            Record {
                at: 1,
                event: Event::UpgradeStep {
                    si: SiId(2),
                    task: Some(0),
                    step: 0,
                    molecule: Molecule::from_counts([1, 0, 2]),
                },
            },
            Record {
                at: 1,
                event: Event::UpgradeStep {
                    si: SiId(2),
                    task: None,
                    step: 1,
                    molecule: Molecule::from_counts([1, 1, 2]),
                },
            },
            Record {
                at: 2,
                event: Event::ContainerEvicted {
                    container: 4,
                    kind: AtomKind(0),
                },
            },
            Record {
                at: 2,
                event: Event::RotationStarted {
                    container: 4,
                    kind: AtomKind(1),
                },
            },
            Record {
                at: 40_000,
                event: Event::PortStalled { until: 55_000 },
            },
            Record {
                at: 90_000,
                event: Event::RotationCompleted {
                    container: 4,
                    kind: AtomKind(1),
                },
            },
            Record {
                at: 90_000,
                event: Event::ContainerLoaded {
                    container: 4,
                    kind: AtomKind(1),
                },
            },
            Record {
                at: 90_001,
                event: Event::SiExecuted {
                    task: 0,
                    si: SiId(2),
                    hw: true,
                    cycles: 24,
                    molecule: Some(Molecule::from_counts([1, 1, 0])),
                },
            },
            Record {
                at: 90_050,
                event: Event::SiExecuted {
                    task: 1,
                    si: SiId(0),
                    hw: false,
                    cycles: 544,
                    molecule: None,
                },
            },
            Record {
                at: 90_051,
                event: Event::SiExecuted {
                    task: 0,
                    si: SiId(2),
                    hw: true,
                    cycles: 24,
                    // Interned: second sighting of this Molecule.
                    molecule: Some(Molecule::from_counts([1, 1, 0])),
                },
            },
            Record {
                at: 90_100,
                event: Event::FcOutcome {
                    task: 0,
                    si: SiId(2),
                    reached: true,
                },
            },
            Record {
                at: 90_200,
                event: Event::ForecastRetracted {
                    task: 0,
                    si: SiId(2),
                },
            },
            Record {
                at: 91_000,
                event: Event::RotationFailed {
                    container: 3,
                    kind: AtomKind(2),
                },
            },
            Record {
                at: 91_000,
                event: Event::ContainerQuarantined { container: 3 },
            },
            Record {
                // Out of order on purpose: deltas are signed.
                at: 90_900,
                event: Event::FcOutcome {
                    task: 1,
                    si: SiId(0),
                    reached: false,
                },
            },
            Record {
                at: 91_001,
                event: Event::Reselect {
                    trigger: ReselectTrigger::Fault,
                    duration_ns: 777,
                    cache_hit: true,
                },
            },
        ]
    }

    fn encode_all(records: &[Record]) -> Vec<u8> {
        let mut sink = BinarySink::new(Vec::new());
        for r in records {
            sink.emit(r.at, &r.event);
        }
        sink.into_inner()
    }

    #[test]
    fn every_event_round_trips() {
        let bytes = encode_all(&all_events());
        let mut replayed = TimelineSink::new();
        replay(&bytes, &mut replayed).unwrap();
        let expected: Vec<Record> = all_events();
        assert_eq!(replayed.timeline().entries(), expected.as_slice());
    }

    #[test]
    fn reader_round_trips_and_matches_timeline() {
        let bytes = encode_all(&all_events());
        let records: Vec<Record> = BinaryReader::new(&bytes[..])
            .collect::<io::Result<_>>()
            .unwrap();
        assert_eq!(records, all_events());

        let mut sink = TimelineSink::new();
        replay_reader(&bytes[..], &mut sink).unwrap();
        assert_eq!(sink.timeline().entries(), all_events().as_slice());
    }

    #[test]
    fn untouched_sink_writes_no_bytes() {
        let sink = BinarySink::new(Vec::new());
        assert!(sink.into_inner().is_empty());
        // And an empty stream replays zero events.
        let mut out = TimelineSink::new();
        replay(&[], &mut out).unwrap();
        assert!(out.timeline().is_empty());
    }

    #[test]
    fn binary_is_smaller_than_jsonl() {
        let records = all_events();
        let bytes = encode_all(&records);
        let jsonl_len: usize = records
            .iter()
            .map(|r| jsonl::encode(r.at, &r.event).len() + 1)
            .sum();
        assert!(
            bytes.len() * 4 < jsonl_len,
            "binary {} bytes vs jsonl {jsonl_len}",
            bytes.len()
        );
    }

    #[test]
    fn magic_probe_detects_format() {
        let bytes = encode_all(&all_events());
        assert!(is_binary(&bytes));
        assert!(!is_binary(b"{\"schema_version\":1}"));
        assert!(!is_binary(&bytes[..3]));
        assert!(!is_binary(b""));
    }

    #[test]
    fn future_schema_versions_are_refused() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        put_varint(&mut bytes, BIN_SCHEMA_VERSION + 1);
        let e = replay(&bytes, &mut TimelineSink::new()).unwrap_err();
        assert!(e.message.contains("unsupported bin schema_version"), "{e}");
        let io_err = replay_reader(&bytes[..], &mut TimelineSink::new()).unwrap_err();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_magic_is_rejected_immediately() {
        let e = replay(b"{\"at\":1}", &mut TimelineSink::new()).unwrap_err();
        assert!(e.message.contains("bad magic"), "{e}");
        assert_eq!(e.offset, 0);
        // Even a single wrong byte fails fast (no buffering forever).
        let mut d = StreamDecoder::new();
        d.feed(b"{");
        assert!(d.next_record().is_err());
    }

    #[test]
    fn every_truncation_is_a_prefix_or_an_error() {
        let records = all_events();
        let bytes = encode_all(&records);
        for cut in 0..bytes.len() {
            let mut sink = TimelineSink::new();
            match replay(&bytes[..cut], &mut sink) {
                Ok(()) => {
                    // A clean cut decodes some prefix of the records.
                    let n = sink.timeline().len();
                    assert_eq!(sink.timeline().entries(), &records[..n], "cut {cut}");
                }
                Err(e) => {
                    assert!(
                        e.message.contains("truncated") || e.message.contains("dangling"),
                        "cut {cut}: {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn corrupt_records_are_rejected_with_offset() {
        // Unknown tag.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        put_varint(&mut bytes, BIN_SCHEMA_VERSION);
        let header_len = bytes.len() as u64;
        bytes.extend_from_slice(&[2, 200, 0]); // len 2, tag 200, delta 0
        let e = replay(&bytes, &mut TimelineSink::new()).unwrap_err();
        assert!(e.message.contains("unknown event tag 200"), "{e}");
        assert_eq!(e.offset, header_len);

        // Unknown reselect trigger.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        put_varint(&mut bytes, BIN_SCHEMA_VERSION);
        bytes.extend_from_slice(&[4, tag::RESELECT, 0, 99, 0]);
        let e = replay(&bytes, &mut TimelineSink::new()).unwrap_err();
        assert!(e.message.contains("unknown reselect trigger 99"), "{e}");

        // Molecule index skipping ahead of the intern table.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        put_varint(&mut bytes, BIN_SCHEMA_VERSION);
        bytes.extend_from_slice(&[7, tag::SI_EXECUTED, 0, 0b10, 0, 0, 5, 3]);
        let e = replay(&bytes, &mut TimelineSink::new()).unwrap_err();
        assert!(e.message.contains("intern table"), "{e}");

        // Body shorter than its fields claim.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        put_varint(&mut bytes, BIN_SCHEMA_VERSION);
        bytes.extend_from_slice(&[2, tag::PORT_STALLED, 0]); // missing `until`
        let e = replay(&bytes, &mut TimelineSink::new()).unwrap_err();
        assert!(e.message.contains("until"), "{e}");

        // Body longer than its fields consume.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        put_varint(&mut bytes, BIN_SCHEMA_VERSION);
        bytes.extend_from_slice(&[4, tag::PORT_STALLED, 0, 9, 9]);
        let e = replay(&bytes, &mut TimelineSink::new()).unwrap_err();
        assert!(e.message.contains("trailing bytes"), "{e}");
    }

    #[test]
    fn stream_decoder_handles_byte_by_byte_arrival() {
        let records = all_events();
        let bytes = encode_all(&records);
        let mut decoder = StreamDecoder::new();
        let mut out = Vec::new();
        for &b in &bytes {
            decoder.feed(&[b]);
            while let Some(r) = decoder.next_record().unwrap() {
                out.push(r);
            }
        }
        assert_eq!(out, records);
        assert_eq!(decoder.pending_bytes(), 0);
        assert_eq!(decoder.bytes_consumed(), bytes.len() as u64);
        assert!(decoder.header_seen());
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for p in [0.1, 1.0 / 3.0, 5e-324, 1.797e308, 0.0, -0.0, f64::NAN] {
            let bytes = encode_all(&[Record {
                at: 7,
                event: Event::ForecastUpdated {
                    task: 0,
                    si: SiId(0),
                    probability: p,
                    expected_executions: p * 0.5,
                },
            }]);
            let mut sink = TimelineSink::new();
            replay(&bytes, &mut sink).unwrap();
            match &sink.timeline().entries()[0].event {
                Event::ForecastUpdated {
                    probability,
                    expected_executions,
                    ..
                } => {
                    assert_eq!(probability.to_bits(), p.to_bits());
                    assert_eq!(expected_executions.to_bits(), (p * 0.5).to_bits());
                }
                other => panic!("wrong event {other:?}"),
            }
        }
    }

    #[test]
    fn extreme_timestamps_and_ids_round_trip() {
        let records = vec![
            Record {
                at: u64::MAX,
                event: Event::PortStalled { until: u64::MAX },
            },
            Record {
                at: 0,
                event: Event::SiExecuted {
                    task: u32::MAX,
                    si: SiId(usize::MAX),
                    hw: false,
                    cycles: u64::MAX,
                    molecule: None,
                },
            },
            Record {
                at: u64::MAX / 2,
                event: Event::UpgradeStep {
                    si: SiId(0),
                    task: Some(u32::MAX),
                    step: u32::MAX,
                    molecule: Molecule::from_counts([u32::MAX, 0]),
                },
            },
        ];
        let bytes = encode_all(&records);
        let mut sink = TimelineSink::new();
        replay(&bytes, &mut sink).unwrap();
        assert_eq!(sink.timeline().entries(), records.as_slice());
    }

    #[test]
    fn flush_batches_writes() {
        // A writer that counts write calls: batched emission must reach
        // it far fewer times than there are events.
        struct Counting {
            writes: usize,
            bytes: Vec<u8>,
        }
        impl Write for Counting {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.writes += 1;
                self.bytes.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = BinarySink::new(Counting {
            writes: 0,
            bytes: Vec::new(),
        });
        let record = Record {
            at: 1,
            event: Event::ForecastRetracted {
                task: 0,
                si: SiId(0),
            },
        };
        let n = 10_000;
        for _ in 0..n {
            sink.emit(record.at, &record.event);
        }
        let counting = sink.into_inner();
        assert!(
            counting.writes < n / 100,
            "{} writes for {n} events",
            counting.writes
        );
        let mut out = TimelineSink::new();
        replay(&counting.bytes, &mut out).unwrap();
        assert_eq!(out.timeline().len(), n);
    }

    #[test]
    fn drop_flushes_buffered_bytes() {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Clone, Default)]
        struct Shared(Rc<RefCell<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let shared = Shared::default();
        {
            let mut sink = BinarySink::new(shared.clone());
            sink.emit(
                3,
                &Event::ForecastRetracted {
                    task: 0,
                    si: SiId(1),
                },
            );
        }
        let bytes = shared.0.borrow().clone();
        let mut out = TimelineSink::new();
        replay(&bytes, &mut out).unwrap();
        assert_eq!(out.timeline().len(), 1);
    }
}
