//! The [`Timeline`]: an append-only, queryable record of every event —
//! the data behind the paper's Fig. 6 — and the [`TimelineSink`] that
//! accumulates one from a live event stream.

use std::fmt;

use rispp_core::si::SiId;

use crate::event::{Event, Record, TaskId};
use crate::sink::EventSink;

/// An append-only event timeline with the query helpers the figure
/// reproductions need.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    records: Vec<Record>,
}

impl Timeline {
    /// Creates an empty timeline.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event at cycle `at`.
    pub fn push(&mut self, at: u64, event: Event) {
        self.records.push(Record { at, event });
    }

    /// All records in emission order (non-decreasing time).
    #[must_use]
    pub fn entries(&self) -> &[Record] {
        &self.records
    }

    /// Mutable access to the records, e.g. to normalise host-measured
    /// `Reselect` durations before comparing timelines across runs.
    #[must_use]
    pub fn entries_mut(&mut self) -> &mut [Record] {
        &mut self.records
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` for an empty timeline.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// SI executions of one task, as `(at, cycles, hardware)`.
    pub fn executions(
        &self,
        task: TaskId,
        si: SiId,
    ) -> impl Iterator<Item = (u64, u64, bool)> + '_ {
        self.records.iter().filter_map(move |r| match r.event {
            Event::SiExecuted {
                task: t,
                si: s,
                hw,
                cycles,
                ..
            } if t == task && s == si => Some((r.at, cycles, hw)),
            _ => None,
        })
    }

    /// Time of the first hardware execution of `(task, si)` at or after
    /// `from`.
    #[must_use]
    pub fn first_hw_execution_after(&self, task: TaskId, si: SiId, from: u64) -> Option<u64> {
        self.executions(task, si)
            .find(|&(at, _, hw)| hw && at >= from)
            .map(|(at, _, _)| at)
    }

    /// Count of completed rotations.
    #[must_use]
    pub fn rotations_completed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.event, Event::RotationCompleted { .. }))
            .count()
    }

    /// Time of the first forecast of `si` by `task`.
    #[must_use]
    pub fn forecast_time(&self, task: TaskId, si: SiId) -> Option<u64> {
        self.records.iter().find_map(|r| match r.event {
            Event::ForecastUpdated { task: t, si: s, .. } if t == task && s == si => Some(r.at),
            _ => None,
        })
    }

    /// Time of the first retraction of `si` by `task`.
    #[must_use]
    pub fn retract_time(&self, task: TaskId, si: SiId) -> Option<u64> {
        self.records.iter().find_map(|r| match r.event {
            Event::ForecastRetracted { task: t, si: s } if t == task && s == si => Some(r.at),
            _ => None,
        })
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.records {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Sink accumulating every event into a [`Timeline`].
///
/// By default the timeline grows without bound; long soaks that only
/// need recent context (a debugging tail, a crash snapshot) should use
/// [`TimelineSink::with_capacity`] instead.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimelineSink {
    timeline: Timeline,
    /// Keep-last-N bound; `None` grows without limit.
    capacity: Option<usize>,
    /// Records evicted (or refused, at capacity 0) by the bound — the
    /// proof a bounded capture is incomplete.
    dropped_events: u64,
}

impl TimelineSink {
    /// Creates an unbounded timeline sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bounded sink keeping (at least) the most recent
    /// `capacity` records. To stay amortized O(1) per event, eviction
    /// runs in batches: the timeline holds between `capacity` and
    /// `2 × capacity` records once full, and the oldest are dropped
    /// `capacity` at a time. A capacity of 0 keeps nothing.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        TimelineSink {
            timeline: Timeline::new(),
            capacity: Some(capacity),
            dropped_events: 0,
        }
    }

    /// The keep-last bound, when one was configured.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Events this sink received but no longer holds: evicted by the
    /// [`TimelineSink::with_capacity`] bound (or refused outright at
    /// capacity 0). Always 0 for an unbounded sink — a nonzero value is
    /// the signal that the captured timeline is a truncated tail, not
    /// the whole run.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// The accumulated timeline.
    #[must_use]
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Consumes the sink, returning the timeline.
    #[must_use]
    pub fn into_timeline(self) -> Timeline {
        self.timeline
    }
}

impl EventSink for TimelineSink {
    fn emit(&mut self, at: u64, event: &Event) {
        if let Some(cap) = self.capacity {
            if cap == 0 {
                self.dropped_events += 1;
                return;
            }
            if self.timeline.records.len() >= cap.saturating_mul(2) {
                self.timeline.records.drain(..cap);
                self.dropped_events += cap as u64;
            }
        }
        self.timeline.push(at, event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rispp_core::atom::AtomKind;

    fn sample() -> Timeline {
        let mut t = Timeline::new();
        t.push(
            10,
            Event::ForecastUpdated {
                task: 0,
                si: SiId(1),
                probability: 1.0,
                expected_executions: 40.0,
            },
        );
        t.push(
            20,
            Event::SiExecuted {
                task: 0,
                si: SiId(1),
                hw: false,
                cycles: 500,
                molecule: None,
            },
        );
        t.push(
            30,
            Event::RotationCompleted {
                container: 2,
                kind: AtomKind(0),
            },
        );
        t.push(
            40,
            Event::SiExecuted {
                task: 0,
                si: SiId(1),
                hw: true,
                cycles: 20,
                molecule: None,
            },
        );
        t.push(
            50,
            Event::ForecastRetracted {
                task: 0,
                si: SiId(1),
            },
        );
        t
    }

    #[test]
    fn query_helpers_find_events() {
        let t = sample();
        assert_eq!(t.forecast_time(0, SiId(1)), Some(10));
        assert_eq!(t.retract_time(0, SiId(1)), Some(50));
        assert_eq!(t.first_hw_execution_after(0, SiId(1), 0), Some(40));
        assert_eq!(t.rotations_completed(), 1);
        assert_eq!(t.executions(0, SiId(1)).count(), 2);
        assert_eq!(t.executions(1, SiId(1)).count(), 0);
    }

    #[test]
    fn sink_accumulates_in_order() {
        let mut sink = TimelineSink::new();
        for r in sample().entries() {
            sink.emit(r.at, &r.event);
        }
        assert_eq!(sink.timeline(), &sample());
    }

    #[test]
    fn bounded_sink_keeps_the_most_recent_records() {
        let mut sink = TimelineSink::with_capacity(4);
        assert_eq!(sink.capacity(), Some(4));
        for at in 0..100u64 {
            sink.emit(
                at,
                &Event::ForecastRetracted {
                    task: 0,
                    si: SiId(0),
                },
            );
            let len = sink.timeline().len();
            assert!(len <= 8, "batched eviction bounds the buffer: {len}");
            // The newest record is always retained…
            assert_eq!(sink.timeline().entries().last().unwrap().at, at);
            // …and so are at least the last min(at+1, 4) records.
            let kept = sink.timeline().entries().len() as u64;
            assert!(kept >= (at + 1).min(4), "kept only {kept} at {at}");
        }
        // Order is preserved across evictions.
        let ats: Vec<u64> = sink.timeline().entries().iter().map(|r| r.at).collect();
        assert!(ats.windows(2).all(|w| w[0] + 1 == w[1]));
        // Nothing vanishes silently: held + dropped = emitted.
        assert_eq!(sink.dropped_events() + sink.timeline().len() as u64, 100);
        assert!(sink.dropped_events() > 0);

        // Capacity 0 records nothing; unbounded keeps everything.
        let mut none = TimelineSink::with_capacity(0);
        none.emit(
            0,
            &Event::ForecastRetracted {
                task: 0,
                si: SiId(0),
            },
        );
        assert!(none.timeline().is_empty());
        assert_eq!(none.dropped_events(), 1);
        assert_eq!(TimelineSink::new().capacity(), None);
        assert_eq!(TimelineSink::new().dropped_events(), 0);
    }

    #[test]
    fn display_renders_every_record() {
        let s = sample().to_string();
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains("task0"));
        assert!(s.contains("HW 20cyc"));
        assert!(s.contains("rotation done"));
    }
}
